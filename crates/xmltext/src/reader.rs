//! Textual XML 1.0 → bXDM.
//!
//! The reader rebuilds the *typed* tree: an element carrying `xsi:type`
//! becomes a LeafElement with a machine-typed value, and an element
//! carrying `bx:arrayType` becomes an ArrayElement with its items parsed
//! out of the per-item children. This is the schema-less typed recovery
//! the paper requires for transcodability (§4.2: without type information
//! in the serialization "we are not able to create the typed LeafElement
//! in the bXDM model").
//!
//! The parser is a *streaming* one: it pulls incremental events from the
//! lexer and constructs typed bXDM nodes directly — array items are
//! parsed straight from the borrowed item text into the packed
//! `ArrayValue`, and typed leaves straight into their `AtomicValue`,
//! without ever materializing the generic per-item element tree that a
//! build-then-recover design would allocate and immediately discard.
//! Combined with [`parse_into`]'s clear-and-refill storage reuse, a
//! steady-state decode of a same-shape message performs zero heap
//! allocations.

use std::borrow::Cow;

use bxdm::{ArrayValue, Attribute, AtomicValue, Content, Document, Element, NamespaceDecl, Node, QName};
use xbs::TypeCode;

use crate::error::{XmlError, XmlResult};
use crate::lexer::{AttrEvent, Event, Lexer};
use crate::num;

/// Parsing options.
#[derive(Debug, Clone)]
pub struct XmlReadOptions {
    /// Drop text nodes that consist entirely of whitespace (pretty-printed
    /// input). Leaf/array recovery is unaffected.
    pub trim_whitespace_text: bool,
    /// Recognize `xsi:type` and `bx:arrayType` and rebuild typed nodes.
    /// When off, everything parses as component elements with text.
    pub typed_recovery: bool,
    /// Maximum element nesting depth accepted. Guards the recursive
    /// parser against stack exhaustion on adversarial input.
    pub max_depth: usize,
}

impl Default for XmlReadOptions {
    fn default() -> XmlReadOptions {
        XmlReadOptions {
            trim_whitespace_text: true,
            typed_recovery: true,
            max_depth: 512,
        }
    }
}

/// Parse a complete XML document with default options.
pub fn parse(input: &str) -> XmlResult<Document> {
    parse_with(input, &XmlReadOptions::default())
}

/// Parse a complete XML document.
pub fn parse_with(input: &str, opts: &XmlReadOptions) -> XmlResult<Document> {
    let mut doc = Document::new();
    parse_into_with(input, &mut doc, opts)?;
    Ok(doc)
}

/// Parse a complete XML document *into* `doc`, reusing its storage.
///
/// Where [`parse`] builds every node, string, and array from scratch,
/// `parse_into` walks the existing tree in lockstep with the event
/// stream and refills it: node slots are overwritten in place, `String`
/// and `Vec` capacity (names, namespace tables, attribute lists, child
/// lists, array payloads) survives across messages. When the incoming
/// message has the same shape as the previous one — the steady state of
/// a request/response service — the refill performs zero heap
/// allocations. Where shapes diverge, the parser falls back to fresh
/// allocation for the divergent subtree only.
///
/// On error the contents of `doc` are unspecified (but memory-safe);
/// callers must treat the document as garbage until the next successful
/// parse.
pub fn parse_into(input: &str, doc: &mut Document) -> XmlResult<()> {
    parse_into_with(input, doc, &XmlReadOptions::default())
}

/// [`parse_into`] with explicit options.
pub fn parse_into_with(input: &str, doc: &mut Document, opts: &XmlReadOptions) -> XmlResult<()> {
    let mut reader = Reader {
        lexer: Lexer::new(input),
        opts,
    };
    reader.fill_document(doc)
}

struct Reader<'a, 'o> {
    lexer: Lexer<'a>,
    opts: &'o XmlReadOptions,
}

/// A placeholder node for growing a recycled child list; allocation-free
/// (`String::new` does not allocate) and immediately overwritten.
fn blank_node() -> Node {
    Node::Text(String::new())
}

/// Overwrite a `String` slot, reusing the existing capacity.
fn set_string(slot: &mut String, value: &str) {
    slot.clear();
    slot.push_str(value);
}

/// Overwrite a `QName` slot from its lexical `prefix:local` form,
/// reusing the existing string storage (same split as [`QName::parse`]).
fn set_qname_lexical(name: &mut QName, raw: &str) {
    match raw.split_once(':') {
        Some((p, l)) => name.set(Some(p), l),
        None => name.set(None, raw),
    }
}

/// Reuse `slot`'s payload `Vec` when it already holds arrays of `code`'s
/// type (clearing it but keeping capacity); otherwise replace it with an
/// empty array of that type. Returns `false` for non-array codes.
fn clear_array_for(code: TypeCode, slot: &mut ArrayValue) -> bool {
    macro_rules! reuse {
        ($variant:ident) => {{
            if let ArrayValue::$variant(v) = slot {
                v.clear();
            } else if let Some(fresh) = ArrayValue::empty_of(code) {
                *slot = fresh;
            } else {
                unreachable!("numeric codes always have an array form");
            }
            true
        }};
    }
    match code {
        TypeCode::I8 => reuse!(I8),
        TypeCode::U8 => reuse!(U8),
        TypeCode::I16 => reuse!(I16),
        TypeCode::U16 => reuse!(U16),
        TypeCode::I32 => reuse!(I32),
        TypeCode::U32 => reuse!(U32),
        TypeCode::I64 => reuse!(I64),
        TypeCode::U64 => reuse!(U64),
        TypeCode::F32 => reuse!(F32),
        TypeCode::F64 => reuse!(F64),
        TypeCode::Str | TypeCode::Bool => false,
    }
}

/// Take the next refill slot out of a recycled child list, growing it
/// with a blank placeholder when the new shape is larger.
fn next_slot<'v>(children: &'v mut Vec<Node>, filled: &mut usize) -> &'v mut Node {
    if *filled == children.len() {
        children.push(blank_node());
    }
    *filled += 1;
    &mut children[*filled - 1]
}

/// What an element's start tag told us about its content model.
enum Mode {
    Component,
    Leaf(TypeCode),
    Array(TypeCode),
}

/// Text content accumulated while streaming a leaf or array item:
/// borrowed from the input while it is a single run, promoted to an
/// owned buffer only for multi-part content (CDATA joins, nested
/// elements) — a shape the writer never emits.
enum TextAcc<'a> {
    Empty,
    Single(Cow<'a, str>),
    Joined(String),
}

impl<'a> TextAcc<'a> {
    fn push(&mut self, piece: Cow<'a, str>) {
        match self {
            TextAcc::Empty => *self = TextAcc::Single(piece),
            TextAcc::Single(first) => {
                let mut joined = String::with_capacity(first.len() + piece.len());
                joined.push_str(first);
                joined.push_str(&piece);
                *self = TextAcc::Joined(joined);
            }
            TextAcc::Joined(buf) => buf.push_str(&piece),
        }
    }

    /// Force the owned representation (needed before recursing into a
    /// nested element, whose text lands in the owned buffer).
    fn owned(&mut self) -> &mut String {
        match self {
            TextAcc::Joined(buf) => buf,
            TextAcc::Empty => {
                *self = TextAcc::Joined(String::new());
                match self {
                    TextAcc::Joined(buf) => buf,
                    _ => unreachable!("just assigned"),
                }
            }
            TextAcc::Single(first) => {
                *self = TextAcc::Joined(first.to_string());
                match self {
                    TextAcc::Joined(buf) => buf,
                    _ => unreachable!("just assigned"),
                }
            }
        }
    }

    fn as_str(&self) -> &str {
        match self {
            TextAcc::Empty => "",
            TextAcc::Single(s) => s,
            TextAcc::Joined(s) => s,
        }
    }
}

impl<'a> Reader<'a, '_> {
    fn fill_document(&mut self, doc: &mut Document) -> XmlResult<()> {
        let mut filled = 0usize;
        let mut saw_root = false;
        loop {
            match self.lexer.next_event()? {
                Event::Eof => break,
                Event::Decl => {
                    if saw_root {
                        return Err(XmlError::Structure {
                            what: "XML declaration not at document start".into(),
                        });
                    }
                }
                Event::StartTagOpen { name } => {
                    if saw_root {
                        return Err(XmlError::Structure {
                            what: "multiple root elements".into(),
                        });
                    }
                    let slot = next_slot(&mut doc.children, &mut filled);
                    self.fill_element(name, 0, slot)?;
                    saw_root = true;
                }
                Event::EndTag { name } => {
                    return Err(XmlError::Structure {
                        what: format!("close tag </{name}> with no open element"),
                    });
                }
                Event::Text(text) => {
                    if !text.trim().is_empty() {
                        return Err(XmlError::Structure {
                            what: "character data outside the root element".into(),
                        });
                    }
                }
                Event::CData(_) => {
                    return Err(XmlError::Structure {
                        what: "CDATA outside the root element".into(),
                    });
                }
                Event::Comment(c) => match next_slot(&mut doc.children, &mut filled) {
                    Node::Comment(slot) => set_string(slot, c),
                    other => *other = Node::Comment(c.to_owned()),
                },
                Event::Pi { target, data } => match next_slot(&mut doc.children, &mut filled) {
                    Node::Pi { target: t, data: d } => {
                        set_string(t, target);
                        set_string(d, data);
                    }
                    other => {
                        *other = Node::Pi {
                            target: target.to_owned(),
                            data: data.to_owned(),
                        }
                    }
                },
            }
        }
        doc.children.truncate(filled);
        if !saw_root {
            return Err(XmlError::Structure {
                what: "document has no root element".into(),
            });
        }
        Ok(())
    }

    /// Fill one element into `slot`: tag name just lexed, attributes and
    /// body still pending in the lexer.
    fn fill_element(&mut self, name: &'a str, depth: usize, slot: &mut Node) -> XmlResult<()> {
        if depth >= self.opts.max_depth {
            return Err(XmlError::Structure {
                what: format!("element nesting exceeds max_depth {}", self.opts.max_depth),
            });
        }
        let el = match slot {
            Node::Element(e) => e,
            other => {
                *other = Node::Element(Element::component(""));
                match other {
                    Node::Element(e) => e,
                    _ => unreachable!("just assigned"),
                }
            }
        };
        set_qname_lexical(&mut el.name, name);

        // Drain the attributes: namespace declarations and ordinary
        // attributes refill their recycled slots; the type annotations
        // (first xsi:type, first bx:arrayType) are consumed — they pick
        // the content model instead of becoming attributes. xsi:type
        // wins when both are present, in which case the arrayType
        // annotation reverts to an ordinary attribute at its original
        // position.
        let mut ns_filled = 0usize;
        let mut attr_filled = 0usize;
        let mut has_xsi_type_attr = false;
        let mut xsi_type: Option<Cow<'a, str>> = None;
        let mut array_type: Option<(Cow<'a, str>, usize)> = None;
        let self_closing = loop {
            match self.lexer.next_attr()? {
                AttrEvent::TagEnd { self_closing } => break self_closing,
                AttrEvent::Attr(raw, value) => {
                    if raw == "xmlns" || raw.starts_with("xmlns:") {
                        let prefix = raw.strip_prefix("xmlns:");
                        match el.namespaces.get_mut(ns_filled) {
                            Some(decl) => {
                                match (prefix, &mut decl.prefix) {
                                    (Some(p), Some(slot)) => set_string(slot, p),
                                    (Some(p), none) => *none = Some(p.to_owned()),
                                    (None, some) => *some = None,
                                }
                                set_string(&mut decl.uri, &value);
                            }
                            None => el.namespaces.push(NamespaceDecl {
                                prefix: prefix.map(str::to_owned),
                                uri: value.into_owned(),
                            }),
                        }
                        ns_filled += 1;
                        continue;
                    }
                    if raw == "xsi:type" {
                        has_xsi_type_attr = true;
                        if self.opts.typed_recovery && xsi_type.is_none() {
                            xsi_type = Some(value);
                            // A provisionally consumed arrayType loses to
                            // xsi:type: restore it as a plain attribute.
                            if let Some((v, index)) = array_type.take() {
                                el.attributes.insert(
                                    index,
                                    Attribute {
                                        name: QName::parse("bx:arrayType"),
                                        value: AtomicValue::Str(v.into_owned()),
                                    },
                                );
                                attr_filled += 1;
                            }
                            continue;
                        }
                    } else if raw == "bx:arrayType"
                        && self.opts.typed_recovery
                        && xsi_type.is_none()
                        && array_type.is_none()
                    {
                        array_type = Some((value, attr_filled));
                        continue;
                    }
                    match el.attributes.get_mut(attr_filled) {
                        Some(attr) => {
                            set_qname_lexical(&mut attr.name, raw);
                            match &mut attr.value {
                                AtomicValue::Str(s) => set_string(s, &value),
                                other => *other = AtomicValue::Str(value.into_owned()),
                            }
                        }
                        None => el.attributes.push(Attribute {
                            name: QName::parse(raw),
                            value: AtomicValue::Str(value.into_owned()),
                        }),
                    }
                    attr_filled += 1;
                }
            }
        };
        el.namespaces.truncate(ns_filled);
        el.attributes.truncate(attr_filled);

        let mode = match (&xsi_type, &array_type) {
            (Some(type_name), _) => {
                let code =
                    TypeCode::from_xsd_name(type_name).ok_or_else(|| XmlError::BadTypedValue {
                        what: format!("unknown xsi:type {type_name:?}"),
                    })?;
                Mode::Leaf(code)
            }
            (None, Some((type_name, _))) => {
                let code =
                    TypeCode::from_xsd_name(type_name).ok_or_else(|| XmlError::BadTypedValue {
                        what: format!("unknown bx:arrayType {type_name:?}"),
                    })?;
                if !matches!(code, TypeCode::Str | TypeCode::Bool) {
                    Mode::Array(code)
                } else {
                    return Err(XmlError::BadTypedValue {
                        what: format!("{type_name:?} is not a valid array element type"),
                    });
                }
            }
            (None, None) => Mode::Component,
        };

        match mode {
            Mode::Leaf(code) => {
                let mut text = TextAcc::Empty;
                if !self_closing {
                    self.stream_text_body(name, depth, &mut text)?;
                }
                self.fill_leaf_value(code, &text, &mut el.content)?;
            }
            Mode::Array(code) => {
                let array = match &mut el.content {
                    Content::Array(a) => a,
                    other => {
                        *other = Content::Array(ArrayValue::U8(Vec::new()));
                        match other {
                            Content::Array(a) => a,
                            _ => unreachable!("just assigned"),
                        }
                    }
                };
                if !clear_array_for(code, array) {
                    unreachable!("non-array codes rejected above");
                }
                if !self_closing {
                    self.stream_array_body(name, depth, array)?;
                }
            }
            Mode::Component => {
                let children = match &mut el.content {
                    Content::Children(c) => c,
                    other => {
                        *other = Content::Children(Vec::new());
                        match other {
                            Content::Children(c) => c,
                            _ => unreachable!("just assigned"),
                        }
                    }
                };
                let filled = if self_closing {
                    0
                } else {
                    self.stream_component_body(name, depth, has_xsi_type_attr, children)?
                };
                children.truncate(filled);
            }
        }
        Ok(())
    }

    /// Stream a component element's body into its recycled child list;
    /// returns the number of slots filled.
    fn stream_component_body(
        &mut self,
        open_name: &'a str,
        depth: usize,
        has_xsi_type_attr: bool,
        children: &mut Vec<Node>,
    ) -> XmlResult<usize> {
        let mut filled = 0usize;
        let mut last_was_text = false;
        loop {
            let offset = self.lexer.position();
            match self.lexer.next_event()? {
                Event::EndTag { name } => {
                    self.check_close(open_name, name, offset)?;
                    return Ok(filled);
                }
                Event::StartTagOpen { name } => {
                    let slot = next_slot(children, &mut filled);
                    self.fill_element(name, depth + 1, slot)?;
                    last_was_text = false;
                }
                Event::Text(text) => {
                    // Whitespace-only text is dropped (pretty-printing),
                    // except inside an element that declares xsi:type — a
                    // typed string's lexical content is significant even
                    // when it is all spaces.
                    let keep = !self.opts.trim_whitespace_text
                        || !text.trim().is_empty()
                        || has_xsi_type_attr;
                    if keep {
                        self.push_text(children, &mut filled, &mut last_was_text, &text);
                    }
                }
                Event::CData(text) => {
                    self.push_text(children, &mut filled, &mut last_was_text, text);
                }
                Event::Comment(c) => {
                    match next_slot(children, &mut filled) {
                        Node::Comment(slot) => set_string(slot, c),
                        other => *other = Node::Comment(c.to_owned()),
                    }
                    last_was_text = false;
                }
                Event::Pi { target, data } => {
                    match next_slot(children, &mut filled) {
                        Node::Pi { target: t, data: d } => {
                            set_string(t, target);
                            set_string(d, data);
                        }
                        other => {
                            *other = Node::Pi {
                                target: target.to_owned(),
                                data: data.to_owned(),
                            }
                        }
                    }
                    last_was_text = false;
                }
                Event::Decl => {
                    return Err(XmlError::Structure {
                        what: "XML declaration not at document start".into(),
                    });
                }
                Event::Eof => return Err(self.never_closed(open_name)),
            }
        }
    }

    /// Append character data, merging with an adjacent text node (CDATA
    /// next to character data).
    fn push_text(
        &mut self,
        children: &mut Vec<Node>,
        filled: &mut usize,
        last_was_text: &mut bool,
        text: &str,
    ) {
        if *last_was_text {
            if let Some(Node::Text(prev)) = children.get_mut(*filled - 1) {
                prev.push_str(text);
                return;
            }
        }
        match next_slot(children, filled) {
            Node::Text(slot) => set_string(slot, text),
            other => *other = Node::Text(text.to_owned()),
        }
        *last_was_text = true;
    }

    /// Stream a typed array element's body, parsing each `<item>` child's
    /// text straight into the packed array.
    fn stream_array_body(
        &mut self,
        open_name: &'a str,
        depth: usize,
        array: &mut ArrayValue,
    ) -> XmlResult<()> {
        loop {
            let offset = self.lexer.position();
            match self.lexer.next_event()? {
                Event::EndTag { name } => {
                    return self.check_close(open_name, name, offset);
                }
                Event::StartTagOpen { name } => {
                    // An item element: its attributes are ignored, its
                    // text is the lexical item value.
                    let self_closing = self.skip_attrs()?;
                    let mut text = TextAcc::Empty;
                    if !self_closing {
                        self.stream_text_body(name, depth, &mut text)?;
                    }
                    push_array_item(array, text.as_str())?;
                }
                Event::Text(text) => {
                    if !text.trim().is_empty() {
                        return Err(XmlError::BadTypedValue {
                            what: format!("unexpected text {text:?} inside array element"),
                        });
                    }
                }
                Event::CData(text) => {
                    if !text.trim().is_empty() {
                        return Err(XmlError::BadTypedValue {
                            what: format!("unexpected text {text:?} inside array element"),
                        });
                    }
                }
                Event::Comment(_) | Event::Pi { .. } => {}
                Event::Decl => {
                    return Err(XmlError::Structure {
                        what: "XML declaration not at document start".into(),
                    });
                }
                Event::Eof => return Err(self.never_closed(open_name)),
            }
        }
    }

    /// Stream an element body collecting only its character data (XPath
    /// `string()` semantics: nested elements contribute their text,
    /// comments and processing instructions are skipped). Used for typed
    /// leaves and array items, whose markup structure is discarded.
    fn stream_text_body(
        &mut self,
        open_name: &'a str,
        depth: usize,
        text: &mut TextAcc<'a>,
    ) -> XmlResult<()> {
        if depth >= self.opts.max_depth {
            return Err(XmlError::Structure {
                what: format!("element nesting exceeds max_depth {}", self.opts.max_depth),
            });
        }
        loop {
            let offset = self.lexer.position();
            match self.lexer.next_event()? {
                Event::EndTag { name } => {
                    return self.check_close(open_name, name, offset);
                }
                Event::StartTagOpen { name } => {
                    let self_closing = self.skip_attrs()?;
                    if !self_closing {
                        // Nested markup inside a typed value: collect its
                        // text into the owned buffer.
                        let mut inner = TextAcc::Joined(std::mem::take(text.owned()));
                        let result = self.stream_text_body(name, depth + 1, &mut inner);
                        *text = inner;
                        result?;
                    }
                }
                Event::Text(t) => text.push(t),
                Event::CData(t) => text.push(Cow::Borrowed(t)),
                Event::Comment(_) | Event::Pi { .. } => {}
                Event::Decl => {
                    return Err(XmlError::Structure {
                        what: "XML declaration not at document start".into(),
                    });
                }
                Event::Eof => return Err(self.never_closed(open_name)),
            }
        }
    }

    /// Drain and discard a start tag's attributes; returns `self_closing`.
    fn skip_attrs(&mut self) -> XmlResult<bool> {
        loop {
            match self.lexer.next_attr()? {
                AttrEvent::Attr(..) => {}
                AttrEvent::TagEnd { self_closing } => return Ok(self_closing),
            }
        }
    }

    /// Parse a typed leaf's lexical content into its content slot,
    /// reusing an existing string value's storage.
    fn fill_leaf_value(
        &mut self,
        code: TypeCode,
        text: &TextAcc<'_>,
        content: &mut Content,
    ) -> XmlResult<()> {
        if code == TypeCode::Str {
            // Strings keep their full (untrimmed) lexical form; refill
            // the existing String in place.
            if let Content::Leaf(AtomicValue::Str(slot)) = content {
                set_string(slot, text.as_str());
                return Ok(());
            }
        }
        let value = AtomicValue::parse_as(code, text.as_str())
            .map_err(|e| XmlError::BadTypedValue { what: e.to_string() })?;
        *content = Content::Leaf(value);
        Ok(())
    }

    fn check_close(&self, expected: &str, found: &str, offset: usize) -> XmlResult<()> {
        if expected == found {
            Ok(())
        } else {
            Err(XmlError::MismatchedTag {
                offset,
                expected: expected.to_owned(),
                found: found.to_owned(),
            })
        }
    }

    fn never_closed(&self, name: &str) -> XmlError {
        XmlError::UnexpectedEof {
            what: format!("element <{name}> never closed"),
        }
    }
}

/// Append one array item given its lexical text.
///
/// Numeric variants go through the from-scratch kernels in [`crate::num`]
/// first; anything the kernels decline (overflow, unusual spellings such
/// as a `+` sign on an unsigned value) falls back to
/// [`ArrayValue::push_lexical`], which also produces the canonical
/// [`XmlError::BadTypedValue`] for genuinely bad items.
fn push_array_item(array: &mut ArrayValue, text: &str) -> XmlResult<()> {
    fn via<T>(parsed: Option<T>, out: &mut Vec<T>) -> bool {
        match parsed {
            Some(v) => {
                out.push(v);
                true
            }
            None => false,
        }
    }
    let t = text.trim();
    let fast = match array {
        ArrayValue::I8(v) => via(num::parse_i64(t).and_then(|x| i8::try_from(x).ok()), v),
        ArrayValue::U8(v) => via(num::parse_u64(t).and_then(|x| u8::try_from(x).ok()), v),
        ArrayValue::I16(v) => via(num::parse_i64(t).and_then(|x| i16::try_from(x).ok()), v),
        ArrayValue::U16(v) => via(num::parse_u64(t).and_then(|x| u16::try_from(x).ok()), v),
        ArrayValue::I32(v) => via(num::parse_i64(t).and_then(|x| i32::try_from(x).ok()), v),
        ArrayValue::U32(v) => via(num::parse_u64(t).and_then(|x| u32::try_from(x).ok()), v),
        ArrayValue::I64(v) => via(num::parse_i64(t), v),
        ArrayValue::U64(v) => via(num::parse_u64(t), v),
        ArrayValue::F64(v) => via(num::parse_f64_lexical(t), v),
        // f32 must round exactly once from the decimal string; routing it
        // through the f64 kernel would double-round, so it stays on std.
        ArrayValue::F32(_) => false,
    };
    if !fast {
        array
            .push_lexical(text)
            .map_err(|e| XmlError::BadTypedValue { what: e.to_string() })?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{to_string, to_string_with, XmlWriteOptions};

    #[test]
    fn simple_tree() {
        let doc = parse("<a><b k=\"1\">hi</b><c/></a>").unwrap();
        let root = doc.root().unwrap();
        assert_eq!(root.name.local(), "a");
        let b = root.find_child("b").unwrap();
        assert_eq!(b.attribute("k").unwrap().value.as_str(), Some("1"));
        assert_eq!(b.text_content(), "hi");
        assert!(root.find_child("c").unwrap().children().is_empty());
    }

    #[test]
    fn namespace_declarations_split_out() {
        let doc =
            parse(r#"<s:e xmlns:s="http://s" xmlns="http://d" a="1"/>"#).unwrap();
        let root = doc.root().unwrap();
        assert_eq!(root.namespaces.len(), 2);
        assert_eq!(root.namespaces[0].prefix.as_deref(), Some("s"));
        assert_eq!(root.namespaces[1].prefix, None);
        assert_eq!(root.attributes.len(), 1);
    }

    #[test]
    fn leaf_recovery() {
        let doc = parse(r#"<n xsi:type="xsd:double">2.5</n>"#).unwrap();
        let root = doc.root().unwrap();
        assert_eq!(root.leaf_value(), Some(&AtomicValue::F64(2.5)));
        // The xsi:type attribute is consumed by recovery.
        assert!(root.attributes.is_empty());
    }

    #[test]
    fn array_recovery() {
        let doc = parse(
            r#"<v bx:arrayType="xsd:int"><item>1</item><item>-2</item><item>3</item></v>"#,
        )
        .unwrap();
        let root = doc.root().unwrap();
        assert_eq!(root.as_i32_array(), Some(&[1, -2, 3][..]));
    }

    #[test]
    fn array_recovery_tolerates_whitespace_and_comments() {
        let doc = parse(
            "<v bx:arrayType=\"xsd:int\">\n  <i>1</i><!-- x -->\n  <i>2</i>\n</v>",
        )
        .unwrap();
        assert_eq!(doc.root().unwrap().as_i32_array(), Some(&[1, 2][..]));
    }

    #[test]
    fn typed_recovery_can_be_disabled() {
        let opts = XmlReadOptions {
            typed_recovery: false,
            ..Default::default()
        };
        let doc = parse_with(r#"<n xsi:type="xsd:int">5</n>"#, &opts).unwrap();
        let root = doc.root().unwrap();
        assert!(root.is_component());
        assert!(root.attribute("xsi:type").is_some());
    }

    #[test]
    fn bad_typed_values_error() {
        assert!(matches!(
            parse(r#"<n xsi:type="xsd:int">oops</n>"#),
            Err(XmlError::BadTypedValue { .. })
        ));
        assert!(matches!(
            parse(r#"<n xsi:type="xsd:unknown">1</n>"#),
            Err(XmlError::BadTypedValue { .. })
        ));
        assert!(matches!(
            parse(r#"<v bx:arrayType="xsd:int">loose text</v>"#),
            Err(XmlError::BadTypedValue { .. })
        ));
    }

    #[test]
    fn leaf_beats_array_annotation() {
        // When both annotations appear, xsi:type wins and bx:arrayType
        // reverts to an ordinary attribute — in either attribute order.
        for xml in [
            r#"<n bx:arrayType="xsd:int" xsi:type="xsd:int">5</n>"#,
            r#"<n xsi:type="xsd:int" bx:arrayType="xsd:int">5</n>"#,
        ] {
            let doc = parse(xml).unwrap();
            let root = doc.root().unwrap();
            assert_eq!(root.leaf_value(), Some(&AtomicValue::I32(5)), "{xml}");
            assert_eq!(
                root.attribute("bx:arrayType").unwrap().value.as_str(),
                Some("xsd:int"),
                "{xml}"
            );
        }
    }

    #[test]
    fn structure_errors() {
        assert!(parse("").is_err());
        assert!(parse("just text").is_err());
        assert!(parse("<a></b>").is_err());
        assert!(parse("<a>").is_err());
        assert!(parse("<a/><b/>").is_err());
        assert!(parse("</a>").is_err());
    }

    #[test]
    fn deep_nesting_rejected() {
        let opts = XmlReadOptions {
            max_depth: 8,
            ..Default::default()
        };
        let deep = format!("{}x{}", "<d>".repeat(16), "</d>".repeat(16));
        assert!(matches!(
            parse_with(&deep, &opts),
            Err(XmlError::Structure { .. })
        ));
        let shallow = format!("{}x{}", "<d>".repeat(4), "</d>".repeat(4));
        assert!(parse_with(&shallow, &opts).is_ok());
    }

    #[test]
    fn mismatched_tag_reports_names() {
        match parse("<outer><inner></outer></inner>") {
            Err(XmlError::MismatchedTag { expected, found, .. }) => {
                assert_eq!(expected, "inner");
                assert_eq!(found, "outer");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cdata_merges_with_text() {
        let doc = parse("<a>one <![CDATA[<two>]]> three</a>").unwrap();
        assert_eq!(doc.root().unwrap().text_content(), "one <two> three");
    }

    #[test]
    fn whitespace_trimming_default() {
        let doc = parse("<a>\n  <b/>\n</a>").unwrap();
        assert_eq!(doc.root().unwrap().children().len(), 1);
        let opts = XmlReadOptions {
            trim_whitespace_text: false,
            ..Default::default()
        };
        let doc = parse_with("<a>\n  <b/>\n</a>", &opts).unwrap();
        assert_eq!(doc.root().unwrap().children().len(), 3);
    }

    #[test]
    fn full_roundtrip_typed_document() {
        let original = Document::with_root(
            Element::component("d:data")
                .with_namespace("d", "http://example.org/d")
                .with_attr("run", "42")
                .with_child(Element::leaf("d:count", AtomicValue::I32(2)))
                .with_child(Element::leaf("d:name", AtomicValue::Str("test".into())))
                .with_child(Element::array(
                    "d:values",
                    ArrayValue::F64(vec![1.0, -2.5, 3.25e-8]),
                ))
                .with_child(Element::array("d:index", ArrayValue::I32(vec![7, 8])))
                .with_comment("tail"),
        );
        let xml = to_string(&original).unwrap();
        let back = parse(&xml).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn roundtrip_without_type_info_degrades_gracefully() {
        let original = Document::with_root(Element::array(
            "v",
            ArrayValue::I32(vec![1, 2]),
        ));
        let opts = XmlWriteOptions {
            emit_type_info: false,
            ..Default::default()
        };
        let xml = to_string_with(&original, &opts).unwrap();
        let back = parse(&xml).unwrap();
        // No arrayType attribute, so items come back as plain elements.
        let root = back.root().unwrap();
        assert!(root.is_component());
        assert_eq!(root.child_elements().count(), 2);
    }

    #[test]
    fn top_level_comments_and_pis_preserved() {
        let doc = parse("<?xml version=\"1.0\"?><!--pre--><r/><?post done?>").unwrap();
        assert_eq!(doc.children.len(), 3);
        assert!(matches!(&doc.children[0], Node::Comment(c) if c == "pre"));
        assert!(matches!(&doc.children[2], Node::Pi { target, .. } if target == "post"));
    }

    /// A corpus of XML documents spanning every content kind the reader
    /// distinguishes: typed leaves and arrays, plain components, mixed
    /// content, namespaces, comments and PIs, CDATA.
    fn corpus() -> Vec<String> {
        let mut docs: Vec<String> = Vec::new();
        for doc in [
            Document::with_root(
                Element::component("d:data")
                    .with_namespace("d", "http://example.org/d")
                    .with_attr("run", "42")
                    .with_child(Element::leaf("d:count", AtomicValue::I32(2)))
                    .with_child(Element::leaf("d:name", AtomicValue::Str("test".into())))
                    .with_child(Element::array(
                        "d:values",
                        ArrayValue::F64(vec![1.0, -2.5, 3.25e-8]),
                    ))
                    .with_child(Element::array("d:index", ArrayValue::I32(vec![7, 8])))
                    .with_comment("tail"),
            ),
            Document::with_root(Element::leaf("b", AtomicValue::Bool(true))),
            Document::with_root(Element::array("v", ArrayValue::U8(vec![1, 255]))),
            Document::with_root(Element::array("v", ArrayValue::F32(vec![0.5, -1.5]))),
            Document::with_root(Element::array("e", ArrayValue::I64(vec![]))),
            Document::with_root(
                Element::component("a:r")
                    .with_namespace("a", "http://a")
                    .with_child(
                        Element::component("b:mid")
                            .with_namespace("b", "http://b")
                            .with_child(Element::leaf("a:deep", AtomicValue::Bool(false))),
                    ),
            ),
        ] {
            docs.push(to_string(&doc).unwrap());
        }
        // Hand-written shapes the writer does not emit.
        docs.push("<a>one <![CDATA[<two>]]> three<!--c--><?p d?></a>".into());
        docs.push("<?xml version=\"1.0\"?><!--pre--><r k=\"v\"><s/> tail</r><?post done?>".into());
        docs.push("<v bx:arrayType=\"xsd:int\">\n  <i>1</i><!-- x -->\n  <i>2</i>\n</v>".into());
        docs.push(r#"<n xsi:type="xsd:string">  spaced  </n>"#.into());
        docs
    }

    /// `parse_into` must be observationally identical to `parse`, both on
    /// a fresh document and on one still holding any *other* corpus
    /// document's tree (the dirty-slot case where shapes diverge).
    #[test]
    fn parse_into_matches_parse_on_corpus() {
        let corpus = corpus();
        let mut recycled = Document::new();
        for (i, xml) in corpus.iter().enumerate() {
            let fresh = parse(xml).unwrap();
            let mut target = Document::new();
            parse_into(xml, &mut target).unwrap();
            assert_eq!(target, fresh, "fresh-target mismatch on corpus[{i}]");
            parse_into(xml, &mut recycled).unwrap();
            assert_eq!(recycled, fresh, "dirty-target mismatch on corpus[{i}]");
        }
    }

    /// Same-shape refill must not reallocate a large array payload: the
    /// array Vec's address is stable across messages.
    #[test]
    fn parse_into_reuses_array_storage() {
        let doc = Document::with_root(Element::array(
            "v",
            ArrayValue::F64((0..512).map(|i| i as f64).collect()),
        ));
        let xml = to_string(&doc).unwrap();
        let mut target = Document::new();
        parse_into(&xml, &mut target).unwrap();
        let ptr = match target.root().unwrap().array_value().unwrap() {
            ArrayValue::F64(v) => v.as_ptr(),
            other => panic!("expected F64 array, got {other:?}"),
        };
        parse_into(&xml, &mut target).unwrap();
        assert_eq!(target, doc);
        let ptr2 = match target.root().unwrap().array_value().unwrap() {
            ArrayValue::F64(v) => v.as_ptr(),
            other => panic!("expected F64 array, got {other:?}"),
        };
        assert_eq!(ptr, ptr2, "same-shape refill must reuse the array buffer");
    }

    /// A failed refill leaves the document in an unspecified-but-valid
    /// state and the next successful parse repairs it completely.
    #[test]
    fn parse_into_recovers_after_error() {
        let doc = Document::with_root(
            Element::component("r")
                .with_child(Element::leaf("n", AtomicValue::I32(7)))
                .with_child(Element::array("v", ArrayValue::F64(vec![1.5, -2.0]))),
        );
        let xml = to_string(&doc).unwrap();
        let mut target = Document::new();
        parse_into(&xml, &mut target).unwrap();
        assert!(parse_into(&xml[..xml.len() / 2], &mut target).is_err());
        parse_into(&xml, &mut target).unwrap();
        assert_eq!(target, doc);
    }
}
