//! Textual XML 1.0 → bXDM.
//!
//! The reader rebuilds the *typed* tree: an element carrying `xsi:type`
//! becomes a LeafElement with a machine-typed value, and an element
//! carrying `bx:arrayType` becomes an ArrayElement with its items parsed
//! out of the per-item children. This is the schema-less typed recovery
//! the paper requires for transcodability (§4.2: without type information
//! in the serialization "we are not able to create the typed LeafElement
//! in the bXDM model").

use std::borrow::Cow;

use bxdm::{ArrayValue, Attribute, AtomicValue, Document, Element, NamespaceDecl, Node, QName};
use xbs::TypeCode;

use crate::error::{XmlError, XmlResult};
use crate::lexer::{Lexer, Token};
use crate::num;

/// Parsing options.
#[derive(Debug, Clone)]
pub struct XmlReadOptions {
    /// Drop text nodes that consist entirely of whitespace (pretty-printed
    /// input). Leaf/array recovery is unaffected.
    pub trim_whitespace_text: bool,
    /// Recognize `xsi:type` and `bx:arrayType` and rebuild typed nodes.
    /// When off, everything parses as component elements with text.
    pub typed_recovery: bool,
}

impl Default for XmlReadOptions {
    fn default() -> XmlReadOptions {
        XmlReadOptions {
            trim_whitespace_text: true,
            typed_recovery: true,
        }
    }
}

/// Parse a complete XML document with default options.
pub fn parse(input: &str) -> XmlResult<Document> {
    parse_with(input, &XmlReadOptions::default())
}

/// Parse a complete XML document.
pub fn parse_with(input: &str, opts: &XmlReadOptions) -> XmlResult<Document> {
    let mut lexer = Lexer::new(input);
    let mut doc = Document::new();
    // Stack of open elements being built.
    let mut stack: Vec<Element> = Vec::new();
    let mut saw_root = false;

    loop {
        let offset = lexer.position();
        match lexer.next_token()? {
            Token::Eof => break,
            Token::Decl => {
                if saw_root || !stack.is_empty() {
                    return Err(XmlError::Structure {
                        what: "XML declaration not at document start".into(),
                    });
                }
            }
            Token::StartTag {
                name,
                attrs,
                self_closing,
            } => {
                if stack.is_empty() && saw_root {
                    return Err(XmlError::Structure {
                        what: "multiple root elements".into(),
                    });
                }
                let element = build_open_element(name, attrs);
                if self_closing {
                    finish_element(element, &mut stack, &mut doc, &mut saw_root, opts)?;
                } else {
                    stack.push(element);
                }
            }
            Token::EndTag { name } => {
                let open = stack.pop().ok_or(XmlError::Structure {
                    what: format!("close tag </{name}> with no open element"),
                })?;
                if open.name.lexical() != name {
                    return Err(XmlError::MismatchedTag {
                        offset,
                        expected: open.name.lexical(),
                        found: name.to_owned(),
                    });
                }
                finish_element(open, &mut stack, &mut doc, &mut saw_root, opts)?;
            }
            Token::Text(text) => {
                // Whitespace-only text is dropped (pretty-printing),
                // except inside an element that declares xsi:type — a
                // typed string's lexical content is significant even when
                // it is all spaces.
                let keep = !opts.trim_whitespace_text
                    || !text.trim().is_empty()
                    || stack.last().is_some_and(|open| {
                        open.attributes
                            .iter()
                            .any(|a| a.name.prefix() == Some("xsi") && a.name.local() == "type")
                    });
                match stack.last_mut() {
                    Some(open) => {
                        if keep {
                            push_text(open, text);
                        }
                    }
                    None => {
                        if !text.trim().is_empty() {
                            return Err(XmlError::Structure {
                                what: "character data outside the root element".into(),
                            });
                        }
                    }
                }
            }
            Token::CData(text) => match stack.last_mut() {
                Some(open) => push_text(open, Cow::Borrowed(text)),
                None => {
                    return Err(XmlError::Structure {
                        what: "CDATA outside the root element".into(),
                    })
                }
            },
            Token::Comment(c) => {
                let node = Node::Comment(c.to_owned());
                match stack.last_mut() {
                    Some(open) => open.children_mut().push(node),
                    None => doc.children.push(node),
                }
            }
            Token::Pi { target, data } => {
                let node = Node::Pi {
                    target: target.to_owned(),
                    data: data.to_owned(),
                };
                match stack.last_mut() {
                    Some(open) => open.children_mut().push(node),
                    None => doc.children.push(node),
                }
            }
        }
    }

    if let Some(open) = stack.last() {
        return Err(XmlError::UnexpectedEof {
            what: format!("element <{}> never closed", open.name.lexical()),
        });
    }
    if !saw_root {
        return Err(XmlError::Structure {
            what: "document has no root element".into(),
        });
    }
    Ok(doc)
}

/// Split raw attributes into namespace declarations and ordinary
/// attributes, producing an open (component) element.
fn build_open_element(name: &str, attrs: Vec<(&str, Cow<'_, str>)>) -> Element {
    let mut element = Element::component(name);
    for (raw_name, value) in attrs {
        if raw_name == "xmlns" {
            element.namespaces.push(NamespaceDecl {
                prefix: None,
                uri: value.into_owned(),
            });
        } else if let Some(prefix) = raw_name.strip_prefix("xmlns:") {
            element.namespaces.push(NamespaceDecl {
                prefix: Some(prefix.to_owned()),
                uri: value.into_owned(),
            });
        } else {
            element.attributes.push(Attribute {
                name: QName::parse(raw_name),
                value: AtomicValue::Str(value.into_owned()),
            });
        }
    }
    element
}

fn push_text(open: &mut Element, text: Cow<'_, str>) {
    // Merge adjacent text (CDATA next to character data).
    if let Some(Node::Text(prev)) = open.children_mut().last_mut() {
        prev.push_str(&text);
        return;
    }
    open.children_mut().push(Node::Text(text.into_owned()));
}

/// Apply typed recovery and attach the finished element to its parent (or
/// the document).
fn finish_element(
    mut element: Element,
    stack: &mut [Element],
    doc: &mut Document,
    saw_root: &mut bool,
    opts: &XmlReadOptions,
) -> XmlResult<()> {
    if opts.typed_recovery {
        element = recover_types(element)?;
    }
    match stack.last_mut() {
        Some(parent) => parent.children_mut().push(Node::Element(element)),
        None => {
            doc.children.push(Node::Element(element));
            *saw_root = true;
        }
    }
    Ok(())
}

/// Find and remove an attribute by (prefix, local) pair; returns its value.
fn take_attr(element: &mut Element, prefix: &str, local: &str) -> Option<String> {
    let idx = element
        .attributes
        .iter()
        .position(|a| a.name.prefix() == Some(prefix) && a.name.local() == local)?;
    let attr = element.attributes.remove(idx);
    match attr.value {
        AtomicValue::Str(s) => Some(s),
        other => Some(other.lexical()),
    }
}

/// The full text content of `element` when it is a single text node (or
/// empty), borrowed — the common shape for leaf and array-item elements.
/// Mixed or multi-node content falls back to the allocating
/// [`Element::text_content`] join.
fn single_text(element: &Element) -> Option<&str> {
    match element.children() {
        [] => Some(""),
        [Node::Text(t)] => Some(t),
        _ => None,
    }
}

/// Append one array item given its lexical text.
///
/// Numeric variants go through the from-scratch kernels in [`crate::num`]
/// first; anything the kernels decline (overflow, unusual spellings such
/// as a `+` sign on an unsigned value) falls back to
/// [`ArrayValue::push_lexical`], which also produces the canonical
/// [`XmlError::BadTypedValue`] for genuinely bad items.
fn push_array_item(array: &mut ArrayValue, text: &str) -> XmlResult<()> {
    fn via<T>(parsed: Option<T>, out: &mut Vec<T>) -> bool {
        match parsed {
            Some(v) => {
                out.push(v);
                true
            }
            None => false,
        }
    }
    let t = text.trim();
    let fast = match array {
        ArrayValue::I8(v) => via(num::parse_i64(t).and_then(|x| i8::try_from(x).ok()), v),
        ArrayValue::U8(v) => via(num::parse_u64(t).and_then(|x| u8::try_from(x).ok()), v),
        ArrayValue::I16(v) => via(num::parse_i64(t).and_then(|x| i16::try_from(x).ok()), v),
        ArrayValue::U16(v) => via(num::parse_u64(t).and_then(|x| u16::try_from(x).ok()), v),
        ArrayValue::I32(v) => via(num::parse_i64(t).and_then(|x| i32::try_from(x).ok()), v),
        ArrayValue::U32(v) => via(num::parse_u64(t).and_then(|x| u32::try_from(x).ok()), v),
        ArrayValue::I64(v) => via(num::parse_i64(t), v),
        ArrayValue::U64(v) => via(num::parse_u64(t), v),
        ArrayValue::F64(v) => via(num::parse_f64_lexical(t), v),
        // f32 must round exactly once from the decimal string; routing it
        // through the f64 kernel would double-round, so it stays on std.
        ArrayValue::F32(_) => false,
    };
    if !fast {
        array
            .push_lexical(text)
            .map_err(|e| XmlError::BadTypedValue { what: e.to_string() })?;
    }
    Ok(())
}

fn recover_types(mut element: Element) -> XmlResult<Element> {
    if let Some(type_name) = take_attr(&mut element, "xsi", "type") {
        let code = TypeCode::from_xsd_name(&type_name).ok_or_else(|| XmlError::BadTypedValue {
            what: format!("unknown xsi:type {type_name:?}"),
        })?;
        let value = match single_text(&element) {
            Some(text) => AtomicValue::parse_as(code, text),
            None => AtomicValue::parse_as(code, &element.text_content()),
        }
        .map_err(|e| XmlError::BadTypedValue {
            what: e.to_string(),
        })?;
        element.content = bxdm::Content::Leaf(value);
        return Ok(element);
    }
    if let Some(type_name) = take_attr(&mut element, "bx", "arrayType") {
        let code = TypeCode::from_xsd_name(&type_name).ok_or_else(|| XmlError::BadTypedValue {
            what: format!("unknown bx:arrayType {type_name:?}"),
        })?;
        let mut array = ArrayValue::empty_of(code).ok_or_else(|| XmlError::BadTypedValue {
            what: format!("{type_name:?} is not a valid array element type"),
        })?;
        for child in element.children() {
            match child {
                Node::Element(item) => match single_text(item) {
                    Some(text) => push_array_item(&mut array, text)?,
                    None => push_array_item(&mut array, &item.text_content())?,
                },
                Node::Text(t) if t.trim().is_empty() => {}
                Node::Comment(_) | Node::Pi { .. } => {}
                Node::Text(t) => {
                    return Err(XmlError::BadTypedValue {
                        what: format!("unexpected text {t:?} inside array element"),
                    })
                }
            }
        }
        element.content = bxdm::Content::Array(array);
        return Ok(element);
    }
    Ok(element)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{to_string, to_string_with, XmlWriteOptions};

    #[test]
    fn simple_tree() {
        let doc = parse("<a><b k=\"1\">hi</b><c/></a>").unwrap();
        let root = doc.root().unwrap();
        assert_eq!(root.name.local(), "a");
        let b = root.find_child("b").unwrap();
        assert_eq!(b.attribute("k").unwrap().value.as_str(), Some("1"));
        assert_eq!(b.text_content(), "hi");
        assert!(root.find_child("c").unwrap().children().is_empty());
    }

    #[test]
    fn namespace_declarations_split_out() {
        let doc =
            parse(r#"<s:e xmlns:s="http://s" xmlns="http://d" a="1"/>"#).unwrap();
        let root = doc.root().unwrap();
        assert_eq!(root.namespaces.len(), 2);
        assert_eq!(root.namespaces[0].prefix.as_deref(), Some("s"));
        assert_eq!(root.namespaces[1].prefix, None);
        assert_eq!(root.attributes.len(), 1);
    }

    #[test]
    fn leaf_recovery() {
        let doc = parse(r#"<n xsi:type="xsd:double">2.5</n>"#).unwrap();
        let root = doc.root().unwrap();
        assert_eq!(root.leaf_value(), Some(&AtomicValue::F64(2.5)));
        // The xsi:type attribute is consumed by recovery.
        assert!(root.attributes.is_empty());
    }

    #[test]
    fn array_recovery() {
        let doc = parse(
            r#"<v bx:arrayType="xsd:int"><item>1</item><item>-2</item><item>3</item></v>"#,
        )
        .unwrap();
        let root = doc.root().unwrap();
        assert_eq!(root.as_i32_array(), Some(&[1, -2, 3][..]));
    }

    #[test]
    fn array_recovery_tolerates_whitespace_and_comments() {
        let doc = parse(
            "<v bx:arrayType=\"xsd:int\">\n  <i>1</i><!-- x -->\n  <i>2</i>\n</v>",
        )
        .unwrap();
        assert_eq!(doc.root().unwrap().as_i32_array(), Some(&[1, 2][..]));
    }

    #[test]
    fn typed_recovery_can_be_disabled() {
        let opts = XmlReadOptions {
            typed_recovery: false,
            ..Default::default()
        };
        let doc = parse_with(r#"<n xsi:type="xsd:int">5</n>"#, &opts).unwrap();
        let root = doc.root().unwrap();
        assert!(root.is_component());
        assert!(root.attribute("xsi:type").is_some());
    }

    #[test]
    fn bad_typed_values_error() {
        assert!(matches!(
            parse(r#"<n xsi:type="xsd:int">oops</n>"#),
            Err(XmlError::BadTypedValue { .. })
        ));
        assert!(matches!(
            parse(r#"<n xsi:type="xsd:unknown">1</n>"#),
            Err(XmlError::BadTypedValue { .. })
        ));
        assert!(matches!(
            parse(r#"<v bx:arrayType="xsd:int">loose text</v>"#),
            Err(XmlError::BadTypedValue { .. })
        ));
    }

    #[test]
    fn structure_errors() {
        assert!(parse("").is_err());
        assert!(parse("just text").is_err());
        assert!(parse("<a></b>").is_err());
        assert!(parse("<a>").is_err());
        assert!(parse("<a/><b/>").is_err());
        assert!(parse("</a>").is_err());
    }

    #[test]
    fn mismatched_tag_reports_names() {
        match parse("<outer><inner></outer></inner>") {
            Err(XmlError::MismatchedTag { expected, found, .. }) => {
                assert_eq!(expected, "inner");
                assert_eq!(found, "outer");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cdata_merges_with_text() {
        let doc = parse("<a>one <![CDATA[<two>]]> three</a>").unwrap();
        assert_eq!(doc.root().unwrap().text_content(), "one <two> three");
    }

    #[test]
    fn whitespace_trimming_default() {
        let doc = parse("<a>\n  <b/>\n</a>").unwrap();
        assert_eq!(doc.root().unwrap().children().len(), 1);
        let opts = XmlReadOptions {
            trim_whitespace_text: false,
            ..Default::default()
        };
        let doc = parse_with("<a>\n  <b/>\n</a>", &opts).unwrap();
        assert_eq!(doc.root().unwrap().children().len(), 3);
    }

    #[test]
    fn full_roundtrip_typed_document() {
        let original = Document::with_root(
            Element::component("d:data")
                .with_namespace("d", "http://example.org/d")
                .with_attr("run", "42")
                .with_child(Element::leaf("d:count", AtomicValue::I32(2)))
                .with_child(Element::leaf("d:name", AtomicValue::Str("test".into())))
                .with_child(Element::array(
                    "d:values",
                    ArrayValue::F64(vec![1.0, -2.5, 3.25e-8]),
                ))
                .with_child(Element::array("d:index", ArrayValue::I32(vec![7, 8])))
                .with_comment("tail"),
        );
        let xml = to_string(&original).unwrap();
        let back = parse(&xml).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn roundtrip_without_type_info_degrades_gracefully() {
        let original = Document::with_root(Element::array(
            "v",
            ArrayValue::I32(vec![1, 2]),
        ));
        let opts = XmlWriteOptions {
            emit_type_info: false,
            ..Default::default()
        };
        let xml = to_string_with(&original, &opts).unwrap();
        let back = parse(&xml).unwrap();
        // No arrayType attribute, so items come back as plain elements.
        let root = back.root().unwrap();
        assert!(root.is_component());
        assert_eq!(root.child_elements().count(), 2);
    }

    #[test]
    fn top_level_comments_and_pis_preserved() {
        let doc = parse("<?xml version=\"1.0\"?><!--pre--><r/><?post done?>").unwrap();
        assert_eq!(doc.children.len(), 3);
        assert!(matches!(&doc.children[0], Node::Comment(c) if c == "pre"));
        assert!(matches!(&doc.children[2], Node::Pi { target, .. } if target == "post"));
    }
}
