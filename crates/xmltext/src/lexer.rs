//! A pull tokenizer for XML 1.0.
//!
//! Produces a flat token stream; tree building and namespace handling
//! live in [`crate::reader`]. The subset implemented is what SOAP
//! toolkits of the paper's era actually exchanged: elements, attributes,
//! character data, CDATA, comments, processing instructions and the XML
//! declaration. DTDs with internal subsets are rejected (SOAP forbids
//! DTDs anyway).

use std::borrow::Cow;

use crate::error::{XmlError, XmlResult};
use crate::escape::unescape;

/// One lexical event.
///
/// Text and attribute values borrow from the input unless they contained
/// entity references that had to be decoded, so tokenizing typical
/// machine-generated markup allocates only for the attribute `Vec`.
/// (The streaming reader avoids even that by pulling [`Event`]s and
/// draining attributes one at a time with [`Lexer::next_attr`].)
#[derive(Debug, Clone, PartialEq)]
pub enum Token<'a> {
    /// `<?xml version="1.0"?>` — contents are not interpreted.
    Decl,
    /// An opening tag with its (name, unescaped value) attributes.
    StartTag {
        name: &'a str,
        attrs: Vec<(&'a str, Cow<'a, str>)>,
        self_closing: bool,
    },
    /// A closing tag.
    EndTag { name: &'a str },
    /// Character data with entities resolved. Adjacent CDATA is merged by
    /// the reader, not the lexer.
    Text(Cow<'a, str>),
    /// A `<![CDATA[...]]>` section (verbatim).
    CData(&'a str),
    /// A comment (without the `<!--`/`-->` markers).
    Comment(&'a str),
    /// A processing instruction.
    Pi { target: &'a str, data: &'a str },
    /// End of input.
    Eof,
}

/// One *incremental* lexical event, pulled with [`Lexer::next_event`].
///
/// Identical to [`Token`] except that a start tag stops after the tag
/// name: the caller must then drain the attributes with
/// [`Lexer::next_attr`] until it returns [`AttrEvent::TagEnd`] before
/// pulling the next event. Splitting the tag this way lets the streaming
/// reader consume attributes without ever materializing a `Vec` for
/// them — the allocation-free half of the decode fast path.
#[derive(Debug, Clone, PartialEq)]
pub enum Event<'a> {
    /// `<?xml version="1.0"?>` — contents are not interpreted.
    Decl,
    /// An opening tag name; attributes follow via [`Lexer::next_attr`].
    StartTagOpen { name: &'a str },
    /// A closing tag.
    EndTag { name: &'a str },
    /// Character data with entities resolved.
    Text(Cow<'a, str>),
    /// A `<![CDATA[...]]>` section (verbatim).
    CData(&'a str),
    /// A comment (without the `<!--`/`-->` markers).
    Comment(&'a str),
    /// A processing instruction.
    Pi { target: &'a str, data: &'a str },
    /// End of input.
    Eof,
}

/// One step of incremental attribute lexing (see [`Event::StartTagOpen`]).
#[derive(Debug, Clone, PartialEq)]
pub enum AttrEvent<'a> {
    /// An attribute: raw name (possibly prefixed), unescaped value.
    Attr(&'a str, Cow<'a, str>),
    /// The tag closed with `>` (or `/>` when `self_closing`).
    TagEnd { self_closing: bool },
}

/// The tokenizer.
pub struct Lexer<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Tokenize `input` from the beginning.
    pub fn new(input: &'a str) -> Lexer<'a> {
        Lexer { input, pos: 0 }
    }

    /// Current byte offset (for error reporting and tests).
    pub fn position(&self) -> usize {
        self.pos
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn eof_err(&self, what: &str) -> XmlError {
        XmlError::UnexpectedEof { what: what.into() }
    }

    fn malformed(&self, what: impl Into<String>) -> XmlError {
        XmlError::Malformed {
            offset: self.pos,
            what: what.into(),
        }
    }

    /// Fast path for typed array bodies: if the cursor sits on a plain
    /// `<tag>text</tag>` item — no attributes, entities, nested markup,
    /// or self-closing form — consume it and return the raw text. Any
    /// other shape leaves the cursor untouched and returns `None`, so
    /// callers fall back to the event machinery. Leading inter-item
    /// whitespace is consumed only on a match.
    pub(crate) fn next_simple_item(&mut self) -> Option<&'a str> {
        let b = self.input.as_bytes();
        let mut i = self.pos;
        while i < b.len() && b[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= b.len() || b[i] != b'<' {
            return None;
        }
        // Tag name: anything up to '>' that can't be an end tag, a
        // declaration, an attribute list, or a self-closing tag.
        let name_start = i + 1;
        let mut j = name_start;
        while j < b.len() && b[j] != b'>' {
            match b[j] {
                b'/' | b'!' | b'?' | b'=' | b'"' | b'\'' => return None,
                c if c.is_ascii_whitespace() => return None,
                _ => j += 1,
            }
        }
        if j >= b.len() || j == name_start {
            return None;
        }
        let name = &self.input[name_start..j];
        // Text: up to '<', rejecting entities (they need unescaping).
        let text_start = j + 1;
        let mut k = text_start;
        while k < b.len() && b[k] != b'<' {
            if b[k] == b'&' {
                return None;
            }
            k += 1;
        }
        // Matching end tag, byte for byte.
        let rest = &b[k..];
        if rest.len() < name.len() + 3
            || rest[0] != b'<'
            || rest[1] != b'/'
            || &rest[2..2 + name.len()] != name.as_bytes()
            || rest[2 + name.len()] != b'>'
        {
            return None;
        }
        self.pos = k + name.len() + 3;
        Some(&self.input[text_start..k])
    }

    /// Pull the next token (start tags arrive with all attributes
    /// collected into a `Vec`).
    pub fn next_token(&mut self) -> XmlResult<Token<'a>> {
        Ok(match self.next_event()? {
            Event::Decl => Token::Decl,
            Event::StartTagOpen { name } => {
                let mut attrs = Vec::new();
                loop {
                    match self.next_attr()? {
                        AttrEvent::Attr(n, v) => attrs.push((n, v)),
                        AttrEvent::TagEnd { self_closing } => {
                            return Ok(Token::StartTag {
                                name,
                                attrs,
                                self_closing,
                            })
                        }
                    }
                }
            }
            Event::EndTag { name } => Token::EndTag { name },
            Event::Text(t) => Token::Text(t),
            Event::CData(t) => Token::CData(t),
            Event::Comment(c) => Token::Comment(c),
            Event::Pi { target, data } => Token::Pi { target, data },
            Event::Eof => Token::Eof,
        })
    }

    /// Pull the next incremental event (see [`Event`] for the contract
    /// around start tags and [`Lexer::next_attr`]).
    pub fn next_event(&mut self) -> XmlResult<Event<'a>> {
        if self.pos >= self.input.len() {
            return Ok(Event::Eof);
        }
        if self.rest().starts_with('<') {
            self.lex_markup()
        } else {
            self.lex_text()
        }
    }

    /// Lex one attribute (or the closing `>`/`/>`) of the start tag
    /// opened by the last [`Event::StartTagOpen`].
    pub fn next_attr(&mut self) -> XmlResult<AttrEvent<'a>> {
        self.skip_ws();
        let rest = self.rest();
        if rest.starts_with("/>") {
            self.pos += 2;
            return Ok(AttrEvent::TagEnd { self_closing: true });
        }
        if rest.starts_with('>') {
            self.pos += 1;
            return Ok(AttrEvent::TagEnd {
                self_closing: false,
            });
        }
        if rest.is_empty() {
            return Err(self.eof_err("unterminated start tag"));
        }
        let attr_name = self.lex_name()?;
        self.skip_ws();
        if !self.rest().starts_with('=') {
            return Err(self.malformed(format!("attribute {attr_name:?} missing '='")));
        }
        self.pos += 1;
        self.skip_ws();
        let value = self.lex_attr_value()?;
        Ok(AttrEvent::Attr(attr_name, value))
    }

    fn lex_text(&mut self) -> XmlResult<Event<'a>> {
        let start = self.pos;
        let raw = match self.rest().find('<') {
            Some(i) => {
                self.pos += i;
                &self.input[start..start + i]
            }
            None => {
                self.pos = self.input.len();
                &self.input[start..]
            }
        };
        Ok(Event::Text(unescape(raw, start)?))
    }

    fn lex_markup(&mut self) -> XmlResult<Event<'a>> {
        let rest = self.rest();
        if let Some(r) = rest.strip_prefix("<!--") {
            let end = r.find("-->").ok_or_else(|| self.eof_err("unterminated comment"))?;
            let body = &self.input[self.pos + 4..self.pos + 4 + end];
            if body.contains("--") {
                return Err(self.malformed("'--' inside comment"));
            }
            self.pos += 4 + end + 3;
            return Ok(Event::Comment(body));
        }
        if let Some(r) = rest.strip_prefix("<![CDATA[") {
            let end = r.find("]]>").ok_or_else(|| self.eof_err("unterminated CDATA"))?;
            let body = &self.input[self.pos + 9..self.pos + 9 + end];
            self.pos += 9 + end + 3;
            return Ok(Event::CData(body));
        }
        if rest.starts_with("<!DOCTYPE") {
            return Err(self.malformed("DOCTYPE is not allowed in SOAP messages"));
        }
        if rest.starts_with("<?") {
            return self.lex_pi();
        }
        if rest.starts_with("</") {
            return self.lex_end_tag();
        }
        // self.input[self.pos] == '<': open the start tag, leaving the
        // attributes for next_attr.
        self.pos += 1;
        let name = self.lex_name()?;
        Ok(Event::StartTagOpen { name })
    }

    fn lex_pi(&mut self) -> XmlResult<Event<'a>> {
        let body_start = self.pos + 2;
        let rest = &self.input[body_start..];
        let end = rest.find("?>").ok_or_else(|| self.eof_err("unterminated processing instruction"))?;
        let body = &self.input[body_start..body_start + end];
        self.pos = body_start + end + 2;
        let (target, data) = match body.find(|c: char| c.is_ascii_whitespace()) {
            Some(i) => (&body[..i], body[i..].trim_start()),
            None => (body, ""),
        };
        if target.is_empty() {
            return Err(self.malformed("processing instruction with empty target"));
        }
        if target.eq_ignore_ascii_case("xml") {
            Ok(Event::Decl)
        } else {
            Ok(Event::Pi { target, data })
        }
    }

    fn lex_end_tag(&mut self) -> XmlResult<Event<'a>> {
        let name_start = self.pos + 2;
        let rest = &self.input[name_start..];
        let end = rest.find('>').ok_or_else(|| self.eof_err("unterminated close tag"))?;
        let name = rest[..end].trim_end();
        if name.is_empty() || name.contains(|c: char| c.is_ascii_whitespace()) {
            return Err(self.malformed(format!("bad close tag name {name:?}")));
        }
        self.pos = name_start + end + 1;
        Ok(Event::EndTag {
            name: &rest[..name.len()],
        })
    }

    fn lex_name(&mut self) -> XmlResult<&'a str> {
        let rest = self.rest();
        let end = rest
            .find(|c: char| c.is_ascii_whitespace() || matches!(c, '>' | '/' | '=' | '<'))
            .unwrap_or(rest.len());
        if end == 0 {
            return Err(self.malformed("expected a name"));
        }
        let name = &rest[..end];
        self.pos += end;
        Ok(name)
    }

    fn lex_attr_value(&mut self) -> XmlResult<Cow<'a, str>> {
        let rest = self.rest();
        let quote = match rest.chars().next() {
            Some(q @ ('"' | '\'')) => q,
            _ => return Err(self.malformed("attribute value must be quoted")),
        };
        let value_start = self.pos + 1;
        let body = &self.input[value_start..];
        let end = body
            .find(quote)
            .ok_or_else(|| self.eof_err("unterminated attribute value"))?;
        let raw = &body[..end];
        if raw.contains('<') {
            return Err(self.malformed("'<' in attribute value"));
        }
        self.pos = value_start + end + 1;
        unescape(raw, value_start)
    }

    fn skip_ws(&mut self) {
        let rest = self.rest();
        let n = rest.len() - rest.trim_start().len();
        self.pos += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_tokens(input: &str) -> Vec<Token<'_>> {
        let mut lx = Lexer::new(input);
        let mut out = Vec::new();
        loop {
            let t = lx.next_token().unwrap();
            let done = t == Token::Eof;
            out.push(t);
            if done {
                break;
            }
        }
        out
    }

    #[test]
    fn simple_element() {
        let toks = all_tokens("<a>hi</a>");
        assert_eq!(
            toks,
            vec![
                Token::StartTag {
                    name: "a",
                    attrs: vec![],
                    self_closing: false
                },
                Token::Text("hi".into()),
                Token::EndTag { name: "a" },
                Token::Eof
            ]
        );
    }

    #[test]
    fn attributes_and_self_closing() {
        let toks = all_tokens(r#"<x a="1" b='two &amp; three'/>"#);
        assert_eq!(
            toks[0],
            Token::StartTag {
                name: "x",
                attrs: vec![("a", "1".into()), ("b", "two & three".into())],
                self_closing: true
            }
        );
    }

    #[test]
    fn declaration_comment_pi_cdata() {
        let toks = all_tokens("<?xml version=\"1.0\"?><!-- c --><?app do it?><![CDATA[<raw>]]>");
        assert_eq!(toks[0], Token::Decl);
        assert_eq!(toks[1], Token::Comment(" c "));
        assert_eq!(
            toks[2],
            Token::Pi {
                target: "app",
                data: "do it"
            }
        );
        assert_eq!(toks[3], Token::CData("<raw>"));
    }

    #[test]
    fn whitespace_inside_tags() {
        let toks = all_tokens("<a  x = \"1\"  ></a >");
        assert_eq!(
            toks[0],
            Token::StartTag {
                name: "a",
                attrs: vec![("x", "1".into())],
                self_closing: false
            }
        );
        assert_eq!(toks[1], Token::EndTag { name: "a" });
    }

    #[test]
    fn errors() {
        assert!(Lexer::new("<a b=1>").next_token().is_err()); // unquoted
        assert!(Lexer::new("<a b=\"x").next_token().is_err()); // unterminated value
        assert!(Lexer::new("<!-- x -- y -->").next_token().is_err()); // -- in comment
        assert!(Lexer::new("<!DOCTYPE html>").next_token().is_err()); // DTD
        assert!(Lexer::new("<a b=\"<\"/>").next_token().is_err()); // < in attr
        assert!(Lexer::new("</ >").next_token().is_err());
        assert!(Lexer::new("<a").next_token().is_err());
    }

    #[test]
    fn prefixed_names_pass_through() {
        let toks = all_tokens("<soap:Envelope xmlns:soap=\"u\"></soap:Envelope>");
        match &toks[0] {
            Token::StartTag { name, attrs, .. } => {
                assert_eq!(*name, "soap:Envelope");
                assert_eq!(attrs[0].0, "xmlns:soap");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn text_entities_decoded() {
        let toks = all_tokens("<a>1 &lt; 2 &amp;&amp; 3 &gt; 2</a>");
        assert_eq!(toks[1], Token::Text("1 < 2 && 3 > 2".into()));
    }
}
