//! Character escaping for XML 1.0 text and attribute values.

use std::borrow::Cow;

use crate::error::{XmlError, XmlResult};

/// Append `text` to `out`, escaping the characters that are markup in
/// element content (`&`, `<`, `>`).
///
/// `>` is only *required* to be escaped in the `]]>` sequence, but
/// escaping it unconditionally is what the major toolkits do and keeps
/// output canonical.
pub fn escape_text(text: &str, out: &mut String) {
    // Fast path: no markup characters at all (the common case for
    // numeric lexical forms — this matters in the XML encoding hot loop).
    if !text.bytes().any(|b| matches!(b, b'&' | b'<' | b'>')) {
        out.push_str(text);
        return;
    }
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
}

/// Append `value` to `out`, escaping for a double-quoted attribute value.
pub fn escape_attr(value: &str, out: &mut String) {
    if !value
        .bytes()
        .any(|b| matches!(b, b'&' | b'<' | b'>' | b'"' | b'\n' | b'\t' | b'\r'))
    {
        out.push_str(value);
        return;
    }
    for c in value.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            // Whitespace must be character-referenced to survive
            // attribute-value normalization.
            '\n' => out.push_str("&#10;"),
            '\t' => out.push_str("&#9;"),
            '\r' => out.push_str("&#13;"),
            _ => out.push(c),
        }
    }
}

/// Decode entity and character references in `raw` (text or attribute
/// content, already free of `<`).
///
/// Borrows the input when it contains no references at all — the common
/// case for machine-generated markup — so tokenizing plain text costs no
/// allocation.
pub fn unescape(raw: &str, base_offset: usize) -> XmlResult<Cow<'_, str>> {
    if !raw.contains('&') {
        return Ok(Cow::Borrowed(raw));
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    let mut offset = base_offset;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let after = &rest[amp + 1..];
        let semi = after.find(';').ok_or(XmlError::BadEntity {
            offset: offset + amp,
            entity: after.chars().take(8).collect(),
        })?;
        let name = &after[..semi];
        match name {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if name.starts_with("#x") || name.starts_with("#X") => {
                let cp = u32::from_str_radix(&name[2..], 16).ok();
                out.push(decode_codepoint(cp, offset + amp, name)?);
            }
            _ if name.starts_with('#') => {
                let cp = name[1..].parse::<u32>().ok();
                out.push(decode_codepoint(cp, offset + amp, name)?);
            }
            _ => {
                return Err(XmlError::BadEntity {
                    offset: offset + amp,
                    entity: name.to_owned(),
                })
            }
        }
        offset += amp + 1 + semi + 1;
        rest = &after[semi + 1..];
    }
    out.push_str(rest);
    Ok(Cow::Owned(out))
}

fn decode_codepoint(cp: Option<u32>, offset: usize, name: &str) -> XmlResult<char> {
    cp.and_then(char::from_u32).ok_or(XmlError::BadEntity {
        offset,
        entity: name.to_owned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn esc_text(s: &str) -> String {
        let mut out = String::new();
        escape_text(s, &mut out);
        out
    }

    fn esc_attr(s: &str) -> String {
        let mut out = String::new();
        escape_attr(s, &mut out);
        out
    }

    #[test]
    fn text_escaping() {
        assert_eq!(esc_text("a<b&c>d"), "a&lt;b&amp;c&gt;d");
        assert_eq!(esc_text("plain"), "plain");
        assert_eq!(esc_text("1.5e-3"), "1.5e-3");
    }

    #[test]
    fn attr_escaping() {
        assert_eq!(esc_attr(r#"say "hi"<&"#), "say &quot;hi&quot;&lt;&amp;");
        assert_eq!(esc_attr("line\nbreak\tand\r"), "line&#10;break&#9;and&#13;");
    }

    #[test]
    fn unescape_known_entities() {
        assert_eq!(
            unescape("a&lt;b&amp;c&gt;d&quot;e&apos;f", 0).unwrap(),
            "a<b&c>d\"e'f"
        );
    }

    #[test]
    fn unescape_char_refs() {
        assert_eq!(unescape("&#65;&#x42;&#x63;", 0).unwrap(), "ABc");
        assert_eq!(unescape("&#x1F600;", 0).unwrap(), "\u{1F600}");
    }

    #[test]
    fn unescape_rejects_unknown() {
        assert!(matches!(
            unescape("&nbsp;", 4),
            Err(XmlError::BadEntity { offset: 4, .. })
        ));
        assert!(unescape("&#xD800;", 0).is_err()); // surrogate
        assert!(unescape("a&b", 0).is_err()); // missing semicolon
    }

    proptest! {
        #[test]
        fn text_escape_roundtrip(s in "\\PC*") {
            let escaped = esc_text(&s);
            prop_assert_eq!(unescape(&escaped, 0).unwrap(), s);
        }

        #[test]
        fn attr_escape_roundtrip(s in "\\PC*") {
            let escaped = esc_attr(&s);
            prop_assert_eq!(unescape(&escaped, 0).unwrap(), s);
        }
    }
}
