//! The simulated GridFTP session.

use netsim::{AuthModel, NetworkProfile, SimTime, StripedTransfer, TcpFlow};

/// Configuration of a GridFTP session.
#[derive(Debug, Clone, Copy)]
pub struct GridFtpConfig {
    /// Number of parallel data streams (`-p` in globus-url-copy).
    pub streams: u32,
    /// Authentication model for the control channel.
    pub auth: AuthModel,
    /// Control-channel command/reply exchanges per retrieval
    /// (USER/PASS-equivalent already inside auth; SIZE, PASV/SPAS, RETR,
    /// and the final 226 — four round trips).
    pub control_exchanges: u32,
}

impl GridFtpConfig {
    /// GT4 defaults with GSI security and `streams` parallel channels.
    pub fn gsi_default(streams: u32) -> GridFtpConfig {
        GridFtpConfig {
            streams,
            auth: AuthModel::gsi(),
            control_exchanges: 4,
        }
    }
}

/// Per-phase breakdown of a simulated fetch.
#[derive(Debug, Clone, Copy)]
pub struct FetchBreakdown {
    /// Control-channel TCP connect.
    pub connect: SimTime,
    /// GSI authentication handshake.
    pub auth: SimTime,
    /// Control commands (SIZE/PASV/RETR/226).
    pub control: SimTime,
    /// Parallel data-channel establishment.
    pub data_setup: SimTime,
    /// The striped payload transfer (reassembly included).
    pub transfer: SimTime,
    /// Server-side file read from disk.
    pub disk: SimTime,
    /// Out-of-order blocks observed at the receiver.
    pub out_of_order_blocks: usize,
}

impl FetchBreakdown {
    /// End-to-end fetch duration.
    pub fn total(&self) -> SimTime {
        self.connect + self.auth + self.control + self.data_setup + self.transfer + self.disk
    }
}

/// A simulated GridFTP session against a network profile.
#[derive(Debug, Clone, Copy)]
pub struct GridFtpSession {
    config: GridFtpConfig,
    profile: NetworkProfile,
}

impl GridFtpSession {
    /// A session with the given configuration over the given network.
    pub fn new(config: GridFtpConfig, profile: NetworkProfile) -> GridFtpSession {
        GridFtpSession { config, profile }
    }

    /// Simulate fetching a `bytes`-long file; phase breakdown.
    pub fn fetch_breakdown(&self, bytes: usize) -> FetchBreakdown {
        let tcp = TcpFlow::new(self.profile.tcp());
        let rtt = self.profile.rtt;

        let connect = tcp.connect_duration();
        let auth = self.config.auth.handshake_duration(rtt);
        let control = SimTime::from_nanos(rtt.as_nanos() * self.config.control_exchanges as u64);
        // Data channels open concurrently: one handshake RTT total.
        let data_setup = tcp.connect_duration();
        // The sender reads the file from disk before/while streaming; the
        // read is charged up front (2006-era servers without readahead
        // overlap credit — conservative for both compared schemes).
        let disk = self.profile.disk.read_duration(bytes);
        let outcome = StripedTransfer::new(self.profile.striped(self.config.streams)).transfer(bytes);

        FetchBreakdown {
            connect,
            auth,
            control,
            data_setup,
            transfer: outcome.duration,
            disk,
            out_of_order_blocks: outcome.out_of_order_blocks,
        }
    }

    /// Simulate fetching a file; end-to-end duration only.
    pub fn fetch_duration(&self, bytes: usize) -> SimTime {
        self.fetch_breakdown(bytes).total()
    }

    /// The session's stream count.
    pub fn streams(&self) -> u32 {
        self.config.streams
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_sums_to_total() {
        let s = GridFtpSession::new(GridFtpConfig::gsi_default(4), NetworkProfile::wan());
        let b = s.fetch_breakdown(1 << 20);
        assert_eq!(
            b.total(),
            b.connect + b.auth + b.control + b.data_setup + b.transfer + b.disk
        );
    }

    #[test]
    fn control_costs_scale_with_rtt() {
        let lan = GridFtpSession::new(GridFtpConfig::gsi_default(1), NetworkProfile::lan());
        let wan = GridFtpSession::new(GridFtpConfig::gsi_default(1), NetworkProfile::wan());
        assert!(wan.fetch_breakdown(0).control > lan.fetch_breakdown(0).control);
    }

    #[test]
    fn deterministic() {
        let s = GridFtpSession::new(GridFtpConfig::gsi_default(8), NetworkProfile::wan());
        assert_eq!(s.fetch_duration(5 << 20), s.fetch_duration(5 << 20));
    }

    #[test]
    fn duration_monotone_in_size() {
        let s = GridFtpSession::new(GridFtpConfig::gsi_default(4), NetworkProfile::lan());
        let mut last = SimTime::ZERO;
        for bytes in [0usize, 1 << 10, 1 << 16, 1 << 22, 1 << 25] {
            let t = s.fetch_duration(bytes);
            assert!(t > last);
            last = t;
        }
    }
}
