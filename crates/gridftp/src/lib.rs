//! # gridftp — a simulated GridFTP client/server pair
//!
//! The paper's separated scheme can stage its netCDF files over GridFTP
//! (Globus GT4). Since the real GT4 stack is neither available nor
//! desirable here, this crate models the *performance-relevant* behaviour
//! of a GridFTP session on top of the `netsim` substrate:
//!
//! * a **control channel** (TCP connect + GSI authentication — the
//!   multi-round-trip handshake and RSA work that dominate small
//!   transfers, Figure 4);
//! * **data channel setup** (`n` parallel TCP connections, opened
//!   concurrently: one extra RTT regardless of `n`);
//! * the **striped transfer** itself (per-stream window ceilings,
//!   out-of-order reassembly at the receiver — `netsim::striped`);
//! * per-command control exchanges (`SIZE`, `RETR`, `226 Transfer
//!   complete`) each costing a round trip.
//!
//! The result is a virtual-time duration for "fetch this file with `n`
//! streams", used by the Figure 4–6 harnesses.

pub mod session;

pub use session::{FetchBreakdown, GridFtpConfig, GridFtpSession};

#[cfg(test)]
mod shape_tests {
    use super::*;
    use netsim::NetworkProfile;

    #[test]
    fn auth_dominates_small_fetches() {
        let lan = NetworkProfile::lan();
        let session = GridFtpSession::new(GridFtpConfig::gsi_default(1), lan);
        let b = session.fetch_breakdown(1000);
        assert!(
            b.auth.as_nanos() > b.transfer.as_nanos() * 10,
            "auth {} should dwarf transfer {} for a 1 KB file",
            b.auth,
            b.transfer
        );
    }

    #[test]
    fn auth_amortizes_for_large_fetches() {
        let lan = NetworkProfile::lan();
        let session = GridFtpSession::new(GridFtpConfig::gsi_default(1), lan);
        let b = session.fetch_breakdown(64 << 20);
        assert!(b.transfer.as_nanos() > b.auth.as_nanos() * 20);
    }

    #[test]
    fn wan_prefers_more_streams_lan_does_not() {
        let bytes = 32 << 20;
        let wan = NetworkProfile::wan();
        let w1 = GridFtpSession::new(GridFtpConfig::gsi_default(1), wan).fetch_duration(bytes);
        let w16 = GridFtpSession::new(GridFtpConfig::gsi_default(16), wan).fetch_duration(bytes);
        assert!(w16 < w1, "WAN: 16 streams {w16} should beat 1 {w1}");

        let lan = NetworkProfile::lan();
        let l1 = GridFtpSession::new(GridFtpConfig::gsi_default(1), lan).fetch_duration(bytes);
        let l16 = GridFtpSession::new(GridFtpConfig::gsi_default(16), lan).fetch_duration(bytes);
        assert!(l16 >= l1, "LAN: parallelism should not help ({l16} vs {l1})");
    }
}
