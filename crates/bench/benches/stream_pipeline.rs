//! Streamed vs buffered round-trip throughput over live HTTP sockets.
//!
//! One client, one `HttpSoapServer`, loopback TCP. The *buffered* rows
//! carry the whole payload as one envelope (one `Content-Length` body
//! each way, everything resident at once at every node); the *streamed*
//! rows carry the same f64 payload as chunked parts of ~128 KiB through
//! `SoapEngine::call_streaming`, O(window) resident. Wall-clock covers
//! the full round trip: encode, wire, server fold, reply, decode.
//!
//! Emits the same machine-readable `BENCH {json}` lines as the
//! criterion shims so `grep '^BENCH '` collects a report; medians are
//! recorded per-PR in BENCH_PR9.json, where the buffered/streamed
//! crossover is identified.

use std::sync::Arc;
use std::time::Instant;

use bxdm::{ArrayValue, AtomicValue, Element};
use soap::{
    BxsaEncoding, CallOptions, HttpBinding, HttpSoapServer, ServiceRegistry, SoapEngine,
    SoapEnvelope, SoapError, SoapResult, SoapService, StreamOp,
};

/// f64 values per streamed part: ~128 KiB encoded, the streaming window.
const PART_LEN: usize = 16 * 1024;

/// Payload sizes in (decimal) bytes of raw f64 data. The sub-MB rows
/// bracket the buffered/streamed crossover; 256 MB stays under the
/// server's 256 MiB buffered-body cap, so the buffered lane is
/// exercised rather than rejected — the cap itself is the next reason
/// the streamed lane exists.
const SIZES: &[(&str, usize)] = &[
    ("64KB", 64_000),
    ("256KB", 256_000),
    ("1MB", 1_000_000),
    ("16MB", 16_000_000),
    ("256MB", 256_000_000),
];

#[derive(Default)]
struct SumOp {
    sum: f64,
}

impl StreamOp for SumOp {
    fn start(&mut self, _manifest: &SoapEnvelope) -> SoapResult<()> {
        Ok(())
    }

    fn on_part(&mut self, part: &Element) -> SoapResult<()> {
        let xs = part
            .as_f64_array()
            .ok_or_else(|| SoapError::Protocol("batch is not an f64 array".into()))?;
        self.sum += xs.iter().sum::<f64>();
        Ok(())
    }

    fn finish(&mut self) -> SoapResult<SoapEnvelope> {
        Ok(SoapEnvelope::with_body(
            Element::component("SumResponse")
                .with_child(Element::leaf("sum", AtomicValue::F64(self.sum))),
        ))
    }

    fn next_part(&mut self, _slot: &mut Element) -> SoapResult<bool> {
        Ok(false)
    }
}

fn serve() -> HttpSoapServer {
    // The same operation both ways: "Sum" on the buffered registry for
    // Content-Length requests, "Sum" as a streamed op for chunked ones.
    let registry = Arc::new(ServiceRegistry::new().with_operation("Sum", |req| {
        let sum: f64 = req
            .body_element()
            .and_then(|e| e.find_child("values"))
            .and_then(Element::as_f64_array)
            .map(|xs| xs.iter().sum())
            .unwrap_or(0.0);
        Ok(SoapEnvelope::with_body(
            Element::component("SumResponse")
                .with_child(Element::leaf("sum", AtomicValue::F64(sum))),
        ))
    }));
    let mut service = SoapService::new(BxsaEncoding::default(), registry);
    service.register_streaming("Sum", || Box::<SumOp>::default());
    HttpSoapServer::bind_service_with(
        "127.0.0.1:0",
        "/soap",
        transport::HttpServerConfig::default(),
        service,
    )
    .expect("bind")
}

fn buffered_round_trip(engine: &mut SoapEngine<BxsaEncoding, HttpBinding>, values: &[f64]) -> f64 {
    let request = SoapEnvelope::with_body(
        Element::component("Sum")
            .with_child(Element::array("values", ArrayValue::F64(values.to_vec()))),
    );
    let resp = engine
        .call_with(request, &CallOptions::new())
        .expect("buffered call");
    resp.body_element()
        .and_then(|e| e.child_value("sum"))
        .and_then(AtomicValue::as_f64)
        .expect("sum")
}

fn streamed_round_trip(engine: &mut SoapEngine<BxsaEncoding, HttpBinding>, values: &[f64]) -> f64 {
    let mut reply = engine
        .call_streaming(
            SoapEnvelope::with_body(Element::component("Sum")),
            &CallOptions::new(),
            |tx| {
                for batch in values.chunks(PART_LEN) {
                    tx.send(&Element::array("batch", ArrayValue::F64(batch.to_vec())))?;
                }
                Ok(())
            },
        )
        .expect("streamed call");
    while reply.next_part().expect("drain").is_some() {}
    reply
        .envelope()
        .body_element()
        .and_then(|e| e.child_value("sum"))
        .and_then(AtomicValue::as_f64)
        .expect("sum")
}

fn main() {
    let server = serve();
    let addr = server.local_addr().to_string();
    let mut engine = SoapEngine::new(BxsaEncoding::default(), HttpBinding::new(&addr, "/soap"));

    for &(label, bytes) in SIZES {
        let n = bytes / 8;
        let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let expected: f64 = values.iter().sum();
        let mb = bytes as f64 / 1e6;
        // Big payloads take seconds per pass; scale the repeat count so
        // the small rows get stable numbers without the large rows
        // taking minutes.
        let iters = match bytes {
            0..=2_000_000 => 8,
            2_000_001..=32_000_000 => 3,
            _ => 1,
        };
        for (lane, run) in [
            (
                "buffered",
                &buffered_round_trip
                    as &dyn Fn(&mut SoapEngine<BxsaEncoding, HttpBinding>, &[f64]) -> f64,
            ),
            ("streamed", &streamed_round_trip),
        ] {
            let mut best_mbps = 0.0f64;
            let mut last_ms = 0.0f64;
            for _ in 0..iters {
                let started = Instant::now();
                let sum = run(&mut engine, &values);
                let elapsed = started.elapsed();
                assert_eq!(sum, expected, "{lane}/{label} answered the wrong sum");
                last_ms = elapsed.as_secs_f64() * 1e3;
                best_mbps = best_mbps.max(mb / elapsed.as_secs_f64());
            }
            println!(
                "stream_pipeline/{lane}/{label}: {best_mbps:.1} MB/s (last pass {last_ms:.2} ms)"
            );
            println!(
                "BENCH {{\"id\":\"stream_pipeline/{lane}/{label}\",\"mb_per_s\":{best_mbps:.1},\"ms\":{last_ms:.2}}}"
            );
        }
    }
    server.shutdown();
}
