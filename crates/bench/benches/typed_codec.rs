//! Ablation A8: the typed struct↔wire fast path against the generic
//! element-tree codec, per encoding and direction.
//!
//! `codec_throughput` measures the raw codecs on a pre-built document;
//! this bench starts where callers start — a typed struct — so the tree
//! rows include the tree materialization the typed path exists to skip.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use soap::{EncodingPolicy, TypedEncoding, TypedScratch};

use bench::workload::Workload;

fn bench_typed(c: &mut Criterion) {
    let mut group = c.benchmark_group("typed_codec");
    for &model_size in &[1_000usize, 100_000] {
        let w = Workload::prepare(model_size, 42);
        let request = bxsoap::VerifyRequest {
            index: w.index.clone(),
            values: w.values.clone(),
        };
        let bxsa_enc = soap::BxsaEncoding::default();
        let xml_enc = soap::XmlEncoding::default();
        group.throughput(Throughput::Bytes(w.native_bytes() as u64));

        // Envelope wires (typed and tree encodes are byte-identical).
        let mut scratch = TypedScratch::default();
        let doc = bxsoap::verify_request_envelope(&w.index, &w.values).to_document();
        let bxsa_wire = EncodingPolicy::encode(&bxsa_enc, &doc).expect("encode");
        let xml_wire = EncodingPolicy::encode(&xml_enc, &doc).expect("encode");

        group.bench_with_input(
            BenchmarkId::new("typed_bxsa_encode", model_size),
            &request,
            |b, req| {
                let mut out = Vec::new();
                b.iter(|| {
                    bxsa_enc
                        .encode_typed(req, None, &mut scratch, &mut out)
                        .expect("encode")
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("tree_bxsa_encode", model_size),
            &w,
            |b, w| {
                let mut out = Vec::new();
                b.iter(|| {
                    let doc =
                        bxsoap::verify_request_envelope(&w.index, &w.values).to_document();
                    bxsa::encode_into(&doc, &mut out).expect("encode")
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("typed_bxsa_decode", model_size),
            &bxsa_wire,
            |b, wire| {
                let mut back = bxsoap::VerifyRequest::default();
                b.iter(|| {
                    bxsa_enc
                        .decode_typed_reply(wire, &mut back)
                        .expect("decode")
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("typed_xml_encode", model_size),
            &request,
            |b, req| {
                let mut out = Vec::new();
                b.iter(|| {
                    xml_enc
                        .encode_typed(req, None, &mut scratch, &mut out)
                        .expect("encode")
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("tree_xml_encode", model_size),
            &w,
            |b, w| {
                let opts = xmltext::XmlWriteOptions::default();
                let mut text = String::new();
                b.iter(|| {
                    let doc =
                        bxsoap::verify_request_envelope(&w.index, &w.values).to_document();
                    let Ok(()) = xmltext::write_into(&doc, &opts, &mut text);
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("typed_xml_decode", model_size),
            &xml_wire,
            |b, wire| {
                let mut back = bxsoap::VerifyRequest::default();
                b.iter(|| {
                    xml_enc.decode_typed_reply(wire, &mut back).expect("decode")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_typed);
criterion_main!(benches);
