//! Ablation A6: end-to-end codec throughput, BXSA vs XML 1.0 vs netCDF.
//!
//! The microscopic version of Figures 4-6's macroscopic claim: for
//! numeric scientific data, the binary codecs move an order of magnitude
//! more data per second than the textual one.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use netcdf3::NcFile;

use bench::workload::{netcdf_file, Workload};

fn bench_codecs(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec_throughput");
    for &model_size in &[1_000usize, 100_000] {
        let w = Workload::prepare(model_size, 42);
        group.throughput(Throughput::Bytes(w.native_bytes() as u64));

        group.bench_with_input(
            BenchmarkId::new("bxsa_encode", model_size),
            &w,
            |b, w| b.iter(|| bxsa::encode(&w.request_doc).expect("encode")),
        );
        group.bench_with_input(
            BenchmarkId::new("bxsa_decode", model_size),
            &w,
            |b, w| b.iter(|| bxsa::decode(&w.bxsa_bytes).expect("decode")),
        );
        group.bench_with_input(
            BenchmarkId::new("bxsa_decode_into", model_size),
            &w,
            |b, w| {
                // The steady-state server path: one document refilled in
                // place for every message, zero decode-side allocation.
                let mut doc = bxdm::Document::new();
                b.iter(|| bxsa::decode_into(&w.bxsa_bytes, &mut doc).expect("decode"))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("xml_encode", model_size),
            &w,
            |b, w| {
                b.iter(|| {
                    let Ok(s) = xmltext::to_string(&w.request_doc);
                    s
                })
            },
        );
        let xml_text = std::str::from_utf8(&w.xml_bytes).expect("utf8").to_owned();
        group.bench_with_input(
            BenchmarkId::new("xml_decode", model_size),
            &xml_text,
            |b, xml| b.iter(|| xmltext::parse(xml).expect("parse")),
        );
        group.bench_with_input(
            BenchmarkId::new("xml_decode_into", model_size),
            &xml_text,
            |b, xml| {
                let mut doc = bxdm::Document::new();
                b.iter(|| xmltext::parse_into(xml, &mut doc).expect("parse"))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("netcdf_encode", model_size),
            &w,
            |b, w| b.iter(|| netcdf_file(&w.index, &w.values).to_bytes().expect("nc")),
        );
        group.bench_with_input(
            BenchmarkId::new("netcdf_decode", model_size),
            &w,
            |b, w| b.iter(|| NcFile::from_bytes(&w.netcdf_bytes).expect("parse")),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(20);
    targets = bench_codecs
}
criterion_main!(benches);
