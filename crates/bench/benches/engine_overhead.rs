//! Ablation A7: the cost of policy genericity.
//!
//! Paper §5: "Because the binding is at compile time, compiler
//! optimizations are not impacted, and inlining is still enabled." This
//! bench measures a complete in-process SOAP exchange through
//!
//! 1. the raw pipeline (encode → dispatch → decode called directly), and
//! 2. the generic engine over a loopback binding (policy indirection,
//!    envelope model, fault detection),
//!
//! with the identical encoding and service. The delta isolates the
//! abstraction cost; it should be noise compared to codec work.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use soap::{
    binding::LoopbackBinding, BxsaEncoding, EncodingPolicy, ServiceRegistry, SoapEngine,
    SoapService,
};

fn registry() -> Arc<ServiceRegistry> {
    let mut registry = ServiceRegistry::new();
    bxsoap::register_verify(&mut registry);
    Arc::new(registry)
}

fn bench_engine_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_overhead");
    for &model_size in &[100usize, 10_000] {
        let (index, values) = bxsoap::lead_dataset(model_size, 42);
        let request = bxsoap::verify_request_envelope(&index, &values);
        let service = SoapService::new(BxsaEncoding::default(), registry());

        // 1. Raw pipeline: no engine at all.
        group.bench_with_input(
            BenchmarkId::new("raw_pipeline", model_size),
            &request,
            |b, request| {
                let encoding = BxsaEncoding::default();
                // Clone per iteration to mirror the engine path's
                // by-value envelope handoff exactly.
                b.iter(|| {
                    let bytes = encoding
                        .encode(&request.clone().to_document())
                        .expect("encode");
                    let (reply, _fault) = service.handle_bytes(&bytes);
                    encoding.decode(&reply).expect("decode")
                })
            },
        );

        // 2. Generic engine over a loopback binding.
        group.bench_with_input(
            BenchmarkId::new("generic_engine", model_size),
            &request,
            |b, request| {
                let service = SoapService::new(BxsaEncoding::default(), registry());
                let mut engine = SoapEngine::new(
                    BxsaEncoding::default(),
                    LoopbackBinding::new(move |bytes: &[u8]| service.handle_bytes(bytes).0),
                );
                b.iter(|| engine.call_with(request.clone(), &soap::CallOptions::new()).expect("call"))
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(20);
    targets = bench_engine_overhead
}
criterion_main!(benches);
