//! Ablation A5: accelerated sequential access (paper §4.1).
//!
//! "The Size field ... enables the accelerated sequential access ability,
//! by which we can sequentially scan frames without fully parsing all
//! parts of the document." A document with many sibling array frames is
//! scanned to locate the last one — by full decode vs by size-hopping.

use bxdm::{ArrayValue, AtomicValue, Document, Element};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// `frames` sibling records, each holding a 1,000-double array.
fn multi_frame_doc(frames: usize) -> Vec<u8> {
    let (_, values) = bxsoap::lead_dataset(1_000, 42);
    let mut root = Element::component("archive");
    for i in 0..frames {
        root.push_child(
            Element::component("record")
                .with_child(Element::leaf("seq", AtomicValue::I64(i as i64)))
                .with_child(Element::array("v", ArrayValue::F64(values.clone()))),
        );
    }
    bxsa::encode(&Document::with_root(root)).expect("encode")
}

fn bench_skip_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("skip_scan");
    for &frames in &[16usize, 256] {
        let bytes = multi_frame_doc(frames);

        // Baseline: decode everything, then look at the last record.
        group.bench_with_input(
            BenchmarkId::new("full_parse", frames),
            &bytes,
            |b, bytes| {
                b.iter(|| {
                    let doc = bxsa::decode(bytes).expect("decode");
                    let root = doc.root().unwrap();
                    let last = root.child_elements().last().unwrap();
                    last.find_child("seq")
                        .and_then(|e| e.leaf_value())
                        .cloned()
                })
            },
        );

        // Skip-scan: hop over sibling frames by their size fields; only
        // the root's header and the frame prefixes are touched.
        group.bench_with_input(
            BenchmarkId::new("size_hop", frames),
            &bytes,
            |b, bytes| {
                b.iter(|| {
                    let root = bxsa::FrameScanner::document(bytes)
                        .expect("scan")
                        .next()
                        .expect("root")
                        .expect("ok");
                    // The component frame's children start after its
                    // header; locate them with a range scan by hopping
                    // from the first child (decode only the *last*).
                    let mut last = None;
                    for info in
                        child_range_scan(bytes, &root).expect("child scan")
                    {
                        last = Some(info.expect("frame"));
                    }
                    let last = last.expect("at least one child");
                    bxsa::decoder::decode_element_at(bytes, last.start, &Default::default())
                        .expect("decode last")
                        .find_child("seq")
                        .and_then(|e| e.leaf_value())
                        .cloned()
                })
            },
        );
    }
    group.finish();
}

/// Scan the children of a component frame without parsing them: skip the
/// element header fields, read the child count, then hop frame to frame.
fn child_range_scan<'a>(
    bytes: &'a [u8],
    root: &bxsa::scan::FrameInfo,
) -> Result<bxsa::FrameScanner<'a>, bxsa::BxsaError> {
    // The cheapest correct way to find the children region in this bench:
    // the first child frame begins right after the root's header, which
    // we locate by scanning for the first valid frame prefix after the
    // attribute block. For the bench document the root has no
    // namespaces/attributes and a short name, so parse the few header
    // fields directly with an XbsReader.
    use xbs::XbsReader;
    let mut r = XbsReader::new(bytes, root.byte_order);
    r.seek(root.body_start)?;
    let n1 = r.read_count(2)?; // namespace decls
    for _ in 0..n1 {
        r.read_str()?;
        r.read_str()?;
    }
    let tag = r.read_vls()?; // element name ns ref
    if tag != 0 {
        r.read_vls()?;
    }
    r.read_str()?; // local name
    let n2 = r.read_count(3)?; // attributes (none in this document)
    assert_eq!(n2, 0, "bench document has no root attributes");
    let _child_count = r.read_vls()?;
    Ok(bxsa::FrameScanner::range(
        bytes,
        r.position(),
        root.start + root.len,
    ))
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(20);
    targets = bench_skip_scan
}
criterion_main!(benches);
