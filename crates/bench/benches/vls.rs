//! Ablation A3: variable-length size integers vs fixed-width fields.
//!
//! BXSA spends a VLS on every size, count and length field (Figure 2).
//! This bench quantifies the cpu cost of that choice against raw
//! fixed-width u32 fields, for the small values that dominate real
//! documents and for large ones.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xbs::vls::{read_vls, vls_len, write_vls};

fn values(kind: &str, n: usize) -> Vec<u64> {
    match kind {
        // Name lengths, attribute counts: almost always < 128.
        "small" => (0..n as u64).map(|i| i % 100).collect(),
        // Frame sizes of array-heavy documents.
        "large" => (0..n as u64).map(|i| 10_000 + i * 97).collect(),
        _ => unreachable!(),
    }
}

fn bench_vls(c: &mut Criterion) {
    let mut group = c.benchmark_group("vls");
    let n = 10_000usize;
    for kind in ["small", "large"] {
        let vals = values(kind, n);
        group.throughput(Throughput::Elements(n as u64));

        group.bench_with_input(BenchmarkId::new("vls_write", kind), &vals, |b, vals| {
            b.iter(|| {
                let mut out = Vec::with_capacity(n * 5);
                for &v in vals {
                    write_vls(&mut out, v);
                }
                out
            })
        });
        group.bench_with_input(BenchmarkId::new("u32_write", kind), &vals, |b, vals| {
            b.iter(|| {
                let mut out = Vec::with_capacity(n * 4);
                for &v in vals {
                    out.extend_from_slice(&(v as u32).to_le_bytes());
                }
                out
            })
        });

        let mut encoded = Vec::new();
        for &v in &vals {
            write_vls(&mut encoded, v);
        }
        group.bench_with_input(BenchmarkId::new("vls_read", kind), &encoded, |b, buf| {
            b.iter(|| {
                let mut pos = 0;
                let mut sum = 0u64;
                while pos < buf.len() {
                    let (v, used) = read_vls(&buf[pos..], pos).expect("read");
                    sum = sum.wrapping_add(v);
                    pos += used;
                }
                sum
            })
        });

        // Size effect: bytes per field.
        let total: usize = vals.iter().map(|&v| vls_len(v)).sum();
        let fixed = n * 4;
        // Criterion has no direct "report a number" hook; encode the
        // space saving in the id of a trivial bench.
        group.bench_function(
            BenchmarkId::new(
                "space",
                format!("{kind}_vls{total}B_vs_u32{fixed}B"),
            ),
            |b| b.iter(|| total.min(fixed)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(20);
    targets = bench_vls
}
criterion_main!(benches);
