//! PR 10 ablation: what the opt-in CRC32C frame checksum costs.
//!
//! The checksum trailer covers every byte of the document frame, so the
//! worst case for relative overhead is exactly the codec-throughput
//! workload: big numeric arrays where the codec itself is fastest. Four
//! cells per model size — encode and decode, plain and checksummed —
//! plus the raw `crc32c` kernel rate as the theoretical floor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use bench::workload::Workload;

fn bench_checksum(c: &mut Criterion) {
    let mut group = c.benchmark_group("checksum_overhead");
    for &model_size in &[1_000usize, 100_000] {
        let w = Workload::prepare(model_size, 42);
        let opts = bxsa::EncodeOptions {
            checksum: true,
            ..Default::default()
        };
        let checked = bxsa::encode_with(&w.request_doc, &opts).expect("encode");
        group.throughput(Throughput::Bytes(w.native_bytes() as u64));

        group.bench_with_input(
            BenchmarkId::new("encode_plain", model_size),
            &w,
            |b, w| b.iter(|| bxsa::encode(&w.request_doc).expect("encode")),
        );
        group.bench_with_input(
            BenchmarkId::new("encode_crc32c", model_size),
            &w,
            |b, w| b.iter(|| bxsa::encode_with(&w.request_doc, &opts).expect("encode")),
        );
        group.bench_with_input(
            BenchmarkId::new("decode_plain", model_size),
            &w,
            |b, w| b.iter(|| bxsa::decode(&w.bxsa_bytes).expect("decode")),
        );
        group.bench_with_input(
            BenchmarkId::new("decode_crc32c", model_size),
            &checked,
            |b, bytes| b.iter(|| bxsa::decode(bytes).expect("decode")),
        );
        group.bench_with_input(
            BenchmarkId::new("crc32c_kernel", model_size),
            &checked,
            |b, bytes| b.iter(|| bxsa::crc32c::crc32c(bytes)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(20);
    targets = bench_checksum
}
criterion_main!(benches);
