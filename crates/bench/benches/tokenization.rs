//! Ablation A2: namespace tokenization (paper §4.1).
//!
//! BXSA refers to namespaces by (scope depth, index) instead of repeating
//! prefix strings. This bench builds a namespace-heavy document (many
//! qualified elements under a handful of declarations — the shape of a
//! WS-* message) and compares encoding through BXSA's tokenized
//! references against textual XML's repeated prefixes, plus the resulting
//! sizes as custom throughput.

use bxdm::{AtomicValue, Document, Element};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// A WS-*-shaped document: `n` qualified leaf elements under three
/// namespace declarations.
fn namespace_heavy(n: usize) -> Document {
    let mut root = Element::component("soapenv:Envelope")
        .with_namespace("soapenv", "http://schemas.xmlsoap.org/soap/envelope/")
        .with_namespace("wsa", "http://www.w3.org/2005/08/addressing")
        .with_namespace("d", "http://bxsoap.example.org/lead");
    let mut body = Element::component("soapenv:Body");
    for i in 0..n {
        body.push_child(
            Element::component("d:record")
                .with_attr("wsa:IsReferenceParameter", "true")
                .with_child(Element::leaf("d:seq", AtomicValue::I64(i as i64)))
                .with_child(Element::leaf("d:v", AtomicValue::F64(i as f64 * 0.25))),
        );
    }
    root.push_child(body);
    Document::with_root(root)
}

fn bench_tokenization(c: &mut Criterion) {
    let mut group = c.benchmark_group("tokenization");
    for &n in &[100usize, 2_000] {
        let doc = namespace_heavy(n);
        let bxsa_len = bxsa::encode(&doc).expect("encode").len();
        let Ok(xml) = xmltext::to_string(&doc);
        // Surface the size effect in the report line.
        let id_suffix = format!("{n}records_bxsa{bxsa_len}B_xml{}B", xml.len());

        group.bench_with_input(
            BenchmarkId::new("bxsa_tokenized_encode", &id_suffix),
            &doc,
            |b, d| b.iter(|| bxsa::encode(d).expect("encode")),
        );
        group.bench_with_input(
            BenchmarkId::new("xml_prefixed_encode", &id_suffix),
            &doc,
            |b, d| {
                b.iter(|| {
                    let Ok(s) = xmltext::to_string(d);
                    s
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("bxsa_tokenized_decode", &id_suffix),
            &bxsa::encode(&doc).expect("encode"),
            |b, bytes| b.iter(|| bxsa::decode(bytes).expect("decode")),
        );
        group.bench_with_input(
            BenchmarkId::new("xml_prefixed_decode", &id_suffix),
            &xml,
            |b, text| b.iter(|| xmltext::parse(text).expect("parse")),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(20);
    targets = bench_tokenization
}
criterion_main!(benches);
