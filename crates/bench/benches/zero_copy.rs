//! Ablation A4: zero-copy array access (paper §4.1).
//!
//! "Since the value of the ArrayElement ... is an aligned, packed array,
//! large arrays can be read ... avoiding an extra copy." Compares three
//! ways of getting at an array frame's payload:
//!
//! 1. full document decode (materializes the tree),
//! 2. skip-scan + copying payload read,
//! 3. skip-scan + zero-copy borrowed view (when alignment permits).

use bxdm::{ArrayValue, Document, Element};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn encoded_array(n: usize) -> Vec<u8> {
    let (_, values) = bxsoap::lead_dataset(n, 42);
    let doc = Document::with_root(Element::array("v", ArrayValue::F64(values)));
    bxsa::encode(&doc).expect("encode")
}

fn bench_zero_copy(c: &mut Criterion) {
    let mut group = c.benchmark_group("zero_copy");
    for &n in &[10_000usize, 1_000_000] {
        let bytes = encoded_array(n);
        group.throughput(Throughput::Bytes((n * 8) as u64));

        group.bench_with_input(BenchmarkId::new("full_decode", n), &bytes, |b, bytes| {
            b.iter(|| {
                let doc = bxsa::decode(bytes).expect("decode");
                doc.root().unwrap().as_f64_array().unwrap().iter().sum::<f64>()
            })
        });

        group.bench_with_input(BenchmarkId::new("scan_copy", n), &bytes, |b, bytes| {
            b.iter(|| {
                let frame = bxsa::FrameScanner::document(bytes)
                    .expect("scan")
                    .next()
                    .expect("frame")
                    .expect("ok");
                let data: Vec<f64> =
                    bxsa::scan::array_payload_copy(bytes, &frame).expect("payload");
                data.iter().sum::<f64>()
            })
        });

        group.bench_with_input(BenchmarkId::new("scan_zero_copy", n), &bytes, |b, bytes| {
            b.iter(|| {
                let frame = bxsa::FrameScanner::document(bytes)
                    .expect("scan")
                    .next()
                    .expect("frame")
                    .expect("ok");
                match bxsa::scan::array_payload_view::<f64>(bytes, &frame).expect("view") {
                    Some(view) => view.iter().sum::<f64>(),
                    // Unaligned mapping: fall back (measured as part of
                    // the same distribution, as a real consumer would).
                    None => bxsa::scan::array_payload_copy::<f64>(bytes, &frame)
                        .expect("copy")
                        .iter()
                        .sum::<f64>(),
                }
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(20);
    targets = bench_zero_copy
}
criterion_main!(benches);
