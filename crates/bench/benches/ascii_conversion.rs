//! Ablation A1: the float ↔ ASCII conversion cost.
//!
//! The paper (§1, §6.2, citing Chiu et al. HPDC'02): "the conversion
//! between the native floating-point number to their textual ones
//! dominates the SOAP performance". This bench isolates exactly that
//! conversion against the binary alternative (a bounds-checked copy).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xbs::{ByteOrder, XbsWriter};

fn dataset(n: usize) -> Vec<f64> {
    let (_, values) = bxsoap::lead_dataset(n, 42);
    values
}

fn bench_conversion(c: &mut Criterion) {
    xmltext::num::warm_up();
    let mut group = c.benchmark_group("ascii_conversion");
    for &n in &[1_000usize, 100_000] {
        let values = dataset(n);
        group.throughput(Throughput::Bytes((n * 8) as u64));

        // Binary path: packed aligned copy (what a BXSA array frame does).
        group.bench_with_input(BenchmarkId::new("binary_pack", n), &values, |b, v| {
            b.iter(|| {
                let mut w = XbsWriter::with_capacity(v.len() * 8 + 16, ByteOrder::Little);
                w.put_packed(v);
                w.into_bytes()
            })
        });

        // Textual path, encode: shortest-round-trip formatting (what the
        // XML writer does per array item), into a reused buffer.
        group.bench_with_input(BenchmarkId::new("ascii_format", n), &values, |b, v| {
            let mut out = String::with_capacity(v.len() * 24);
            b.iter(|| {
                out.clear();
                for x in v {
                    xmltext::num::write_f64(*x, &mut out);
                    out.push(' ');
                }
                out.len()
            })
        });

        // Textual path, decode: parsing the lexical forms back.
        let text: Vec<String> = values.iter().map(|v| v.to_string()).collect();
        group.bench_with_input(BenchmarkId::new("ascii_parse", n), &text, |b, t| {
            b.iter(|| {
                let mut sum = 0.0f64;
                for s in t {
                    sum += xmltext::num::parse_f64(s).expect("parse");
                }
                sum
            })
        });

        // Binary path, decode: aligned read-back.
        let mut w = XbsWriter::new(ByteOrder::Little);
        w.put_packed(&values);
        let packed = w.into_bytes();
        group.bench_with_input(BenchmarkId::new("binary_unpack", n), &packed, |b, p| {
            b.iter(|| {
                let mut r = xbs::XbsReader::new(p, ByteOrder::Little);
                r.read_packed::<f64>(n).expect("unpack")
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(20);
    targets = bench_conversion
}
criterion_main!(benches);
