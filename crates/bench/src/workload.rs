//! The paper's workload: LEAD-derived (int index, double value) pairs,
//! pre-encoded in every representation an experiment needs.

use bxdm::Document;
use netcdf3::{NcFile, NcValue};
use soap::SoapEnvelope;

/// A fully prepared workload for one model size.
pub struct Workload {
    /// Number of (double, int) pairs — the paper's "model size".
    pub model_size: usize,
    /// The integer index array.
    pub index: Vec<i32>,
    /// The double value array.
    pub values: Vec<f64>,
    /// The unified-solution SOAP request envelope.
    pub request: SoapEnvelope,
    /// The request as a bXDM document (envelope materialized).
    pub request_doc: Document,
    /// BXSA serialization of the request.
    pub bxsa_bytes: Vec<u8>,
    /// Textual XML serialization of the request.
    pub xml_bytes: Vec<u8>,
    /// netCDF-3 file holding the same dataset (the separated scheme).
    pub netcdf_bytes: Vec<u8>,
}

impl Workload {
    /// Prepare all representations for `model_size` pairs.
    pub fn prepare(model_size: usize, seed: u64) -> Workload {
        let (index, values) = bxsoap::lead_dataset(model_size, seed);
        let request = bxsoap::verify_request_envelope(&index, &values);
        let request_doc = request.to_document();
        let bxsa_bytes = bxsa::encode(&request_doc).expect("bxsa encode");
        let Ok(xml) = xmltext::to_string(&request_doc);
        let netcdf_bytes = netcdf_file(&index, &values).to_bytes().expect("netcdf");
        Workload {
            model_size,
            index,
            values,
            request,
            request_doc,
            bxsa_bytes,
            xml_bytes: xml.into_bytes(),
            netcdf_bytes,
        }
    }

    /// Bytes of the native (in-memory) representation: 12 per pair.
    pub fn native_bytes(&self) -> usize {
        self.model_size * (4 + 8)
    }

    /// The small SOAP *response* used by every scheme (ok + count): its
    /// encoded size barely varies, so one number per encoding suffices.
    pub fn response_bytes_bxsa() -> usize {
        260
    }

    /// See [`Workload::response_bytes_bxsa`].
    pub fn response_bytes_xml() -> usize {
        420
    }

    /// The control message of the separated scheme (a URL in a SOAP
    /// envelope).
    pub fn control_bytes_xml() -> usize {
        560
    }
}

/// Build the netCDF dataset the separated scheme stages.
pub fn netcdf_file(index: &[i32], values: &[f64]) -> NcFile {
    let mut nc = NcFile::new();
    let d = nc.add_dim("model", index.len());
    nc.add_attr("parameters", NcValue::Char("time,y,x,height".into()));
    nc.add_var("index", &[d], NcValue::Int(index.to_vec()))
        .expect("index var");
    nc.add_var("values", &[d], NcValue::Double(values.to_vec()))
        .expect("values var");
    nc
}

/// The model sizes of Figures 5 and 6: 1365 × 4^k, k = 0..6 — "selected
/// so that the corresponding BXSA serialization size is from 16K bytes to
/// 64M bytes" (§6.2).
pub const LARGE_MODEL_SIZES: [usize; 7] =
    [1365, 5460, 21840, 87360, 349440, 1397760, 5591040];

/// The model sizes of Figure 4: 0 to 1000.
pub const SMALL_MODEL_SIZES: [usize; 11] =
    [0, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_representations_agree() {
        let w = Workload::prepare(1000, 42);
        assert_eq!(w.index.len(), 1000);
        assert_eq!(w.values.len(), 1000);
        assert_eq!(w.native_bytes(), 12_000);
        // BXSA is near-native; XML is far larger; netCDF is near-native.
        assert!(w.bxsa_bytes.len() < w.native_bytes() + 600);
        assert!(w.netcdf_bytes.len() < w.native_bytes() + 600);
        assert!(w.xml_bytes.len() > w.native_bytes() * 3 / 2);
        // All decode back to the same data.
        let doc = bxsa::decode(&w.bxsa_bytes).unwrap();
        assert_eq!(doc, w.request_doc);
        let nc = NcFile::from_bytes(&w.netcdf_bytes).unwrap();
        assert_eq!(nc.var("values").unwrap().data.as_double().unwrap(), &w.values[..]);
    }

    #[test]
    fn large_sizes_are_the_papers() {
        // Each size is 4x the previous, ending at 5,591,040 (64 MB BXSA).
        for pair in LARGE_MODEL_SIZES.windows(2) {
            assert_eq!(pair[1], pair[0] * 4);
        }
        let largest = LARGE_MODEL_SIZES[6];
        assert_eq!(largest * 12, 67_092_480); // ≈ 64 MiB of native data
    }

    #[test]
    fn zero_model_size_works() {
        let w = Workload::prepare(0, 1);
        assert!(bxsa::decode(&w.bxsa_bytes).is_ok());
    }
}
