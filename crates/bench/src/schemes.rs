//! Virtual-time composition of the four evaluated schemes (§6).
//!
//! Each scheme's response time is assembled exactly as the paper
//! describes its test programs, mixing **measured** CPU durations (the
//! [`crate::cpu::CpuCosts`] inputs) with **simulated** network, disk and
//! authentication durations from `netsim`/`gridftp`.

use gridftp::{GridFtpConfig, GridFtpSession};
use netsim::{NetworkProfile, SimTime, TcpFlow};

use crate::cpu::CpuCosts;
use crate::workload::Workload;

/// Bytes of HTTP request+response header framing per exchange.
const HTTP_OVERHEAD: usize = 250;

/// The communication schemes of Figures 4–6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Unified: SOAP over BXSA on raw TCP.
    SoapBxsaTcp,
    /// Conventional: SOAP over textual XML on HTTP.
    SoapXmlHttp,
    /// Separated: SOAP control + netCDF file fetched over HTTP.
    SoapHttpData,
    /// Separated: SOAP control + netCDF file fetched over GridFTP with
    /// `streams` parallel data channels.
    SoapGridFtp {
        /// Parallel TCP data streams.
        streams: u32,
    },
}

impl Scheme {
    /// Display label matching the paper's figure legends.
    pub fn label(&self) -> String {
        match self {
            Scheme::SoapBxsaTcp => "SOAP over BXSA/TCP".into(),
            Scheme::SoapXmlHttp => "SOAP over XML/HTTP".into(),
            Scheme::SoapHttpData => "SOAP + HTTP".into(),
            Scheme::SoapGridFtp { streams } => {
                format!("SOAP + GridFTP ({streams} stream{})", if *streams == 1 { "" } else { "s" })
            }
        }
    }

    /// The full scheme list of Figure 5 (LAN, large messages).
    pub fn figure5_set() -> Vec<Scheme> {
        vec![
            Scheme::SoapBxsaTcp,
            Scheme::SoapHttpData,
            Scheme::SoapGridFtp { streams: 1 },
            Scheme::SoapGridFtp { streams: 4 },
            Scheme::SoapGridFtp { streams: 16 },
            Scheme::SoapXmlHttp,
        ]
    }

    /// The scheme list of Figure 6 (WAN, large messages).
    pub fn figure6_set() -> Vec<Scheme> {
        vec![
            Scheme::SoapGridFtp { streams: 16 },
            Scheme::SoapBxsaTcp,
            Scheme::SoapGridFtp { streams: 4 },
            Scheme::SoapHttpData,
            Scheme::SoapGridFtp { streams: 1 },
        ]
    }

    /// The scheme list of Figure 4 (LAN, small messages).
    pub fn figure4_set() -> Vec<Scheme> {
        vec![
            Scheme::SoapGridFtp { streams: 1 },
            Scheme::SoapXmlHttp,
            Scheme::SoapHttpData,
            Scheme::SoapBxsaTcp,
        ]
    }
}

/// The result of evaluating a scheme at one workload size.
#[derive(Debug, Clone, Copy)]
pub struct SchemeOutcome {
    /// End-to-end virtual response time at the client.
    pub response: SimTime,
    /// Model size evaluated.
    pub model_size: usize,
}

impl SchemeOutcome {
    /// Bandwidth in (double, int) pairs per second — the y-axis of
    /// Figures 5 and 6 ("the bandwidth which equals the model size
    /// divided by the response time").
    pub fn pairs_per_sec(&self) -> f64 {
        self.model_size as f64 / self.response.as_secs_f64().max(1e-12)
    }
}

/// Evaluate one scheme over one workload on one network.
pub fn response_time(
    scheme: Scheme,
    profile: &NetworkProfile,
    w: &Workload,
    cpu: &CpuCosts,
) -> SchemeOutcome {
    let tcp = TcpFlow::new(profile.tcp());
    let response = match scheme {
        Scheme::SoapBxsaTcp => {
            // encode → connect → send → decode+verify → reply.
            SimTime::from(cpu.bxsa_encode)
                + tcp.connect_duration()
                + tcp.transfer_duration(w.bxsa_bytes.len())
                + SimTime::from(cpu.bxsa_decode)
                + SimTime::from(cpu.verify)
                + tcp.transfer_duration(Workload::response_bytes_bxsa())
        }
        Scheme::SoapXmlHttp => {
            SimTime::from(cpu.xml_encode)
                + tcp.connect_duration()
                + tcp.transfer_duration(w.xml_bytes.len() + HTTP_OVERHEAD)
                + SimTime::from(cpu.xml_decode)
                + SimTime::from(cpu.verify)
                + tcp.transfer_duration(Workload::response_bytes_xml() + HTTP_OVERHEAD)
        }
        Scheme::SoapHttpData => {
            // Client: encode netCDF + write the staging file.
            let stage = SimTime::from(cpu.netcdf_encode)
                + profile.disk.write_duration(w.netcdf_bytes.len());
            // Control message (SOAP over XML/HTTP, tiny).
            let control = tcp.connect_duration()
                + tcp.transfer_duration(Workload::control_bytes_xml() + HTTP_OVERHEAD);
            // Server pulls the file over HTTP: fresh connection, the
            // client-side web server reads the file, the bytes cross the
            // network, the server writes then re-reads them (the netCDF
            // library "does not support reading the data directly from
            // memory", §6.2).
            let fetch = tcp.connect_duration()
                + tcp.transfer_duration(HTTP_OVERHEAD) // GET request
                + profile.disk.read_duration(w.netcdf_bytes.len())
                + tcp.transfer_duration(w.netcdf_bytes.len() + HTTP_OVERHEAD)
                + profile.disk.write_duration(w.netcdf_bytes.len())
                + profile.disk.read_duration(w.netcdf_bytes.len());
            let process = SimTime::from(cpu.netcdf_decode) + SimTime::from(cpu.verify);
            let reply = tcp.transfer_duration(Workload::response_bytes_xml() + HTTP_OVERHEAD);
            stage + control + fetch + process + reply
        }
        Scheme::SoapGridFtp { streams } => {
            let stage = SimTime::from(cpu.netcdf_encode)
                + profile.disk.write_duration(w.netcdf_bytes.len());
            let control = tcp.connect_duration()
                + tcp.transfer_duration(Workload::control_bytes_xml() + HTTP_OVERHEAD);
            let session = GridFtpSession::new(GridFtpConfig::gsi_default(streams), *profile);
            let fetch = session.fetch_duration(w.netcdf_bytes.len());
            // The striped receiver already wrote the file to disk; the
            // service still has to read and parse it.
            let process = profile.disk.read_duration(w.netcdf_bytes.len())
                + SimTime::from(cpu.netcdf_decode)
                + SimTime::from(cpu.verify);
            let reply = tcp.transfer_duration(Workload::response_bytes_xml() + HTTP_OVERHEAD);
            stage + control + fetch + process + reply
        }
    };
    SchemeOutcome {
        response,
        model_size: w.model_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(scheme: Scheme, profile: &NetworkProfile, model_size: usize) -> SchemeOutcome {
        let w = Workload::prepare(model_size, 42);
        let cpu = CpuCosts::measure(&w, 2);
        response_time(scheme, profile, &w, &cpu)
    }

    #[test]
    fn labels_match_figures() {
        assert_eq!(Scheme::SoapBxsaTcp.label(), "SOAP over BXSA/TCP");
        assert_eq!(
            Scheme::SoapGridFtp { streams: 16 }.label(),
            "SOAP + GridFTP (16 streams)"
        );
        assert_eq!(
            Scheme::SoapGridFtp { streams: 1 }.label(),
            "SOAP + GridFTP (1 stream)"
        );
        assert_eq!(Scheme::figure5_set().len(), 6);
        assert_eq!(Scheme::figure6_set().len(), 5);
        assert_eq!(Scheme::figure4_set().len(), 4);
    }

    #[test]
    fn figure4_headline_small_messages() {
        // At model size 1000 on the LAN: BXSA/TCP is fastest and GridFTP
        // is slowest (authentication dominates).
        let lan = NetworkProfile::lan();
        let bxsa = eval(Scheme::SoapBxsaTcp, &lan, 1000).response;
        let xml = eval(Scheme::SoapXmlHttp, &lan, 1000).response;
        let http = eval(Scheme::SoapHttpData, &lan, 1000).response;
        let grid = eval(Scheme::SoapGridFtp { streams: 1 }, &lan, 1000).response;
        assert!(bxsa < xml && bxsa < http && bxsa < grid);
        assert!(grid > xml && grid > http);
    }

    #[test]
    fn pairs_per_sec_math() {
        let o = SchemeOutcome {
            response: SimTime::from_millis(500),
            model_size: 1_000_000,
        };
        assert!((o.pairs_per_sec() - 2_000_000.0).abs() < 1.0);
    }
}
