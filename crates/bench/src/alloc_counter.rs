//! A counting global allocator for asserting allocation-free hot paths.
//!
//! The PR's buffer-reuse work claims *zero* steady-state heap traffic on
//! the encode path; this module turns that claim into a checked
//! invariant instead of a code-review judgement. The counter wraps the
//! system allocator and counts allocation events (alloc, alloc_zeroed,
//! realloc — frees are not counted) on threads that arm it, so the rest
//! of the process pays one thread-local load per allocation and nothing
//! else.
//!
//! Gated behind the off-by-default `alloc-counter` feature so the
//! benchmark binaries keep the stock allocator (even a disarmed counter
//! costs a thread-local load per allocation event, which is measurable
//! on allocation-heavy paths like textual decode); run
//! `cargo test -p bench --features alloc-counter` to check the
//! invariant.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// The system allocator, plus a per-thread opt-in allocation counter.
pub struct CountingAlloc;

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

thread_local! {
    static ARMED: Cell<bool> = const { Cell::new(false) };
    static COUNT: Cell<u64> = const { Cell::new(0) };
}

#[inline]
fn bump() {
    ARMED.with(|armed| {
        if armed.get() {
            COUNT.with(|c| c.set(c.get() + 1));
        }
    });
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// Run `f` with the counter armed on this thread; return its result and
/// the number of allocation events it performed.
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, u64) {
    COUNT.with(|c| c.set(0));
    ARMED.with(|a| a.set(true));
    let result = f();
    ARMED.with(|a| a.set(false));
    (result, COUNT.with(|c| c.get()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sees_allocations() {
        let ((), n) = measure(|| {
            let v: Vec<u64> = Vec::with_capacity(8);
            drop(v);
        });
        assert!(n >= 1, "a fresh Vec must register");
        let ((), n) = measure(|| {});
        assert_eq!(n, 0);
    }

    /// The PR's acceptance invariant: after warmup, encoding the paper's
    /// 1000-pair verification model into reused buffers performs **zero**
    /// heap allocations — on the binary path *and* the textual-XML path
    /// (whose per-item float formatting used to dominate, §6.2).
    #[test]
    fn steady_state_encode_is_allocation_free() {
        let (index, values) = bxsoap::lead_dataset(1000, 42);
        let doc = bxsoap::verify_request_envelope(&index, &values).to_document();
        xmltext::num::warm_up();

        // BXSA binary encode into a reused byte buffer.
        let mut buf = Vec::new();
        for _ in 0..3 {
            bxsa::encode_into(&doc, &mut buf).unwrap();
        }
        let (result, n) = measure(|| bxsa::encode_into(&doc, &mut buf));
        result.unwrap();
        assert_eq!(n, 0, "bxsa::encode_into allocated {n}x in steady state");

        // Textual XML encode into a reused String.
        let opts = xmltext::XmlWriteOptions::default();
        let mut text = String::new();
        for _ in 0..3 {
            let Ok(()) = xmltext::write_into(&doc, &opts, &mut text);
        }
        let ((), n) = measure(|| {
            let Ok(()) = xmltext::write_into(&doc, &opts, &mut text);
        });
        assert_eq!(n, 0, "xmltext::write_into allocated {n}x in steady state");
    }

    /// This PR's acceptance invariant, the decode mirror: after warmup,
    /// decoding the same wire message into a reused document — node
    /// slots overwritten in place, strings and array buffers refilled —
    /// performs **zero** heap allocations, on the binary pull-decode
    /// path *and* the streaming textual-XML path.
    #[test]
    fn steady_state_decode_is_allocation_free() {
        let (index, values) = bxsoap::lead_dataset(1000, 42);
        let doc = bxsoap::verify_request_envelope(&index, &values).to_document();
        xmltext::num::warm_up();

        // BXSA pull-decode into a reused document.
        let bytes = bxsa::encode(&doc).unwrap();
        let mut reused = bxdm::Document::new();
        for _ in 0..3 {
            bxsa::decode_into(&bytes, &mut reused).unwrap();
        }
        let (result, n) = measure(|| bxsa::decode_into(&bytes, &mut reused));
        result.unwrap();
        assert_eq!(n, 0, "bxsa::decode_into allocated {n}x in steady state");
        assert_eq!(reused, doc, "reuse must not change the decoded value");

        // Streaming textual-XML decode into a reused document.
        let Ok(text) = xmltext::to_string(&doc);
        let mut reused = bxdm::Document::new();
        for _ in 0..3 {
            xmltext::parse_into(&text, &mut reused).unwrap();
        }
        let (result, n) = measure(|| xmltext::parse_into(&text, &mut reused));
        result.unwrap();
        assert_eq!(n, 0, "xmltext::parse_into allocated {n}x in steady state");
        assert_eq!(reused, doc, "reuse must not change the parsed value");
    }

    /// The typed fast path's acceptance invariant: after warmup, a typed
    /// encode of the paper's 1000-pair verification model — struct fields
    /// straight to wire bytes, no element tree — performs **zero** heap
    /// allocations on both encodings, and so does the typed decode of the
    /// reply into a reused struct (clear-and-refill field buffers).
    #[test]
    fn typed_steady_state_is_allocation_free() {
        use soap::{BxsaEncoding, TypedDecode, TypedEncoding, TypedScratch, XmlEncoding};

        let (index, values) = bxsoap::lead_dataset(1000, 42);
        let request = bxsoap::VerifyRequest { index, values };
        xmltext::num::warm_up();

        let bxsa_enc = BxsaEncoding::default();
        let xml_enc = XmlEncoding::default();
        let mut scratch = TypedScratch::default();

        // Typed encode into a reused wire buffer, both encodings.
        let mut bxsa_wire = Vec::new();
        let mut xml_wire = Vec::new();
        for _ in 0..3 {
            bxsa_enc
                .encode_typed(&request, None, &mut scratch, &mut bxsa_wire)
                .unwrap();
            xml_enc
                .encode_typed(&request, None, &mut scratch, &mut xml_wire)
                .unwrap();
        }
        let (result, n) = measure(|| {
            bxsa_enc.encode_typed(&request, None, &mut scratch, &mut bxsa_wire)
        });
        result.unwrap();
        assert_eq!(n, 0, "typed BXSA encode allocated {n}x in steady state");
        let (result, n) =
            measure(|| xml_enc.encode_typed(&request, None, &mut scratch, &mut xml_wire));
        result.unwrap();
        assert_eq!(n, 0, "typed XML encode allocated {n}x in steady state");

        // Typed decode into a reused struct, both encodings.
        let mut reused = bxsoap::VerifyRequest::default();
        for _ in 0..3 {
            bxsa_enc.decode_typed_reply(&bxsa_wire, &mut reused).unwrap();
            xml_enc.decode_typed_reply(&xml_wire, &mut reused).unwrap();
        }
        let (result, n) = measure(|| bxsa_enc.decode_typed_reply(&bxsa_wire, &mut reused));
        assert_eq!(result.unwrap(), TypedDecode::Matched);
        assert_eq!(n, 0, "typed BXSA decode allocated {n}x in steady state");
        assert_eq!(reused.values, request.values);
        let (result, n) = measure(|| xml_enc.decode_typed_reply(&xml_wire, &mut reused));
        assert_eq!(result.unwrap(), TypedDecode::Matched);
        assert_eq!(n, 0, "typed XML decode allocated {n}x in steady state");
        assert_eq!(reused.index, request.index);
    }

    /// The observability layer's discipline: once a metric is registered,
    /// updating it — counters on every message, gauges on every breaker
    /// transition, histogram observations on every call — is pure atomic
    /// arithmetic. Zero heap traffic, so instrumentation can sit directly
    /// on the paths the two gates above protect.
    #[test]
    fn metrics_instrumentation_is_allocation_free() {
        use std::time::Duration;

        static COUNTER: obs::Counter = obs::Counter::new();
        static GAUGE: obs::Gauge = obs::Gauge::new();
        static HISTOGRAM: obs::Histogram = obs::Histogram::new();
        // Registration may allocate (names, label strings) — that is
        // paid once, before the steady state being measured.
        let registry = obs::global();
        registry.register_counter("bench_events_total", "", &[], &COUNTER);
        registry.register_gauge("bench_level", "", &[], &GAUGE);
        registry.register_histogram("bench_latency_nanoseconds", "", &[], &HISTOGRAM);

        let ((), n) = measure(|| {
            for i in 0..1000u64 {
                COUNTER.inc();
                COUNTER.add(2);
                GAUGE.set(i as f64);
                GAUGE.add(0.5);
                HISTOGRAM.observe(i * 17);
                HISTOGRAM.observe_duration(Duration::from_micros(i));
            }
        });
        assert_eq!(n, 0, "metric updates allocated {n}x in steady state");
    }

    /// The overload-shed discipline: turning a request away must cost
    /// almost nothing, or shedding itself becomes the overload. The
    /// framed path is zero-alloc by construction (the fault payload is
    /// pre-encoded at bind and memcpy'd into the connection's reused
    /// response buffer); the HTTP path builds and serializes the canned
    /// 503 per shed — bounded here so it can never grow proportional to
    /// the request or regress into real per-shed work.
    #[test]
    fn shed_response_allocation_is_bounded() {
        use std::time::Duration;

        let mut wire = Vec::with_capacity(512);
        for _ in 0..3 {
            wire.clear();
            transport::HttpResponse::service_unavailable(Duration::from_secs(1))
                .write_to_with(&mut wire, false)
                .unwrap();
        }
        let ((), n) = measure(|| {
            wire.clear();
            transport::HttpResponse::service_unavailable(Duration::from_secs(1))
                .write_to_with(&mut wire, false)
                .unwrap();
        });
        assert!(
            n <= 16,
            "building + serializing the shed 503 allocated {n}x; the shed path must stay cheap"
        );
    }
}
