//! Constant-memory gate for the streaming pipeline (ISSUE 9).
//!
//! The promise of `SoapEngine::call_streaming` is O(window) memory: a
//! warm exchange allocates for its manifest and reply, but **not per
//! part** — the part buffer, chunk framing, and scratch document are
//! all reused. This gate proves it with the counting allocator: two
//! warm exchanges that differ only in part count (8 parts ≈ 1 MiB vs
//! many parts) must allocate the *same* number of times on the client
//! thread, within a small fixed slack.
//!
//! By default the large side is 64 parts (8 MiB — fast enough for every
//! CI run). Setting `STREAM_GATE_FULL=1` raises it to 8192 parts, which
//! pushes a simulated gigabyte through the window; the assertion is
//! identical, only the exposure is longer.
//!
//! Runs under `cargo test -p bench --features alloc-counter --lib`,
//! alongside the codec zero-allocation gates.

#[cfg(test)]
mod tests {
    use crate::alloc_counter::measure;
    use std::sync::Arc;

    use bxdm::{ArrayValue, AtomicValue, Element};
    use soap::{
        BxsaEncoding, CallOptions, HttpBinding, HttpSoapServer, ServiceRegistry, SoapEngine,
        SoapEnvelope, SoapError, SoapResult, SoapService, StreamOp,
    };

    /// f64 values per part — the same ~128 KiB window the benches use.
    const PART_LEN: usize = 16 * 1024;
    const SMALL_PARTS: usize = 8; // ≈ 1 MiB payload

    fn large_parts() -> usize {
        if std::env::var("STREAM_GATE_FULL").is_ok_and(|v| v == "1") {
            8192 // ≈ 1 GiB payload through the same window
        } else {
            64 // ≈ 8 MiB: same assertion, CI-friendly exposure
        }
    }

    #[derive(Default)]
    struct SumOp {
        sum: f64,
    }

    impl StreamOp for SumOp {
        fn start(&mut self, _manifest: &SoapEnvelope) -> SoapResult<()> {
            Ok(())
        }

        fn on_part(&mut self, part: &Element) -> SoapResult<()> {
            let xs = part
                .as_f64_array()
                .ok_or_else(|| SoapError::Protocol("batch is not an f64 array".into()))?;
            self.sum += xs.iter().sum::<f64>();
            Ok(())
        }

        fn finish(&mut self) -> SoapResult<SoapEnvelope> {
            Ok(SoapEnvelope::with_body(
                Element::component("SumResponse")
                    .with_child(Element::leaf("sum", AtomicValue::F64(self.sum))),
            ))
        }

        fn next_part(&mut self, _slot: &mut Element) -> SoapResult<bool> {
            Ok(false)
        }
    }

    /// One full streamed exchange: `parts` copies of a pre-built batch
    /// element. The producer allocates nothing — the same `&Element` is
    /// sent every time, so any per-part allocation the counter sees
    /// belongs to the pipeline itself.
    fn exchange(
        engine: &mut SoapEngine<BxsaEncoding, HttpBinding>,
        batch: &Element,
        parts: usize,
    ) -> f64 {
        let mut reply = engine
            .call_streaming(
                SoapEnvelope::with_body(Element::component("Sum")),
                &CallOptions::new(),
                |tx| {
                    for _ in 0..parts {
                        tx.send(batch)?;
                    }
                    Ok(())
                },
            )
            .expect("streamed call");
        while reply.next_part().expect("drain").is_some() {}
        reply
            .envelope()
            .body_element()
            .and_then(|e| e.child_value("sum"))
            .and_then(AtomicValue::as_f64)
            .expect("sum")
    }

    #[test]
    fn streamed_exchange_memory_is_independent_of_payload_size() {
        let mut service =
            SoapService::new(BxsaEncoding::default(), Arc::new(ServiceRegistry::new()));
        service.register_streaming("Sum", || Box::<SumOp>::default());
        let server = HttpSoapServer::bind_service_with(
            "127.0.0.1:0",
            "/soap",
            transport::HttpServerConfig::default(),
            service,
        )
        .expect("bind");
        let mut engine = SoapEngine::new(
            BxsaEncoding::default(),
            HttpBinding::new(&server.local_addr().to_string(), "/soap"),
        );

        let batch = Element::array("batch", ArrayValue::F64(vec![1.0; PART_LEN]));
        let per_part: f64 = PART_LEN as f64;
        let large = large_parts();

        // Warm every buffer on the largest exchange we will measure, so
        // Vec growth never charges the measured passes.
        assert_eq!(exchange(&mut engine, &batch, large), per_part * large as f64);

        let (sum_small, allocs_small) =
            measure(|| exchange(&mut engine, &batch, SMALL_PARTS));
        assert_eq!(sum_small, per_part * SMALL_PARTS as f64);

        let (sum_large, allocs_large) = measure(|| exchange(&mut engine, &batch, large));
        assert_eq!(sum_large, per_part * large as f64);

        // The large exchange moves 8×–1024× the bytes. If any path
        // allocated per part, `allocs_large` would scale with the part
        // count; constant memory means both exchanges pay only the
        // fixed per-call cost. A small fixed slack absorbs incidental
        // one-time allocations (lazy statics, map rehashes).
        assert!(
            allocs_large <= allocs_small + 16,
            "streamed exchange allocates per part: {SMALL_PARTS} parts -> {allocs_small} allocs, \
             {large} parts -> {allocs_large} allocs"
        );

        server.shutdown();
    }
}
