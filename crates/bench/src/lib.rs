//! # bench — the experiment harnesses for the paper's evaluation (§6)
//!
//! Each table/figure has a binary that regenerates it:
//!
//! | artifact | binary | what it shows |
//! |----------|--------|---------------|
//! | Table 1  | `table1_sizes` | serialization size & overhead, model size 1000 |
//! | Figure 4 | `fig4_small_lan` | small-message response time on the LAN |
//! | Figure 5 | `fig5_large_lan` | large-message bandwidth on the LAN |
//! | Figure 6 | `fig6_large_wan` | large-message bandwidth on the WAN |
//!
//! Methodology (see DESIGN.md "Substitutions"): response times compose
//! **measured CPU costs** — real serialization, parsing, netCDF codec
//! and verification work executed on this machine — with **simulated
//! network/disk/authentication durations** from the calibrated `netsim`
//! models. The absolute numbers therefore differ from the paper's 2006
//! testbed, but the forces that shape the curves (float↔ASCII conversion
//! growth, per-message fixed costs, window-limited streams) are all
//! present, so who-wins/where-crossovers-fall is reproducible. Criterion
//! micro-benches (`benches/`) cover the ablations A1–A6.

#[cfg(feature = "alloc-counter")]
pub mod alloc_counter;
#[cfg(feature = "alloc-counter")]
mod streaming_gate;
pub mod cpu;
pub mod schemes;
pub mod workload;

pub use cpu::CpuCosts;
pub use schemes::{Scheme, SchemeOutcome};
pub use workload::Workload;
