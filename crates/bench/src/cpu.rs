//! Measured CPU costs.
//!
//! Everything here is *measured on the running machine*, not modeled:
//! the harnesses time the real codecs over the real workload and inject
//! the durations into the virtual-time composition. This keeps the one
//! cost the paper identifies as dominant — "the conversion between
//! floating-point numbers and their ASCII representation" (§6.2) —
//! genuine rather than assumed.

use std::time::{Duration, Instant};

use netcdf3::NcFile;

use crate::workload::{netcdf_file, Workload};

/// Per-operation CPU durations for one workload size.
#[derive(Debug, Clone, Copy)]
pub struct CpuCosts {
    /// bXDM → XML 1.0 text.
    pub xml_encode: Duration,
    /// XML 1.0 text → bXDM (typed recovery included).
    pub xml_decode: Duration,
    /// bXDM → BXSA frames.
    pub bxsa_encode: Duration,
    /// BXSA frames → bXDM.
    pub bxsa_decode: Duration,
    /// Dataset → netCDF-3 bytes.
    pub netcdf_encode: Duration,
    /// netCDF-3 bytes → dataset.
    pub netcdf_decode: Duration,
    /// The server's per-value verification sweep.
    pub verify: Duration,
}

/// Time `f`, taking the minimum of `reps` runs (minimum is the standard
/// low-noise estimator for deterministic workloads).
pub fn time_min<T>(reps: usize, mut f: impl FnMut() -> T) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        let out = f();
        let elapsed = start.elapsed();
        std::hint::black_box(out);
        if elapsed < best {
            best = elapsed;
        }
    }
    best
}

impl CpuCosts {
    /// Measure every codec path over a prepared workload.
    ///
    /// `reps` trades precision for harness runtime; the Figure 4 harness
    /// uses more repetitions than the 64 MB points of Figures 5/6.
    pub fn measure(w: &Workload, reps: usize) -> CpuCosts {
        let reps = reps.max(1);
        let xml_encode = time_min(reps, || {
            let Ok(s) = xmltext::to_string(&w.request_doc);
            s
        });
        let xml_text = std::str::from_utf8(&w.xml_bytes).expect("xml is utf8");
        let xml_decode = time_min(reps, || xmltext::parse(xml_text).expect("parse"));
        let bxsa_encode = time_min(reps, || bxsa::encode(&w.request_doc).expect("encode"));
        let bxsa_decode = time_min(reps, || bxsa::decode(&w.bxsa_bytes).expect("decode"));
        let netcdf_encode = time_min(reps, || {
            netcdf_file(&w.index, &w.values).to_bytes().expect("nc")
        });
        let netcdf_decode = time_min(reps, || {
            NcFile::from_bytes(&w.netcdf_bytes).expect("nc parse")
        });
        let verify = time_min(reps, || bxsoap::verify_dataset(&w.index, &w.values));
        CpuCosts {
            xml_encode,
            xml_decode,
            bxsa_encode,
            bxsa_decode,
            netcdf_encode,
            netcdf_decode,
            verify,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xml_costs_dominate_binary_costs() {
        // The paper's core observation, measured live: the textual codec
        // is far more expensive than the binary one for numeric data.
        let w = Workload::prepare(20_000, 5);
        let costs = CpuCosts::measure(&w, 3);
        assert!(
            costs.xml_encode > costs.bxsa_encode * 3,
            "xml encode {:?} should dwarf bxsa encode {:?}",
            costs.xml_encode,
            costs.bxsa_encode
        );
        assert!(
            costs.xml_decode > costs.bxsa_decode * 3,
            "xml decode {:?} should dwarf bxsa decode {:?}",
            costs.xml_decode,
            costs.bxsa_decode
        );
    }

    #[test]
    fn time_min_is_minimum() {
        let mut calls = 0;
        let d = time_min(5, || {
            calls += 1;
        });
        assert_eq!(calls, 5);
        assert!(d < Duration::from_secs(1));
    }
}
