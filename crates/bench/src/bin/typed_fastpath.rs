//! PR 8 acceptance harness: the typed struct↔wire fast path against the
//! generic element-tree pipeline, both encodings, encode and decode,
//! across payload sizes.
//!
//! Both paths start and end at the same place a caller does — a Rust
//! struct on one side, SOAP envelope bytes on the other — so the tree
//! rows pay what the generic engine actually pays: materializing the
//! element tree (encode) or the document (decode) that the typed path
//! skips. The two paths produce byte-identical wire messages (checked
//! here and property-tested in `soap/tests/typed_differential.rs`), so
//! this is a pure CPU-path comparison.
//!
//! Each cell runs 3 repetitions and reports the median of the per-rep
//! mean latencies; per-iteration latencies also feed an `obs::Histogram`
//! so the reported p50/p99 exercise the interpolated quantile estimator.
//!
//! Run with: `cargo run --release -p bench --bin typed_fastpath`
//! Writes BENCH_PR8.json in the current directory.

use std::fmt::Write as _;
use std::time::Instant;

use soap::{EncodingPolicy, TypedDecode, TypedEncoding, TypedScratch};

const SIZES: [usize; 4] = [100, 1_000, 10_000, 100_000];

struct CellStats {
    median_ns: f64,
    p50_ns: u64,
    p99_ns: u64,
}

/// Run `f` for 3 repetitions of `iters` iterations; per-iteration nanos
/// go into a histogram, and the median of the three per-rep means is the
/// headline number.
fn measure(iters: usize, mut f: impl FnMut()) -> CellStats {
    let hist = obs::Histogram::new();
    let mut rep_means = [0f64; 3];
    for mean in &mut rep_means {
        let rep_start = Instant::now();
        for _ in 0..iters {
            let t = Instant::now();
            f();
            hist.observe(t.elapsed().as_nanos() as u64);
        }
        *mean = rep_start.elapsed().as_nanos() as f64 / iters as f64;
    }
    rep_means.sort_by(|a, b| a.total_cmp(b));
    let snap = hist.snapshot();
    CellStats {
        median_ns: rep_means[1],
        p50_ns: snap.quantile(0.5),
        p99_ns: snap.quantile(0.99),
    }
}

/// Iterations per repetition, scaled so large payloads stay affordable.
fn iters_for(model_size: usize) -> usize {
    (4_000_000 / model_size.max(1)).clamp(12, 600)
}

struct Cell {
    model_size: usize,
    encoding: &'static str,
    direction: &'static str,
    tree: CellStats,
    typed: CellStats,
}

impl Cell {
    fn speedup(&self) -> f64 {
        self.tree.median_ns / self.typed.median_ns
    }

    fn typed_beats_tree(&self) -> bool {
        self.typed.median_ns < self.tree.median_ns
    }
}

fn main() {
    let mut cells: Vec<Cell> = Vec::new();

    for &model_size in &SIZES {
        let iters = iters_for(model_size);
        let (index, values) = bxsoap::lead_dataset(model_size, 42);
        let request = bxsoap::VerifyRequest {
            index: index.clone(),
            values: values.clone(),
        };

        let bxsa_enc = soap::BxsaEncoding::default();
        let xml_enc = soap::XmlEncoding::default();
        let mut scratch = TypedScratch::default();

        // Reference wires (typed and tree agree byte-for-byte; assert it).
        let doc = bxsoap::verify_request_envelope(&index, &values).to_document();
        let bxsa_wire = EncodingPolicy::encode(&bxsa_enc, &doc).expect("bxsa encode");
        let xml_wire = EncodingPolicy::encode(&xml_enc, &doc).expect("xml encode");
        let mut typed_wire = Vec::new();
        bxsa_enc
            .encode_typed(&request, None, &mut scratch, &mut typed_wire)
            .expect("typed bxsa encode");
        assert_eq!(typed_wire, bxsa_wire, "typed and tree BXSA wires diverge");
        xml_enc
            .encode_typed(&request, None, &mut scratch, &mut typed_wire)
            .expect("typed xml encode");
        assert_eq!(typed_wire, xml_wire, "typed and tree XML wires diverge");

        // --- encode: struct -> envelope bytes -------------------------
        let mut out = Vec::new();
        let tree = measure(iters, || {
            let doc = bxsoap::verify_request_envelope(&index, &values).to_document();
            bxsa::encode_into(&doc, &mut out).expect("encode");
        });
        let typed = measure(iters, || {
            bxsa_enc
                .encode_typed(&request, None, &mut scratch, &mut out)
                .expect("encode");
        });
        cells.push(Cell { model_size, encoding: "bxsa", direction: "encode", tree, typed });

        let opts = xmltext::XmlWriteOptions::default();
        let mut text = String::new();
        let tree = measure(iters, || {
            let doc = bxsoap::verify_request_envelope(&index, &values).to_document();
            let Ok(()) = xmltext::write_into(&doc, &opts, &mut text);
        });
        let typed = measure(iters, || {
            xml_enc
                .encode_typed(&request, None, &mut scratch, &mut out)
                .expect("encode");
        });
        cells.push(Cell { model_size, encoding: "xml", direction: "encode", tree, typed });

        // --- decode: envelope bytes -> struct -------------------------
        // The tree rows stop at the refilled document — they are spared
        // the field extraction a real handler still owes — and the typed
        // rows land on the finished struct. The handicap favors the tree.
        let mut reused_doc = bxdm::Document::new();
        let tree = measure(iters, || {
            bxsa::decode_into(&bxsa_wire, &mut reused_doc).expect("decode");
        });
        let mut back = bxsoap::VerifyRequest::default();
        let typed = measure(iters, || {
            let r = bxsa_enc.decode_typed_reply(&bxsa_wire, &mut back).expect("decode");
            assert_eq!(r, TypedDecode::Matched);
        });
        assert_eq!(back.values, request.values);
        cells.push(Cell { model_size, encoding: "bxsa", direction: "decode", tree, typed });

        let tree = measure(iters, || {
            // Bytes→struct like the engine: UTF-8 validation included.
            let text = std::str::from_utf8(&xml_wire).expect("utf8");
            xmltext::parse_into(text, &mut reused_doc).expect("parse");
        });
        let typed = measure(iters, || {
            let r = xml_enc.decode_typed_reply(&xml_wire, &mut back).expect("decode");
            assert_eq!(r, TypedDecode::Matched);
        });
        assert_eq!(back.index, request.index);
        cells.push(Cell { model_size, encoding: "xml", direction: "decode", tree, typed });
    }

    // ---- report ------------------------------------------------------
    println!(
        "{:>9} {:>5} {:>7} {:>13} {:>13} {:>8} {:>11} {:>11}",
        "size", "enc", "dir", "tree ns", "typed ns", "speedup", "typed p50", "typed p99"
    );
    let mut all_pass = true;
    for c in &cells {
        all_pass &= c.typed_beats_tree();
        println!(
            "{:>9} {:>5} {:>7} {:>13.0} {:>13.0} {:>7.2}x {:>11} {:>11}",
            c.model_size,
            c.encoding,
            c.direction,
            c.tree.median_ns,
            c.typed.median_ns,
            c.speedup(),
            c.typed.p50_ns,
            c.typed.p99_ns,
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"pr\": 8,\n");
    json.push_str(
        "  \"title\": \"Typed-struct fast path: direct struct<->wire codecs vs the element-tree pipeline\",\n",
    );
    json.push_str(
        "  \"harness\": \"typed_fastpath (struct->bytes and bytes->struct, median of 3 reps; p50/p99 from interpolated log2 histogram quantiles)\",\n",
    );
    json.push_str(
        "  \"machine_note\": \"1-core container; tree decode rows stop at the refilled document (no field extraction), so the tree side is flattered\",\n",
    );
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"model_size\": {}, \"encoding\": \"{}\", \"direction\": \"{}\", \"tree_median_ns\": {:.0}, \"typed_median_ns\": {:.0}, \"speedup\": {:.3}, \"typed_p50_ns\": {}, \"typed_p99_ns\": {}, \"typed_beats_tree\": {}}}{}",
            c.model_size,
            c.encoding,
            c.direction,
            c.tree.median_ns,
            c.typed.median_ns,
            c.speedup(),
            c.typed.p50_ns,
            c.typed.p99_ns,
            c.typed_beats_tree(),
            if i + 1 < cells.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"typed_beats_tree_everywhere\": {all_pass}");
    json.push_str("}\n");
    std::fs::write("BENCH_PR8.json", &json).expect("write BENCH_PR8.json");
    println!("\nwrote BENCH_PR8.json");

    assert!(
        all_pass,
        "typed path must beat the tree pipeline in every cell (see table above)"
    );
}
