//! Open-loop load harness for the evented server core (PR 6).
//!
//! Measures the things the reactor port was built for:
//!
//! 1. **10k sustain** — ≥10,000 concurrent keep-alive HTTP connections
//!    against one evented server, all exchanging requests at once.
//! 2. **Evented vs threaded** — the same echo workload against the
//!    reactor servers and against classic thread-per-connection baselines
//!    (implemented *here*, so the transport crate itself stays free of
//!    per-connection threads).
//! 3. **Keep-alive vs one-shot** — requests-per-second with connection
//!    reuse vs a fresh connection per request, across the Table 1 payload
//!    grid (§6: 12 B/value × model sizes 10/100/1000/4000).
//!
//! The client is itself an epoll readiness loop (reusing
//! [`transport::Poller`]): a thread-per-connection client cannot drive
//! 10k sockets from the one-core container this runs in. Each connection
//! runs a closed loop (next request issued as soon as the response
//! lands); across the population the offered load is open — no
//! connection waits for any other. Latency is recorded per exchange into
//! an [`obs::Histogram`] (log₂ buckets, so percentiles are power-of-two
//! resolution) from first request byte written to last response byte
//! read.
//!
//! The server under test runs in a **subprocess** (`--serve <mode>`) so
//! client and server each get the container's full fd budget, and a
//! server panic is an observable crash rather than a silent wedge.
//!
//! Run with: `cargo run --release -p bench --bin loadgen` (full grid,
//! prints the BENCH_PR6 JSON on stdout) or `-- --smoke` (1k connections,
//! one grid cell, asserts sanity bounds; the CI job).
//!
//! PR 7 adds hostile-client scenarios against the overload-protected
//! server (`--overload` prints the BENCH_PR7 JSON; `--overload-smoke` is
//! the CI job): a connection flood past the admission cap, a slow-loris
//! swarm against the whole-message deadline, stalled readers against the
//! write budget, and an open-loop 2× overload measuring the latency of
//! *admitted* requests while the excess is turned away with 503s.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use obs::Histogram;
use transport::{Events, HttpRequest, HttpResponse, HttpServer, Interest, Poller, TcpServer};
use transport::{HttpServerConfig, OverloadConfig};

/// Table 1 payload grid: 12 B per array value at model sizes
/// 10 / 100 / 1000 / 4000.
const PAYLOAD_GRID: [usize; 4] = [120, 1_200, 12_000, 48_000];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--serve") => serve(args.get(1).map(String::as_str).unwrap_or("")),
        Some("--smoke") => smoke(),
        Some("--overload") => overload_report(),
        Some("--overload-smoke") => overload_smoke(),
        _ => full_grid(),
    }
}

// ---------------------------------------------------------------------
// Server subprocess
// ---------------------------------------------------------------------

/// Child-process entry: bind the requested server flavor on an ephemeral
/// port, print `ADDR <addr>` for the parent, then park until killed.
fn serve(mode: &str) {
    let addr = match mode {
        "http-evented" => {
            let server = HttpServer::bind_with(
                "127.0.0.1:0",
                HttpServerConfig {
                    read_timeout: Some(Duration::from_secs(60)),
                    write_timeout: Some(Duration::from_secs(60)),
                    metrics_path: None,
                    overload: OverloadConfig::default(),
                },
                |req| HttpResponse::ok("application/octet-stream", req.body.clone()),
            )
            .expect("bind http-evented");
            let addr = server.local_addr();
            std::mem::forget(server); // lives until the process is killed
            addr
        }
        "tcp-evented" => {
            let server = TcpServer::bind("127.0.0.1:0", |req| req).expect("bind tcp-evented");
            let addr = server.local_addr();
            std::mem::forget(server);
            addr
        }
        "http-threaded" => threaded_http_server(),
        "tcp-threaded" => threaded_tcp_server(),
        // Admission-capped echo: 128 connections (BX_SERVER_MAX_CONNS
        // overrides), accept-then-reject, a whole-message deadline that
        // kills slow-loris trickles, and a tight write budget that kills
        // stalled readers. Metrics stay scrapable under attack.
        "http-overload" => {
            let server = HttpServer::bind_with(
                "127.0.0.1:0",
                HttpServerConfig {
                    read_timeout: Some(Duration::from_secs(5)),
                    write_timeout: Some(Duration::from_secs(1)),
                    metrics_path: Some("/metrics"),
                    overload: OverloadConfig {
                        max_connections: Some(128),
                        reject_when_full: true,
                        message_deadline: Some(Duration::from_millis(500)),
                        ..OverloadConfig::default()
                    },
                },
                |req| HttpResponse::ok("application/octet-stream", req.body.clone()),
            )
            .expect("bind http-overload");
            let addr = server.local_addr();
            std::mem::forget(server);
            addr
        }
        // Slow echo (20 ms nap per request) with request-level shedding:
        // the inflight bound and queue-delay signal turn the excess away
        // as 503s before any handler work.
        "http-slow" => {
            let server = HttpServer::bind_with(
                "127.0.0.1:0",
                HttpServerConfig {
                    read_timeout: Some(Duration::from_secs(5)),
                    write_timeout: Some(Duration::from_secs(5)),
                    metrics_path: Some("/metrics"),
                    overload: OverloadConfig {
                        max_inflight: Some(2),
                        shed_queue_delay: Some(Duration::from_millis(100)),
                        ..OverloadConfig::default()
                    },
                },
                |req| {
                    std::thread::sleep(Duration::from_millis(20));
                    HttpResponse::ok("application/octet-stream", req.body.clone())
                },
            )
            .expect("bind http-slow");
            let addr = server.local_addr();
            std::mem::forget(server);
            addr
        }
        other => panic!("unknown serve mode {other:?}"),
    };
    println!("ADDR {addr}");
    use std::io::Write as _;
    std::io::stdout().flush().expect("flush addr line");
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// The pre-reactor baseline, preserved here for comparison: one OS
/// thread per accepted connection, blocking reads and writes, keep-alive
/// honored by looping until the client says close.
fn threaded_http_server() -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind http-threaded");
    let addr = listener.local_addr().expect("local addr");
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            std::thread::spawn(move || {
                let _ = stream.set_nodelay(true);
                let mut reader = BufReader::new(stream);
                while let Ok(req) = HttpRequest::read_from(&mut reader) {
                    let keep_alive = !req
                        .header("connection")
                        .is_some_and(|c| c.eq_ignore_ascii_case("close"));
                    let resp = HttpResponse::ok("application/octet-stream", req.body);
                    if resp.write_to_with(&mut reader.get_mut(), keep_alive).is_err()
                        || !keep_alive
                    {
                        break;
                    }
                }
            });
        }
    });
    addr
}

/// Thread-per-connection framed-TCP echo baseline.
fn threaded_tcp_server() -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind tcp-threaded");
    let addr = listener.local_addr().expect("local addr");
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            std::thread::spawn(move || {
                let _ = stream.set_nodelay(true);
                let mut payload = Vec::new();
                loop {
                    let mut prefix = [0u8; 4];
                    if stream.read_exact(&mut prefix).is_err() {
                        break;
                    }
                    let len = u32::from_be_bytes(prefix) as usize;
                    payload.resize(len, 0);
                    if stream.read_exact(&mut payload).is_err() {
                        break;
                    }
                    if stream.write_all(&prefix).is_err() || stream.write_all(&payload).is_err() {
                        break;
                    }
                }
            });
        }
    });
    addr
}

/// Spawn `--serve <mode>` as a subprocess and wait for its `ADDR` line.
struct ServerProc {
    child: Child,
    addr: String,
}

impl ServerProc {
    fn start(mode: &str) -> ServerProc {
        ServerProc::start_with_env(mode, &[])
    }

    /// Start with extra environment for the child — the way the overload
    /// scenarios set `BX_SERVER_MAX_CONNS` / `BX_SERVER_WORKERS`, also
    /// exercising the real env-override path.
    fn start_with_env(mode: &str, env: &[(&str, &str)]) -> ServerProc {
        let exe = std::env::current_exe().expect("current exe");
        let mut cmd = Command::new(exe);
        cmd.arg("--serve").arg(mode).stdout(Stdio::piped());
        for (k, v) in env {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().expect("spawn server subprocess");
        let stdout = child.stdout.take().expect("child stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read ADDR line");
        let addr = line
            .strip_prefix("ADDR ")
            .unwrap_or_else(|| panic!("bad server banner {line:?}"))
            .trim()
            .to_owned();
        ServerProc { child, addr }
    }

    /// `true` while the child is still running — the "zero panics/OOM"
    /// check after an attack (a panicking worker or an OOM kill would
    /// show up as an exited child).
    fn alive(&mut self) -> bool {
        matches!(self.child.try_wait(), Ok(None))
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

// ---------------------------------------------------------------------
// Epoll client
// ---------------------------------------------------------------------

/// How one exchange's response is delimited.
#[derive(Clone, Copy, PartialEq)]
enum Protocol {
    /// 4-byte big-endian length prefix.
    Framed,
    /// HTTP/1.1 head + `Content-Length` body.
    Http,
}

/// Connection lifecycle across exchanges.
#[derive(Clone, Copy, PartialEq)]
enum Reuse {
    /// One socket, many exchanges (framed TCP, HTTP keep-alive).
    KeepAlive,
    /// Fresh socket per exchange (`Connection: close`).
    PerRequest,
}

/// One load-generator connection: a write-then-read exchange loop.
struct LoadConn {
    stream: TcpStream,
    written: usize,
    inbuf: Vec<u8>,
    /// Response head length once delimited (HTTP) — body offset.
    head_len: Option<usize>,
    /// Total response length once known.
    expected: Option<usize>,
    started: Instant,
    reading: bool,
}

impl LoadConn {
    fn connect(addr: &str) -> std::io::Result<LoadConn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        Ok(LoadConn {
            stream,
            written: 0,
            inbuf: Vec::with_capacity(256),
            head_len: None,
            expected: None,
            started: Instant::now(),
            reading: false,
        })
    }

    fn reset(&mut self) {
        self.written = 0;
        self.inbuf.clear();
        self.head_len = None;
        self.expected = None;
        self.started = Instant::now();
        self.reading = false;
    }

    /// Push request bytes; true when the request is fully written.
    fn step_write(&mut self, request: &[u8]) -> std::io::Result<bool> {
        while self.written < request.len() {
            match self.stream.write(&request[self.written..]) {
                Ok(0) => return Err(std::io::ErrorKind::WriteZero.into()),
                Ok(n) => self.written += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.reading = true;
        Ok(true)
    }

    /// Pull response bytes; true when the response is complete.
    fn step_read(&mut self, protocol: Protocol) -> std::io::Result<bool> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if self.complete(protocol)? {
                return Ok(true);
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(std::io::Error::other(format!(
                        "server closed mid-response ({} bytes in)",
                        self.inbuf.len()
                    )))
                }
                Ok(n) => self.inbuf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    fn complete(&mut self, protocol: Protocol) -> std::io::Result<bool> {
        match protocol {
            Protocol::Framed => {
                if self.expected.is_none() && self.inbuf.len() >= 4 {
                    let len =
                        u32::from_be_bytes([self.inbuf[0], self.inbuf[1], self.inbuf[2], self.inbuf[3]]);
                    self.expected = Some(4 + len as usize);
                }
                Ok(self.expected.is_some_and(|e| self.inbuf.len() >= e))
            }
            Protocol::Http => {
                if self.head_len.is_none() {
                    if let Some(pos) = self.inbuf.windows(4).position(|w| w == b"\r\n\r\n") {
                        let head = &self.inbuf[..pos];
                        let body_len = head
                            .split(|&b| b == b'\n')
                            .filter_map(|line| {
                                let line = std::str::from_utf8(line).ok()?;
                                let (name, value) = line.split_once(':')?;
                                name.eq_ignore_ascii_case("content-length")
                                    .then(|| value.trim().parse::<usize>().ok())?
                            })
                            .next()
                            .ok_or_else(|| std::io::Error::other("response without Content-Length"))?;
                        self.head_len = Some(pos + 4);
                        self.expected = Some(pos + 4 + body_len);
                    }
                }
                Ok(self.expected.is_some_and(|e| self.inbuf.len() >= e))
            }
        }
    }
}

/// Outcome of one load cell.
struct CellResult {
    exchanges: u64,
    errors: u64,
    elapsed: Duration,
    /// Fresh sockets opened (per-request mode churns these).
    connects: u64,
    /// Time to get the whole population connected.
    connect_time: Duration,
    latency: Histogram,
    /// 503s received — the server's explicit overload answer. Not
    /// goodput, not an error; the latency histogram covers 200s only.
    shed: u64,
    /// 503s that broke the overload contract (missing `Retry-After` or
    /// `Connection: close`). Must stay zero.
    shed_violations: u64,
}

/// Does a complete 503 response honor the overload contract — a
/// parseable nonzero `Retry-After` and `Connection: close`?
fn shed_contract_ok(response: &[u8]) -> bool {
    let Some(head_end) = response.windows(4).position(|w| w == b"\r\n\r\n") else {
        return false;
    };
    let Ok(head) = std::str::from_utf8(&response[..head_end]) else {
        return false;
    };
    let mut retry_after = false;
    let mut closes = false;
    for line in head.lines().skip(1) {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.eq_ignore_ascii_case("retry-after") {
            retry_after = value.trim().parse::<u64>().is_ok_and(|s| s >= 1);
        }
        if name.eq_ignore_ascii_case("connection") {
            closes = value.trim().eq_ignore_ascii_case("close");
        }
    }
    retry_after && closes
}

impl CellResult {
    fn rps(&self) -> f64 {
        self.exchanges as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    fn quantile_us(&self, q: f64) -> f64 {
        self.latency.snapshot().quantile(q) as f64 / 1_000.0
    }
}

/// Drive `concurrency` connections against `addr` for `duration`.
///
/// Every connection issues its next request the instant the previous
/// response completes (or, in per-request mode, over a fresh socket), so
/// concurrency — not client pacing — is the offered load.
fn run_cell(
    addr: &str,
    protocol: Protocol,
    reuse: Reuse,
    request: &[u8],
    concurrency: usize,
    duration: Duration,
    max_exchanges: u64,
) -> CellResult {
    let poller = Poller::new().expect("client epoll");
    let mut events = Events::with_capacity(4096);
    let mut conns: Vec<Option<LoadConn>> = Vec::with_capacity(concurrency);
    let latency = Histogram::new();
    let mut exchanges = 0u64;
    let mut errors = 0u64;
    let mut connects = 0u64;
    let mut shed = 0u64;
    let mut shed_violations = 0u64;

    let connect_started = Instant::now();
    for token in 0..concurrency {
        match LoadConn::connect(addr) {
            Ok(conn) => {
                poller
                    .add(conn.stream.as_raw_fd(), token as u64, Interest::Writable)
                    .expect("register");
                conns.push(Some(conn));
                connects += 1;
            }
            Err(e) => panic!("connect {} of {concurrency} failed: {e}", token + 1),
        }
    }
    let connect_time = connect_started.elapsed();

    let cell_started = Instant::now();
    let deadline = cell_started + duration;
    let mut live = concurrency;
    // Tokens whose socket died or finished and should reconnect (bounded
    // by the deadline check below so the cell always terminates).
    let mut reconnect: VecDeque<usize> = VecDeque::new();

    while live > 0 {
        let now = Instant::now();
        let finished = now >= deadline || exchanges >= max_exchanges;
        if finished && reconnect.len() == live {
            break; // everything remaining is waiting on a reconnect we won't do
        }
        while let Some(token) = reconnect.pop_front() {
            if finished {
                live -= 1;
                continue;
            }
            match LoadConn::connect(addr) {
                Ok(conn) => {
                    poller
                        .add(conn.stream.as_raw_fd(), token as u64, Interest::Writable)
                        .expect("register");
                    conns[token] = Some(conn);
                    connects += 1;
                }
                Err(_) => {
                    errors += 1;
                    reconnect.push_back(token); // retry next tick
                    break;
                }
            }
        }
        if live == 0 {
            break;
        }
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(100)))
            .expect("epoll wait");
        if n == 0 && Instant::now() >= deadline {
            // Stragglers past the deadline: stop waiting for them.
            for slot in conns.iter_mut() {
                if let Some(conn) = slot.take() {
                    let _ = poller.delete(conn.stream.as_raw_fd());
                }
            }
            break;
        }
        for event in events.iter() {
            let token = event.token as usize;
            let Some(conn) = conns.get_mut(token).and_then(Option::as_mut) else {
                continue;
            };
            let step = drive_conn(conn, protocol, request, event.writable);
            match step {
                Ok(None) => {
                    // Mid-exchange: make sure the interest matches phase.
                    let want = if conn.reading {
                        Interest::Readable
                    } else {
                        Interest::Writable
                    };
                    let _ = poller.modify(conn.stream.as_raw_fd(), event.token, want);
                }
                Ok(Some(elapsed)) => {
                    // An overloaded server's explicit "no": tallied apart
                    // from goodput, checked against the contract, and the
                    // socket (which the server is closing) recycled.
                    if protocol == Protocol::Http && conn.inbuf.starts_with(b"HTTP/1.1 503") {
                        shed += 1;
                        if !shed_contract_ok(&conn.inbuf) {
                            shed_violations += 1;
                        }
                        let conn = conns[token].take().expect("just drove it");
                        let _ = poller.delete(conn.stream.as_raw_fd());
                        if Instant::now() >= deadline {
                            live -= 1;
                        } else {
                            reconnect.push_back(token);
                        }
                        continue;
                    }
                    latency.observe_duration(elapsed);
                    exchanges += 1;
                    let done = Instant::now() >= deadline || exchanges >= max_exchanges;
                    match (reuse, done) {
                        (Reuse::KeepAlive, false) => {
                            conn.reset();
                            let _ = poller.modify(
                                conn.stream.as_raw_fd(),
                                event.token,
                                Interest::Writable,
                            );
                        }
                        (Reuse::PerRequest, false) => {
                            let conn = conns[token].take().expect("just drove it");
                            let _ = poller.delete(conn.stream.as_raw_fd());
                            drop(conn);
                            reconnect.push_back(token);
                        }
                        (_, true) => {
                            let conn = conns[token].take().expect("just drove it");
                            let _ = poller.delete(conn.stream.as_raw_fd());
                            live -= 1;
                        }
                    }
                }
                Err(_) => {
                    errors += 1;
                    let conn = conns[token].take().expect("just drove it");
                    let _ = poller.delete(conn.stream.as_raw_fd());
                    if Instant::now() >= deadline {
                        live -= 1;
                    } else {
                        reconnect.push_back(token);
                    }
                }
            }
        }
    }

    CellResult {
        exchanges,
        errors,
        // Actual wall time, not the nominal duration: a cell capped by
        // `max_exchanges` finishes early and must not under-report.
        elapsed: cell_started.elapsed(),
        connects,
        connect_time,
        latency,
        shed,
        shed_violations,
    }
}

/// Advance one connection as far as readiness allows; `Some(latency)`
/// when an exchange completed.
fn drive_conn(
    conn: &mut LoadConn,
    protocol: Protocol,
    request: &[u8],
    writable: bool,
) -> std::io::Result<Option<Duration>> {
    if !conn.reading && (writable || conn.written > 0) && !conn.step_write(request)? {
        return Ok(None);
    }
    if conn.reading && conn.step_read(protocol)? {
        return Ok(Some(conn.started.elapsed()));
    }
    Ok(None)
}

// ---------------------------------------------------------------------
// Request builders
// ---------------------------------------------------------------------

fn framed_request(payload: usize) -> Vec<u8> {
    let mut wire = Vec::with_capacity(4 + payload);
    wire.extend_from_slice(&(payload as u32).to_be_bytes());
    wire.resize(4 + payload, 0x42);
    wire
}

fn http_request(payload: usize, keep_alive: bool) -> Vec<u8> {
    let req = HttpRequest::post("/echo", "application/octet-stream", vec![0x42; payload]);
    let mut wire = Vec::new();
    req.write_to_with(&mut wire, keep_alive).expect("serialize");
    wire
}

// ---------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------

fn sustain(connections: usize, duration: Duration) -> (CellResult, f64) {
    let server = ServerProc::start("http-evented");
    let result = run_cell(
        &server.addr,
        Protocol::Http,
        Reuse::KeepAlive,
        &http_request(PAYLOAD_GRID[0], true),
        connections,
        duration,
        u64::MAX,
    );
    let conn_rate = result.connects as f64 / result.connect_time.as_secs_f64().max(1e-9);
    (result, conn_rate)
}

struct Comparison {
    mode: &'static str,
    rps: f64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    errors: u64,
}

fn compare_servers(concurrency: usize, duration: Duration) -> Vec<Comparison> {
    let cells: [(&str, Protocol); 4] = [
        ("http-evented", Protocol::Http),
        ("http-threaded", Protocol::Http),
        ("tcp-evented", Protocol::Framed),
        ("tcp-threaded", Protocol::Framed),
    ];
    cells
        .iter()
        .map(|&(mode, protocol)| {
            let server = ServerProc::start(mode);
            let request = match protocol {
                Protocol::Http => http_request(PAYLOAD_GRID[1], true),
                Protocol::Framed => framed_request(PAYLOAD_GRID[1]),
            };
            let r = run_cell(
                &server.addr,
                protocol,
                Reuse::KeepAlive,
                &request,
                concurrency,
                duration,
                u64::MAX,
            );
            eprintln!(
                "  {mode:>13}: {:.0} req/s, p99 {:.0} µs, {} errors",
                r.rps(),
                r.quantile_us(0.99),
                r.errors
            );
            Comparison {
                mode,
                rps: r.rps(),
                p50_us: r.quantile_us(0.5),
                p99_us: r.quantile_us(0.99),
                p999_us: r.quantile_us(0.999),
                errors: r.errors,
            }
        })
        .collect()
}

struct GridRow {
    payload: usize,
    keepalive_rps: f64,
    close_rps: f64,
    keepalive_p99_us: f64,
    close_p99_us: f64,
}

fn keepalive_vs_close(
    payloads: &[usize],
    concurrency: usize,
    duration: Duration,
    close_cap: u64,
) -> Vec<GridRow> {
    let server = ServerProc::start("http-evented");
    payloads
        .iter()
        .map(|&payload| {
            let ka = run_cell(
                &server.addr,
                Protocol::Http,
                Reuse::KeepAlive,
                &http_request(payload, true),
                concurrency,
                duration,
                u64::MAX,
            );
            // One-shot churns ephemeral ports, so it is additionally
            // capped by exchange count to stay inside the port range.
            let close = run_cell(
                &server.addr,
                Protocol::Http,
                Reuse::PerRequest,
                &http_request(payload, false),
                concurrency,
                duration,
                close_cap,
            );
            eprintln!(
                "  {payload:>6} B: keep-alive {:.0} req/s vs close {:.0} req/s",
                ka.rps(),
                close.rps()
            );
            GridRow {
                payload,
                keepalive_rps: ka.rps(),
                close_rps: close.rps(),
                keepalive_p99_us: ka.quantile_us(0.99),
                close_p99_us: close.quantile_us(0.99),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Overload scenarios (PR 7)
// ---------------------------------------------------------------------

/// Sum of every sample of a metric family in one `/metrics` scrape.
fn scrape_metric(addr: &str, name: &str) -> Option<f64> {
    let text = transport::http_get(addr, "/metrics").ok()?;
    let text = std::str::from_utf8(&text).ok()?;
    let mut total = 0.0;
    let mut seen = false;
    for line in text.lines() {
        if line.starts_with(name)
            && matches!(line.as_bytes().get(name.len()), Some(b'{' | b' '))
        {
            if let Some(v) = line.rsplit(' ').next().and_then(|v| v.parse::<f64>().ok()) {
                total += v;
                seen = true;
            }
        }
    }
    seen.then_some(total)
}

struct OverloadOutcome {
    unloaded_p99_us: f64,
    unloaded_rps: f64,
    loaded_p99_us: f64,
    loaded_rps: f64,
    served: u64,
    shed: u64,
    shed_violations: u64,
    errors: u64,
    server_survived: bool,
}

/// Open-loop overload: baseline at half the admission cap, then 2× the
/// cap. The server keeps serving what it admitted and turns the rest
/// away with contract-carrying 503s.
fn openloop_overload(cap: usize, duration: Duration) -> OverloadOutcome {
    let cap_s = cap.to_string();
    let mut server =
        ServerProc::start_with_env("http-overload", &[("BX_SERVER_MAX_CONNS", &cap_s)]);
    let request = http_request(PAYLOAD_GRID[0], true);
    let unloaded = run_cell(
        &server.addr,
        Protocol::Http,
        Reuse::KeepAlive,
        &request,
        (cap / 2).max(1),
        duration,
        u64::MAX,
    );
    let loaded = run_cell(
        &server.addr,
        Protocol::Http,
        Reuse::KeepAlive,
        &request,
        cap * 2,
        duration,
        u64::MAX,
    );
    eprintln!(
        "  unloaded p99 {:.0} µs / {:.0} req/s; 2x-overload p99 {:.0} µs / {:.0} req/s goodput, {} shed ({} contract violations), {} errors",
        unloaded.quantile_us(0.99),
        unloaded.rps(),
        loaded.quantile_us(0.99),
        loaded.rps(),
        loaded.shed,
        unloaded.shed_violations + loaded.shed_violations,
        unloaded.errors + loaded.errors,
    );
    OverloadOutcome {
        unloaded_p99_us: unloaded.quantile_us(0.99),
        unloaded_rps: unloaded.rps(),
        loaded_p99_us: loaded.quantile_us(0.99),
        loaded_rps: loaded.rps(),
        served: loaded.exchanges,
        shed: unloaded.shed + loaded.shed,
        shed_violations: unloaded.shed_violations + loaded.shed_violations,
        errors: unloaded.errors + loaded.errors,
        server_survived: server.alive(),
    }
}

struct FloodOutcome {
    attempted: usize,
    admitted: usize,
    rejected: usize,
    contract_violations: usize,
    cap: usize,
    server_survived: bool,
}

/// Connection flood: open `total` idle connections at once against a cap
/// of `cap`. At most `cap` may be admitted; the rest must receive the
/// canned rejection and a close, never a silent hang.
fn connection_flood(cap: usize, total: usize) -> FloodOutcome {
    let cap_s = cap.to_string();
    let mut server =
        ServerProc::start_with_env("http-overload", &[("BX_SERVER_MAX_CONNS", &cap_s)]);
    let mut held: Vec<TcpStream> = Vec::with_capacity(total);
    for n in 0..total {
        match TcpStream::connect(&server.addr) {
            Ok(s) => {
                s.set_nonblocking(true).expect("nonblocking");
                held.push(s);
            }
            Err(e) => panic!("flood connect {n}/{total}: {e}"),
        }
    }
    // Give the acceptor time to classify everyone, then sort the
    // population: data or close = rejected, silence = admitted.
    std::thread::sleep(Duration::from_millis(500));
    let mut admitted = 0;
    let mut rejected = 0;
    let mut contract_violations = 0;
    for mut s in held {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 1024];
        let verdict = loop {
            match s.read(&mut chunk) {
                Ok(0) => break "rejected",
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    break if buf.is_empty() { "admitted" } else { "rejected" }
                }
                Err(_) => break "rejected",
            }
        };
        if verdict == "admitted" {
            admitted += 1;
        } else {
            rejected += 1;
            // A rejection that sent bytes must be the full 503 contract;
            // a silent close (empty buffer) is acceptable parting.
            let contract_held =
                buf.is_empty() || (buf.starts_with(b"HTTP/1.1 503") && shed_contract_ok(&buf));
            if !contract_held {
                contract_violations += 1;
            }
        }
    }
    eprintln!(
        "  flood {total} conns vs cap {cap}: {admitted} admitted, {rejected} rejected, {contract_violations} contract violations"
    );
    FloodOutcome {
        attempted: total,
        admitted,
        rejected,
        contract_violations,
        cap,
        server_survived: server.alive(),
    }
}

/// One slow-loris connection: a trickling request head, one byte per
/// tick, designed to dodge any timeout that re-arms on progress.
fn loris_connect(addr: &str) -> Option<(TcpStream, usize)> {
    let stream = TcpStream::connect(addr).ok()?;
    stream.set_nonblocking(true).ok()?;
    Some((stream, 0))
}

/// Maintain a `population`-strong slow-loris swarm for `duration`;
/// returns how many attacker sockets the server terminated (rejected at
/// the cap or reaped by the whole-message deadline).
fn loris_swarm(addr: &str, population: usize, duration: Duration) -> u64 {
    const HEAD: &[u8] = b"POST /echo HTTP/1.1\r\nContent-Length: 1000000\r\nX-Pad: ";
    let mut socks: Vec<Option<(TcpStream, usize)>> =
        (0..population).map(|_| loris_connect(addr)).collect();
    let mut reaped = 0u64;
    let deadline = Instant::now() + duration;
    while Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(100));
        for slot in socks.iter_mut() {
            let Some((stream, sent)) = slot else {
                *slot = loris_connect(addr);
                continue;
            };
            // Drain: a 503 or EOF here is the server turning us away.
            let mut buf = [0u8; 512];
            match stream.read(&mut buf) {
                Ok(0) => {
                    reaped += 1;
                    *slot = loris_connect(addr);
                    continue;
                }
                Ok(_) => {} // rejection bytes; the close lands next read
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(_) => {
                    reaped += 1;
                    *slot = loris_connect(addr);
                    continue;
                }
            }
            // The trickle: one byte of request head per tick — enough
            // progress to re-arm any per-read timeout forever.
            let byte = if *sent < HEAD.len() { HEAD[*sent] } else { b'a' };
            match stream.write(&[byte]) {
                Ok(_) => *sent += 1,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(_) => {
                    reaped += 1;
                    *slot = loris_connect(addr);
                }
            }
        }
    }
    reaped
}

struct LorisOutcome {
    swarm: usize,
    cap: usize,
    reaped: u64,
    /// Peak of `bx_server_connections_active` observed during the attack.
    max_active: f64,
    scrape_samples: u32,
    victim_exchanges: u64,
    victim_shed: u64,
    server_survived: bool,
}

/// Slow-loris swarm vs the whole-message deadline: `swarm` trickling
/// connections attack a cap-`cap` server while a well-behaved client
/// keeps calling and a pre-attack keep-alive scrape connection samples
/// the active-connection gauge.
fn slowloris_attack(cap: usize, swarm: usize, duration: Duration) -> LorisOutcome {
    let cap_s = cap.to_string();
    let mut server =
        ServerProc::start_with_env("http-overload", &[("BX_SERVER_MAX_CONNS", &cap_s)]);
    let addr = server.addr.clone();

    // The scrape connection is established (admitted) before the attack
    // and kept alive through it — metrics scrapes are shed-exempt, so
    // observability survives the incident.
    let scrape_stream = TcpStream::connect(&addr).expect("scrape connect");
    scrape_stream.set_nodelay(true).expect("nodelay");
    let scrape_until = Instant::now() + duration;
    let scraper = std::thread::spawn(move || {
        let mut reader = BufReader::new(scrape_stream);
        let mut max_active = 0.0f64;
        let mut samples = 0u32;
        let request = HttpRequest::get("/metrics");
        while Instant::now() < scrape_until {
            if request.write_to_with(reader.get_mut(), true).is_err() {
                break;
            }
            let Ok(resp) = HttpResponse::read_from(&mut reader) else {
                break;
            };
            if let Ok(text) = std::str::from_utf8(&resp.body) {
                for line in text.lines() {
                    if line.starts_with("bx_server_connections_active") {
                        if let Some(v) =
                            line.rsplit(' ').next().and_then(|v| v.parse::<f64>().ok())
                        {
                            max_active = max_active.max(v);
                            samples += 1;
                        }
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        (max_active, samples)
    });

    let attack_addr = addr.clone();
    let attack = std::thread::spawn(move || loris_swarm(&attack_addr, swarm, duration));

    // Let the attack saturate the cap, then measure a well-behaved
    // client through the remainder: the deadline reaps attackers every
    // 500 ms, so slots keep opening.
    std::thread::sleep(duration / 4);
    let victim = run_cell(
        &addr,
        Protocol::Http,
        Reuse::KeepAlive,
        &http_request(PAYLOAD_GRID[0], true),
        4,
        duration / 2,
        u64::MAX,
    );

    let reaped = attack.join().expect("attack thread");
    let (max_active, scrape_samples) = scraper.join().expect("scrape thread");
    eprintln!(
        "  loris swarm {swarm} vs cap {cap}: {reaped} attacker conns terminated, peak active {max_active:.0} ({scrape_samples} samples), victim served {} (shed {})",
        victim.exchanges, victim.shed,
    );
    LorisOutcome {
        swarm,
        cap,
        reaped,
        max_active,
        scrape_samples,
        victim_exchanges: victim.exchanges,
        victim_shed: victim.shed,
        server_survived: server.alive(),
    }
}

struct StalledOutcome {
    stalled: usize,
    killed: usize,
    victim_exchanges: u64,
    server_survived: bool,
}

/// Stalled readers: each sends a large echo request and never reads the
/// response, pinning the server's write path until the write budget
/// (1 s in the `http-overload` profile) kills the connection.
fn stalled_readers(count: usize, payload: usize) -> StalledOutcome {
    let mut server = ServerProc::start("http-overload");
    let request = http_request(payload, true);
    let mut socks = Vec::with_capacity(count);
    for n in 0..count {
        let mut s = TcpStream::connect(&server.addr)
            .unwrap_or_else(|e| panic!("stalled connect {n}/{count}: {e}"));
        s.write_all(&request).expect("write stalled request");
        socks.push(s);
    }
    // Past the write budget every stalled connection must be gone; the
    // kill shows up to the (finally reading) client as EOF or a reset.
    std::thread::sleep(Duration::from_millis(2_500));
    let mut killed = 0;
    for mut s in socks {
        s.set_nonblocking(true).expect("nonblocking");
        let mut sink = [0u8; 64 * 1024];
        loop {
            match s.read(&mut sink) {
                Ok(0) => {
                    killed += 1;
                    break;
                }
                Ok(_) => continue, // drain what the server got out
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    break; // still open: the write budget failed to kill it
                }
                Err(_) => {
                    killed += 1;
                    break;
                }
            }
        }
    }
    let victim = run_cell(
        &server.addr,
        Protocol::Http,
        Reuse::KeepAlive,
        &http_request(PAYLOAD_GRID[0], true),
        2,
        Duration::from_millis(500),
        200,
    );
    eprintln!(
        "  {count} stalled readers ({payload} B echo): {killed} killed by the write budget, victim served {}",
        victim.exchanges
    );
    StalledOutcome {
        stalled: count,
        killed,
        victim_exchanges: victim.exchanges,
        server_survived: server.alive(),
    }
}

struct ShedOutcome {
    served: u64,
    shed: u64,
    shed_violations: u64,
    shed_total_metric: f64,
    server_survived: bool,
}

/// Request-level shedding on a slow service: drive far more concurrency
/// than the inflight bound admits and confirm the excess is answered
/// with 503s before handler work, visible in `bx_server_shed_total`.
fn shed_slow_service(concurrency: usize, duration: Duration) -> ShedOutcome {
    let mut server =
        ServerProc::start_with_env("http-slow", &[("BX_SERVER_WORKERS", "4")]);
    let cell = run_cell(
        &server.addr,
        Protocol::Http,
        Reuse::KeepAlive,
        &http_request(PAYLOAD_GRID[0], true),
        concurrency,
        duration,
        u64::MAX,
    );
    let shed_total = scrape_metric(&server.addr, "bx_server_shed_total").unwrap_or(0.0);
    eprintln!(
        "  slow service at {concurrency} conns: {} served, {} shed client-side, bx_server_shed_total {shed_total:.0}",
        cell.exchanges, cell.shed
    );
    ShedOutcome {
        served: cell.exchanges,
        shed: cell.shed,
        shed_violations: cell.shed_violations,
        shed_total_metric: shed_total,
        server_survived: server.alive(),
    }
}

// ---------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------

fn smoke() {
    eprintln!("loadgen smoke: 1k-connection sustain");
    let (sustain, conn_rate) = sustain(1_000, Duration::from_secs(2));
    eprintln!(
        "  1000 conns in {:.0} ms ({conn_rate:.0} conn/s), {} exchanges, {} errors, p99 {:.0} µs",
        sustain.connect_time.as_secs_f64() * 1e3,
        sustain.exchanges,
        sustain.errors,
        sustain.quantile_us(0.99),
    );
    assert_eq!(sustain.errors, 0, "smoke run must be error free");
    assert!(
        sustain.exchanges >= 1_000,
        "every connection must complete at least one exchange"
    );
    // Generous: catches only order-of-magnitude regressions (seconds of
    // tail latency at 1k connections), not scheduler noise.
    assert!(
        sustain.quantile_us(0.99) < 5_000_000.0,
        "p99 {} µs exceeds the 5 s smoke bound",
        sustain.quantile_us(0.99)
    );

    eprintln!("loadgen smoke: keep-alive vs one-shot (1.2 KB)");
    let grid = keepalive_vs_close(&PAYLOAD_GRID[1..2], 32, Duration::from_secs(1), 2_000);
    assert!(
        grid[0].keepalive_rps > grid[0].close_rps,
        "keep-alive ({:.0} req/s) must beat one-shot ({:.0} req/s)",
        grid[0].keepalive_rps,
        grid[0].close_rps
    );
    eprintln!("loadgen smoke: PASS");
}

/// CI job: every hostile-client scenario at reduced scale, asserted.
fn overload_smoke() {
    eprintln!("overload smoke: open-loop 2x vs cap 64");
    let over = openloop_overload(64, Duration::from_millis(1_500));
    assert!(over.server_survived, "server died under 2x overload");
    assert!(over.served > 0, "admitted requests must still be served");
    assert!(over.shed > 0, "2x the cap must produce rejections");
    assert_eq!(
        over.shed_violations, 0,
        "every 503 must carry Retry-After and Connection: close"
    );
    // The acceptance bound, with a noise floor for the shared 1-core
    // container (log2 histogram buckets make small p99s coarse too).
    assert!(
        over.loaded_p99_us <= 3.0 * over.unloaded_p99_us + 50_000.0,
        "admitted p99 {} µs vs unloaded {} µs breaches the 3x bound",
        over.loaded_p99_us,
        over.unloaded_p99_us
    );
    assert!(
        over.errors <= (over.served + over.shed) / 50 + 5,
        "{} transport errors is beyond the RST-race allowance",
        over.errors
    );

    eprintln!("overload smoke: flood 128 conns vs cap 32");
    let flood = connection_flood(32, 128);
    assert!(flood.server_survived, "server died under connection flood");
    assert!(
        flood.admitted <= flood.cap,
        "{} admitted past the cap of {}",
        flood.admitted,
        flood.cap
    );
    assert!(
        flood.rejected >= flood.attempted - flood.cap,
        "only {} of {} overflow connections were rejected",
        flood.rejected,
        flood.attempted - flood.cap
    );
    assert_eq!(flood.contract_violations, 0, "rejections must carry the contract");

    eprintln!("overload smoke: slow-loris 200 vs cap 32");
    let loris = slowloris_attack(32, 200, Duration::from_secs(2));
    assert!(loris.server_survived, "server died under slow-loris swarm");
    assert!(loris.reaped > 0, "the deadline must reap trickling connections");
    assert!(
        loris.scrape_samples > 0,
        "metrics must stay scrapable during the attack"
    );
    assert!(
        loris.max_active <= loris.cap as f64,
        "active connections {} exceeded the cap of {}",
        loris.max_active,
        loris.cap
    );
    assert!(
        loris.victim_exchanges > 0,
        "a well-behaved client must get through the attack"
    );

    eprintln!("overload smoke: request shedding on a slow service");
    let shed = shed_slow_service(32, Duration::from_millis(1_500));
    assert!(shed.server_survived, "server died while shedding");
    assert!(shed.served > 0, "shedding must not starve everyone");
    assert!(shed.shed > 0, "an overdriven slow service must shed");
    assert_eq!(shed.shed_violations, 0, "shed 503s must carry the contract");
    assert!(
        shed.shed_total_metric >= 1.0,
        "bx_server_shed_total must be nonzero after shedding"
    );

    eprintln!("overload smoke: 4 stalled readers");
    let stalled = stalled_readers(4, 48 << 20);
    assert!(stalled.server_survived, "server died on stalled readers");
    assert_eq!(
        stalled.killed, stalled.stalled,
        "the write budget must kill every stalled reader"
    );
    assert!(
        stalled.victim_exchanges > 0,
        "service must continue after stalled readers are reaped"
    );

    eprintln!("overload smoke: PASS");
}

/// Full-scale hostile-client run; prints the BENCH_PR7 JSON on stdout.
fn overload_report() {
    eprintln!("loadgen overload: open-loop 2x vs cap 128");
    let over = openloop_overload(128, Duration::from_secs(3));
    eprintln!("loadgen overload: flood 512 conns vs cap 128");
    let flood = connection_flood(128, 512);
    eprintln!("loadgen overload: slow-loris 1000 vs cap 128");
    let loris = slowloris_attack(128, 1_000, Duration::from_secs(4));
    eprintln!("loadgen overload: request shedding on a slow service");
    let shed = shed_slow_service(64, Duration::from_secs(2));
    eprintln!("loadgen overload: 8 stalled readers");
    let stalled = stalled_readers(8, 48 << 20);

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"pr\": 7,\n");
    out.push_str("  \"title\": \"Overload protection: admission control, load shedding, hostile-client defense\",\n");
    out.push_str("  \"harness\": \"loadgen --overload (epoll client, overload-capped server in subprocess)\",\n");
    out.push_str("  \"machine_note\": \"1-core container; latencies from obs log2 histograms, so percentiles are power-of-two upper bounds\",\n");
    out.push_str(&format!(
        "  \"openloop_2x\": {{\"cap\": 128, \"unloaded_p99_us\": {:.1}, \"unloaded_req_per_sec\": {:.0}, \"overloaded_p99_us\": {:.1}, \"overloaded_goodput_req_per_sec\": {:.0}, \"p99_ratio\": {:.2}, \"goodput_retained\": {:.2}, \"served\": {}, \"shed\": {}, \"shed_contract_violations\": {}, \"errors\": {}, \"server_survived\": {}}},\n",
        over.unloaded_p99_us,
        over.unloaded_rps,
        over.loaded_p99_us,
        over.loaded_rps,
        over.loaded_p99_us / over.unloaded_p99_us.max(1.0),
        over.loaded_rps / over.unloaded_rps.max(1.0),
        over.served,
        over.shed,
        over.shed_violations,
        over.errors,
        over.server_survived,
    ));
    out.push_str(&format!(
        "  \"connection_flood\": {{\"attempted\": {}, \"cap\": {}, \"admitted\": {}, \"rejected\": {}, \"contract_violations\": {}, \"server_survived\": {}}},\n",
        flood.attempted,
        flood.cap,
        flood.admitted,
        flood.rejected,
        flood.contract_violations,
        flood.server_survived,
    ));
    out.push_str(&format!(
        "  \"slowloris\": {{\"swarm\": {}, \"cap\": {}, \"attacker_conns_terminated\": {}, \"peak_connections_active\": {:.0}, \"scrape_samples\": {}, \"victim_served\": {}, \"victim_shed\": {}, \"server_survived\": {}}},\n",
        loris.swarm,
        loris.cap,
        loris.reaped,
        loris.max_active,
        loris.scrape_samples,
        loris.victim_exchanges,
        loris.victim_shed,
        loris.server_survived,
    ));
    out.push_str(&format!(
        "  \"shed_slow_service\": {{\"served\": {}, \"shed_503s\": {}, \"contract_violations\": {}, \"bx_server_shed_total\": {:.0}, \"server_survived\": {}}},\n",
        shed.served,
        shed.shed,
        shed.shed_violations,
        shed.shed_total_metric,
        shed.server_survived,
    ));
    out.push_str(&format!(
        "  \"stalled_readers\": {{\"stalled\": {}, \"killed_by_write_budget\": {}, \"victim_served\": {}, \"server_survived\": {}}}\n",
        stalled.stalled,
        stalled.killed,
        stalled.victim_exchanges,
        stalled.server_survived,
    ));
    out.push_str("}\n");
    print!("{out}");

    let healthy = over.server_survived
        && flood.server_survived
        && loris.server_survived
        && shed.server_survived
        && stalled.server_survived
        && over.shed_violations == 0
        && flood.contract_violations == 0
        && flood.admitted <= flood.cap
        && loris.max_active <= loris.cap as f64
        && loris.victim_exchanges > 0
        && stalled.killed == stalled.stalled;
    eprintln!(
        "loadgen overload: {}",
        if healthy { "all defenses held" } else { "DEFENSE BREACH" }
    );
    if !healthy {
        std::process::exit(1);
    }
}

fn full_grid() {
    eprintln!("loadgen: 10k-connection sustain");
    let (sustain, conn_rate) = sustain(10_000, Duration::from_secs(5));
    eprintln!(
        "  10000 conns in {:.1} s ({conn_rate:.0} conn/s), {} exchanges ({:.0} req/s), {} errors",
        sustain.connect_time.as_secs_f64(),
        sustain.exchanges,
        sustain.rps(),
        sustain.errors,
    );

    eprintln!("loadgen: evented vs threaded (256 conns, 1.2 KB)");
    let comparisons = compare_servers(256, Duration::from_secs(3));

    eprintln!("loadgen: keep-alive vs one-shot across the payload grid");
    let grid = keepalive_vs_close(&PAYLOAD_GRID, 64, Duration::from_secs(2), 4_000);

    // ---- JSON report (stdout) ----
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"pr\": 6,\n");
    out.push_str("  \"title\": \"Event-driven server core: readiness loop, HTTP keep-alive, 10k-connection load harness\",\n");
    out.push_str("  \"harness\": \"loadgen (epoll client, server in subprocess)\",\n");
    out.push_str("  \"machine_note\": \"1-core container; latencies from obs log2 histograms, so percentiles are power-of-two upper bounds\",\n");
    out.push_str(&format!(
        "  \"sustain_10k\": {{\"connections\": 10000, \"connect_secs\": {:.3}, \"connections_per_sec\": {:.0}, \"exchanges\": {}, \"req_per_sec\": {:.0}, \"errors\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"p999_us\": {:.1}}},\n",
        sustain.connect_time.as_secs_f64(),
        conn_rate,
        sustain.exchanges,
        sustain.rps(),
        sustain.errors,
        sustain.quantile_us(0.5),
        sustain.quantile_us(0.99),
        sustain.quantile_us(0.999),
    ));
    out.push_str("  \"evented_vs_threaded_256conn_1200B\": [\n");
    for (i, c) in comparisons.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"server\": \"{}\", \"req_per_sec\": {:.0}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"p999_us\": {:.1}, \"errors\": {}}}{}\n",
            c.mode,
            c.rps,
            c.p50_us,
            c.p99_us,
            c.p999_us,
            c.errors,
            if i + 1 < comparisons.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"keepalive_vs_close_64conn\": [\n");
    for (i, row) in grid.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"payload_bytes\": {}, \"keepalive_req_per_sec\": {:.0}, \"close_req_per_sec\": {:.0}, \"keepalive_p99_us\": {:.1}, \"close_p99_us\": {:.1}, \"keepalive_beats_close\": {}}}{}\n",
            row.payload,
            row.keepalive_rps,
            row.close_rps,
            row.keepalive_p99_us,
            row.close_p99_us,
            row.keepalive_rps > row.close_rps,
            if i + 1 < grid.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    print!("{out}");

    let all_beat = grid.iter().all(|r| r.keepalive_rps > r.close_rps);
    eprintln!(
        "loadgen: keep-alive beats one-shot at every payload size: {}",
        if all_beat { "yes" } else { "NO" }
    );
    if sustain.errors > 0 || !all_beat {
        std::process::exit(1);
    }
}
