//! Open-loop load harness for the evented server core (PR 6).
//!
//! Measures the things the reactor port was built for:
//!
//! 1. **10k sustain** — ≥10,000 concurrent keep-alive HTTP connections
//!    against one evented server, all exchanging requests at once.
//! 2. **Evented vs threaded** — the same echo workload against the
//!    reactor servers and against classic thread-per-connection baselines
//!    (implemented *here*, so the transport crate itself stays free of
//!    per-connection threads).
//! 3. **Keep-alive vs one-shot** — requests-per-second with connection
//!    reuse vs a fresh connection per request, across the Table 1 payload
//!    grid (§6: 12 B/value × model sizes 10/100/1000/4000).
//!
//! The client is itself an epoll readiness loop (reusing
//! [`transport::Poller`]): a thread-per-connection client cannot drive
//! 10k sockets from the one-core container this runs in. Each connection
//! runs a closed loop (next request issued as soon as the response
//! lands); across the population the offered load is open — no
//! connection waits for any other. Latency is recorded per exchange into
//! an [`obs::Histogram`] (log₂ buckets, so percentiles are power-of-two
//! resolution) from first request byte written to last response byte
//! read.
//!
//! The server under test runs in a **subprocess** (`--serve <mode>`) so
//! client and server each get the container's full fd budget, and a
//! server panic is an observable crash rather than a silent wedge.
//!
//! Run with: `cargo run --release -p bench --bin loadgen` (full grid,
//! prints the BENCH_PR6 JSON on stdout) or `-- --smoke` (1k connections,
//! one grid cell, asserts sanity bounds; the CI job).

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use obs::Histogram;
use transport::{Events, HttpRequest, HttpResponse, HttpServer, Interest, Poller, TcpServer};
use transport::HttpServerConfig;

/// Table 1 payload grid: 12 B per array value at model sizes
/// 10 / 100 / 1000 / 4000.
const PAYLOAD_GRID: [usize; 4] = [120, 1_200, 12_000, 48_000];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--serve") => serve(args.get(1).map(String::as_str).unwrap_or("")),
        Some("--smoke") => smoke(),
        _ => full_grid(),
    }
}

// ---------------------------------------------------------------------
// Server subprocess
// ---------------------------------------------------------------------

/// Child-process entry: bind the requested server flavor on an ephemeral
/// port, print `ADDR <addr>` for the parent, then park until killed.
fn serve(mode: &str) {
    let addr = match mode {
        "http-evented" => {
            let server = HttpServer::bind_with(
                "127.0.0.1:0",
                HttpServerConfig {
                    read_timeout: Some(Duration::from_secs(60)),
                    write_timeout: Some(Duration::from_secs(60)),
                    metrics_path: None,
                },
                |req| HttpResponse::ok("application/octet-stream", req.body.clone()),
            )
            .expect("bind http-evented");
            let addr = server.local_addr();
            std::mem::forget(server); // lives until the process is killed
            addr
        }
        "tcp-evented" => {
            let server = TcpServer::bind("127.0.0.1:0", |req| req).expect("bind tcp-evented");
            let addr = server.local_addr();
            std::mem::forget(server);
            addr
        }
        "http-threaded" => threaded_http_server(),
        "tcp-threaded" => threaded_tcp_server(),
        other => panic!("unknown serve mode {other:?}"),
    };
    println!("ADDR {addr}");
    use std::io::Write as _;
    std::io::stdout().flush().expect("flush addr line");
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// The pre-reactor baseline, preserved here for comparison: one OS
/// thread per accepted connection, blocking reads and writes, keep-alive
/// honored by looping until the client says close.
fn threaded_http_server() -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind http-threaded");
    let addr = listener.local_addr().expect("local addr");
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            std::thread::spawn(move || {
                let _ = stream.set_nodelay(true);
                let mut reader = BufReader::new(stream);
                while let Ok(req) = HttpRequest::read_from(&mut reader) {
                    let keep_alive = !req
                        .header("connection")
                        .is_some_and(|c| c.eq_ignore_ascii_case("close"));
                    let resp = HttpResponse::ok("application/octet-stream", req.body);
                    if resp.write_to_with(&mut reader.get_mut(), keep_alive).is_err()
                        || !keep_alive
                    {
                        break;
                    }
                }
            });
        }
    });
    addr
}

/// Thread-per-connection framed-TCP echo baseline.
fn threaded_tcp_server() -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind tcp-threaded");
    let addr = listener.local_addr().expect("local addr");
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            std::thread::spawn(move || {
                let _ = stream.set_nodelay(true);
                let mut payload = Vec::new();
                loop {
                    let mut prefix = [0u8; 4];
                    if stream.read_exact(&mut prefix).is_err() {
                        break;
                    }
                    let len = u32::from_be_bytes(prefix) as usize;
                    payload.resize(len, 0);
                    if stream.read_exact(&mut payload).is_err() {
                        break;
                    }
                    if stream.write_all(&prefix).is_err() || stream.write_all(&payload).is_err() {
                        break;
                    }
                }
            });
        }
    });
    addr
}

/// Spawn `--serve <mode>` as a subprocess and wait for its `ADDR` line.
struct ServerProc {
    child: Child,
    addr: String,
}

impl ServerProc {
    fn start(mode: &str) -> ServerProc {
        let exe = std::env::current_exe().expect("current exe");
        let mut child = Command::new(exe)
            .arg("--serve")
            .arg(mode)
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn server subprocess");
        let stdout = child.stdout.take().expect("child stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read ADDR line");
        let addr = line
            .strip_prefix("ADDR ")
            .unwrap_or_else(|| panic!("bad server banner {line:?}"))
            .trim()
            .to_owned();
        ServerProc { child, addr }
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

// ---------------------------------------------------------------------
// Epoll client
// ---------------------------------------------------------------------

/// How one exchange's response is delimited.
#[derive(Clone, Copy, PartialEq)]
enum Protocol {
    /// 4-byte big-endian length prefix.
    Framed,
    /// HTTP/1.1 head + `Content-Length` body.
    Http,
}

/// Connection lifecycle across exchanges.
#[derive(Clone, Copy, PartialEq)]
enum Reuse {
    /// One socket, many exchanges (framed TCP, HTTP keep-alive).
    KeepAlive,
    /// Fresh socket per exchange (`Connection: close`).
    PerRequest,
}

/// One load-generator connection: a write-then-read exchange loop.
struct LoadConn {
    stream: TcpStream,
    written: usize,
    inbuf: Vec<u8>,
    /// Response head length once delimited (HTTP) — body offset.
    head_len: Option<usize>,
    /// Total response length once known.
    expected: Option<usize>,
    started: Instant,
    reading: bool,
}

impl LoadConn {
    fn connect(addr: &str) -> std::io::Result<LoadConn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        Ok(LoadConn {
            stream,
            written: 0,
            inbuf: Vec::with_capacity(256),
            head_len: None,
            expected: None,
            started: Instant::now(),
            reading: false,
        })
    }

    fn reset(&mut self) {
        self.written = 0;
        self.inbuf.clear();
        self.head_len = None;
        self.expected = None;
        self.started = Instant::now();
        self.reading = false;
    }

    /// Push request bytes; true when the request is fully written.
    fn step_write(&mut self, request: &[u8]) -> std::io::Result<bool> {
        while self.written < request.len() {
            match self.stream.write(&request[self.written..]) {
                Ok(0) => return Err(std::io::ErrorKind::WriteZero.into()),
                Ok(n) => self.written += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.reading = true;
        Ok(true)
    }

    /// Pull response bytes; true when the response is complete.
    fn step_read(&mut self, protocol: Protocol) -> std::io::Result<bool> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if self.complete(protocol)? {
                return Ok(true);
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(std::io::Error::other(format!(
                        "server closed mid-response ({} bytes in)",
                        self.inbuf.len()
                    )))
                }
                Ok(n) => self.inbuf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    fn complete(&mut self, protocol: Protocol) -> std::io::Result<bool> {
        match protocol {
            Protocol::Framed => {
                if self.expected.is_none() && self.inbuf.len() >= 4 {
                    let len =
                        u32::from_be_bytes([self.inbuf[0], self.inbuf[1], self.inbuf[2], self.inbuf[3]]);
                    self.expected = Some(4 + len as usize);
                }
                Ok(self.expected.is_some_and(|e| self.inbuf.len() >= e))
            }
            Protocol::Http => {
                if self.head_len.is_none() {
                    if let Some(pos) = self.inbuf.windows(4).position(|w| w == b"\r\n\r\n") {
                        let head = &self.inbuf[..pos];
                        let body_len = head
                            .split(|&b| b == b'\n')
                            .filter_map(|line| {
                                let line = std::str::from_utf8(line).ok()?;
                                let (name, value) = line.split_once(':')?;
                                name.eq_ignore_ascii_case("content-length")
                                    .then(|| value.trim().parse::<usize>().ok())?
                            })
                            .next()
                            .ok_or_else(|| std::io::Error::other("response without Content-Length"))?;
                        self.head_len = Some(pos + 4);
                        self.expected = Some(pos + 4 + body_len);
                    }
                }
                Ok(self.expected.is_some_and(|e| self.inbuf.len() >= e))
            }
        }
    }
}

/// Outcome of one load cell.
struct CellResult {
    exchanges: u64,
    errors: u64,
    elapsed: Duration,
    /// Fresh sockets opened (per-request mode churns these).
    connects: u64,
    /// Time to get the whole population connected.
    connect_time: Duration,
    latency: Histogram,
}

impl CellResult {
    fn rps(&self) -> f64 {
        self.exchanges as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    fn quantile_us(&self, q: f64) -> f64 {
        self.latency.snapshot().quantile(q) as f64 / 1_000.0
    }
}

/// Drive `concurrency` connections against `addr` for `duration`.
///
/// Every connection issues its next request the instant the previous
/// response completes (or, in per-request mode, over a fresh socket), so
/// concurrency — not client pacing — is the offered load.
fn run_cell(
    addr: &str,
    protocol: Protocol,
    reuse: Reuse,
    request: &[u8],
    concurrency: usize,
    duration: Duration,
    max_exchanges: u64,
) -> CellResult {
    let poller = Poller::new().expect("client epoll");
    let mut events = Events::with_capacity(4096);
    let mut conns: Vec<Option<LoadConn>> = Vec::with_capacity(concurrency);
    let latency = Histogram::new();
    let mut exchanges = 0u64;
    let mut errors = 0u64;
    let mut connects = 0u64;

    let connect_started = Instant::now();
    for token in 0..concurrency {
        match LoadConn::connect(addr) {
            Ok(conn) => {
                poller
                    .add(conn.stream.as_raw_fd(), token as u64, Interest::Writable)
                    .expect("register");
                conns.push(Some(conn));
                connects += 1;
            }
            Err(e) => panic!("connect {} of {concurrency} failed: {e}", token + 1),
        }
    }
    let connect_time = connect_started.elapsed();

    let cell_started = Instant::now();
    let deadline = cell_started + duration;
    let mut live = concurrency;
    // Tokens whose socket died or finished and should reconnect (bounded
    // by the deadline check below so the cell always terminates).
    let mut reconnect: VecDeque<usize> = VecDeque::new();

    while live > 0 {
        let now = Instant::now();
        let finished = now >= deadline || exchanges >= max_exchanges;
        if finished && reconnect.len() == live {
            break; // everything remaining is waiting on a reconnect we won't do
        }
        while let Some(token) = reconnect.pop_front() {
            if finished {
                live -= 1;
                continue;
            }
            match LoadConn::connect(addr) {
                Ok(conn) => {
                    poller
                        .add(conn.stream.as_raw_fd(), token as u64, Interest::Writable)
                        .expect("register");
                    conns[token] = Some(conn);
                    connects += 1;
                }
                Err(_) => {
                    errors += 1;
                    reconnect.push_back(token); // retry next tick
                    break;
                }
            }
        }
        if live == 0 {
            break;
        }
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(100)))
            .expect("epoll wait");
        if n == 0 && Instant::now() >= deadline {
            // Stragglers past the deadline: stop waiting for them.
            for slot in conns.iter_mut() {
                if let Some(conn) = slot.take() {
                    let _ = poller.delete(conn.stream.as_raw_fd());
                }
            }
            break;
        }
        for event in events.iter() {
            let token = event.token as usize;
            let Some(conn) = conns.get_mut(token).and_then(Option::as_mut) else {
                continue;
            };
            let step = drive_conn(conn, protocol, request, event.writable);
            match step {
                Ok(None) => {
                    // Mid-exchange: make sure the interest matches phase.
                    let want = if conn.reading {
                        Interest::Readable
                    } else {
                        Interest::Writable
                    };
                    let _ = poller.modify(conn.stream.as_raw_fd(), event.token, want);
                }
                Ok(Some(elapsed)) => {
                    latency.observe_duration(elapsed);
                    exchanges += 1;
                    let done = Instant::now() >= deadline || exchanges >= max_exchanges;
                    match (reuse, done) {
                        (Reuse::KeepAlive, false) => {
                            conn.reset();
                            let _ = poller.modify(
                                conn.stream.as_raw_fd(),
                                event.token,
                                Interest::Writable,
                            );
                        }
                        (Reuse::PerRequest, false) => {
                            let conn = conns[token].take().expect("just drove it");
                            let _ = poller.delete(conn.stream.as_raw_fd());
                            drop(conn);
                            reconnect.push_back(token);
                        }
                        (_, true) => {
                            let conn = conns[token].take().expect("just drove it");
                            let _ = poller.delete(conn.stream.as_raw_fd());
                            live -= 1;
                        }
                    }
                }
                Err(_) => {
                    errors += 1;
                    let conn = conns[token].take().expect("just drove it");
                    let _ = poller.delete(conn.stream.as_raw_fd());
                    if Instant::now() >= deadline {
                        live -= 1;
                    } else {
                        reconnect.push_back(token);
                    }
                }
            }
        }
    }

    CellResult {
        exchanges,
        errors,
        // Actual wall time, not the nominal duration: a cell capped by
        // `max_exchanges` finishes early and must not under-report.
        elapsed: cell_started.elapsed(),
        connects,
        connect_time,
        latency,
    }
}

/// Advance one connection as far as readiness allows; `Some(latency)`
/// when an exchange completed.
fn drive_conn(
    conn: &mut LoadConn,
    protocol: Protocol,
    request: &[u8],
    writable: bool,
) -> std::io::Result<Option<Duration>> {
    if !conn.reading && (writable || conn.written > 0) && !conn.step_write(request)? {
        return Ok(None);
    }
    if conn.reading && conn.step_read(protocol)? {
        return Ok(Some(conn.started.elapsed()));
    }
    Ok(None)
}

// ---------------------------------------------------------------------
// Request builders
// ---------------------------------------------------------------------

fn framed_request(payload: usize) -> Vec<u8> {
    let mut wire = Vec::with_capacity(4 + payload);
    wire.extend_from_slice(&(payload as u32).to_be_bytes());
    wire.resize(4 + payload, 0x42);
    wire
}

fn http_request(payload: usize, keep_alive: bool) -> Vec<u8> {
    let req = HttpRequest::post("/echo", "application/octet-stream", vec![0x42; payload]);
    let mut wire = Vec::new();
    req.write_to_with(&mut wire, keep_alive).expect("serialize");
    wire
}

// ---------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------

fn sustain(connections: usize, duration: Duration) -> (CellResult, f64) {
    let server = ServerProc::start("http-evented");
    let result = run_cell(
        &server.addr,
        Protocol::Http,
        Reuse::KeepAlive,
        &http_request(PAYLOAD_GRID[0], true),
        connections,
        duration,
        u64::MAX,
    );
    let conn_rate = result.connects as f64 / result.connect_time.as_secs_f64().max(1e-9);
    (result, conn_rate)
}

struct Comparison {
    mode: &'static str,
    rps: f64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    errors: u64,
}

fn compare_servers(concurrency: usize, duration: Duration) -> Vec<Comparison> {
    let cells: [(&str, Protocol); 4] = [
        ("http-evented", Protocol::Http),
        ("http-threaded", Protocol::Http),
        ("tcp-evented", Protocol::Framed),
        ("tcp-threaded", Protocol::Framed),
    ];
    cells
        .iter()
        .map(|&(mode, protocol)| {
            let server = ServerProc::start(mode);
            let request = match protocol {
                Protocol::Http => http_request(PAYLOAD_GRID[1], true),
                Protocol::Framed => framed_request(PAYLOAD_GRID[1]),
            };
            let r = run_cell(
                &server.addr,
                protocol,
                Reuse::KeepAlive,
                &request,
                concurrency,
                duration,
                u64::MAX,
            );
            eprintln!(
                "  {mode:>13}: {:.0} req/s, p99 {:.0} µs, {} errors",
                r.rps(),
                r.quantile_us(0.99),
                r.errors
            );
            Comparison {
                mode,
                rps: r.rps(),
                p50_us: r.quantile_us(0.5),
                p99_us: r.quantile_us(0.99),
                p999_us: r.quantile_us(0.999),
                errors: r.errors,
            }
        })
        .collect()
}

struct GridRow {
    payload: usize,
    keepalive_rps: f64,
    close_rps: f64,
    keepalive_p99_us: f64,
    close_p99_us: f64,
}

fn keepalive_vs_close(
    payloads: &[usize],
    concurrency: usize,
    duration: Duration,
    close_cap: u64,
) -> Vec<GridRow> {
    let server = ServerProc::start("http-evented");
    payloads
        .iter()
        .map(|&payload| {
            let ka = run_cell(
                &server.addr,
                Protocol::Http,
                Reuse::KeepAlive,
                &http_request(payload, true),
                concurrency,
                duration,
                u64::MAX,
            );
            // One-shot churns ephemeral ports, so it is additionally
            // capped by exchange count to stay inside the port range.
            let close = run_cell(
                &server.addr,
                Protocol::Http,
                Reuse::PerRequest,
                &http_request(payload, false),
                concurrency,
                duration,
                close_cap,
            );
            eprintln!(
                "  {payload:>6} B: keep-alive {:.0} req/s vs close {:.0} req/s",
                ka.rps(),
                close.rps()
            );
            GridRow {
                payload,
                keepalive_rps: ka.rps(),
                close_rps: close.rps(),
                keepalive_p99_us: ka.quantile_us(0.99),
                close_p99_us: close.quantile_us(0.99),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------

fn smoke() {
    eprintln!("loadgen smoke: 1k-connection sustain");
    let (sustain, conn_rate) = sustain(1_000, Duration::from_secs(2));
    eprintln!(
        "  1000 conns in {:.0} ms ({conn_rate:.0} conn/s), {} exchanges, {} errors, p99 {:.0} µs",
        sustain.connect_time.as_secs_f64() * 1e3,
        sustain.exchanges,
        sustain.errors,
        sustain.quantile_us(0.99),
    );
    assert_eq!(sustain.errors, 0, "smoke run must be error free");
    assert!(
        sustain.exchanges >= 1_000,
        "every connection must complete at least one exchange"
    );
    // Generous: catches only order-of-magnitude regressions (seconds of
    // tail latency at 1k connections), not scheduler noise.
    assert!(
        sustain.quantile_us(0.99) < 5_000_000.0,
        "p99 {} µs exceeds the 5 s smoke bound",
        sustain.quantile_us(0.99)
    );

    eprintln!("loadgen smoke: keep-alive vs one-shot (1.2 KB)");
    let grid = keepalive_vs_close(&PAYLOAD_GRID[1..2], 32, Duration::from_secs(1), 2_000);
    assert!(
        grid[0].keepalive_rps > grid[0].close_rps,
        "keep-alive ({:.0} req/s) must beat one-shot ({:.0} req/s)",
        grid[0].keepalive_rps,
        grid[0].close_rps
    );
    eprintln!("loadgen smoke: PASS");
}

fn full_grid() {
    eprintln!("loadgen: 10k-connection sustain");
    let (sustain, conn_rate) = sustain(10_000, Duration::from_secs(5));
    eprintln!(
        "  10000 conns in {:.1} s ({conn_rate:.0} conn/s), {} exchanges ({:.0} req/s), {} errors",
        sustain.connect_time.as_secs_f64(),
        sustain.exchanges,
        sustain.rps(),
        sustain.errors,
    );

    eprintln!("loadgen: evented vs threaded (256 conns, 1.2 KB)");
    let comparisons = compare_servers(256, Duration::from_secs(3));

    eprintln!("loadgen: keep-alive vs one-shot across the payload grid");
    let grid = keepalive_vs_close(&PAYLOAD_GRID, 64, Duration::from_secs(2), 4_000);

    // ---- JSON report (stdout) ----
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"pr\": 6,\n");
    out.push_str("  \"title\": \"Event-driven server core: readiness loop, HTTP keep-alive, 10k-connection load harness\",\n");
    out.push_str("  \"harness\": \"loadgen (epoll client, server in subprocess)\",\n");
    out.push_str("  \"machine_note\": \"1-core container; latencies from obs log2 histograms, so percentiles are power-of-two upper bounds\",\n");
    out.push_str(&format!(
        "  \"sustain_10k\": {{\"connections\": 10000, \"connect_secs\": {:.3}, \"connections_per_sec\": {:.0}, \"exchanges\": {}, \"req_per_sec\": {:.0}, \"errors\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"p999_us\": {:.1}}},\n",
        sustain.connect_time.as_secs_f64(),
        conn_rate,
        sustain.exchanges,
        sustain.rps(),
        sustain.errors,
        sustain.quantile_us(0.5),
        sustain.quantile_us(0.99),
        sustain.quantile_us(0.999),
    ));
    out.push_str("  \"evented_vs_threaded_256conn_1200B\": [\n");
    for (i, c) in comparisons.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"server\": \"{}\", \"req_per_sec\": {:.0}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"p999_us\": {:.1}, \"errors\": {}}}{}\n",
            c.mode,
            c.rps,
            c.p50_us,
            c.p99_us,
            c.p999_us,
            c.errors,
            if i + 1 < comparisons.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"keepalive_vs_close_64conn\": [\n");
    for (i, row) in grid.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"payload_bytes\": {}, \"keepalive_req_per_sec\": {:.0}, \"close_req_per_sec\": {:.0}, \"keepalive_p99_us\": {:.1}, \"close_p99_us\": {:.1}, \"keepalive_beats_close\": {}}}{}\n",
            row.payload,
            row.keepalive_rps,
            row.close_rps,
            row.keepalive_p99_us,
            row.close_p99_us,
            row.keepalive_rps > row.close_rps,
            if i + 1 < grid.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    print!("{out}");

    let all_beat = grid.iter().all(|r| r.keepalive_rps > r.close_rps);
    eprintln!(
        "loadgen: keep-alive beats one-shot at every payload size: {}",
        if all_beat { "yes" } else { "NO" }
    );
    if sustain.errors > 0 || !all_beat {
        std::process::exit(1);
    }
}
