//! Figure 5 reproduction: invocation bandwidth for large binary data on
//! the LAN (model size 1365 .. 5,591,040; BXSA payloads 16 KB .. 64 MB).
//!
//! Paper's findings (§6.2): BXSA/TCP is best and saturates near the
//! single-stream TCP ceiling (~10 MB/s, "960K pairs ... per second");
//! SOAP+HTTP trails slightly (extra disk I/O); GridFTP catches up as
//! authentication amortizes, but "over a LAN the parallelism in GridFTP
//! provides little additional benefit, and indeed somewhat degrades
//! performance"; XML/HTTP "lost the game at the very beginning".
//!
//! Run with: `cargo run --release -p bench --bin fig5_large_lan`

use bench::schemes::{response_time, Scheme};
use bench::workload::LARGE_MODEL_SIZES;
use bench::{CpuCosts, Workload};
use netsim::NetworkProfile;

fn main() {
    let lan = NetworkProfile::lan();
    // Column order fixed for the shape checks below.
    let schemes = [
        Scheme::SoapBxsaTcp,
        Scheme::SoapHttpData,
        Scheme::SoapGridFtp { streams: 1 },
        Scheme::SoapGridFtp { streams: 4 },
        Scheme::SoapGridFtp { streams: 16 },
        Scheme::SoapXmlHttp,
    ];

    println!("Figure 5: bandwidth ((double,int) pairs/s) vs model size, LAN");
    print!("{:>10}", "# pairs");
    for s in &schemes {
        print!(" {:>28}", s.label());
    }
    println!();

    let mut table: Vec<Vec<f64>> = Vec::new();
    for (i, &model_size) in LARGE_MODEL_SIZES.iter().enumerate() {
        let w = Workload::prepare(model_size, 42);
        // Fewer CPU-measurement reps at the 16/64 MB points.
        let reps = if i >= 5 { 2 } else { 5 };
        let cpu = CpuCosts::measure(&w, reps);
        print!("{model_size:>10}");
        let mut row = Vec::new();
        for s in &schemes {
            let out = response_time(*s, &lan, &w, &cpu);
            row.push(out.pairs_per_sec());
            print!(" {:>28.0}", out.pairs_per_sec());
        }
        println!();
        table.push(row);
    }

    let (bxsa, http, g1, g4, g16, xml) = (0usize, 1usize, 2usize, 3usize, 4usize, 5usize);
    let last = &table[table.len() - 1];
    let mut pass = true;
    pass &= check(
        "BXSA/TCP has the best bandwidth at every size",
        table.iter().all(|r| r[bxsa] >= *r
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != bxsa)
            .map(|(_, v)| v)
            .fold(&0.0, |a, b| if b > a { b } else { a })),
    );
    let peak_rate_bytes = last[bxsa] * 12.0;
    pass &= check(
        "BXSA/TCP saturates near the single-stream TCP ceiling",
        (peak_rate_bytes - lan.link_bw).abs() / lan.link_bw < 0.35,
    );
    pass &= check(
        "SOAP+HTTP trails BXSA/TCP (extra exchange + disk I/O)",
        last[http] < last[bxsa],
    );
    pass &= check(
        "LAN striping does not help: 1 stream >= 4 >= 16 at the top size",
        last[g1] >= last[g4] && last[g4] >= last[g16],
    );
    pass &= check(
        "...but only 'somewhat degrades' (16-stream within 2.5x of 1)",
        last[g1] / last[g16] < 2.5,
    );
    pass &= check(
        "GridFTP 'begins to match the above two schemes' as auth amortizes",
        last[g1] > last[http] * 0.8 && last[g1] > last[bxsa] * 0.4,
    );
    pass &= check(
        "XML/HTTP plateaus (conversion-bound) while binary schemes keep scaling",
        last[xml] < table[1][xml] * 1.5 && last[bxsa] > last[xml] * 3.0,
    );
    pass &= check(
        "XML/HTTP 'lost the game': worst scheme once auth has amortized (top two sizes)",
        table[table.len() - 2..]
            .iter()
            .all(|r| r[xml] <= r[bxsa] && r[xml] <= r[http] && r[xml] <= r[g1] && r[xml] <= r[g16]),
    );
    std::process::exit(if pass { 0 } else { 1 });
}

fn check(what: &str, ok: bool) -> bool {
    println!("[{}] {what}", if ok { "PASS" } else { "FAIL" });
    ok
}
