//! Figure 6 reproduction: invocation bandwidth for large binary data on
//! the WAN (IU ↔ Chicago path, RTT 5.75 ms).
//!
//! Paper's findings (§6.2): "the ordering has partially changed. The
//! parallel transport of GridFTP begins to show its benefit ... not
//! restricted by the bandwidth of a single TCP stream"; "both SOAP over
//! BXSA/TCP and SOAP with HTTP data channel have similar performance.
//! They are still restricted by the bandwidth of a single TCP stream."
//!
//! Run with: `cargo run --release -p bench --bin fig6_large_wan`

use bench::schemes::{response_time, Scheme};
use bench::workload::LARGE_MODEL_SIZES;
use bench::{CpuCosts, Workload};
use netsim::NetworkProfile;

fn main() {
    let wan = NetworkProfile::wan();
    let schemes = [
        Scheme::SoapGridFtp { streams: 16 },
        Scheme::SoapBxsaTcp,
        Scheme::SoapGridFtp { streams: 4 },
        Scheme::SoapHttpData,
        Scheme::SoapGridFtp { streams: 1 },
    ];

    println!("Figure 6: bandwidth ((double,int) pairs/s) vs model size, WAN (RTT 5.75 ms)");
    print!("{:>10}", "# pairs");
    for s in &schemes {
        print!(" {:>28}", s.label());
    }
    println!();

    let mut table: Vec<Vec<f64>> = Vec::new();
    for (i, &model_size) in LARGE_MODEL_SIZES.iter().enumerate() {
        let w = Workload::prepare(model_size, 42);
        let reps = if i >= 5 { 2 } else { 5 };
        let cpu = CpuCosts::measure(&w, reps);
        print!("{model_size:>10}");
        let mut row = Vec::new();
        for s in &schemes {
            let out = response_time(*s, &wan, &w, &cpu);
            row.push(out.pairs_per_sec());
            print!(" {:>28.0}", out.pairs_per_sec());
        }
        println!();
        table.push(row);
    }

    let (g16, bxsa, g4, http, g1) = (0usize, 1usize, 2usize, 3usize, 4usize);
    let last = &table[table.len() - 1];
    let mut pass = true;
    pass &= check(
        "striped GridFTP (16) beats every single-stream scheme at the top size",
        last[g16] > last[bxsa] && last[g16] > last[http] && last[g16] > last[g1],
    );
    pass &= check(
        "more streams help on the WAN: 16 > 4 > 1",
        last[g16] > last[g4] && last[g4] > last[g1],
    );
    pass &= check(
        "BXSA/TCP and SOAP+HTTP are similar (both window-limited)",
        last[bxsa] / last[http] < 2.0 && last[http] / last[bxsa] < 2.0,
    );
    let single_stream_bytes = last[bxsa] * 12.0;
    let window_rate = wan.rwnd as f64 / wan.rtt.as_secs_f64();
    pass &= check(
        "single-stream schemes pinned near the window ceiling, far below link capacity",
        single_stream_bytes < wan.link_bw * 0.6
            && (single_stream_bytes - window_rate).abs() / window_rate < 0.5,
    );
    pass &= check(
        "GridFTP still loses at the smallest size (auth not yet amortized)",
        table[0][g16] < table[0][bxsa],
    );
    std::process::exit(if pass { 0 } else { 1 });
}

fn check(what: &str, ok: bool) -> bool {
    println!("[{}] {what}", if ok { "PASS" } else { "FAIL" });
    ok
}
