//! Table 1 reproduction: serialization size of the binary data set with
//! model size = 1000.
//!
//! Paper's rows: Native 12000 B (0%), BXSA 12156 B (1.3%), netCDF
//! 12268 B (2.2%), XML 1.0 23896 B (99.1%). The XML row used a
//! namespace-free encoding with the shortest possible tag per array item,
//! so this harness serializes with the same options.
//!
//! Run with: `cargo run --release -p bench --bin table1_sizes`

use bench::Workload;
use xmltext::XmlWriteOptions;

fn main() {
    let w = Workload::prepare(1000, 42);
    let native = w.native_bytes();

    // The paper's XML variant: namespace free, one-character item tags,
    // no type attributes.
    let minimal_xml = xmltext::to_string_with(
        &w.request_doc,
        &XmlWriteOptions {
            emit_type_info: false,
            item_tag: "i".into(),
            ..Default::default()
        },
    )
    .expect("infallible")
    .into_bytes();

    println!("Table 1: serialization size of the binary data set (model size = 1000)");
    println!("{:<24} {:>10} {:>10}", "Format", "Size (B)", "Overhead");
    let mut rows = vec![
        ("Native representation", native),
        ("BXSA", w.bxsa_bytes.len()),
        ("netCDF", w.netcdf_bytes.len()),
        ("XML 1.0 (minimal tags)", minimal_xml.len()),
    ];
    // Also report the typed XML the SOAP engine actually sends.
    rows.push(("XML 1.0 (typed, SOAP)", w.xml_bytes.len()));

    for (name, size) in &rows {
        let overhead = 100.0 * (*size as f64 - native as f64) / native as f64;
        println!("{name:<24} {size:>10} {overhead:>9.1}%");
    }

    // Shape checks against the paper's claims.
    let bxsa_overhead = pct(w.bxsa_bytes.len(), native);
    let netcdf_overhead = pct(w.netcdf_bytes.len(), native);
    let xml_overhead = pct(minimal_xml.len(), native);
    let mut pass = true;
    pass &= check(
        "BXSA overhead is insignificant (paper: 1.3%)",
        bxsa_overhead < 5.0,
    );
    pass &= check(
        "netCDF overhead is insignificant (paper: 2.2%)",
        netcdf_overhead < 5.0,
    );
    pass &= check(
        "XML overhead is dominated by tag pairs (paper: 99.1%)",
        xml_overhead > 60.0,
    );
    // The paper's own ratio is 23896/12156 = 1.97x, so demand > 1.8x.
    pass &= check(
        "ordering: native < BXSA < netCDF-class << XML",
        w.bxsa_bytes.len() > native && minimal_xml.len() * 10 > 18 * w.bxsa_bytes.len(),
    );
    // XML overhead grows linearly with model size (paper §6.1).
    let w4 = Workload::prepare(4000, 42);
    let minimal_xml4 = xmltext::to_string_with(
        &w4.request_doc,
        &XmlWriteOptions {
            emit_type_info: false,
            item_tag: "i".into(),
            ..Default::default()
        },
    )
    .expect("infallible");
    let per_item_1k = (minimal_xml.len() - 200) as f64 / 1000.0;
    let per_item_4k = (minimal_xml4.len() - 200) as f64 / 4000.0;
    pass &= check(
        "XML overhead linear in model size",
        (per_item_1k - per_item_4k).abs() / per_item_1k < 0.1,
    );
    std::process::exit(if pass { 0 } else { 1 });
}

fn pct(size: usize, native: usize) -> f64 {
    100.0 * (size as f64 - native as f64) / native as f64
}

fn check(what: &str, ok: bool) -> bool {
    println!("[{}] {what}", if ok { "PASS" } else { "FAIL" });
    ok
}
