//! Figure 4 reproduction: message response time for small binary data
//! sets (model size 0..1000) on the LAN.
//!
//! Paper's findings (§6.2): "SOAP over BXSA/TCP achieves superior
//! performance over other schemes"; XML/HTTP "performs well when the
//! message is fairly small" but grows steeply with size; "the high
//! response time by the SOAP with GridFTP data channel scheme is due to
//! the expensive authentication and the SSL handshake".
//!
//! Run with: `cargo run --release -p bench --bin fig4_small_lan`

use bench::schemes::{response_time, Scheme};
use bench::workload::SMALL_MODEL_SIZES;
use bench::{CpuCosts, Workload};
use netsim::NetworkProfile;

fn main() {
    let lan = NetworkProfile::lan();
    let schemes = Scheme::figure4_set();

    println!("Figure 4: response time (µs) vs model size, LAN (RTT 0.2 ms)");
    print!("{:>10}", "# pairs");
    for s in &schemes {
        print!(" {:>28}", s.label());
    }
    println!();

    let mut table: Vec<Vec<f64>> = Vec::new();
    for &model_size in SMALL_MODEL_SIZES.iter() {
        let w = Workload::prepare(model_size, 42);
        let cpu = CpuCosts::measure(&w, 15);
        print!("{model_size:>10}");
        let mut row = Vec::new();
        for s in &schemes {
            let out = response_time(*s, &lan, &w, &cpu);
            row.push(out.response.as_micros_f64());
            print!(" {:>28.1}", out.response.as_micros_f64());
        }
        println!();
        table.push(row);
    }

    // Shape checks. Column order follows figure4_set():
    // [GridFTP(1), XML/HTTP, SOAP+HTTP, BXSA/TCP]
    let (grid, xml, http, bxsa) = (0usize, 1usize, 2usize, 3usize);
    let first = &table[0];
    let last = &table[table.len() - 1];
    let mut pass = true;
    pass &= check(
        "BXSA/TCP fastest at every size",
        table
            .iter()
            .all(|r| r[bxsa] <= r[grid] && r[bxsa] <= r[xml] && r[bxsa] <= r[http]),
    );
    pass &= check(
        "GridFTP slowest at every size (auth dominates)",
        table
            .iter()
            .all(|r| r[grid] >= r[xml] && r[grid] >= r[http] && r[grid] >= r[bxsa]),
    );
    pass &= check(
        "XML/HTTP cheaper than the separated HTTP scheme for small messages",
        first[xml] < first[http] && table[1][xml] < table[1][http],
    );
    pass &= check(
        "XML/HTTP response grows with size faster than BXSA/TCP",
        (last[xml] - first[xml]) > 2.0 * (last[bxsa] - first[bxsa]),
    );
    pass &= check(
        "BXSA/TCP stays latency-bound across the sweep (< 10x growth)",
        last[bxsa] < first[bxsa] * 10.0,
    );

    // The paper's Figure 4 shows XML/HTTP eventually crossing above the
    // separated SOAP+HTTP scheme ("even more expensive than the separated
    // solution"). Our Rust XML codec is orders of magnitude faster than a
    // 2006 C++ validating parser, so the crossover lands beyond model
    // size 1000; locate it to confirm the shape survives, just shifted.
    let mut crossover = None;
    for model_size in [2_000usize, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000] {
        let w = Workload::prepare(model_size, 42);
        let cpu = CpuCosts::measure(&w, 5);
        let t_xml = response_time(Scheme::SoapXmlHttp, &lan, &w, &cpu).response;
        let t_http = response_time(Scheme::SoapHttpData, &lan, &w, &cpu).response;
        if t_xml > t_http {
            crossover = Some(model_size);
            break;
        }
    }
    match crossover {
        Some(size) => println!(
            "[PASS] XML/HTTP crosses above SOAP+HTTP at model size <= {size} \
             (paper: within 0..1000 on 2006-era XML parsers)"
        ),
        None => {
            println!("[FAIL] XML/HTTP never crossed above SOAP+HTTP by model size 200000");
            pass = false;
        }
    }
    std::process::exit(if pass { 0 } else { 1 });
}

fn check(what: &str, ok: bool) -> bool {
    println!("[{}] {what}", if ok { "PASS" } else { "FAIL" });
    ok
}
