//! An analytic TCP flow model.
//!
//! The model captures the three effects that drive the paper's bandwidth
//! curves:
//!
//! 1. **Connection setup**: one round trip (SYN / SYN-ACK) before the
//!    first payload byte; per-message costs dominate small messages
//!    (Figure 4).
//! 2. **Slow start**: the congestion window doubles once per RTT from
//!    `init_cwnd` until it reaches the effective window, so short
//!    transfers never see the steady-state rate.
//! 3. **The window ceiling**: a single untuned stream cannot exceed
//!    `rwnd / RTT` regardless of link capacity — negligible on a 0.2 ms
//!    LAN, but the binding constraint on a 5.75 ms WAN. This is exactly
//!    why "the parallel transport of GridFTP begins to show its benefit"
//!    only on the WAN (paper §6.2, Figure 6).
//!
//! Capacity sharing with background traffic uses the standard TCP
//! fair-share approximation: `n` local flows competing with `k` background
//! flows on a link of capacity `C` get `C · n / (n + k)` in aggregate.

use crate::time::SimTime;

/// Parameters of a TCP path.
#[derive(Debug, Clone, Copy)]
pub struct TcpParams {
    /// Round-trip time.
    pub rtt: SimTime,
    /// Bottleneck link capacity available to application payload
    /// (bytes/second).
    pub link_bw: f64,
    /// Number of background flows sharing the bottleneck (0 on an idle
    /// LAN; > 0 on a shared WAN path).
    pub background_flows: u32,
    /// Receiver window in bytes (untuned 2006-era default: 64 KiB on the
    /// LAN hosts, smaller effective windows on the WAN path).
    pub rwnd: usize,
    /// Initial congestion window in bytes (~3 segments).
    pub init_cwnd: usize,
}

impl TcpParams {
    /// Fair share of the bottleneck for `n` local flows competing with the
    /// configured background flows.
    pub fn fair_share(&self, n: u32) -> f64 {
        let k = self.background_flows as f64;
        let n = n as f64;
        self.link_bw * n / (n + k)
    }

    /// Steady-state rate of one flow when `n` local flows are active:
    /// the smaller of its window ceiling and its share of capacity.
    pub fn stream_rate(&self, n: u32) -> f64 {
        let window_rate = self.rwnd as f64 / self.rtt.as_secs_f64().max(1e-9);
        window_rate.min(self.fair_share(n) / n as f64)
    }
}

/// One TCP connection through a [`TcpParams`] path.
#[derive(Debug, Clone, Copy)]
pub struct TcpFlow {
    params: TcpParams,
}

impl TcpFlow {
    /// A flow over the given path.
    pub fn new(params: TcpParams) -> TcpFlow {
        TcpFlow { params }
    }

    /// The path parameters.
    pub fn params(&self) -> &TcpParams {
        &self.params
    }

    /// Three-way-handshake cost before the first payload byte can leave
    /// (the final ACK piggybacks data).
    pub fn connect_duration(&self) -> SimTime {
        self.params.rtt
    }

    /// Steady-state throughput of this single flow (bytes/second).
    pub fn steady_rate(&self) -> f64 {
        self.params.stream_rate(1)
    }

    /// Time from the first byte entering the socket to the last byte
    /// arriving at the receiver, for a one-way `bytes` transfer on an
    /// established connection (slow start included).
    pub fn transfer_duration(&self, bytes: usize) -> SimTime {
        self.transfer_duration_at_rate(bytes, self.steady_rate())
    }

    /// As [`TcpFlow::transfer_duration`] but with an externally capped
    /// steady rate (used by the striped model where each stripe gets a
    /// share of capacity).
    pub fn transfer_duration_at_rate(&self, bytes: usize, steady_rate: f64) -> SimTime {
        let rtt = self.params.rtt.as_secs_f64();
        let half_rtt = rtt / 2.0;
        if bytes == 0 {
            // An empty message still propagates (e.g. a zero-length body
            // with headers accounted by the caller).
            return SimTime::from_secs_f64(half_rtt);
        }
        let steady_rate = steady_rate.max(1.0);
        // Bytes deliverable per round while the window is cwnd-limited.
        let cap_per_round = steady_rate * rtt;
        let mut cwnd = self.params.init_cwnd as f64;
        let mut sent = 0f64;
        let mut elapsed = 0f64;
        let total = bytes as f64;
        // Slow-start rounds: send cwnd bytes, wait an RTT for ACKs.
        while cwnd < cap_per_round && sent + cwnd < total {
            sent += cwnd;
            elapsed += rtt;
            cwnd = (cwnd * 2.0).min(cap_per_round);
        }
        // Remainder at the steady rate, plus final propagation.
        elapsed += (total - sent) / steady_rate + half_rtt;
        SimTime::from_secs_f64(elapsed)
    }

    /// A request/response exchange on an established connection: send
    /// `req` bytes, the peer replies with `resp` bytes. Server processing
    /// time is added by the caller (it is measured, not modeled).
    pub fn request_response(&self, req: usize, resp: usize) -> SimTime {
        self.transfer_duration(req) + self.transfer_duration(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lan() -> TcpParams {
        TcpParams {
            rtt: SimTime::from_micros(200),
            link_bw: 10.5e6,
            background_flows: 0,
            rwnd: 64 * 1024,
            init_cwnd: 4380,
        }
    }

    fn wan() -> TcpParams {
        TcpParams {
            rtt: SimTime::from_micros(5750),
            link_bw: 24.0e6,
            background_flows: 4,
            rwnd: 24 * 1024,
            init_cwnd: 4380,
        }
    }

    #[test]
    fn small_messages_are_latency_bound() {
        let flow = TcpFlow::new(lan());
        let t = flow.transfer_duration(100);
        // ~half an RTT dominates a 100-byte message.
        assert!(t >= SimTime::from_micros(100));
        assert!(t < SimTime::from_micros(250), "{t}");
    }

    #[test]
    fn large_transfers_approach_link_rate_on_lan() {
        let flow = TcpFlow::new(lan());
        let bytes = 64 << 20;
        let t = flow.transfer_duration(bytes).as_secs_f64();
        let rate = bytes as f64 / t;
        assert!(
            (rate - 10.5e6).abs() / 10.5e6 < 0.02,
            "rate {rate} should be near link capacity"
        );
    }

    #[test]
    fn wan_single_stream_is_window_limited() {
        let p = wan();
        let flow = TcpFlow::new(p);
        let window_rate = p.rwnd as f64 / p.rtt.as_secs_f64();
        let bytes = 64 << 20;
        let t = flow.transfer_duration(bytes).as_secs_f64();
        let rate = bytes as f64 / t;
        assert!(rate < p.link_bw * 0.5, "far below link capacity");
        assert!(
            (rate - window_rate).abs() / window_rate < 0.05,
            "rate {rate} pinned to window ceiling {window_rate}"
        );
    }

    #[test]
    fn slow_start_penalizes_short_transfers() {
        let flow = TcpFlow::new(wan());
        // 100 KB has to climb through slow start; effective rate is far
        // below steady state.
        let t = flow.transfer_duration(100 * 1024).as_secs_f64();
        let eff = 100.0 * 1024.0 / t;
        assert!(eff < flow.steady_rate() * 0.7, "eff {eff}");
    }

    #[test]
    fn durations_are_monotone_in_size() {
        let flow = TcpFlow::new(wan());
        let mut last = SimTime::ZERO;
        for bytes in [0, 1, 100, 10_000, 1_000_000, 10_000_000] {
            let t = flow.transfer_duration(bytes);
            assert!(t >= last, "non-monotone at {bytes}");
            last = t;
        }
    }

    #[test]
    fn fair_share_splits_capacity() {
        let p = wan();
        assert!((p.fair_share(4) - 24.0e6 * 4.0 / 8.0).abs() < 1.0);
        // With no background flows the full link is available.
        assert!((lan().fair_share(1) - 10.5e6).abs() < 1.0);
    }

    #[test]
    fn connect_costs_one_rtt() {
        assert_eq!(TcpFlow::new(lan()).connect_duration(), SimTime::from_micros(200));
    }

    #[test]
    fn request_response_composes() {
        let flow = TcpFlow::new(lan());
        let rr = flow.request_response(1000, 1000);
        assert_eq!(
            rr,
            flow.transfer_duration(1000) + flow.transfer_duration(1000)
        );
    }
}
