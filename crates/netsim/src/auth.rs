//! Authentication handshake cost model.
//!
//! GridFTP sessions authenticate with GSI (X.509 over a TLS-style
//! handshake) before any data moves. The paper: "The high response time by
//! the SOAP with GridFTP data channel scheme is due to the expensive
//! authentication and the SSL handshake protocol. This suggests GridFTP is
//! unsuitable for the small message cases" (§6.2, Figure 4) — and
//! conversely "the overhead of the security is amortized as the message
//! size increases" (Figure 5).

use crate::time::SimTime;

/// A multi-round-trip handshake with per-side cryptographic CPU cost.
#[derive(Debug, Clone, Copy)]
pub struct AuthModel {
    /// Message round trips consumed by the handshake (TLS 1.0 + GSI
    /// delegation ≈ 5).
    pub round_trips: u32,
    /// Asymmetric-crypto CPU burned by the client (2006-era RSA-1024
    /// handshake ≈ tens of milliseconds).
    pub client_cpu: SimTime,
    /// Asymmetric-crypto CPU burned by the server.
    pub server_cpu: SimTime,
}

impl AuthModel {
    /// GSI authentication as deployed with GT4 GridFTP.
    pub fn gsi() -> AuthModel {
        AuthModel {
            round_trips: 5,
            client_cpu: SimTime::from_millis(22),
            server_cpu: SimTime::from_millis(30),
        }
    }

    /// No authentication (plain TCP / anonymous HTTP).
    pub fn none() -> AuthModel {
        AuthModel {
            round_trips: 0,
            client_cpu: SimTime::ZERO,
            server_cpu: SimTime::ZERO,
        }
    }

    /// Total handshake wall time over a path with the given RTT. The two
    /// sides' CPU work is serialized with the message exchanges.
    pub fn handshake_duration(&self, rtt: SimTime) -> SimTime {
        SimTime::from_nanos(rtt.as_nanos() * self.round_trips as u64)
            + self.client_cpu
            + self.server_cpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gsi_dominates_small_lan_messages() {
        // On the paper's 0.2 ms LAN, a bare TCP round trip is 200 µs; the
        // GSI handshake is two orders of magnitude above it.
        let rtt = SimTime::from_micros(200);
        let auth = AuthModel::gsi().handshake_duration(rtt);
        assert!(auth > SimTime::from_millis(50));
        assert!(auth.as_nanos() > 100 * rtt.as_nanos());
    }

    #[test]
    fn none_is_free() {
        assert_eq!(
            AuthModel::none().handshake_duration(SimTime::from_millis(6)),
            SimTime::ZERO
        );
    }

    #[test]
    fn wan_handshake_scales_with_rtt() {
        let lan = AuthModel::gsi().handshake_duration(SimTime::from_micros(200));
        let wan = AuthModel::gsi().handshake_duration(SimTime::from_micros(5750));
        assert!(wan > lan);
        assert_eq!(
            wan.as_nanos() - lan.as_nanos(),
            5 * (SimTime::from_micros(5750).as_nanos() - SimTime::from_micros(200).as_nanos())
        );
    }
}
