//! Striped (parallel-stream) transfers, GridFTP style.
//!
//! GridFTP's extended block mode stripes a file across `n` TCP streams;
//! each block carries its file offset and the receiver writes it where it
//! belongs. Two consequences, both visible in the paper's figures:
//!
//! * On the **WAN**, each stream is window-limited, so `n` streams move
//!   `n` windows per RTT — striping beats any single-stream scheme
//!   (Figure 6).
//! * On the **LAN**, a single stream already fills the link, so striping
//!   adds no bandwidth but *does* add out-of-order arrivals; each one
//!   costs the receiver a disk seek. The paper (citing Allcock et al.)
//!   observed exactly this mild degradation (Figure 5).
//!
//! The receiver is simulated with a discrete-event queue: block arrivals
//! (per-stream slow start and deterministic per-stream rate skew included)
//! are replayed in time order against a disk model that charges a seek
//! whenever a write is not sequential.

use crate::queue::EventQueue;
use crate::tcp::{TcpFlow, TcpParams};
use crate::time::SimTime;

/// Parameters of a striped transfer.
#[derive(Debug, Clone, Copy)]
pub struct StripedParams {
    /// Number of parallel TCP data streams.
    pub streams: u32,
    /// Stripe block size in bytes (GridFTP default era-appropriate 256 KiB).
    pub block_size: usize,
    /// The shared TCP path.
    pub tcp: TcpParams,
    /// Receiver disk seek penalty per out-of-order block.
    pub seek: SimTime,
    /// Receiver disk sequential bandwidth (bytes/second).
    pub disk_bw: f64,
    /// Relative rate spread across streams (0.03 = slowest stream is 3%
    /// slower than the fastest). Real stripes never run in lockstep; the
    /// skew is deterministic so simulations are reproducible.
    pub rate_skew: f64,
}

/// Result of simulating one striped transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StripedOutcome {
    /// Time from transfer start until the last block is on disk.
    pub duration: SimTime,
    /// Number of blocks that arrived out of sequential order.
    pub out_of_order_blocks: usize,
    /// Total number of blocks transferred.
    pub total_blocks: usize,
}

/// A striped transfer simulator.
#[derive(Debug, Clone, Copy)]
pub struct StripedTransfer {
    params: StripedParams,
}

impl StripedTransfer {
    /// A simulator with the given parameters.
    pub fn new(params: StripedParams) -> StripedTransfer {
        assert!(params.streams >= 1, "at least one stream");
        assert!(params.block_size > 0, "block size must be positive");
        StripedTransfer { params }
    }

    /// Per-stream steady rate, with the deterministic skew applied.
    fn stream_rate(&self, stream: u32) -> f64 {
        let p = &self.params;
        let base = p.tcp.stream_rate(p.streams);
        if p.streams == 1 {
            return base;
        }
        // Linear spread: stream 0 fastest, stream n-1 slowest.
        let frac = stream as f64 / (p.streams - 1) as f64;
        base * (1.0 - p.rate_skew * frac)
    }

    /// Simulate moving `bytes` through the stripe set onto the receiver's
    /// disk (connections assumed established; see the gridftp crate for
    /// session setup costs).
    pub fn transfer(&self, bytes: usize) -> StripedOutcome {
        let p = &self.params;
        if bytes == 0 {
            return StripedOutcome {
                duration: p.tcp.rtt,
                out_of_order_blocks: 0,
                total_blocks: 0,
            };
        }
        let total_blocks = bytes.div_ceil(p.block_size);

        // Round-robin assignment: block b goes to stream b % n. Schedule
        // each block's arrival time from its stream's cumulative transfer
        // curve (slow start + steady skewed rate).
        let mut queue: EventQueue<Block> = EventQueue::new();
        for s in 0..p.streams {
            let flow = TcpFlow::new(p.tcp);
            let rate = self.stream_rate(s);
            let mut cumulative = 0usize;
            let mut index_in_stream = 0u64;
            let mut b = s as usize;
            while b < total_blocks {
                let len = p.block_size.min(bytes - b * p.block_size);
                cumulative += len;
                let arrival = flow.transfer_duration_at_rate(cumulative, rate);
                let _ = index_in_stream;
                index_in_stream += 1;
                queue.schedule(
                    arrival,
                    Block {
                        offset: b * p.block_size,
                        len,
                    },
                );
                b += p.streams as usize;
            }
        }

        // Receiver: a disk that charges a seek for non-sequential writes.
        let mut disk_free = SimTime::ZERO;
        let mut next_offset = 0usize;
        let mut out_of_order = 0usize;
        while let Some((arrival, block)) = queue.pop() {
            let start = arrival.max(disk_free);
            let mut cost = SimTime::from_secs_f64(block.len as f64 / p.disk_bw);
            if block.offset != next_offset {
                out_of_order += 1;
                cost += p.seek;
            }
            next_offset = block.offset + block.len;
            disk_free = start + cost;
        }

        StripedOutcome {
            duration: disk_free,
            out_of_order_blocks: out_of_order,
            total_blocks,
        }
    }

    /// Aggregate steady throughput across all stripes (bytes/second),
    /// ignoring slow start and reassembly — an upper bound used by tests
    /// and capacity planning.
    pub fn peak_rate(&self) -> f64 {
        (0..self.params.streams).map(|s| self.stream_rate(s)).sum()
    }
}

#[derive(Debug, Clone, Copy)]
struct Block {
    offset: usize,
    len: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lan_tcp() -> TcpParams {
        TcpParams {
            rtt: SimTime::from_micros(200),
            link_bw: 10.5e6,
            background_flows: 0,
            rwnd: 64 * 1024,
            init_cwnd: 4380,
        }
    }

    fn wan_tcp() -> TcpParams {
        TcpParams {
            rtt: SimTime::from_micros(5750),
            link_bw: 24.0e6,
            background_flows: 4,
            rwnd: 24 * 1024,
            init_cwnd: 4380,
        }
    }

    fn striped(streams: u32, tcp: TcpParams) -> StripedTransfer {
        StripedTransfer::new(StripedParams {
            streams,
            block_size: 256 * 1024,
            tcp,
            seek: SimTime::from_millis(8),
            disk_bw: 60.0e6,
            rate_skew: 0.04,
        })
    }

    #[test]
    fn wan_parallelism_beats_single_stream() {
        let bytes = 32 << 20;
        let t1 = striped(1, wan_tcp()).transfer(bytes).duration;
        let t4 = striped(4, wan_tcp()).transfer(bytes).duration;
        let t16 = striped(16, wan_tcp()).transfer(bytes).duration;
        assert!(t4 < t1, "4 streams {t4} should beat 1 stream {t1} on WAN");
        assert!(t16 < t4, "16 streams {t16} should beat 4 {t4} on WAN");
    }

    #[test]
    fn lan_parallelism_degrades_slightly() {
        let bytes = 32 << 20;
        let t1 = striped(1, lan_tcp()).transfer(bytes);
        let t4 = striped(4, lan_tcp()).transfer(bytes);
        assert!(
            t4.duration > t1.duration,
            "parallel {:?} should not beat single {:?} on a LAN",
            t4.duration,
            t1.duration
        );
        // ...but only somewhat: well under 2x.
        assert!(t4.duration.as_secs_f64() < t1.duration.as_secs_f64() * 2.0);
        // The cause is out-of-order reassembly.
        assert_eq!(t1.out_of_order_blocks, 0);
        assert!(t4.out_of_order_blocks > 0);
    }

    #[test]
    fn single_stream_is_in_order() {
        let out = striped(1, wan_tcp()).transfer(8 << 20);
        assert_eq!(out.out_of_order_blocks, 0);
        assert_eq!(out.total_blocks, (8 << 20) / (256 * 1024));
    }

    #[test]
    fn zero_bytes_is_cheap() {
        let out = striped(4, lan_tcp()).transfer(0);
        assert_eq!(out.total_blocks, 0);
        assert!(out.duration <= SimTime::from_millis(1));
    }

    #[test]
    fn peak_rate_scales_until_capacity() {
        let one = striped(1, wan_tcp()).peak_rate();
        let sixteen = striped(16, wan_tcp()).peak_rate();
        assert!(sixteen > one * 2.0);
        assert!(sixteen <= wan_tcp().link_bw);
    }

    #[test]
    fn deterministic() {
        let a = striped(8, wan_tcp()).transfer(16 << 20);
        let b = striped(8, wan_tcp()).transfer(16 << 20);
        assert_eq!(a, b);
    }

    #[test]
    fn duration_monotone_in_bytes() {
        let s = striped(4, wan_tcp());
        let mut last = SimTime::ZERO;
        for mb in [1usize, 2, 8, 32] {
            let t = s.transfer(mb << 20).duration;
            assert!(t > last);
            last = t;
        }
    }
}
