//! Virtual time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// A point (or span) of virtual time, in nanoseconds.
///
/// Virtual time is a plain counter: simulations are exactly reproducible
/// and independent of the host's wall clock. `SimTime` interoperates with
/// `std::time::Duration` so measured CPU times can be injected directly
/// into a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// From whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> SimTime {
        SimTime(ns)
    }

    /// From whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> SimTime {
        SimTime(us * 1_000)
    }

    /// From whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    /// From (possibly fractional) seconds. Negative input clamps to zero.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> SimTime {
        SimTime((secs.max(0.0) * 1e9).round() as u64)
    }

    /// As fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// As fractional microseconds (the unit of the paper's Figure 4).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// As whole nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Saturating difference.
    #[inline]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl From<Duration> for SimTime {
    fn from(d: Duration) -> SimTime {
        SimTime(d.as_nanos().min(u64::MAX as u128) as u64)
    }
}

impl From<SimTime> for Duration {
    fn from(t: SimTime) -> Duration {
        Duration::from_nanos(t.0)
    }
}

impl SimTime {
    /// Convert to `std::time::Duration`.
    pub fn as_duration(self) -> Duration {
        self.into()
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}µs", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
        assert_eq!(SimTime::from_secs_f64(0.001), SimTime::from_millis(1));
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(3);
        let b = SimTime::from_millis(1);
        assert_eq!(a + b, SimTime::from_millis(4));
        assert_eq!(a - b, SimTime::from_millis(2));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_millis(4));
    }

    #[test]
    fn duration_interop() {
        let d = Duration::from_micros(250);
        let t: SimTime = d.into();
        assert_eq!(t, SimTime::from_micros(250));
        let back: Duration = t.into();
        assert_eq!(back, d);
    }

    #[test]
    fn negative_seconds_clamp() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimTime::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimTime::from_micros(5).to_string(), "5.000µs");
        assert_eq!(SimTime::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimTime::from_millis(5000).to_string(), "5.000s");
    }
}
