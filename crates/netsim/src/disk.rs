//! Disk I/O cost model.
//!
//! The separated scheme (SOAP control message + netCDF file over
//! HTTP/GridFTP) forces the payload through the server's filesystem: the
//! client writes a netCDF file, the transfer server reads it, and the
//! paper attributes the SOAP+HTTP scheme's deficit against SOAP/BXSA to
//! precisely "the extra disk I/O enforced by the netCDF library" (§6.2).

use crate::time::SimTime;

/// A simple seek + sequential-bandwidth disk model (2006-era SATA).
#[derive(Debug, Clone, Copy)]
pub struct DiskModel {
    /// Average positioning time charged once per file operation.
    pub seek: SimTime,
    /// Sequential throughput, bytes/second.
    pub bw: f64,
}

impl DiskModel {
    /// A typical 7200 rpm disk of the paper's era.
    pub fn era_default() -> DiskModel {
        DiskModel {
            seek: SimTime::from_millis(8),
            bw: 60.0e6,
        }
    }

    /// Time to write a file of `bytes` sequentially.
    pub fn write_duration(&self, bytes: usize) -> SimTime {
        self.seek + SimTime::from_secs_f64(bytes as f64 / self.bw)
    }

    /// Time to read a file of `bytes` sequentially.
    ///
    /// Reads and writes are symmetric in this model; the distinction is
    /// kept for call-site clarity.
    pub fn read_duration(&self, bytes: usize) -> SimTime {
        self.seek + SimTime::from_secs_f64(bytes as f64 / self.bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_files_pay_the_seek() {
        let d = DiskModel::era_default();
        let t = d.write_duration(100);
        assert!(t >= d.seek);
        assert!(t < d.seek + SimTime::from_micros(100));
    }

    #[test]
    fn large_files_are_bandwidth_bound() {
        let d = DiskModel::era_default();
        let bytes = 600 << 20;
        let t = d.read_duration(bytes).as_secs_f64();
        let rate = bytes as f64 / t;
        assert!((rate - d.bw).abs() / d.bw < 0.01);
    }

    #[test]
    fn read_write_symmetric() {
        let d = DiskModel::era_default();
        assert_eq!(d.read_duration(12345), d.write_duration(12345));
    }
}
