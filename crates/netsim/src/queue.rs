//! A deterministic discrete-event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A time-ordered event queue.
///
/// Events scheduled for the same instant pop in insertion order (a
/// monotone sequence number breaks ties), so simulations are fully
/// deterministic regardless of heap internals.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    key: Reverse<(SimTime, u64)>,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Entry<E>) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Entry<E>) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Entry<E>) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> EventQueue<E> {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedule `event` at absolute virtual time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            key: Reverse((at, seq)),
            event,
        });
    }

    /// Pop the earliest event with its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| ((e.key.0).0, e.event))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| (e.key.0).0)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(5), "c");
        q.schedule(SimTime::from_millis(1), "a");
        q.schedule(SimTime::from_millis(3), "b");
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(1)));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(1);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    proptest! {
        #[test]
        fn always_nondecreasing(times in proptest::collection::vec(0u64..1_000_000, 1..100)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(t), i);
            }
            prop_assert_eq!(q.len(), times.len());
            let mut last = SimTime::ZERO;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
            }
        }
    }
}
