//! The virtual clock driving a simulation.

use crate::time::SimTime;

/// A monotone virtual clock.
///
/// Harnesses advance it with simulated network/disk durations *and* with
/// measured CPU durations (serialization, verification), composing both
/// into one end-to-end virtual response time.
#[derive(Debug, Clone, Copy, Default)]
pub struct VirtualClock {
    now: SimTime,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advance by a span.
    #[inline]
    pub fn advance(&mut self, span: impl Into<SimTime>) {
        self.now += span.into();
    }

    /// Move forward *to* an absolute time (no-op if already past it —
    /// useful when merging parallel activity completion times).
    #[inline]
    pub fn advance_to(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Span elapsed since an earlier instant.
    #[inline]
    pub fn since(&self, start: SimTime) -> SimTime {
        self.now.saturating_sub(start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn advances_and_measures() {
        let mut c = VirtualClock::new();
        let start = c.now();
        c.advance(SimTime::from_millis(2));
        c.advance(Duration::from_millis(3)); // measured CPU time mixes in
        assert_eq!(c.since(start), SimTime::from_millis(5));
    }

    #[test]
    fn advance_to_is_monotone() {
        let mut c = VirtualClock::new();
        c.advance(SimTime::from_millis(10));
        c.advance_to(SimTime::from_millis(5)); // in the past: no-op
        assert_eq!(c.now(), SimTime::from_millis(10));
        c.advance_to(SimTime::from_millis(15));
        assert_eq!(c.now(), SimTime::from_millis(15));
    }
}
