//! Calibrated network profiles for the paper's two testbeds.

use crate::disk::DiskModel;
use crate::striped::StripedParams;
use crate::tcp::TcpParams;
use crate::time::SimTime;

/// A named network environment: path characteristics plus the disk model
/// used by file-staging schemes.
#[derive(Debug, Clone, Copy)]
pub struct NetworkProfile {
    /// Human-readable name ("LAN", "WAN").
    pub name: &'static str,
    /// Round-trip time between client and server.
    pub rtt: SimTime,
    /// Application-visible bottleneck capacity, bytes/second.
    pub link_bw: f64,
    /// Background flows competing on the bottleneck.
    pub background_flows: u32,
    /// Effective receiver window of an untuned TCP stream.
    pub rwnd: usize,
    /// Receiver-side disk.
    pub disk: DiskModel,
}

impl NetworkProfile {
    /// The paper's local-area testbed: 0.2 ms RTT (measured, §6.2), an
    /// idle switched 100 Mb Ethernet whose application-visible ceiling the
    /// paper observed at ≈10 MB/s ("almost reached the maximum transfer
    /// rate for a single untuned TCP stream"), 64 KiB default windows.
    pub fn lan() -> NetworkProfile {
        NetworkProfile {
            name: "LAN",
            rtt: SimTime::from_micros(200),
            link_bw: 10.5e6,
            background_flows: 0,
            rwnd: 64 * 1024,
            disk: DiskModel::era_default(),
        }
    }

    /// The paper's wide-area testbed: Indiana ↔ University of Chicago,
    /// 5.75 ms RTT (measured, §6.2). The shared path carries cross
    /// traffic, and the effective single-stream window is small enough
    /// that one stream cannot fill the pipe — which is what gives striped
    /// GridFTP its advantage in Figure 6.
    pub fn wan() -> NetworkProfile {
        NetworkProfile {
            name: "WAN",
            rtt: SimTime::from_micros(5750),
            link_bw: 24.0e6,
            background_flows: 4,
            rwnd: 24 * 1024,
            disk: DiskModel::era_default(),
        }
    }

    /// TCP parameters for one flow on this path.
    pub fn tcp(&self) -> TcpParams {
        TcpParams {
            rtt: self.rtt,
            link_bw: self.link_bw,
            background_flows: self.background_flows,
            rwnd: self.rwnd,
            // ~3 era-typical 1460-byte segments.
            init_cwnd: 4380,
        }
    }

    /// Striped-transfer parameters with `streams` parallel data channels.
    pub fn striped(&self, streams: u32) -> StripedParams {
        StripedParams {
            streams,
            block_size: 256 * 1024,
            tcp: self.tcp(),
            seek: self.disk.seek,
            disk_bw: self.disk.bw,
            rate_skew: 0.04,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::striped::StripedTransfer;
    use crate::tcp::TcpFlow;

    #[test]
    fn lan_single_stream_near_ten_mb_per_sec() {
        let flow = TcpFlow::new(NetworkProfile::lan().tcp());
        let rate = flow.steady_rate();
        assert!((9.5e6..11.5e6).contains(&rate), "rate {rate}");
    }

    #[test]
    fn wan_single_stream_around_four_mb_per_sec() {
        // 24 KiB / 5.75 ms ≈ 4.3 MB/s — matching the single-stream
        // plateau of Figure 6.
        let flow = TcpFlow::new(NetworkProfile::wan().tcp());
        let rate = flow.steady_rate();
        assert!((3.0e6..5.0e6).contains(&rate), "rate {rate}");
    }

    #[test]
    fn figure6_ordering_holds_at_steady_state() {
        let wan = NetworkProfile::wan();
        let r1 = StripedTransfer::new(wan.striped(1)).peak_rate();
        let r4 = StripedTransfer::new(wan.striped(4)).peak_rate();
        let r16 = StripedTransfer::new(wan.striped(16)).peak_rate();
        assert!(r1 < r4 && r4 < r16, "{r1} {r4} {r16}");
        assert!(r16 <= wan.link_bw);
    }

    #[test]
    fn rtts_match_the_paper() {
        assert_eq!(NetworkProfile::lan().rtt, SimTime::from_micros(200));
        assert_eq!(NetworkProfile::wan().rtt, SimTime::from_micros(5750));
    }
}
