//! # netsim — a deterministic network / disk / authentication simulator
//!
//! The paper evaluates its SOAP bindings on two real testbeds: a LAN with
//! a 0.2 ms round-trip time and a WAN (Indiana ↔ Chicago) with a 5.75 ms
//! round-trip time. This crate is the substitute substrate: a
//! deterministic, virtual-time model of the mechanisms that produce the
//! paper's curves —
//!
//! * **TCP flows** with connection handshake, slow start, and a
//!   receiver-window throughput ceiling (`wnd / RTT`) — the reason a
//!   single untuned stream cannot fill a long fat pipe (Figure 6);
//! * **striped parallel transfers** (GridFTP-style) simulated block by
//!   block through a discrete-event queue, including the receiver-side
//!   "seek" cost for out-of-order blocks that makes striping *hurt* on a
//!   LAN (Figure 5, citing Allcock et al.);
//! * **disk I/O** with seek latency and sequential bandwidth (the
//!   netCDF-file round trip of the separated scheme);
//! * **authentication handshakes** (GSI/TLS-style multi-round-trip +
//!   crypto CPU) that dominate GridFTP's small-message cost (Figure 4).
//!
//! Everything runs in virtual time ([`SimTime`]); benchmark harnesses mix
//! these simulated durations with *measured* CPU times for
//! serialization/deserialization, reproducing the paper's
//! request-response structure without its hardware.
//!
//! ```
//! use netsim::{NetworkProfile, TcpFlow};
//!
//! let lan = NetworkProfile::lan();
//! let flow = TcpFlow::new(lan.tcp());
//! // One round trip plus transmission: a small message is latency-bound.
//! let t = flow.request_response(512, 512);
//! assert!(t.as_secs_f64() < 0.002);
//! ```

pub mod auth;
pub mod clock;
pub mod disk;
pub mod profile;
pub mod queue;
pub mod striped;
pub mod tcp;
pub mod time;

pub use auth::AuthModel;
pub use clock::VirtualClock;
pub use disk::DiskModel;
pub use profile::NetworkProfile;
pub use queue::EventQueue;
pub use striped::{StripedParams, StripedTransfer};
pub use tcp::{TcpFlow, TcpParams};
pub use time::SimTime;
