//! A WS-Eventing-style publish/subscribe layer.
//!
//! One of the Figure 3 upper-stack boxes ("WS-Eventing"): subscribers
//! register an endpoint and a topic filter; the event source pushes
//! notification messages through an ordinary generic SOAP engine. The
//! layer manipulates envelopes and bXDM only — switching the notification
//! encoding from XML to BXSA is a type-parameter change at the call site,
//! not a code change here.

use std::sync::atomic::{AtomicU64, Ordering};

use bxdm::{AtomicValue, Element};
use parking_lot::Mutex;
use soap::{
    BindingPolicy, EncodingPolicy, ServiceRegistry, SoapEngine, SoapEnvelope, SoapResult,
};

/// A registered subscription.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Subscription {
    /// Identifier returned to the subscriber.
    pub id: u64,
    /// Delivery endpoint (framed-TCP address).
    pub endpoint: String,
    /// Topic filter: exact-match on the notification topic.
    pub topic: String,
}

/// An event source managing subscriptions and pushing notifications.
pub struct EventSource {
    next_id: AtomicU64,
    subs: Mutex<Vec<Subscription>>,
}

impl Default for EventSource {
    fn default() -> EventSource {
        EventSource::new()
    }
}

impl EventSource {
    /// A source with no subscribers.
    pub fn new() -> EventSource {
        EventSource {
            next_id: AtomicU64::new(1),
            subs: Mutex::new(Vec::new()),
        }
    }

    /// Register a subscriber; returns its subscription id.
    pub fn subscribe(&self, endpoint: &str, topic: &str) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.subs.lock().push(Subscription {
            id,
            endpoint: endpoint.to_owned(),
            topic: topic.to_owned(),
        });
        id
    }

    /// Remove a subscription; `true` if it existed.
    pub fn unsubscribe(&self, id: u64) -> bool {
        let mut subs = self.subs.lock();
        let before = subs.len();
        subs.retain(|s| s.id != id);
        subs.len() != before
    }

    /// Current subscriptions (snapshot).
    pub fn subscriptions(&self) -> Vec<Subscription> {
        self.subs.lock().clone()
    }

    /// Matching endpoints for a topic.
    pub fn matching(&self, topic: &str) -> Vec<Subscription> {
        self.subs
            .lock()
            .iter()
            .filter(|s| s.topic == topic)
            .cloned()
            .collect()
    }

    /// Build the notification envelope for a topic + payload.
    pub fn notification(topic: &str, payload: Element) -> SoapEnvelope {
        SoapEnvelope::with_body(
            Element::component("Notify")
                .with_child(Element::leaf(
                    "topic",
                    AtomicValue::Str(topic.to_owned()),
                ))
                .with_child(payload),
        )
    }

    /// Push `payload` to every subscriber of `topic`, creating one engine
    /// per delivery with `make_engine` (the caller picks encoding and
    /// binding — that is the whole point). Returns delivery results per
    /// subscription.
    pub fn notify<E, B>(
        &self,
        topic: &str,
        payload: Element,
        mut make_engine: impl FnMut(&Subscription) -> SoapEngine<E, B>,
    ) -> Vec<(u64, SoapResult<()>)>
    where
        E: EncodingPolicy,
        B: BindingPolicy,
    {
        let envelope = Self::notification(topic, payload);
        self.matching(topic)
            .into_iter()
            .map(|sub| {
                let mut engine = make_engine(&sub);
                let result = engine.call_with(envelope.clone(), &soap::CallOptions::new()).map(|_ack| ());
                (sub.id, result)
            })
            .collect()
    }

    /// Register the Subscribe/Unsubscribe operations on a service
    /// registry, so the source is manageable over SOAP itself.
    pub fn register_operations(self: std::sync::Arc<Self>, registry: &mut ServiceRegistry) {
        let source = std::sync::Arc::clone(&self);
        registry.register("Subscribe", move |req| {
            let body = req
                .body_element()
                .expect("dispatch guarantees a body element");
            let endpoint = body
                .child_value("endpoint")
                .and_then(AtomicValue::as_str)
                .ok_or_else(|| soap::SoapError::Protocol("missing endpoint".into()))?;
            let topic = body
                .child_value("topic")
                .and_then(AtomicValue::as_str)
                .ok_or_else(|| soap::SoapError::Protocol("missing topic".into()))?;
            let id = source.subscribe(endpoint, topic);
            Ok(SoapEnvelope::with_body(
                Element::component("SubscribeResponse")
                    .with_child(Element::leaf("id", AtomicValue::U64(id))),
            ))
        });
        let source = self;
        registry.register("Unsubscribe", move |req| {
            let id = req
                .body_element()
                .expect("dispatch guarantees a body element")
                .child_value("id")
                .and_then(|v| match v {
                    AtomicValue::U64(x) => Some(*x),
                    AtomicValue::I64(x) => Some(*x as u64),
                    _ => None,
                })
                .ok_or_else(|| soap::SoapError::Protocol("missing id".into()))?;
            let removed = source.unsubscribe(id);
            Ok(SoapEnvelope::with_body(
                Element::component("UnsubscribeResponse")
                    .with_child(Element::leaf("removed", AtomicValue::Bool(removed))),
            ))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex as PMutex;
    use soap::{BxsaEncoding, TcpBinding, TcpSoapServer};
    use std::sync::Arc;

    #[test]
    fn subscription_management() {
        let src = EventSource::new();
        let a = src.subscribe("127.0.0.1:9001", "temp");
        let b = src.subscribe("127.0.0.1:9002", "temp");
        let c = src.subscribe("127.0.0.1:9003", "pressure");
        assert_eq!(src.subscriptions().len(), 3);
        assert_eq!(src.matching("temp").len(), 2);
        assert!(src.unsubscribe(b));
        assert!(!src.unsubscribe(b));
        assert_eq!(src.matching("temp").len(), 1);
        let _ = (a, c);
    }

    #[test]
    fn notify_delivers_to_matching_subscribers_over_real_soap() {
        // A subscriber service that records received topics.
        let seen: Arc<PMutex<Vec<String>>> = Arc::new(PMutex::new(Vec::new()));
        let seen_server = Arc::clone(&seen);
        let registry = Arc::new(ServiceRegistry::new().with_operation("Notify", move |req| {
            let topic = req
                .body_element()
                .expect("body")
                .child_value("topic")
                .and_then(AtomicValue::as_str)
                .unwrap_or("?")
                .to_owned();
            seen_server.lock().push(topic);
            Ok(SoapEnvelope::with_body(Element::component("Ack")))
        }));
        let server =
            TcpSoapServer::bind("127.0.0.1:0", BxsaEncoding::default(), registry).unwrap();
        let addr = server.local_addr().to_string();

        let src = EventSource::new();
        src.subscribe(&addr, "temp");
        src.subscribe(&addr, "pressure");

        let results = src.notify(
            "temp",
            Element::leaf("value", AtomicValue::F64(281.5)),
            |sub| SoapEngine::new(BxsaEncoding::default(), TcpBinding::new(&sub.endpoint)),
        );
        assert_eq!(results.len(), 1);
        assert!(results[0].1.is_ok());
        assert_eq!(&*seen.lock(), &["temp"]);

        server.shutdown();
    }

    #[test]
    fn soap_managed_subscriptions() {
        let src = Arc::new(EventSource::new());
        let mut registry = ServiceRegistry::new();
        Arc::clone(&src).register_operations(&mut registry);
        let registry = Arc::new(registry);

        // Subscribe via the registry directly (transport covered above).
        let req = SoapEnvelope::with_body(
            Element::component("Subscribe")
                .with_child(Element::leaf(
                    "endpoint",
                    AtomicValue::Str("127.0.0.1:9009".into()),
                ))
                .with_child(Element::leaf("topic", AtomicValue::Str("t".into()))),
        );
        let resp = registry.dispatch(&req);
        let id = match resp.body_element().unwrap().child_value("id") {
            Some(AtomicValue::U64(x)) => *x,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(src.subscriptions().len(), 1);

        let req = SoapEnvelope::with_body(
            Element::component("Unsubscribe")
                .with_child(Element::leaf("id", AtomicValue::U64(id))),
        );
        let resp = registry.dispatch(&req);
        assert_eq!(
            resp.body_element().unwrap().child_value("removed"),
            Some(&AtomicValue::Bool(true))
        );
        assert!(src.subscriptions().is_empty());
    }

    #[test]
    fn notify_reports_dead_endpoints() {
        let src = EventSource::new();
        src.subscribe("127.0.0.1:1", "x"); // nothing listening
        let results = src.notify("x", Element::component("payload"), |sub| {
            SoapEngine::new(BxsaEncoding::default(), TcpBinding::new(&sub.endpoint))
        });
        assert_eq!(results.len(), 1);
        assert!(results[0].1.is_err());
    }
}
