//! WSDL-lite: runtime service descriptions with encoding/binding
//! extensions.
//!
//! Paper §2: "Users are free to specify the alternative message
//! encoding/binding scheme in the WSDL file, though most implementations
//! support this flexibility either poorly or not at all." This module is
//! the supported version: a small WSDL-shaped document (itself a bXDM
//! tree, so it travels over either encoding) listing a service's
//! operations and its **ports**, each port carrying `bx:encoding` and
//! `bx:transport` extension attributes. A client picks a port and asks
//! [`ServiceDescription::connect`] for a ready [`soap::AnyEngine`].

use bxdm::{AtomicValue, Document, Element};
use soap::{AnyEngine, SoapError, SoapResult, WireConfig};

/// WSDL namespace (1.1).
pub const WSDL_URI: &str = "http://schemas.xmlsoap.org/wsdl/";
/// Conventional prefix.
pub const WSDL_PREFIX: &str = "wsdl";

/// One operation offered by the service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperationDesc {
    /// Operation name (the body element's local name).
    pub name: String,
    /// Optional human documentation.
    pub documentation: Option<String>,
}

/// One concrete endpoint ("port") with its wire configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortDesc {
    /// Port name (e.g. "fast", "interop").
    pub name: String,
    /// The encoding/transport pair.
    pub config: WireConfig,
    /// `host:port` address.
    pub address: String,
    /// HTTP request path (ignored by TCP ports).
    pub path: String,
}

/// A service description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceDescription {
    /// Service name.
    pub name: String,
    /// Target namespace of the service's messages.
    pub target_namespace: String,
    /// Offered operations.
    pub operations: Vec<OperationDesc>,
    /// Concrete ports.
    pub ports: Vec<PortDesc>,
}

impl ServiceDescription {
    /// A description with no operations or ports yet.
    pub fn new(name: &str, target_namespace: &str) -> ServiceDescription {
        ServiceDescription {
            name: name.to_owned(),
            target_namespace: target_namespace.to_owned(),
            operations: Vec::new(),
            ports: Vec::new(),
        }
    }

    /// Add an operation (chainable).
    pub fn with_operation(mut self, name: &str, documentation: Option<&str>) -> ServiceDescription {
        self.operations.push(OperationDesc {
            name: name.to_owned(),
            documentation: documentation.map(str::to_owned),
        });
        self
    }

    /// Add a port (chainable).
    pub fn with_port(
        mut self,
        name: &str,
        config: WireConfig,
        address: &str,
        path: &str,
    ) -> ServiceDescription {
        self.ports.push(PortDesc {
            name: name.to_owned(),
            config,
            address: address.to_owned(),
            path: path.to_owned(),
        });
        self
    }

    /// Find a port by name.
    pub fn port(&self, name: &str) -> Option<&PortDesc> {
        self.ports.iter().find(|p| p.name == name)
    }

    /// Build an engine for the named port.
    pub fn connect(&self, port_name: &str) -> SoapResult<AnyEngine> {
        let port = self.port(port_name).ok_or_else(|| {
            SoapError::Protocol(format!(
                "service {:?} has no port {:?}",
                self.name, port_name
            ))
        })?;
        Ok(AnyEngine::connect(port.config, &port.address, &port.path))
    }

    /// Serialize as a WSDL-shaped bXDM document.
    pub fn to_document(&self) -> Document {
        let mut definitions = Element::component(format!("{WSDL_PREFIX}:definitions"))
            .with_namespace(WSDL_PREFIX, WSDL_URI)
            .with_namespace(xmltext::BX_PREFIX, xmltext::BX_URI)
            .with_attr("name", &self.name)
            .with_attr("targetNamespace", &self.target_namespace);

        let mut port_type = Element::component(format!("{WSDL_PREFIX}:portType"))
            .with_attr("name", &format!("{}PortType", self.name));
        for op in &self.operations {
            let mut e = Element::component(format!("{WSDL_PREFIX}:operation"))
                .with_attr("name", &op.name);
            if let Some(doc) = &op.documentation {
                e.push_child(Element::leaf(
                    format!("{WSDL_PREFIX}:documentation"),
                    AtomicValue::Str(doc.clone()),
                ));
            }
            port_type.push_child(e);
        }
        definitions.push_child(port_type);

        let mut service = Element::component(format!("{WSDL_PREFIX}:service"))
            .with_attr("name", &self.name);
        for port in &self.ports {
            let (encoding, transport) = port.config.tokens();
            service.push_child(
                Element::component(format!("{WSDL_PREFIX}:port"))
                    .with_attr("name", &port.name)
                    .with_attr("bx:encoding", encoding)
                    .with_attr("bx:transport", transport)
                    .with_child(
                        Element::component(format!("{WSDL_PREFIX}:address"))
                            .with_attr("location", &port.address)
                            .with_attr("path", &port.path),
                    ),
            );
        }
        definitions.push_child(service);
        Document::with_root(definitions)
    }

    /// Parse a WSDL-shaped document back into a description.
    pub fn from_document(doc: &Document) -> SoapResult<ServiceDescription> {
        let root = doc
            .root()
            .filter(|r| r.name.local() == "definitions")
            .ok_or_else(|| SoapError::Protocol("not a WSDL definitions document".into()))?;
        let attr_str = |e: &Element, name: &str| -> Option<String> {
            e.attribute_local(name)
                .map(|a| a.value.lexical())
        };
        let name = attr_str(root, "name")
            .ok_or_else(|| SoapError::Protocol("definitions lacks a name".into()))?;
        let target_namespace = attr_str(root, "targetNamespace").unwrap_or_default();

        let mut out = ServiceDescription::new(&name, &target_namespace);
        if let Some(port_type) = root.find_child("portType") {
            for op in port_type.child_elements() {
                if op.name.local() != "operation" {
                    continue;
                }
                let Some(op_name) = attr_str(op, "name") else { continue };
                let documentation = op
                    .find_child("documentation")
                    .map(|d| d.text_content());
                out.operations.push(OperationDesc {
                    name: op_name,
                    documentation,
                });
            }
        }
        if let Some(service) = root.find_child("service") {
            for port in service.child_elements() {
                if port.name.local() != "port" {
                    continue;
                }
                let port_name = attr_str(port, "name")
                    .ok_or_else(|| SoapError::Protocol("port lacks a name".into()))?;
                let encoding = attr_str(port, "encoding").unwrap_or_else(|| "xml".into());
                let transport = attr_str(port, "transport").unwrap_or_else(|| "http".into());
                let config = WireConfig::parse(&encoding, &transport)?;
                let address_el = port.find_child("address").ok_or_else(|| {
                    SoapError::Protocol(format!("port {port_name:?} lacks an address"))
                })?;
                let address = attr_str(address_el, "location")
                    .ok_or_else(|| SoapError::Protocol("address lacks a location".into()))?;
                let path = attr_str(address_el, "path").unwrap_or_else(|| "/soap".into());
                out.ports.push(PortDesc {
                    name: port_name,
                    config,
                    address,
                    path,
                });
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soap::{BxsaEncoding, ServiceRegistry, SoapEnvelope, TcpSoapServer, XmlEncoding};
    use soap::HttpSoapServer;
    use std::sync::Arc;

    fn sample() -> ServiceDescription {
        ServiceDescription::new("Verifier", "http://bxsoap.example.org/lead")
            .with_operation("Verify", Some("verify a LEAD dataset"))
            .with_operation("Status", None)
            .with_port(
                "fast",
                WireConfig::parse("bxsa", "tcp").unwrap(),
                "127.0.0.1:9100",
                "/",
            )
            .with_port(
                "interop",
                WireConfig::parse("xml", "http").unwrap(),
                "127.0.0.1:9101",
                "/soap",
            )
    }

    #[test]
    fn document_roundtrip() {
        let desc = sample();
        let doc = desc.to_document();
        assert_eq!(ServiceDescription::from_document(&doc).unwrap(), desc);
    }

    #[test]
    fn survives_both_wire_encodings() {
        let desc = sample();
        let doc = desc.to_document();
        let bin = bxsa::encode(&doc).unwrap();
        assert_eq!(
            ServiceDescription::from_document(&bxsa::decode(&bin).unwrap()).unwrap(),
            desc
        );
        let Ok(xml) = xmltext::to_string(&doc);
        assert_eq!(
            ServiceDescription::from_document(&xmltext::parse(&xml).unwrap()).unwrap(),
            desc
        );
    }

    #[test]
    fn missing_pieces_error() {
        let doc = Document::with_root(Element::component("notwsdl"));
        assert!(ServiceDescription::from_document(&doc).is_err());
        let doc = Document::with_root(
            Element::component("wsdl:definitions").with_namespace(WSDL_PREFIX, WSDL_URI),
        );
        assert!(ServiceDescription::from_document(&doc).is_err()); // no name
    }

    #[test]
    fn unknown_port_rejected() {
        assert!(sample().connect("nonexistent").is_err());
    }

    #[test]
    fn discovery_to_live_call() {
        // Server publishes two live ports; the client discovers them from
        // the (transcoded!) WSDL and calls through each.
        let registry = Arc::new(ServiceRegistry::new().with_operation("Echo", |req| {
            Ok(SoapEnvelope::with_body(
                bxdm::Element::component("EchoResponse")
                    .with_child(req.body_element().expect("checked").clone()),
            ))
        }));
        let tcp = TcpSoapServer::bind("127.0.0.1:0", BxsaEncoding::default(), registry.clone())
            .unwrap();
        let http = HttpSoapServer::bind(
            "127.0.0.1:0",
            "/soap",
            XmlEncoding::default(),
            registry,
        )
        .unwrap();

        let published = ServiceDescription::new("Echoer", "http://example.org/echo")
            .with_operation("Echo", None)
            .with_port(
                "fast",
                WireConfig::parse("bxsa", "tcp").unwrap(),
                &tcp.local_addr().to_string(),
                "/",
            )
            .with_port(
                "interop",
                WireConfig::parse("xml", "http").unwrap(),
                &http.local_addr().to_string(),
                "/soap",
            );
        // The description crosses the wire as binary XML.
        let wire = bxsa::encode(&published.to_document()).unwrap();
        let discovered =
            ServiceDescription::from_document(&bxsa::decode(&wire).unwrap()).unwrap();

        for port in ["fast", "interop"] {
            let mut engine = discovered.connect(port).unwrap();
            let resp = engine
                .call_with(SoapEnvelope::with_body(bxdm::Element::component("Echo")), &soap::CallOptions::new())
                .unwrap();
            assert_eq!(resp.operation(), Some("EchoResponse"), "port {port}");
        }

        tcp.shutdown();
        http.shutdown();
    }
}
