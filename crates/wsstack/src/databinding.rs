//! Struct ↔ bXDM databinding.
//!
//! The "XML databinding" box of Figure 3: application types map onto bXDM
//! elements, so services exchange typed Rust values while remaining
//! agnostic about the wire encoding underneath.

use bxdm::{ArrayValue, AtomicValue, Element};

/// Types that can render themselves as a named bXDM element.
pub trait ToBxdm {
    /// Build an element with the given name holding `self`.
    fn to_element(&self, name: &str) -> Element;
}

/// Types that can be recovered from a bXDM element.
pub trait FromBxdm: Sized {
    /// Parse from an element; `None` on shape/type mismatch.
    fn from_element(element: &Element) -> Option<Self>;
}

macro_rules! impl_leaf_binding {
    ($($t:ty => $variant:ident),+ $(,)?) => {$(
        impl ToBxdm for $t {
            fn to_element(&self, name: &str) -> Element {
                Element::leaf(name, AtomicValue::$variant(self.clone()))
            }
        }

        impl FromBxdm for $t {
            fn from_element(element: &Element) -> Option<$t> {
                match element.leaf_value()? {
                    AtomicValue::$variant(v) => Some(v.clone()),
                    _ => None,
                }
            }
        }
    )+};
}

impl_leaf_binding! {
    i8 => I8, u8 => U8, i16 => I16, u16 => U16,
    i32 => I32, u32 => U32, i64 => I64, u64 => U64,
    f32 => F32, f64 => F64, bool => Bool, String => Str,
}

macro_rules! impl_array_binding {
    ($($t:ty => $variant:ident),+ $(,)?) => {$(
        impl ToBxdm for Vec<$t> {
            fn to_element(&self, name: &str) -> Element {
                Element::array(name, ArrayValue::$variant(self.clone()))
            }
        }

        impl FromBxdm for Vec<$t> {
            fn from_element(element: &Element) -> Option<Vec<$t>> {
                match element.array_value()? {
                    ArrayValue::$variant(v) => Some(v.clone()),
                    _ => None,
                }
            }
        }
    )+};
}

impl_array_binding! {
    i8 => I8, u8 => U8, i16 => I16, u16 => U16,
    i32 => I32, u32 => U32, i64 => I64, u64 => U64,
    f32 => F32, f64 => F64,
}

/// Define the bXDM binding for a plain named struct: each field becomes a
/// child element bound through its own [`ToBxdm`]/[`FromBxdm`] impl.
///
/// ```
/// use wsstack::{bind_struct, ToBxdm, FromBxdm};
///
/// #[derive(Debug, Clone, PartialEq)]
/// struct Reading { station: String, values: Vec<f64>, valid: bool }
/// bind_struct!(Reading { station, values, valid });
///
/// let r = Reading { station: "KIND".into(), values: vec![1.0], valid: true };
/// let e = r.to_element("reading");
/// assert_eq!(Reading::from_element(&e), Some(r));
/// ```
#[macro_export]
macro_rules! bind_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::ToBxdm for $ty {
            fn to_element(&self, name: &str) -> bxdm::Element {
                let mut e = bxdm::Element::component(name);
                $(
                    e.push_child($crate::ToBxdm::to_element(
                        &self.$field,
                        stringify!($field),
                    ));
                )+
                e
            }
        }

        impl $crate::FromBxdm for $ty {
            fn from_element(element: &bxdm::Element) -> Option<$ty> {
                Some($ty {
                    $(
                        $field: $crate::FromBxdm::from_element(
                            element.find_child(stringify!($field))?,
                        )?,
                    )+
                })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_bindings_roundtrip() {
        let e = 42i32.to_element("n");
        assert_eq!(i32::from_element(&e), Some(42));
        assert_eq!(i64::from_element(&e), None); // wrong type

        let e = "hi".to_string().to_element("s");
        assert_eq!(String::from_element(&e), Some("hi".to_string()));

        let e = true.to_element("b");
        assert_eq!(bool::from_element(&e), Some(true));
    }

    #[test]
    fn array_bindings_roundtrip() {
        let v = vec![1.5f64, -2.0];
        let e = v.to_element("values");
        assert_eq!(Vec::<f64>::from_element(&e), Some(v));
        assert_eq!(Vec::<f32>::from_element(&e), None);
    }

    #[derive(Debug, Clone, PartialEq)]
    struct Observation {
        station: String,
        index: Vec<i32>,
        values: Vec<f64>,
        height: f64,
        valid: bool,
    }
    bind_struct!(Observation {
        station,
        index,
        values,
        height,
        valid
    });

    fn sample() -> Observation {
        Observation {
            station: "KBMG".into(),
            index: vec![1, 2, 3],
            values: vec![280.5, 281.0, 279.75],
            height: 120.0,
            valid: true,
        }
    }

    #[test]
    fn struct_binding_roundtrip() {
        let obs = sample();
        let e = obs.to_element("obs");
        assert_eq!(e.child_elements().count(), 5);
        assert_eq!(Observation::from_element(&e), Some(obs));
    }

    #[test]
    fn struct_binding_missing_field_is_none() {
        let mut e = sample().to_element("obs");
        let children = match &mut e.content {
            bxdm::Content::Children(c) => c,
            _ => unreachable!(),
        };
        children.remove(0);
        assert_eq!(Observation::from_element(&e), None);
    }

    #[test]
    fn struct_binding_survives_bxsa() {
        let obs = sample();
        let doc = bxdm::Document::with_root(obs.to_element("obs"));
        let bytes = bxsa::encode(&doc).unwrap();
        let back = bxsa::decode(&bytes).unwrap();
        assert_eq!(
            Observation::from_element(back.root().unwrap()),
            Some(obs)
        );
    }

    #[test]
    fn struct_binding_survives_xml() {
        let obs = sample();
        let doc = bxdm::Document::with_root(obs.to_element("obs"));
        let xml = xmltext::to_string(&doc).unwrap();
        let back = xmltext::parse(&xml).unwrap();
        assert_eq!(
            Observation::from_element(back.root().unwrap()),
            Some(obs)
        );
    }
}
