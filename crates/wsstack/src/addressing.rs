//! WS-Addressing headers.
//!
//! Message-addressing properties travel as SOAP header entries; because
//! they are ordinary bXDM elements they serialize through either encoding
//! unchanged — the point of Figure 3's layering.

use bxdm::{AtomicValue, Element};
use soap::SoapEnvelope;

/// WS-Addressing namespace URI (the 2005/08 recommendation).
pub const WSA_URI: &str = "http://www.w3.org/2005/08/addressing";
/// Conventional prefix.
pub const WSA_PREFIX: &str = "wsa";

/// Message-addressing properties.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WsAddressing {
    /// Destination endpoint URI (`wsa:To`).
    pub to: Option<String>,
    /// Action URI (`wsa:Action`).
    pub action: Option<String>,
    /// Unique message id (`wsa:MessageID`).
    pub message_id: Option<String>,
    /// Reply endpoint (`wsa:ReplyTo/wsa:Address`).
    pub reply_to: Option<String>,
    /// Correlated request id (`wsa:RelatesTo`).
    pub relates_to: Option<String>,
}

impl WsAddressing {
    /// Properties for a fresh request.
    pub fn request(to: &str, action: &str, message_id: &str) -> WsAddressing {
        WsAddressing {
            to: Some(to.to_owned()),
            action: Some(action.to_owned()),
            message_id: Some(message_id.to_owned()),
            ..Default::default()
        }
    }

    /// Properties for the reply to `request` (RelatesTo = its MessageID).
    pub fn reply_to_message(request: &WsAddressing, message_id: &str) -> WsAddressing {
        WsAddressing {
            to: request.reply_to.clone(),
            action: request.action.as_ref().map(|a| format!("{a}Response")),
            message_id: Some(message_id.to_owned()),
            relates_to: request.message_id.clone(),
            ..Default::default()
        }
    }

    fn leaf(local: &str, value: &str) -> Element {
        Element::leaf(
            format!("{WSA_PREFIX}:{local}"),
            AtomicValue::Str(value.to_owned()),
        )
        .with_namespace(WSA_PREFIX, WSA_URI)
    }

    /// Materialize as SOAP header entries.
    pub fn to_headers(&self) -> Vec<Element> {
        let mut out = Vec::new();
        if let Some(v) = &self.to {
            out.push(Self::leaf("To", v));
        }
        if let Some(v) = &self.action {
            out.push(Self::leaf("Action", v));
        }
        if let Some(v) = &self.message_id {
            out.push(Self::leaf("MessageID", v));
        }
        if let Some(v) = &self.reply_to {
            out.push(
                Element::component(format!("{WSA_PREFIX}:ReplyTo"))
                    .with_namespace(WSA_PREFIX, WSA_URI)
                    .with_child(Element::leaf(
                        format!("{WSA_PREFIX}:Address"),
                        AtomicValue::Str(v.clone()),
                    )),
            );
        }
        if let Some(v) = &self.relates_to {
            out.push(Self::leaf("RelatesTo", v));
        }
        out
    }

    /// Attach to an envelope (chainable with envelope builders).
    pub fn apply(&self, mut envelope: SoapEnvelope) -> SoapEnvelope {
        envelope.headers.extend(self.to_headers());
        envelope
    }

    /// Recover addressing properties from an envelope's headers.
    pub fn from_envelope(envelope: &SoapEnvelope) -> WsAddressing {
        let mut out = WsAddressing::default();
        for h in &envelope.headers {
            let text = h.text_content();
            match h.name.local() {
                "To" => out.to = Some(text),
                "Action" => out.action = Some(text),
                "MessageID" => out.message_id = Some(text),
                "RelatesTo" => out.relates_to = Some(text),
                "ReplyTo" => {
                    out.reply_to = h.find_child("Address").map(|a| a.text_content());
                }
                _ => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WsAddressing {
        let mut a = WsAddressing::request(
            "tcp://127.0.0.1:9000/verify",
            "http://example.org/Verify",
            "urn:uuid:42",
        );
        a.reply_to = Some("tcp://127.0.0.1:9001/replies".into());
        a
    }

    #[test]
    fn header_roundtrip() {
        let a = sample();
        let env = a.apply(SoapEnvelope::with_body(Element::component("Op")));
        assert_eq!(env.headers.len(), 4);
        assert_eq!(WsAddressing::from_envelope(&env), a);
    }

    #[test]
    fn roundtrip_survives_both_encodings() {
        let a = sample();
        let env = a.apply(SoapEnvelope::with_body(Element::component("Op")));
        let doc = env.to_document();

        let xml = xmltext::to_string(&doc).unwrap();
        let back = SoapEnvelope::from_document(&xmltext::parse(&xml).unwrap()).unwrap();
        assert_eq!(WsAddressing::from_envelope(&back), a);

        let bin = bxsa::encode(&doc).unwrap();
        let back = SoapEnvelope::from_document(&bxsa::decode(&bin).unwrap()).unwrap();
        assert_eq!(WsAddressing::from_envelope(&back), a);
    }

    #[test]
    fn reply_correlates() {
        let req = sample();
        let reply = WsAddressing::reply_to_message(&req, "urn:uuid:43");
        assert_eq!(reply.relates_to.as_deref(), Some("urn:uuid:42"));
        assert_eq!(reply.to, req.reply_to);
        assert_eq!(reply.action.as_deref(), Some("http://example.org/VerifyResponse"));
    }

    #[test]
    fn absent_properties_stay_absent() {
        let env = SoapEnvelope::with_body(Element::component("Op"));
        let a = WsAddressing::from_envelope(&env);
        assert_eq!(a, WsAddressing::default());
        assert!(a.to_headers().is_empty());
    }
}
