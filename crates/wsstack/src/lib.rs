//! # wsstack — the encoding-agnostic upper layers
//!
//! Figure 3 of the paper places WS-* protocols, XML databinding and XPath
//! querying *above* the SOAP layer, all speaking bXDM and therefore
//! "ignorant of the underlying encoding and transport layers". This crate
//! demonstrates that claim concretely:
//!
//! * [`addressing`] — WS-Addressing message headers (To / Action /
//!   MessageID / RelatesTo) that ride in any envelope regardless of
//!   encoding;
//! * [`eventing`] — a WS-Eventing-style subscribe/notify service built
//!   purely on the generic engine;
//! * [`mod@xpath`] — a compact XPath-like query engine evaluated directly on
//!   bXDM trees ("any XDM-based XML processing should be able to run with
//!   binary XML", §5.1);
//! * [`databinding`] — mapping Rust structs to and from bXDM elements,
//!   the paper's "XML databinding" box.

pub mod addressing;
pub mod databinding;
pub mod eventing;
pub mod security;
pub mod sha256;
pub mod wsdl;
pub mod xpath;

pub use addressing::{WsAddressing, WSA_PREFIX, WSA_URI};
pub use databinding::{FromBxdm, ToBxdm};
pub use eventing::{EventSource, Subscription};
pub use security::HmacSigner;
pub use sha256::{hmac_sha256, sha256, Sha256};
pub use wsdl::{PortDesc, ServiceDescription};
pub use xpath::{xpath, XPathError, XPathValue};
