//! A WS-Security-style message-signing layer.
//!
//! The paper (§5): *"It will be straightforward to introduce more
//! policies (e.g., a security policy) into the generic engine by just
//! adding more template parameters"* — and its intro scenario wants "the
//! XML signature applied" on one endpoint and none on another. This
//! module provides that policy: an HMAC-SHA256 signature over the SOAP
//! body, carried in a `wsse:Signature` header.
//!
//! **Canonicalization trick**: the signature is computed over the
//! *BXSA encoding* of the body element. BXSA is deterministic and
//! encoding-agnostic (any envelope — textual or binary on the wire — has
//! exactly one canonical binary form), so signatures survive
//! intermediaries that transcode between XML and BXSA. This is binary
//! XML doing the job XML C14N does for textual signatures.

use bxdm::{AtomicValue, Element};
use soap::{SoapEnvelope, SoapError, SoapResult};

use crate::sha256::{constant_time_eq, hmac_sha256, to_hex};

/// Namespace for the signature header.
pub const WSSE_URI: &str = "http://bxsoap.example.org/wsse";
/// Conventional prefix.
pub const WSSE_PREFIX: &str = "wsse";

/// A shared-key message signer/verifier.
#[derive(Debug, Clone)]
pub struct HmacSigner {
    key: Vec<u8>,
    /// Key identifier carried in the header so receivers with multiple
    /// keys can select the right one.
    pub key_id: String,
}

impl HmacSigner {
    /// A signer using `key`, labeled `key_id`.
    pub fn new(key: &[u8], key_id: &str) -> HmacSigner {
        HmacSigner {
            key: key.to_vec(),
            key_id: key_id.to_owned(),
        }
    }

    /// Canonical bytes of an envelope's body (deterministic BXSA).
    fn canonical_body(envelope: &SoapEnvelope) -> SoapResult<Vec<u8>> {
        let mut canonical = Vec::new();
        for entry in &envelope.body {
            let bytes = bxsa::encoder::encode_element(entry, &bxsa::EncodeOptions::default())?;
            canonical.extend_from_slice(&bytes);
        }
        Ok(canonical)
    }

    /// Compute the signature value for an envelope's current body.
    pub fn signature_hex(&self, envelope: &SoapEnvelope) -> SoapResult<String> {
        let canonical = Self::canonical_body(envelope)?;
        Ok(to_hex(&hmac_sha256(&self.key, &canonical)))
    }

    /// Sign: append the `wsse:Signature` header.
    pub fn sign(&self, mut envelope: SoapEnvelope) -> SoapResult<SoapEnvelope> {
        let value = self.signature_hex(&envelope)?;
        envelope.headers.push(
            Element::component(format!("{WSSE_PREFIX}:Signature"))
                .with_namespace(WSSE_PREFIX, WSSE_URI)
                .with_child(Element::leaf(
                    format!("{WSSE_PREFIX}:KeyId"),
                    AtomicValue::Str(self.key_id.clone()),
                ))
                .with_child(Element::leaf(
                    format!("{WSSE_PREFIX}:Algorithm"),
                    AtomicValue::Str("hmac-sha256-bxsa-c14n".into()),
                ))
                .with_child(Element::leaf(
                    format!("{WSSE_PREFIX}:Value"),
                    AtomicValue::Str(value),
                )),
        );
        Ok(envelope)
    }

    /// Verify: check the header's signature against the body.
    ///
    /// Errors are SOAP faults in waiting: the caller (service side) maps
    /// them onto `Client` faults.
    pub fn verify(&self, envelope: &SoapEnvelope) -> SoapResult<()> {
        let header = envelope
            .headers
            .iter()
            .find(|h| h.name.local() == "Signature")
            .ok_or_else(|| SoapError::Protocol("message is not signed".into()))?;
        let key_id = header
            .child_value("KeyId")
            .and_then(AtomicValue::as_str)
            .unwrap_or_default();
        if key_id != self.key_id {
            return Err(SoapError::Protocol(format!(
                "signed with unknown key {key_id:?}"
            )));
        }
        let claimed = header
            .child_value("Value")
            .and_then(AtomicValue::as_str)
            .ok_or_else(|| SoapError::Protocol("signature header lacks a value".into()))?;
        let expected = self.signature_hex(envelope)?;
        if !constant_time_eq(claimed.as_bytes(), expected.as_bytes()) {
            return Err(SoapError::Protocol(
                "signature verification failed".into(),
            ));
        }
        Ok(())
    }

    /// Wrap a service handler so it rejects unsigned/miss-signed requests
    /// and signs its responses — the server half of the policy.
    pub fn protect<F>(
        self,
        handler: F,
    ) -> impl Fn(&SoapEnvelope) -> SoapResult<SoapEnvelope> + Send + Sync + 'static
    where
        F: Fn(&SoapEnvelope) -> SoapResult<SoapEnvelope> + Send + Sync + 'static,
    {
        move |request| {
            self.verify(request).map_err(|e| {
                SoapError::Fault(soap::SoapFault::new(
                    soap::FaultCode::Client,
                    &format!("security: {e}"),
                ))
            })?;
            let response = handler(request)?;
            self.sign(response)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bxdm::ArrayValue;

    fn signer() -> HmacSigner {
        HmacSigner::new(b"shared secret key", "k1")
    }

    fn envelope() -> SoapEnvelope {
        SoapEnvelope::with_body(
            Element::component("Op")
                .with_child(Element::array("v", ArrayValue::F64(vec![1.0, -2.0]))),
        )
    }

    #[test]
    fn sign_verify_roundtrip() {
        let signed = signer().sign(envelope()).unwrap();
        assert!(signed.headers.iter().any(|h| h.name.local() == "Signature"));
        signer().verify(&signed).unwrap();
    }

    #[test]
    fn tampered_body_rejected() {
        let mut signed = signer().sign(envelope()).unwrap();
        signed.body[0] = Element::component("Op")
            .with_child(Element::array("v", ArrayValue::F64(vec![1.0, -2.5])));
        assert!(signer().verify(&signed).is_err());
    }

    #[test]
    fn unsigned_rejected() {
        assert!(signer().verify(&envelope()).is_err());
    }

    #[test]
    fn wrong_key_rejected() {
        let signed = signer().sign(envelope()).unwrap();
        let other = HmacSigner::new(b"different key", "k1");
        assert!(other.verify(&signed).is_err());
        // Same key, different id: rejected by key selection.
        let other_id = HmacSigner::new(b"shared secret key", "k2");
        assert!(other_id.verify(&signed).is_err());
    }

    #[test]
    fn signature_survives_wire_roundtrip_in_both_encodings() {
        let signed = signer().sign(envelope()).unwrap();
        let doc = signed.to_document();

        // Through BXSA.
        let bin = bxsa::encode(&doc).unwrap();
        let back = SoapEnvelope::from_document(&bxsa::decode(&bin).unwrap()).unwrap();
        signer().verify(&back).unwrap();

        // Through textual XML — the canonical form is still the binary
        // encoding of the body, so transcoding does not break it.
        let Ok(xml) = xmltext::to_string(&doc);
        let back = SoapEnvelope::from_document(&xmltext::parse(&xml).unwrap()).unwrap();
        signer().verify(&back).unwrap();
    }

    #[test]
    fn protected_handler_enforces_and_signs() {
        let handler = signer().protect(|_req| {
            Ok(SoapEnvelope::with_body(Element::component("Ok")))
        });
        // Unsigned request → fault error.
        assert!(matches!(
            handler(&envelope()),
            Err(SoapError::Fault(f)) if f.string.contains("security")
        ));
        // Signed request → signed response.
        let signed = signer().sign(envelope()).unwrap();
        let response = handler(&signed).unwrap();
        signer().verify(&response).unwrap();
    }
}

impl soap::SecurityPolicy for HmacSigner {
    fn apply(&self, envelope: SoapEnvelope) -> SoapResult<SoapEnvelope> {
        self.sign(envelope)
    }

    fn check(&self, envelope: &SoapEnvelope) -> SoapResult<()> {
        self.verify(envelope)
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;
    use soap::{BxsaEncoding, ServiceRegistry, SoapEngine, TcpBinding, TcpSoapServer};
    use std::sync::Arc;

    /// The paper's intro scenario: one endpoint signed, one not — same
    /// engine type, different policy parameters.
    #[test]
    fn signed_engine_against_protected_service() {
        let signer = HmacSigner::new(b"fleet key", "fleet");
        let registry = Arc::new(ServiceRegistry::new().with_operation(
            "Ping",
            signer.clone().protect(|_req| {
                Ok(SoapEnvelope::with_body(Element::component("Pong")))
            }),
        ));
        let server =
            TcpSoapServer::bind("127.0.0.1:0", BxsaEncoding::default(), registry).unwrap();
        let addr = server.local_addr().to_string();

        // Unsigned engine: rejected with a Client fault.
        let mut plain = SoapEngine::new(BxsaEncoding::default(), TcpBinding::new(&addr));
        match plain.call_with(SoapEnvelope::with_body(Element::component("Ping")), &soap::CallOptions::new()) {
            Err(SoapError::Fault(f)) => assert!(f.string.contains("security")),
            other => panic!("expected security fault, got {other:?}"),
        }

        // Signed engine: the third policy parameter in action.
        let mut secured = SoapEngine::with_security(
            BxsaEncoding::default(),
            TcpBinding::new(&addr),
            HmacSigner::new(b"fleet key", "fleet"),
        );
        let response = secured
            .call_with(SoapEnvelope::with_body(Element::component("Ping")), &soap::CallOptions::new())
            .unwrap();
        assert_eq!(response.operation(), Some("Pong"));

        server.shutdown();
    }

    #[test]
    fn signed_engine_rejects_unsigned_responses() {
        // Service replies unsigned; the client's check() must fail.
        let registry = Arc::new(ServiceRegistry::new().with_operation("Ping", |_req| {
            Ok(SoapEnvelope::with_body(Element::component("Pong")))
        }));
        let server =
            TcpSoapServer::bind("127.0.0.1:0", BxsaEncoding::default(), registry).unwrap();
        let mut secured = SoapEngine::with_security(
            BxsaEncoding::default(),
            TcpBinding::new(&server.local_addr().to_string()),
            HmacSigner::new(b"fleet key", "fleet"),
        );
        // The *request* signature is ignored by this unprotected service,
        // but the unsigned response fails the client-side check.
        assert!(matches!(
            secured.call_with(SoapEnvelope::with_body(Element::component("Ping")), &soap::CallOptions::new()),
            Err(SoapError::Protocol(_))
        ));
        server.shutdown();
    }
}
