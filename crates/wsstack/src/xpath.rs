//! A compact XPath-like query engine over bXDM.
//!
//! Paper §5.1: "since bXDM is extended from XDM, any XDM-based XML
//! processing (e.g. XPath or XSLT) should be able to run with binary XML
//! with minor modification." This module is the proof: queries evaluate
//! against the data model, so a document decoded from BXSA and one parsed
//! from textual XML answer identically.
//!
//! Supported grammar (a practical XPath 1.0 subset):
//!
//! ```text
//! path      := ('/' | '//')? step ('/' | '//') step ...
//! step      := name | '*' | name '[' index ']' | '@' name | 'text()'
//! ```
//!
//! Indexes are 1-based as in XPath. `//` selects descendants-or-self.

use bxdm::Element;

/// A query result.
#[derive(Debug, Clone, PartialEq)]
pub enum XPathValue<'a> {
    /// A set of matched elements (document order).
    Nodes(Vec<&'a Element>),
    /// A set of strings (attribute values or text()).
    Strings(Vec<String>),
}

impl<'a> XPathValue<'a> {
    /// The matched elements (empty for string results).
    pub fn nodes(&self) -> &[&'a Element] {
        match self {
            XPathValue::Nodes(n) => n,
            XPathValue::Strings(_) => &[],
        }
    }

    /// First match as an element.
    pub fn first(&self) -> Option<&'a Element> {
        self.nodes().first().copied()
    }

    /// The result as strings: attribute/text results directly, element
    /// results via their text content.
    pub fn strings(&self) -> Vec<String> {
        match self {
            XPathValue::Strings(s) => s.clone(),
            XPathValue::Nodes(n) => n.iter().map(|e| e.text_content()).collect(),
        }
    }

    /// Number of matches.
    pub fn len(&self) -> usize {
        match self {
            XPathValue::Nodes(n) => n.len(),
            XPathValue::Strings(s) => s.len(),
        }
    }

    /// `true` when nothing matched.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Query errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XPathError {
    /// Empty path or empty step.
    EmptyStep,
    /// A malformed predicate (non-numeric or unclosed).
    BadPredicate(String),
    /// `@attr` or `text()` used in a non-final step.
    NonFinalValueStep(String),
}

impl std::fmt::Display for XPathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XPathError::EmptyStep => write!(f, "empty path step"),
            XPathError::BadPredicate(p) => write!(f, "bad predicate {p:?}"),
            XPathError::NonFinalValueStep(s) => {
                write!(f, "step {s:?} is only allowed at the end of a path")
            }
        }
    }
}

impl std::error::Error for XPathError {}

#[derive(Debug)]
enum Axis {
    Child,
    Descendant,
}

#[derive(Debug)]
enum StepKind {
    Name(String),
    Wildcard,
    Attribute(String),
    Text,
}

#[derive(Debug)]
struct Step {
    axis: Axis,
    kind: StepKind,
    index: Option<usize>,
}

fn parse(path: &str) -> Result<Vec<Step>, XPathError> {
    let mut steps = Vec::new();
    let mut rest = path.trim();
    // Leading axis of the first step.
    let mut axis = if let Some(r) = rest.strip_prefix("//") {
        rest = r;
        Axis::Descendant
    } else if let Some(r) = rest.strip_prefix('/') {
        rest = r;
        Axis::Child
    } else {
        Axis::Child
    };
    loop {
        let (token, next_axis, remainder) = match rest.find('/') {
            Some(i) => {
                let token = &rest[..i];
                if rest[i..].starts_with("//") {
                    (token, Some(Axis::Descendant), &rest[i + 2..])
                } else {
                    (token, Some(Axis::Child), &rest[i + 1..])
                }
            }
            None => (rest, None, ""),
        };
        let token = token.trim();
        if token.is_empty() {
            return Err(XPathError::EmptyStep);
        }
        // Predicate.
        let (token, index) = match token.find('[') {
            Some(open) => {
                let close = token.rfind(']').ok_or_else(|| {
                    XPathError::BadPredicate(token.to_owned())
                })?;
                let idx: usize = token[open + 1..close]
                    .trim()
                    .parse()
                    .map_err(|_| XPathError::BadPredicate(token.to_owned()))?;
                if idx == 0 {
                    return Err(XPathError::BadPredicate(token.to_owned()));
                }
                (&token[..open], Some(idx))
            }
            None => (token, None),
        };
        let kind = if let Some(attr) = token.strip_prefix('@') {
            StepKind::Attribute(attr.to_owned())
        } else if token == "text()" {
            StepKind::Text
        } else if token == "*" {
            StepKind::Wildcard
        } else {
            StepKind::Name(token.to_owned())
        };
        steps.push(Step { axis, kind, index });
        match next_axis {
            Some(a) => {
                axis = a;
                rest = remainder;
            }
            None => break,
        }
    }
    // Value steps must be final.
    for (i, step) in steps.iter().enumerate() {
        if i + 1 != steps.len() {
            match &step.kind {
                StepKind::Attribute(a) => {
                    return Err(XPathError::NonFinalValueStep(format!("@{a}")))
                }
                StepKind::Text => return Err(XPathError::NonFinalValueStep("text()".into())),
                _ => {}
            }
        }
    }
    Ok(steps)
}

fn descendants_or_self<'a>(e: &'a Element, out: &mut Vec<&'a Element>) {
    out.push(e);
    for c in e.child_elements() {
        descendants_or_self(c, out);
    }
}

/// Evaluate `path` against `root` (the path's first step matches
/// *children* of `root`, or any descendant with a leading `//`).
pub fn xpath<'a>(root: &'a Element, path: &str) -> Result<XPathValue<'a>, XPathError> {
    let steps = parse(path)?;
    let mut current: Vec<&'a Element> = vec![root];
    for (i, step) in steps.iter().enumerate() {
        let is_last = i + 1 == steps.len();
        // Candidate set per the axis.
        let candidates: Vec<&'a Element> = match step.axis {
            Axis::Child => current
                .iter()
                .flat_map(|e| e.child_elements())
                .collect(),
            Axis::Descendant => {
                let mut all = Vec::new();
                for e in &current {
                    for c in e.child_elements() {
                        descendants_or_self(c, &mut all);
                    }
                }
                all
            }
        };
        match &step.kind {
            StepKind::Attribute(name) => {
                // Final step (validated): collect attribute values of the
                // *current* node set, not the candidates.
                let values: Vec<String> = current
                    .iter()
                    .filter_map(|e| e.attribute_local(name))
                    .map(|a| a.value.lexical())
                    .collect();
                let values = apply_index_strings(values, step.index);
                return Ok(XPathValue::Strings(values));
            }
            StepKind::Text => {
                let values: Vec<String> = current.iter().map(|e| e.text_content()).collect();
                let values = apply_index_strings(values, step.index);
                return Ok(XPathValue::Strings(values));
            }
            StepKind::Wildcard => {
                current = apply_index(candidates, step.index);
            }
            StepKind::Name(name) => {
                let matched: Vec<&Element> = candidates
                    .into_iter()
                    .filter(|e| e.name.local() == name)
                    .collect();
                current = apply_index(matched, step.index);
            }
        }
        if current.is_empty() && !is_last {
            return Ok(XPathValue::Nodes(Vec::new()));
        }
    }
    Ok(XPathValue::Nodes(current))
}

fn apply_index<T>(items: Vec<T>, index: Option<usize>) -> Vec<T> {
    match index {
        Some(i) => items.into_iter().nth(i - 1).into_iter().collect(),
        None => items,
    }
}

fn apply_index_strings(items: Vec<String>, index: Option<usize>) -> Vec<String> {
    apply_index(items, index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bxdm::{ArrayValue, AtomicValue};

    fn tree() -> Element {
        Element::component("data")
            .with_attr("run", "42")
            .with_child(
                Element::component("series")
                    .with_attr("name", "temp")
                    .with_child(Element::leaf("count", AtomicValue::I32(3)))
                    .with_child(Element::array("v", ArrayValue::F64(vec![1.0, 2.0]))),
            )
            .with_child(
                Element::component("series")
                    .with_attr("name", "pressure")
                    .with_child(Element::leaf("count", AtomicValue::I32(7))),
            )
            .with_child(Element::leaf("note", AtomicValue::Str("ok".into())))
    }

    #[test]
    fn child_steps() {
        let t = tree();
        let r = xpath(&t, "series/count").unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.strings(), vec!["3", "7"]);
    }

    #[test]
    fn descendant_axis() {
        let t = tree();
        assert_eq!(xpath(&t, "//count").unwrap().len(), 2);
        assert_eq!(xpath(&t, "//v").unwrap().len(), 1);
    }

    #[test]
    fn predicates_are_one_based() {
        let t = tree();
        let r = xpath(&t, "series[2]/count").unwrap();
        assert_eq!(r.strings(), vec!["7"]);
        assert!(xpath(&t, "series[3]").unwrap().is_empty());
    }

    #[test]
    fn wildcard() {
        let t = tree();
        assert_eq!(xpath(&t, "*").unwrap().len(), 3);
        assert_eq!(xpath(&t, "series[1]/*").unwrap().len(), 2);
    }

    #[test]
    fn attributes_and_text() {
        let t = tree();
        assert_eq!(
            xpath(&t, "series/@name").unwrap().strings(),
            vec!["temp", "pressure"]
        );
        assert_eq!(xpath(&t, "note/text()").unwrap().strings(), vec!["ok"]);
    }

    #[test]
    fn errors() {
        let t = tree();
        assert_eq!(xpath(&t, "a//"), Err(XPathError::EmptyStep));
        assert!(matches!(
            xpath(&t, "series[x]"),
            Err(XPathError::BadPredicate(_))
        ));
        assert!(matches!(
            xpath(&t, "series[0]"),
            Err(XPathError::BadPredicate(_))
        ));
        assert!(matches!(
            xpath(&t, "@run/count"),
            Err(XPathError::NonFinalValueStep(_))
        ));
    }

    #[test]
    fn same_answers_after_binary_roundtrip() {
        // The encoding-agnosticism claim: queries answer identically on a
        // tree that has been through BXSA.
        let t = tree();
        let doc = bxdm::Document::with_root(t.clone());
        let bytes = bxsa::encode(&doc).unwrap();
        let back = bxsa::decode(&bytes).unwrap();
        let t2 = back.root().unwrap();
        for path in ["series/count", "//count", "series/@name", "note/text()"] {
            assert_eq!(
                xpath(&t, path).unwrap().strings(),
                xpath(t2, path).unwrap().strings(),
                "path {path}"
            );
        }
    }
}
