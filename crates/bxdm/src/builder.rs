//! Fluent construction helpers.
//!
//! Service code builds SOAP payloads with chained calls; the methods here
//! are the bXDM equivalent of the DOM-building convenience layers in
//! classic SOAP toolkits.

use crate::name::QName;
use crate::namespace::NamespaceDecl;
use crate::node::{Attribute, Element, Node};
use crate::value::AtomicValue;

impl Element {
    /// Add a namespace declaration and return `self` (chainable).
    pub fn with_namespace(mut self, prefix: &str, uri: &str) -> Element {
        self.namespaces.push(NamespaceDecl::prefixed(prefix, uri));
        self
    }

    /// Add a default-namespace declaration and return `self`.
    pub fn with_default_namespace(mut self, uri: &str) -> Element {
        self.namespaces.push(NamespaceDecl::default(uri));
        self
    }

    /// Add a string attribute and return `self`.
    pub fn with_attr(mut self, name: impl Into<QName>, value: &str) -> Element {
        self.attributes.push(Attribute::string(name, value));
        self
    }

    /// Add a typed attribute and return `self`.
    pub fn with_typed_attr(mut self, name: impl Into<QName>, value: AtomicValue) -> Element {
        self.attributes.push(Attribute::typed(name, value));
        self
    }

    /// Append a child element and return `self`.
    ///
    /// # Panics
    /// Panics when called on a leaf or array element — those have no
    /// children by construction; build the element as a component instead.
    pub fn with_child(mut self, child: Element) -> Element {
        self.push_child(child);
        self
    }

    /// Append a text node and return `self` (mixed content).
    pub fn with_text(mut self, text: &str) -> Element {
        self.push_node(Node::Text(text.to_owned()));
        self
    }

    /// Append a comment child and return `self`.
    pub fn with_comment(mut self, comment: &str) -> Element {
        self.push_node(Node::Comment(comment.to_owned()));
        self
    }

    /// Append a child element in place.
    pub fn push_child(&mut self, child: Element) {
        self.push_node(Node::Element(child));
    }

    /// Append any node in place.
    ///
    /// # Panics
    /// Panics when called on a leaf or array element.
    pub fn push_node(&mut self, node: Node) {
        match &mut self.content {
            crate::node::Content::Children(c) => c.push(node),
            other => panic!(
                "cannot append children to a {} element",
                match other {
                    crate::node::Content::Leaf(_) => "leaf",
                    crate::node::Content::Array(_) => "array",
                    crate::node::Content::Children(_) => unreachable!(),
                }
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ArrayValue;

    #[test]
    fn chained_construction() {
        let e = Element::component("d:root")
            .with_namespace("d", "http://example.org")
            .with_attr("id", "r1")
            .with_child(Element::leaf("d:n", AtomicValue::I32(1)))
            .with_child(Element::array("d:v", ArrayValue::F64(vec![0.5])))
            .with_text("tail")
            .with_comment("done");
        assert_eq!(e.namespaces.len(), 1);
        assert_eq!(e.attributes.len(), 1);
        assert_eq!(e.children().len(), 4);
    }

    #[test]
    #[should_panic(expected = "leaf")]
    fn cannot_add_children_to_leaf() {
        Element::leaf("x", AtomicValue::I32(0)).with_child(Element::component("y"));
    }

    #[test]
    #[should_panic(expected = "array")]
    fn cannot_add_children_to_array() {
        Element::array("x", ArrayValue::I32(vec![])).with_text("t");
    }
}
