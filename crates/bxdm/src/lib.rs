//! # bXDM — an XQuery/XPath Data Model extended for scientific data
//!
//! bXDM is the logical data model at the heart of the HPDC 2006 paper
//! *"Building a Generic SOAP Framework over Binary XML"*. It is the
//! XQuery 1.0 / XPath 2.0 Data Model (XDM) — chosen over the XML Infoset
//! because XDM carries **typed atomic values** — extended with two element
//! refinements that make numeric scientific payloads cheap:
//!
//! * **LeafElement** — an element whose entire content is a single typed
//!   atomic value (`<t xsi:type="xsd:int">42</t>`), stored in machine
//!   representation, so no integer/float ↔ ASCII conversion is needed when
//!   the document is encoded in binary.
//! * **ArrayElement** — an element representing a whole array of
//!   same-typed items as *one* node, stored as a packed `Vec<T>` —
//!   compatible with the packed layouts used by C and Fortran codes —
//!   rather than thousands of repeated child elements.
//!
//! All seven XDM node kinds (document, element, attribute, namespace,
//! processing instruction, text, comment) are representable; the SOAP
//! engine, the textual XML codec and the BXSA binary codec all operate on
//! this model, which is what lets applications switch serializations
//! without code changes.
//!
//! ```
//! use bxdm::{Element, AtomicValue, ArrayValue};
//!
//! let doc = Element::component("data:Dataset")
//!     .with_namespace("data", "http://example.org/data")
//!     .with_child(
//!         Element::array("data:values", ArrayValue::F64(vec![1.0, 2.5, -3.0])),
//!     )
//!     .with_child(Element::leaf("data:count", AtomicValue::I32(3)));
//!
//! assert_eq!(doc.find_child("values").unwrap().as_f64_array().unwrap(), &[1.0, 2.5, -3.0]);
//! ```

pub mod builder;
pub mod name;
pub mod namespace;
pub mod navigate;
pub mod node;
pub mod value;
pub mod visitor;

pub use name::QName;
pub use namespace::{NamespaceDecl, NsContext, ScopeChain, XMLNS_PREFIX, XSD_URI, XSI_URI};
pub use node::{Attribute, Content, Document, Element, Node};
pub use value::{ArrayValue, AtomicValue, ValueParseError};
pub use visitor::{walk_document, walk_element, walk_node, Visitor};
