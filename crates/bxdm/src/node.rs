//! The bXDM node tree.

use crate::name::QName;
use crate::namespace::NamespaceDecl;
use crate::value::{ArrayValue, AtomicValue};

/// A typed attribute.
///
/// bXDM attributes carry typed values (the "attribute value type code" in
/// the BXSA frame layout); plain textual attributes are `AtomicValue::Str`.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribute {
    /// Attribute name (possibly prefixed).
    pub name: QName,
    /// Typed attribute value.
    pub value: AtomicValue,
}

impl Attribute {
    /// A plain string attribute.
    pub fn string(name: impl Into<QName>, value: &str) -> Attribute {
        Attribute {
            name: name.into(),
            value: AtomicValue::Str(value.to_owned()),
        }
    }

    /// A typed attribute.
    pub fn typed(name: impl Into<QName>, value: AtomicValue) -> Attribute {
        Attribute {
            name: name.into(),
            value,
        }
    }
}

/// Element content — the bXDM refinement of the XDM element node (paper §3).
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// A general ("component") element: ordered child nodes, possibly
    /// mixed content.
    Children(Vec<Node>),
    /// A LeafElement: one typed atomic value, no child nodes.
    Leaf(AtomicValue),
    /// An ArrayElement: a packed homogeneous array as a single node.
    Array(ArrayValue),
}

impl Content {
    /// Empty component content.
    pub fn empty() -> Content {
        Content::Children(Vec::new())
    }
}

/// An element node (component, leaf, or array — see [`Content`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Element {
    /// Qualified element name.
    pub name: QName,
    /// Namespace declarations appearing on this element.
    pub namespaces: Vec<NamespaceDecl>,
    /// Attributes in document order (excluding `xmlns` declarations).
    pub attributes: Vec<Attribute>,
    /// The content model.
    pub content: Content,
}

impl Element {
    /// A new empty component element.
    pub fn component(name: impl Into<QName>) -> Element {
        Element {
            name: name.into(),
            namespaces: Vec::new(),
            attributes: Vec::new(),
            content: Content::empty(),
        }
    }

    /// A new leaf element holding one typed value.
    pub fn leaf(name: impl Into<QName>, value: AtomicValue) -> Element {
        Element {
            name: name.into(),
            namespaces: Vec::new(),
            attributes: Vec::new(),
            content: Content::Leaf(value),
        }
    }

    /// A new array element holding a packed array.
    pub fn array(name: impl Into<QName>, value: ArrayValue) -> Element {
        Element {
            name: name.into(),
            namespaces: Vec::new(),
            attributes: Vec::new(),
            content: Content::Array(value),
        }
    }

    /// `true` for component (general) elements.
    pub fn is_component(&self) -> bool {
        matches!(self.content, Content::Children(_))
    }

    /// `true` for leaf elements.
    pub fn is_leaf(&self) -> bool {
        matches!(self.content, Content::Leaf(_))
    }

    /// `true` for array elements.
    pub fn is_array(&self) -> bool {
        matches!(self.content, Content::Array(_))
    }

    /// Child nodes of a component element (empty slice otherwise).
    pub fn children(&self) -> &[Node] {
        match &self.content {
            Content::Children(c) => c,
            _ => &[],
        }
    }

    /// Mutable child list; converts leaf/array content into component
    /// content on demand (used by parsers building mixed content).
    pub fn children_mut(&mut self) -> &mut Vec<Node> {
        if !matches!(self.content, Content::Children(_)) {
            self.content = Content::Children(Vec::new());
        }
        match &mut self.content {
            Content::Children(c) => c,
            _ => unreachable!(),
        }
    }

    /// The typed value of a leaf element.
    pub fn leaf_value(&self) -> Option<&AtomicValue> {
        match &self.content {
            Content::Leaf(v) => Some(v),
            _ => None,
        }
    }

    /// The packed array of an array element.
    pub fn array_value(&self) -> Option<&ArrayValue> {
        match &self.content {
            Content::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Find an attribute by its lexical qualified name.
    pub fn attribute(&self, qname: &str) -> Option<&Attribute> {
        self.attributes.iter().find(|a| a.name.lexical() == qname)
    }

    /// Attribute lookup by local name only (prefix-insensitive).
    pub fn attribute_local(&self, local: &str) -> Option<&Attribute> {
        self.attributes.iter().find(|a| a.name.local() == local)
    }
}

/// Any bXDM node.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// An element (component / leaf / array).
    Element(Element),
    /// Character data.
    Text(String),
    /// A comment.
    Comment(String),
    /// A processing instruction.
    Pi {
        /// PI target (`<?target data?>`).
        target: String,
        /// PI data.
        data: String,
    },
}

impl Node {
    /// Borrow the element if this node is one.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            Node::Element(e) => Some(e),
            _ => None,
        }
    }

    /// Mutable element access.
    pub fn as_element_mut(&mut self) -> Option<&mut Element> {
        match self {
            Node::Element(e) => Some(e),
            _ => None,
        }
    }

    /// Borrow the text if this node is character data.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Node::Text(t) => Some(t),
            _ => None,
        }
    }
}

impl From<Element> for Node {
    fn from(e: Element) -> Node {
        Node::Element(e)
    }
}

/// The document node: the root of a bXDM tree.
///
/// A well-formed document has exactly one element child; comments and PIs
/// may appear beside it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Document {
    /// Top-level children (one element for well-formed documents).
    pub children: Vec<Node>,
}

impl Document {
    /// Empty document.
    pub fn new() -> Document {
        Document::default()
    }

    /// A document wrapping a single root element.
    pub fn with_root(root: Element) -> Document {
        Document {
            children: vec![Node::Element(root)],
        }
    }

    /// The root element, if the document has one.
    pub fn root(&self) -> Option<&Element> {
        self.children.iter().find_map(Node::as_element)
    }

    /// Mutable root element access.
    pub fn root_mut(&mut self) -> Option<&mut Element> {
        self.children.iter_mut().find_map(Node::as_element_mut)
    }

    /// Consume the document and return its root element.
    pub fn into_root(self) -> Option<Element> {
        self.children.into_iter().find_map(|n| match n {
            Node::Element(e) => Some(e),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_pick_content_kind() {
        assert!(Element::component("a").is_component());
        assert!(Element::leaf("a", AtomicValue::I32(1)).is_leaf());
        assert!(Element::array("a", ArrayValue::F64(vec![])).is_array());
    }

    #[test]
    fn children_mut_promotes_content() {
        let mut e = Element::leaf("a", AtomicValue::I32(1));
        e.children_mut().push(Node::Text("x".into()));
        assert!(e.is_component());
        assert_eq!(e.children().len(), 1);
    }

    #[test]
    fn attribute_lookup() {
        let mut e = Element::component("a");
        e.attributes.push(Attribute::string("xsi:type", "xsd:int"));
        e.attributes
            .push(Attribute::typed("n", AtomicValue::I32(5)));
        assert!(e.attribute("xsi:type").is_some());
        assert!(e.attribute("type").is_none());
        assert!(e.attribute_local("type").is_some());
        assert_eq!(
            e.attribute("n").unwrap().value,
            AtomicValue::I32(5)
        );
    }

    #[test]
    fn document_root() {
        let mut doc = Document::new();
        doc.children.push(Node::Comment("preamble".into()));
        doc.children.push(Node::Element(Element::component("root")));
        assert_eq!(doc.root().unwrap().name.local(), "root");
        assert_eq!(doc.into_root().unwrap().name.local(), "root");
    }

    #[test]
    fn leaf_and_array_accessors() {
        let e = Element::leaf("n", AtomicValue::F64(2.5));
        assert_eq!(e.leaf_value(), Some(&AtomicValue::F64(2.5)));
        assert_eq!(e.array_value(), None);
        assert!(e.children().is_empty());

        let a = Element::array("v", ArrayValue::I32(vec![1, 2]));
        assert_eq!(a.array_value().unwrap().len(), 2);
        assert_eq!(a.leaf_value(), None);
    }
}
