//! Tree navigation and extraction helpers.

use crate::node::{Content, Element, Node};
use crate::value::AtomicValue;

impl Element {
    /// First child element with the given *local* name.
    pub fn find_child(&self, local: &str) -> Option<&Element> {
        self.child_elements().find(|e| e.name.local() == local)
    }

    /// Mutable variant of [`Element::find_child`].
    pub fn find_child_mut(&mut self, local: &str) -> Option<&mut Element> {
        match &mut self.content {
            Content::Children(c) => c
                .iter_mut()
                .filter_map(Node::as_element_mut)
                .find(|e| e.name.local() == local),
            _ => None,
        }
    }

    /// All child elements, in document order.
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children().iter().filter_map(Node::as_element)
    }

    /// Walk a path of local names from this element down.
    ///
    /// ```
    /// use bxdm::{Element, AtomicValue};
    /// let tree = Element::component("a")
    ///     .with_child(Element::component("b")
    ///         .with_child(Element::leaf("c", AtomicValue::I32(9))));
    /// assert_eq!(tree.find_path(&["b", "c"]).unwrap().leaf_value(),
    ///            Some(&AtomicValue::I32(9)));
    /// ```
    pub fn find_path(&self, path: &[&str]) -> Option<&Element> {
        let mut cur = self;
        for step in path {
            cur = cur.find_child(step)?;
        }
        Some(cur)
    }

    /// All descendant elements (depth-first, self excluded).
    pub fn descendants(&self) -> Descendants<'_> {
        Descendants {
            stack: self.child_elements().collect::<Vec<_>>().into_iter().rev().collect(),
        }
    }

    /// Concatenated character data of this element.
    ///
    /// For leaf elements this is the lexical form of the value; for array
    /// elements the space-separated lexical items; for components the
    /// concatenation of all descendant text (XPath `string()` semantics).
    pub fn text_content(&self) -> String {
        let mut out = String::new();
        self.append_text(&mut out);
        out
    }

    fn append_text(&self, out: &mut String) {
        match &self.content {
            Content::Leaf(v) => v.write_lexical(out),
            Content::Array(a) => {
                for i in 0..a.len() {
                    if i > 0 {
                        out.push(' ');
                    }
                    a.item(i).expect("index in range").write_lexical(out);
                }
            }
            Content::Children(children) => {
                for child in children {
                    match child {
                        Node::Text(t) => out.push_str(t),
                        Node::Element(e) => e.append_text(out),
                        Node::Comment(_) | Node::Pi { .. } => {}
                    }
                }
            }
        }
    }

    /// Shortcut: the `f64` array of the named child (or of `self` when it
    /// is itself an array element and `local` matches its name).
    pub fn as_f64_array(&self) -> Option<&[f64]> {
        self.array_value()?.as_f64()
    }

    /// Shortcut: the `i32` array content of this element.
    pub fn as_i32_array(&self) -> Option<&[i32]> {
        self.array_value()?.as_i32()
    }

    /// Shortcut: typed leaf value of the named child.
    pub fn child_value(&self, local: &str) -> Option<&AtomicValue> {
        self.find_child(local)?.leaf_value()
    }

    /// Total number of nodes in this subtree (self included) — used by
    /// size accounting and tests.
    pub fn node_count(&self) -> usize {
        1 + match &self.content {
            Content::Children(c) => c
                .iter()
                .map(|n| match n {
                    Node::Element(e) => e.node_count(),
                    _ => 1,
                })
                .sum(),
            _ => 0,
        }
    }
}

/// Depth-first descendant iterator (see [`Element::descendants`]).
pub struct Descendants<'a> {
    stack: Vec<&'a Element>,
}

impl<'a> Iterator for Descendants<'a> {
    type Item = &'a Element;

    fn next(&mut self) -> Option<&'a Element> {
        let next = self.stack.pop()?;
        // Push children in reverse so document order pops first.
        let children: Vec<_> = next.child_elements().collect();
        self.stack.extend(children.into_iter().rev());
        Some(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ArrayValue;

    fn sample() -> Element {
        Element::component("root")
            .with_child(
                Element::component("a")
                    .with_child(Element::leaf("x", AtomicValue::I32(1)))
                    .with_child(Element::leaf("y", AtomicValue::Str("s".into()))),
            )
            .with_child(Element::array("v", ArrayValue::F64(vec![1.0, 2.0])))
            .with_child(Element::component("a"))
    }

    #[test]
    fn find_child_first_match() {
        let r = sample();
        let a = r.find_child("a").unwrap();
        assert_eq!(a.children().len(), 2);
        assert!(r.find_child("zzz").is_none());
    }

    #[test]
    fn find_path_walks() {
        let r = sample();
        assert_eq!(
            r.find_path(&["a", "x"]).unwrap().leaf_value(),
            Some(&AtomicValue::I32(1))
        );
        assert!(r.find_path(&["a", "nope"]).is_none());
        assert_eq!(r.find_path(&[]).unwrap().name.local(), "root");
    }

    #[test]
    fn descendants_depth_first_order() {
        let r = sample();
        let names: Vec<_> = r.descendants().map(|e| e.name.local().to_owned()).collect();
        assert_eq!(names, ["a", "x", "y", "v", "a"]);
    }

    #[test]
    fn text_content_concatenates() {
        let r = sample();
        assert_eq!(r.text_content(), "1s1 2");
        let mixed = Element::component("m")
            .with_text("pre ")
            .with_child(Element::leaf("n", AtomicValue::I32(3)))
            .with_text(" post");
        assert_eq!(mixed.text_content(), "pre 3 post");
    }

    #[test]
    fn node_count_counts_subtree() {
        // root + (a + x + y) + v + a = 6 elements, plus no text nodes
        assert_eq!(sample().node_count(), 6);
    }

    #[test]
    fn find_child_mut_allows_edit() {
        let mut r = sample();
        let v = r.find_child_mut("v").unwrap();
        v.content = Content::Array(ArrayValue::F64(vec![9.0]));
        assert_eq!(r.find_child("v").unwrap().as_f64_array(), Some(&[9.0][..]));
    }
}
