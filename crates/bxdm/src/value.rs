//! Typed atomic and array values.
//!
//! These are what distinguish bXDM from the plain XML Infoset: numbers
//! live in machine representation, so the binary codec never converts
//! through ASCII. The lexical (XML Schema) forms here are only used by the
//! *textual* codec — which is precisely the conversion cost the paper
//! measures (§6.2: "the performance bottleneck ... lies at the conversion
//! between floating-point numbers and their ASCII representation").

use std::fmt;

use xbs::TypeCode;

/// Error parsing an XML Schema lexical form back into a typed value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueParseError {
    /// The schema type that was expected.
    pub expected: TypeCode,
    /// The offending lexical text (truncated for sanity).
    pub text: String,
}

impl fmt::Display for ValueParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot parse {:?} from lexical form {:?}",
            self.expected, self.text
        )
    }
}

impl std::error::Error for ValueParseError {}

fn parse_err(expected: TypeCode, text: &str) -> ValueParseError {
    let mut text = text.to_owned();
    text.truncate(64);
    ValueParseError { expected, text }
}

/// A single typed atomic value (the content of a LeafElement or a typed
/// attribute).
#[derive(Debug, Clone, PartialEq)]
pub enum AtomicValue {
    I8(i8),
    U8(u8),
    I16(i16),
    U16(u16),
    I32(i32),
    U32(u32),
    I64(i64),
    U64(u64),
    F32(f32),
    F64(f64),
    Str(String),
    Bool(bool),
}

impl AtomicValue {
    /// Wire type code of this value.
    pub fn type_code(&self) -> TypeCode {
        match self {
            AtomicValue::I8(_) => TypeCode::I8,
            AtomicValue::U8(_) => TypeCode::U8,
            AtomicValue::I16(_) => TypeCode::I16,
            AtomicValue::U16(_) => TypeCode::U16,
            AtomicValue::I32(_) => TypeCode::I32,
            AtomicValue::U32(_) => TypeCode::U32,
            AtomicValue::I64(_) => TypeCode::I64,
            AtomicValue::U64(_) => TypeCode::U64,
            AtomicValue::F32(_) => TypeCode::F32,
            AtomicValue::F64(_) => TypeCode::F64,
            AtomicValue::Str(_) => TypeCode::Str,
            AtomicValue::Bool(_) => TypeCode::Bool,
        }
    }

    /// Append the XML Schema lexical form to `out`.
    ///
    /// Floats use Rust's shortest-round-trip formatting, which satisfies
    /// the paper's transcodability requirement (§4.2): the textual form
    /// parses back to the bit-identical value. Non-finite floats use the
    /// XSD spellings `INF`, `-INF`, `NaN`.
    pub fn write_lexical(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            AtomicValue::I8(v) => {
                let _ = write!(out, "{v}");
            }
            AtomicValue::U8(v) => {
                let _ = write!(out, "{v}");
            }
            AtomicValue::I16(v) => {
                let _ = write!(out, "{v}");
            }
            AtomicValue::U16(v) => {
                let _ = write!(out, "{v}");
            }
            AtomicValue::I32(v) => {
                let _ = write!(out, "{v}");
            }
            AtomicValue::U32(v) => {
                let _ = write!(out, "{v}");
            }
            AtomicValue::I64(v) => {
                let _ = write!(out, "{v}");
            }
            AtomicValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            AtomicValue::F32(v) => write_f32_lexical(*v, out),
            AtomicValue::F64(v) => write_f64_lexical(*v, out),
            AtomicValue::Str(v) => out.push_str(v),
            AtomicValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        }
    }

    /// The lexical form as an owned string.
    pub fn lexical(&self) -> String {
        let mut s = String::new();
        self.write_lexical(&mut s);
        s
    }

    /// Parse a lexical form as the given schema type.
    pub fn parse_as(code: TypeCode, text: &str) -> Result<AtomicValue, ValueParseError> {
        let t = text.trim();
        Ok(match code {
            TypeCode::I8 => AtomicValue::I8(t.parse().map_err(|_| parse_err(code, text))?),
            TypeCode::U8 => AtomicValue::U8(t.parse().map_err(|_| parse_err(code, text))?),
            TypeCode::I16 => AtomicValue::I16(t.parse().map_err(|_| parse_err(code, text))?),
            TypeCode::U16 => AtomicValue::U16(t.parse().map_err(|_| parse_err(code, text))?),
            TypeCode::I32 => AtomicValue::I32(t.parse().map_err(|_| parse_err(code, text))?),
            TypeCode::U32 => AtomicValue::U32(t.parse().map_err(|_| parse_err(code, text))?),
            TypeCode::I64 => AtomicValue::I64(t.parse().map_err(|_| parse_err(code, text))?),
            TypeCode::U64 => AtomicValue::U64(t.parse().map_err(|_| parse_err(code, text))?),
            TypeCode::F32 => AtomicValue::F32(parse_f32_lexical(t).ok_or_else(|| parse_err(code, text))?),
            TypeCode::F64 => AtomicValue::F64(parse_f64_lexical(t).ok_or_else(|| parse_err(code, text))?),
            TypeCode::Str => AtomicValue::Str(text.to_owned()),
            TypeCode::Bool => match t {
                "true" | "1" => AtomicValue::Bool(true),
                "false" | "0" => AtomicValue::Bool(false),
                _ => return Err(parse_err(code, text)),
            },
        })
    }

    /// Convenience extractors used pervasively by services.
    pub fn as_i32(&self) -> Option<i32> {
        match self {
            AtomicValue::I32(v) => Some(*v),
            _ => None,
        }
    }

    /// Extract an `i64`, widening from narrower integer variants.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            AtomicValue::I8(v) => Some(*v as i64),
            AtomicValue::I16(v) => Some(*v as i64),
            AtomicValue::I32(v) => Some(*v as i64),
            AtomicValue::I64(v) => Some(*v),
            AtomicValue::U8(v) => Some(*v as i64),
            AtomicValue::U16(v) => Some(*v as i64),
            AtomicValue::U32(v) => Some(*v as i64),
            _ => None,
        }
    }

    /// Extract an `f64`, widening from `f32`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AtomicValue::F32(v) => Some(*v as f64),
            AtomicValue::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Extract a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AtomicValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Extract a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            AtomicValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// XSD lexical form for `f64` (shortest round-trip, `INF`/`-INF`/`NaN`).
pub fn write_f64_lexical(v: f64, out: &mut String) {
    use std::fmt::Write as _;
    if v.is_nan() {
        out.push_str("NaN");
    } else if v.is_infinite() {
        out.push_str(if v > 0.0 { "INF" } else { "-INF" });
    } else {
        let _ = write!(out, "{v}");
    }
}

/// XSD lexical form for `f32`.
pub fn write_f32_lexical(v: f32, out: &mut String) {
    use std::fmt::Write as _;
    if v.is_nan() {
        out.push_str("NaN");
    } else if v.is_infinite() {
        out.push_str(if v > 0.0 { "INF" } else { "-INF" });
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Parse XSD `double` lexical form.
pub fn parse_f64_lexical(t: &str) -> Option<f64> {
    match t {
        "INF" | "+INF" => Some(f64::INFINITY),
        "-INF" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        _ => t.parse().ok(),
    }
}

/// Parse XSD `float` lexical form.
pub fn parse_f32_lexical(t: &str) -> Option<f32> {
    match t {
        "INF" | "+INF" => Some(f32::INFINITY),
        "-INF" => Some(f32::NEG_INFINITY),
        "NaN" => Some(f32::NAN),
        _ => t.parse().ok(),
    }
}

/// A packed, homogeneous one-dimensional array (the content of an
/// ArrayElement).
#[derive(Debug, Clone, PartialEq)]
pub enum ArrayValue {
    I8(Vec<i8>),
    U8(Vec<u8>),
    I16(Vec<i16>),
    U16(Vec<u16>),
    I32(Vec<i32>),
    U32(Vec<u32>),
    I64(Vec<i64>),
    U64(Vec<u64>),
    F32(Vec<f32>),
    F64(Vec<f64>),
}

impl ArrayValue {
    /// Wire type code of the element type.
    pub fn type_code(&self) -> TypeCode {
        match self {
            ArrayValue::I8(_) => TypeCode::I8,
            ArrayValue::U8(_) => TypeCode::U8,
            ArrayValue::I16(_) => TypeCode::I16,
            ArrayValue::U16(_) => TypeCode::U16,
            ArrayValue::I32(_) => TypeCode::I32,
            ArrayValue::U32(_) => TypeCode::U32,
            ArrayValue::I64(_) => TypeCode::I64,
            ArrayValue::U64(_) => TypeCode::U64,
            ArrayValue::F32(_) => TypeCode::F32,
            ArrayValue::F64(_) => TypeCode::F64,
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        match self {
            ArrayValue::I8(v) => v.len(),
            ArrayValue::U8(v) => v.len(),
            ArrayValue::I16(v) => v.len(),
            ArrayValue::U16(v) => v.len(),
            ArrayValue::I32(v) => v.len(),
            ArrayValue::U32(v) => v.len(),
            ArrayValue::I64(v) => v.len(),
            ArrayValue::U64(v) => v.len(),
            ArrayValue::F32(v) => v.len(),
            ArrayValue::F64(v) => v.len(),
        }
    }

    /// `true` when the array has no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total packed payload size in bytes (excluding alignment/count).
    pub fn byte_len(&self) -> usize {
        let width = self
            .type_code()
            .width()
            .expect("array element types are fixed-width");
        self.len() * width
    }

    /// The item at `idx` as an [`AtomicValue`], for generic (item-by-item)
    /// consumers such as the textual serializer.
    pub fn item(&self, idx: usize) -> Option<AtomicValue> {
        if idx >= self.len() {
            return None;
        }
        Some(match self {
            ArrayValue::I8(v) => AtomicValue::I8(v[idx]),
            ArrayValue::U8(v) => AtomicValue::U8(v[idx]),
            ArrayValue::I16(v) => AtomicValue::I16(v[idx]),
            ArrayValue::U16(v) => AtomicValue::U16(v[idx]),
            ArrayValue::I32(v) => AtomicValue::I32(v[idx]),
            ArrayValue::U32(v) => AtomicValue::U32(v[idx]),
            ArrayValue::I64(v) => AtomicValue::I64(v[idx]),
            ArrayValue::U64(v) => AtomicValue::U64(v[idx]),
            ArrayValue::F32(v) => AtomicValue::F32(v[idx]),
            ArrayValue::F64(v) => AtomicValue::F64(v[idx]),
        })
    }

    /// Borrow as `&[f64]` when that is the element type.
    pub fn as_f64(&self) -> Option<&[f64]> {
        match self {
            ArrayValue::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as `&[f32]` when that is the element type.
    pub fn as_f32(&self) -> Option<&[f32]> {
        match self {
            ArrayValue::F32(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as `&[i32]` when that is the element type.
    pub fn as_i32(&self) -> Option<&[i32]> {
        match self {
            ArrayValue::I32(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as `&[u8]` (raw octet stream) when that is the element type.
    pub fn as_u8(&self) -> Option<&[u8]> {
        match self {
            ArrayValue::U8(v) => Some(v),
            _ => None,
        }
    }

    /// Build an empty array of the given element type.
    ///
    /// Returns `None` for variable-width codes (`Str`) and `Bool`, which
    /// cannot be array element types in bXDM.
    pub fn empty_of(code: TypeCode) -> Option<ArrayValue> {
        Some(match code {
            TypeCode::I8 => ArrayValue::I8(Vec::new()),
            TypeCode::U8 => ArrayValue::U8(Vec::new()),
            TypeCode::I16 => ArrayValue::I16(Vec::new()),
            TypeCode::U16 => ArrayValue::U16(Vec::new()),
            TypeCode::I32 => ArrayValue::I32(Vec::new()),
            TypeCode::U32 => ArrayValue::U32(Vec::new()),
            TypeCode::I64 => ArrayValue::I64(Vec::new()),
            TypeCode::U64 => ArrayValue::U64(Vec::new()),
            TypeCode::F32 => ArrayValue::F32(Vec::new()),
            TypeCode::F64 => ArrayValue::F64(Vec::new()),
            TypeCode::Str | TypeCode::Bool => return None,
        })
    }

    /// Append one parsed lexical item (used when reading an array back
    /// from textual XML).
    pub fn push_lexical(&mut self, text: &str) -> Result<(), ValueParseError> {
        let code = self.type_code();
        let parsed = AtomicValue::parse_as(code, text)?;
        match (self, parsed) {
            (ArrayValue::I8(v), AtomicValue::I8(x)) => v.push(x),
            (ArrayValue::U8(v), AtomicValue::U8(x)) => v.push(x),
            (ArrayValue::I16(v), AtomicValue::I16(x)) => v.push(x),
            (ArrayValue::U16(v), AtomicValue::U16(x)) => v.push(x),
            (ArrayValue::I32(v), AtomicValue::I32(x)) => v.push(x),
            (ArrayValue::U32(v), AtomicValue::U32(x)) => v.push(x),
            (ArrayValue::I64(v), AtomicValue::I64(x)) => v.push(x),
            (ArrayValue::U64(v), AtomicValue::U64(x)) => v.push(x),
            (ArrayValue::F32(v), AtomicValue::F32(x)) => v.push(x),
            (ArrayValue::F64(v), AtomicValue::F64(x)) => v.push(x),
            _ => unreachable!("parse_as returns the requested variant"),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lexical_ints() {
        assert_eq!(AtomicValue::I32(-42).lexical(), "-42");
        assert_eq!(AtomicValue::U64(u64::MAX).lexical(), u64::MAX.to_string());
        assert_eq!(AtomicValue::Bool(true).lexical(), "true");
        assert_eq!(AtomicValue::Str("hi".into()).lexical(), "hi");
    }

    #[test]
    fn lexical_float_special_values() {
        assert_eq!(AtomicValue::F64(f64::INFINITY).lexical(), "INF");
        assert_eq!(AtomicValue::F64(f64::NEG_INFINITY).lexical(), "-INF");
        assert_eq!(AtomicValue::F64(f64::NAN).lexical(), "NaN");
        assert_eq!(AtomicValue::F32(f32::INFINITY).lexical(), "INF");
    }

    #[test]
    fn parse_special_floats() {
        assert_eq!(
            AtomicValue::parse_as(TypeCode::F64, "INF").unwrap(),
            AtomicValue::F64(f64::INFINITY)
        );
        assert!(matches!(
            AtomicValue::parse_as(TypeCode::F64, "NaN").unwrap(),
            AtomicValue::F64(v) if v.is_nan()
        ));
    }

    #[test]
    fn parse_bool_forms() {
        for t in ["true", "1"] {
            assert_eq!(
                AtomicValue::parse_as(TypeCode::Bool, t).unwrap(),
                AtomicValue::Bool(true)
            );
        }
        for t in ["false", "0"] {
            assert_eq!(
                AtomicValue::parse_as(TypeCode::Bool, t).unwrap(),
                AtomicValue::Bool(false)
            );
        }
        assert!(AtomicValue::parse_as(TypeCode::Bool, "yes").is_err());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(AtomicValue::parse_as(TypeCode::I32, "12.5").is_err());
        assert!(AtomicValue::parse_as(TypeCode::U8, "-1").is_err());
        assert!(AtomicValue::parse_as(TypeCode::F64, "1.2.3").is_err());
    }

    #[test]
    fn parse_trims_whitespace() {
        assert_eq!(
            AtomicValue::parse_as(TypeCode::I32, "  7 ").unwrap(),
            AtomicValue::I32(7)
        );
    }

    #[test]
    fn array_accessors() {
        let a = ArrayValue::F64(vec![1.0, 2.0]);
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
        assert_eq!(a.byte_len(), 16);
        assert_eq!(a.type_code(), TypeCode::F64);
        assert_eq!(a.item(1), Some(AtomicValue::F64(2.0)));
        assert_eq!(a.item(2), None);
        assert_eq!(a.as_f64(), Some(&[1.0, 2.0][..]));
        assert_eq!(a.as_i32(), None);
    }

    #[test]
    fn empty_of_excludes_variable_width() {
        assert!(ArrayValue::empty_of(TypeCode::F64).is_some());
        assert!(ArrayValue::empty_of(TypeCode::Str).is_none());
        assert!(ArrayValue::empty_of(TypeCode::Bool).is_none());
    }

    #[test]
    fn push_lexical_builds_array() {
        let mut a = ArrayValue::empty_of(TypeCode::I32).unwrap();
        a.push_lexical("1").unwrap();
        a.push_lexical("-2").unwrap();
        assert_eq!(a.as_i32(), Some(&[1, -2][..]));
        assert!(a.push_lexical("x").is_err());
        assert_eq!(a.len(), 2);
    }

    proptest! {
        // The transcodability property the paper demands (§4.2): textual
        // form round-trips to the bit-identical float.
        #[test]
        fn f64_lexical_roundtrip(v in any::<f64>()) {
            let text = AtomicValue::F64(v).lexical();
            let back = match AtomicValue::parse_as(TypeCode::F64, &text).unwrap() {
                AtomicValue::F64(b) => b,
                _ => unreachable!(),
            };
            // NaN payloads are not preserved through the canonical "NaN"
            // spelling; both being NaN is the XSD-level guarantee.
            if v.is_nan() {
                prop_assert!(back.is_nan());
            } else {
                prop_assert_eq!(back.to_bits(), v.to_bits());
            }
        }

        #[test]
        fn f32_lexical_roundtrip(v in any::<f32>()) {
            let text = AtomicValue::F32(v).lexical();
            let back = match AtomicValue::parse_as(TypeCode::F32, &text).unwrap() {
                AtomicValue::F32(b) => b,
                _ => unreachable!(),
            };
            if v.is_nan() {
                prop_assert!(back.is_nan());
            } else {
                prop_assert_eq!(back.to_bits(), v.to_bits());
            }
        }

        #[test]
        fn i64_lexical_roundtrip(v in any::<i64>()) {
            let text = AtomicValue::I64(v).lexical();
            prop_assert_eq!(
                AtomicValue::parse_as(TypeCode::I64, &text).unwrap(),
                AtomicValue::I64(v)
            );
        }
    }
}
