//! The Visitor abstraction encoders are built on.
//!
//! Paper §5.2: *"every encoder behaves as a generic visitor of the bXDM
//! data model and generates the specific serialization during the
//! visiting."* Both the textual XML writer and the BXSA frame writer
//! implement [`Visitor`]; [`walk_node`] drives the traversal so the
//! encoders contain no recursion logic of their own.

use crate::node::{Document, Element, Node};

/// Callbacks invoked while walking a bXDM tree in document order.
///
/// All methods return `Result` so encoders can abort on I/O failure; `E`
/// is the encoder's error type.
pub trait Visitor {
    /// Encoder error type.
    type Error;

    /// Called once before the document's children.
    fn visit_document_start(&mut self, _doc: &Document) -> Result<(), Self::Error> {
        Ok(())
    }

    /// Called once after the document's children.
    fn visit_document_end(&mut self, _doc: &Document) -> Result<(), Self::Error> {
        Ok(())
    }

    /// Called for every element before its content. This single hook sees
    /// component, leaf and array elements alike; implementations dispatch
    /// on [`Element::content`].
    fn visit_element_start(&mut self, element: &Element) -> Result<(), Self::Error>;

    /// Called for every element after its content.
    fn visit_element_end(&mut self, element: &Element) -> Result<(), Self::Error>;

    /// Character data.
    fn visit_text(&mut self, text: &str) -> Result<(), Self::Error>;

    /// A comment node.
    fn visit_comment(&mut self, comment: &str) -> Result<(), Self::Error>;

    /// A processing instruction.
    fn visit_pi(&mut self, target: &str, data: &str) -> Result<(), Self::Error>;
}

/// Drive a visitor over a single node subtree.
pub fn walk_node<V: Visitor>(node: &Node, visitor: &mut V) -> Result<(), V::Error> {
    match node {
        Node::Element(e) => walk_element(e, visitor),
        Node::Text(t) => visitor.visit_text(t),
        Node::Comment(c) => visitor.visit_comment(c),
        Node::Pi { target, data } => visitor.visit_pi(target, data),
    }
}

/// Drive a visitor over an element subtree without wrapping it in a
/// [`Node`] first — lets callers holding `&Element` encode by reference.
pub fn walk_element<V: Visitor>(element: &Element, visitor: &mut V) -> Result<(), V::Error> {
    visitor.visit_element_start(element)?;
    for child in element.children() {
        walk_node(child, visitor)?;
    }
    visitor.visit_element_end(element)
}

/// Drive a visitor over a whole document.
pub fn walk_document<V: Visitor>(doc: &Document, visitor: &mut V) -> Result<(), V::Error> {
    visitor.visit_document_start(doc)?;
    for child in &doc.children {
        walk_node(child, visitor)?;
    }
    visitor.visit_document_end(doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Element;
    use crate::value::{ArrayValue, AtomicValue};

    /// Records the traversal as a flat event log.
    #[derive(Default)]
    struct Tracer {
        events: Vec<String>,
    }

    impl Visitor for Tracer {
        type Error = std::convert::Infallible;

        fn visit_document_start(&mut self, _d: &Document) -> Result<(), Self::Error> {
            self.events.push("doc+".into());
            Ok(())
        }

        fn visit_document_end(&mut self, _d: &Document) -> Result<(), Self::Error> {
            self.events.push("doc-".into());
            Ok(())
        }

        fn visit_element_start(&mut self, e: &Element) -> Result<(), Self::Error> {
            self.events.push(format!("+{}", e.name.local()));
            Ok(())
        }

        fn visit_element_end(&mut self, e: &Element) -> Result<(), Self::Error> {
            self.events.push(format!("-{}", e.name.local()));
            Ok(())
        }

        fn visit_text(&mut self, t: &str) -> Result<(), Self::Error> {
            self.events.push(format!("t:{t}"));
            Ok(())
        }

        fn visit_comment(&mut self, c: &str) -> Result<(), Self::Error> {
            self.events.push(format!("c:{c}"));
            Ok(())
        }

        fn visit_pi(&mut self, target: &str, _d: &str) -> Result<(), Self::Error> {
            self.events.push(format!("pi:{target}"));
            Ok(())
        }
    }

    #[test]
    fn traversal_is_document_order() {
        let doc = Document::with_root(
            Element::component("r")
                .with_text("hello")
                .with_child(Element::leaf("n", AtomicValue::I32(1)))
                .with_child(Element::array("v", ArrayValue::F64(vec![])))
                .with_comment("end"),
        );
        let mut tracer = Tracer::default();
        walk_document(&doc, &mut tracer).unwrap();
        assert_eq!(
            tracer.events,
            vec!["doc+", "+r", "t:hello", "+n", "-n", "+v", "-v", "c:end", "-r", "doc-"]
        );
    }

    #[test]
    fn leaf_and_array_have_no_child_events() {
        let doc = Document::with_root(Element::leaf("only", AtomicValue::F64(1.5)));
        let mut tracer = Tracer::default();
        walk_document(&doc, &mut tracer).unwrap();
        assert_eq!(tracer.events, vec!["doc+", "+only", "-only", "doc-"]);
    }

    #[test]
    fn error_aborts_walk() {
        struct Failer(u32);
        impl Visitor for Failer {
            type Error = ();
            fn visit_element_start(&mut self, _e: &Element) -> Result<(), ()> {
                self.0 += 1;
                if self.0 >= 2 {
                    Err(())
                } else {
                    Ok(())
                }
            }
            fn visit_element_end(&mut self, _e: &Element) -> Result<(), ()> {
                Ok(())
            }
            fn visit_text(&mut self, _t: &str) -> Result<(), ()> {
                Ok(())
            }
            fn visit_comment(&mut self, _c: &str) -> Result<(), ()> {
                Ok(())
            }
            fn visit_pi(&mut self, _t: &str, _d: &str) -> Result<(), ()> {
                Ok(())
            }
        }
        let doc = Document::with_root(
            Element::component("a")
                .with_child(Element::component("b").with_child(Element::component("c"))),
        );
        let mut f = Failer(0);
        assert!(walk_document(&doc, &mut f).is_err());
        assert_eq!(f.0, 2); // stopped at the second element, never saw "c"
    }
}
