//! Qualified names.

use std::fmt;

/// An XML qualified name: optional prefix plus local part.
///
/// The prefix is kept verbatim (textual XML needs it back); namespace
/// *resolution* — mapping the prefix to a URI through the in-scope
/// declarations — is done by [`crate::namespace::NsContext`] at
/// encode/decode time, matching how BXSA tokenizes references (paper
/// §4.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QName {
    prefix: Option<String>,
    local: String,
}

impl QName {
    /// Build from separate parts. An empty prefix means "no prefix".
    pub fn new(prefix: Option<&str>, local: &str) -> QName {
        QName {
            prefix: prefix.filter(|p| !p.is_empty()).map(str::to_owned),
            local: local.to_owned(),
        }
    }

    /// Overwrite this name in place, reusing the existing string storage.
    ///
    /// The decode-into path refills a recycled tree without reallocating
    /// its names; `set` keeps each part's `String` capacity alive across
    /// messages. An empty prefix means "no prefix".
    pub fn set(&mut self, prefix: Option<&str>, local: &str) {
        match prefix.filter(|p| !p.is_empty()) {
            Some(p) => match &mut self.prefix {
                Some(slot) => {
                    slot.clear();
                    slot.push_str(p);
                }
                None => self.prefix = Some(p.to_owned()),
            },
            None => self.prefix = None,
        }
        self.local.clear();
        self.local.push_str(local);
    }

    /// Parse a `prefix:local` lexical form.
    pub fn parse(qname: &str) -> QName {
        match qname.split_once(':') {
            Some((p, l)) => QName::new(Some(p), l),
            None => QName::new(None, qname),
        }
    }

    /// Local part (`Envelope` in `soap:Envelope`).
    #[inline]
    pub fn local(&self) -> &str {
        &self.local
    }

    /// Prefix if any (`soap` in `soap:Envelope`).
    #[inline]
    pub fn prefix(&self) -> Option<&str> {
        self.prefix.as_deref()
    }

    /// `true` if this name has a prefix.
    #[inline]
    pub fn is_prefixed(&self) -> bool {
        self.prefix.is_some()
    }

    /// Write the lexical `prefix:local` form into a string buffer.
    pub fn write_lexical(&self, out: &mut String) {
        if let Some(p) = &self.prefix {
            out.push_str(p);
            out.push(':');
        }
        out.push_str(&self.local);
    }

    /// The lexical `prefix:local` form as an owned string.
    pub fn lexical(&self) -> String {
        let mut s = String::with_capacity(
            self.local.len() + self.prefix.as_ref().map_or(0, |p| p.len() + 1),
        );
        self.write_lexical(&mut s);
        s
    }
}

impl fmt::Display for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(p) = &self.prefix {
            write!(f, "{p}:{}", self.local)
        } else {
            f.write_str(&self.local)
        }
    }
}

impl From<&str> for QName {
    fn from(s: &str) -> QName {
        QName::parse(s)
    }
}

impl From<String> for QName {
    fn from(s: String) -> QName {
        QName::parse(&s)
    }
}

/// Is `s` a syntactically valid XML name (NCName, conservatively ASCII
/// letters, digits, `_`, `-`, `.`, plus non-ASCII pass-through)?
///
/// This is deliberately the pragmatic subset real SOAP toolkits enforce,
/// not the full XML 1.0 production.
pub fn is_valid_ncname(s: &str) -> bool {
    // The non-ASCII pass-through still excludes whitespace: XML names
    // never contain it, and text-side tag lexing would split or trim it.
    let pass = |c: char| !c.is_ascii() && !c.is_whitespace();
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || pass(c) => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.') || pass(c))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_prefixed() {
        let q = QName::parse("soap:Envelope");
        assert_eq!(q.prefix(), Some("soap"));
        assert_eq!(q.local(), "Envelope");
        assert_eq!(q.lexical(), "soap:Envelope");
        assert_eq!(q.to_string(), "soap:Envelope");
    }

    #[test]
    fn parse_unprefixed() {
        let q = QName::parse("item");
        assert_eq!(q.prefix(), None);
        assert_eq!(q.local(), "item");
        assert_eq!(q.lexical(), "item");
    }

    #[test]
    fn empty_prefix_is_none() {
        let q = QName::new(Some(""), "x");
        assert_eq!(q.prefix(), None);
    }

    #[test]
    fn from_str_impls() {
        let q: QName = "a:b".into();
        assert_eq!(q.prefix(), Some("a"));
        let q: QName = String::from("c").into();
        assert_eq!(q.local(), "c");
    }

    #[test]
    fn ncname_validation() {
        assert!(is_valid_ncname("Envelope"));
        assert!(is_valid_ncname("_x-1.2"));
        assert!(!is_valid_ncname(""));
        assert!(!is_valid_ncname("1abc"));
        assert!(!is_valid_ncname("a b"));
        assert!(!is_valid_ncname("-x"));
        assert!(is_valid_ncname("élément"));
        assert!(!is_valid_ncname("a\u{a0}"));
        assert!(!is_valid_ncname("\u{2028}x"));
    }
}
