//! Namespace declarations and in-scope resolution.
//!
//! BXSA tokenizes namespace references: a QName on the wire carries a
//! *(scope depth, index)* pair pointing back into the namespace symbol
//! table of the frame (or an ancestor frame) that declared it, instead of
//! repeating the prefix string (paper §4.1). [`NsContext`] is the shared
//! scope-stack machinery both codecs use to produce and resolve those
//! references.

use crate::name::QName;

/// Namespace URI of XML Schema datatypes (`xsd`).
pub const XSD_URI: &str = "http://www.w3.org/2001/XMLSchema";
/// Namespace URI of XML Schema instance attributes (`xsi`, for `xsi:type`).
pub const XSI_URI: &str = "http://www.w3.org/2001/XMLSchema-instance";
/// The reserved `xmlns` prefix.
pub const XMLNS_PREFIX: &str = "xmlns";

/// A single `xmlns:prefix="uri"` (or default `xmlns="uri"`) declaration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NamespaceDecl {
    /// Declared prefix; `None` for the default namespace.
    pub prefix: Option<String>,
    /// Namespace URI. An empty URI un-declares the default namespace.
    pub uri: String,
}

impl NamespaceDecl {
    /// A prefixed declaration `xmlns:prefix="uri"`.
    pub fn prefixed(prefix: &str, uri: &str) -> NamespaceDecl {
        NamespaceDecl {
            prefix: Some(prefix.to_owned()),
            uri: uri.to_owned(),
        }
    }

    /// A default-namespace declaration `xmlns="uri"`.
    pub fn default(uri: &str) -> NamespaceDecl {
        NamespaceDecl {
            prefix: None,
            uri: uri.to_owned(),
        }
    }
}

/// A reference to a namespace declaration as BXSA encodes it: how many
/// element scopes up the declaring frame is (0 = the current frame), and
/// the index within that frame's declaration list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NsRef {
    /// "Namespace scope depth (VLS)" — count backwards to the declaring scope.
    pub scope_depth: u32,
    /// "Namespace index" within that scope's symbol table.
    pub index: u32,
}

/// Stack of in-scope namespace declaration lists.
///
/// Codecs push one scope per element (even an empty one — scope depth is
/// counted in *elements*, not in declaring elements) and pop on exit.
#[derive(Debug, Default, Clone)]
pub struct NsContext {
    scopes: Vec<Vec<NamespaceDecl>>,
}

impl NsContext {
    /// An empty context (no element entered yet).
    pub fn new() -> NsContext {
        NsContext::default()
    }

    /// Enter an element scope carrying `decls` (possibly empty).
    pub fn push_scope(&mut self, decls: &[NamespaceDecl]) {
        self.scopes.push(decls.to_vec());
    }

    /// Leave the innermost element scope.
    ///
    /// # Panics
    /// Panics if no scope is open — that is a codec bug, not bad input.
    pub fn pop_scope(&mut self) {
        self.scopes
            .pop()
            .expect("NsContext::pop_scope with no open scope");
    }

    /// Number of open scopes.
    pub fn depth(&self) -> usize {
        self.scopes.len()
    }

    /// Resolve a prefix to its in-scope URI, innermost declaration wins.
    /// `None` prefix resolves the default namespace.
    pub fn resolve(&self, prefix: Option<&str>) -> Option<&str> {
        for scope in self.scopes.iter().rev() {
            // Within one scope, later declarations win (mirrors attribute
            // order in the document).
            for decl in scope.iter().rev() {
                if decl.prefix.as_deref() == prefix {
                    return Some(&decl.uri);
                }
            }
        }
        None
    }

    /// Resolve the namespace URI a QName is bound to in the current scope.
    pub fn resolve_qname(&self, name: &QName) -> Option<&str> {
        self.resolve(name.prefix())
    }

    /// Find the BXSA *(scope depth, index)* reference for `prefix`:
    /// the innermost declaration of that prefix.
    pub fn find_ref(&self, prefix: Option<&str>) -> Option<NsRef> {
        for (depth_back, scope) in self.scopes.iter().rev().enumerate() {
            for (idx, decl) in scope.iter().enumerate().rev() {
                if decl.prefix.as_deref() == prefix {
                    return Some(NsRef {
                        scope_depth: depth_back as u32,
                        index: idx as u32,
                    });
                }
            }
        }
        None
    }

    /// Look a reference back up into the declaration it points to.
    pub fn lookup_ref(&self, r: NsRef) -> Option<&NamespaceDecl> {
        let n = self.scopes.len();
        let scope = self.scopes.get(n.checked_sub(1 + r.scope_depth as usize)?)?;
        scope.get(r.index as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> NsContext {
        let mut c = NsContext::new();
        c.push_scope(&[
            NamespaceDecl::prefixed("soap", "http://schemas.xmlsoap.org/soap/envelope/"),
            NamespaceDecl::prefixed("xsd", XSD_URI),
        ]);
        c.push_scope(&[]);
        c.push_scope(&[NamespaceDecl::prefixed("d", "http://example.org/data")]);
        c
    }

    #[test]
    fn resolve_walks_outward() {
        let c = ctx();
        assert_eq!(c.resolve(Some("d")), Some("http://example.org/data"));
        assert_eq!(c.resolve(Some("xsd")), Some(XSD_URI));
        assert_eq!(c.resolve(Some("nope")), None);
        assert_eq!(c.resolve(None), None);
    }

    #[test]
    fn inner_declaration_shadows_outer() {
        let mut c = ctx();
        c.push_scope(&[NamespaceDecl::prefixed("d", "http://example.org/other")]);
        assert_eq!(c.resolve(Some("d")), Some("http://example.org/other"));
        c.pop_scope();
        assert_eq!(c.resolve(Some("d")), Some("http://example.org/data"));
    }

    #[test]
    fn find_ref_counts_scopes_backwards() {
        let c = ctx();
        assert_eq!(
            c.find_ref(Some("d")),
            Some(NsRef {
                scope_depth: 0,
                index: 0
            })
        );
        assert_eq!(
            c.find_ref(Some("soap")),
            Some(NsRef {
                scope_depth: 2,
                index: 0
            })
        );
        assert_eq!(
            c.find_ref(Some("xsd")),
            Some(NsRef {
                scope_depth: 2,
                index: 1
            })
        );
        assert_eq!(c.find_ref(Some("missing")), None);
    }

    #[test]
    fn refs_roundtrip_through_lookup() {
        let c = ctx();
        for prefix in [Some("d"), Some("soap"), Some("xsd")] {
            let r = c.find_ref(prefix).unwrap();
            let decl = c.lookup_ref(r).unwrap();
            assert_eq!(decl.prefix.as_deref(), prefix);
        }
    }

    #[test]
    fn lookup_out_of_range_is_none() {
        let c = ctx();
        assert!(c
            .lookup_ref(NsRef {
                scope_depth: 10,
                index: 0
            })
            .is_none());
        assert!(c
            .lookup_ref(NsRef {
                scope_depth: 0,
                index: 7
            })
            .is_none());
    }

    #[test]
    fn default_namespace() {
        let mut c = NsContext::new();
        c.push_scope(&[NamespaceDecl::default("http://example.org/default")]);
        assert_eq!(c.resolve(None), Some("http://example.org/default"));
        let r = c.find_ref(None).unwrap();
        assert_eq!(c.lookup_ref(r).unwrap().prefix, None);
    }

    #[test]
    #[should_panic(expected = "no open scope")]
    fn pop_empty_panics() {
        NsContext::new().pop_scope();
    }
}
