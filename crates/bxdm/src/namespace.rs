//! Namespace declarations and in-scope resolution.
//!
//! BXSA tokenizes namespace references: a QName on the wire carries a
//! *(scope depth, index)* pair pointing back into the namespace symbol
//! table of the frame (or an ancestor frame) that declared it, instead of
//! repeating the prefix string (paper §4.1). [`NsContext`] is the shared
//! scope-stack machinery both codecs use to produce and resolve those
//! references.

use crate::name::QName;

/// Namespace URI of XML Schema datatypes (`xsd`).
pub const XSD_URI: &str = "http://www.w3.org/2001/XMLSchema";
/// Namespace URI of XML Schema instance attributes (`xsi`, for `xsi:type`).
pub const XSI_URI: &str = "http://www.w3.org/2001/XMLSchema-instance";
/// The reserved `xmlns` prefix.
pub const XMLNS_PREFIX: &str = "xmlns";

/// A single `xmlns:prefix="uri"` (or default `xmlns="uri"`) declaration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NamespaceDecl {
    /// Declared prefix; `None` for the default namespace.
    pub prefix: Option<String>,
    /// Namespace URI. An empty URI un-declares the default namespace.
    pub uri: String,
}

impl NamespaceDecl {
    /// A prefixed declaration `xmlns:prefix="uri"`.
    pub fn prefixed(prefix: &str, uri: &str) -> NamespaceDecl {
        NamespaceDecl {
            prefix: Some(prefix.to_owned()),
            uri: uri.to_owned(),
        }
    }

    /// A default-namespace declaration `xmlns="uri"`.
    pub fn default(uri: &str) -> NamespaceDecl {
        NamespaceDecl {
            prefix: None,
            uri: uri.to_owned(),
        }
    }
}

/// A reference to a namespace declaration as BXSA encodes it: how many
/// element scopes up the declaring frame is (0 = the current frame), and
/// the index within that frame's declaration list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NsRef {
    /// "Namespace scope depth (VLS)" — count backwards to the declaring scope.
    pub scope_depth: u32,
    /// "Namespace index" within that scope's symbol table.
    pub index: u32,
}

/// Stack of in-scope namespace declaration lists.
///
/// Codecs push one scope per element (even an empty one — scope depth is
/// counted in *elements*, not in declaring elements) and pop on exit.
///
/// Declarations are stored in one flat arena with a parallel stack of
/// scope start offsets, so pushing and popping scopes never allocates
/// once the two vectors have grown to the document's high-water mark —
/// this is what lets the pull decoder process a stream of messages with
/// a steady-state-allocation-free namespace table.
#[derive(Debug, Default, Clone)]
pub struct NsContext {
    /// All in-scope declarations, outermost scope first.
    decls: Vec<NamespaceDecl>,
    /// Offset into `decls` where each open scope begins.
    scope_starts: Vec<usize>,
}

impl NsContext {
    /// An empty context (no element entered yet).
    pub fn new() -> NsContext {
        NsContext::default()
    }

    /// Enter an element scope carrying `decls` (possibly empty).
    pub fn push_scope(&mut self, decls: &[NamespaceDecl]) {
        self.scope_starts.push(self.decls.len());
        self.decls.extend_from_slice(decls);
    }

    /// Leave the innermost element scope.
    ///
    /// # Panics
    /// Panics if no scope is open — that is a codec bug, not bad input.
    pub fn pop_scope(&mut self) {
        let start = self
            .scope_starts
            .pop()
            .expect("NsContext::pop_scope with no open scope");
        self.decls.truncate(start);
    }

    /// Number of open scopes.
    pub fn depth(&self) -> usize {
        self.scope_starts.len()
    }

    /// Drop all open scopes but keep the arena's capacity for reuse.
    pub fn clear(&mut self) {
        self.decls.clear();
        self.scope_starts.clear();
    }

    /// The half-open `decls` range covered by scope number `i` (0 = outermost).
    fn scope_bounds(&self, i: usize) -> (usize, usize) {
        let start = self.scope_starts[i];
        let end = self
            .scope_starts
            .get(i + 1)
            .copied()
            .unwrap_or(self.decls.len());
        (start, end)
    }

    /// Resolve a prefix to its in-scope URI, innermost declaration wins.
    /// `None` prefix resolves the default namespace.
    pub fn resolve(&self, prefix: Option<&str>) -> Option<&str> {
        // The flat arena is ordered outermost-first with later declarations
        // after earlier ones within a scope, so a single reverse scan gives
        // exactly "innermost scope wins, later declaration wins".
        self.decls
            .iter()
            .rev()
            .find(|decl| decl.prefix.as_deref() == prefix)
            .map(|decl| decl.uri.as_str())
    }

    /// Resolve the namespace URI a QName is bound to in the current scope.
    pub fn resolve_qname(&self, name: &QName) -> Option<&str> {
        self.resolve(name.prefix())
    }

    /// Find the BXSA *(scope depth, index)* reference for `prefix`:
    /// the innermost declaration of that prefix.
    pub fn find_ref(&self, prefix: Option<&str>) -> Option<NsRef> {
        for (depth_back, scope_idx) in (0..self.scope_starts.len()).rev().enumerate() {
            let (start, end) = self.scope_bounds(scope_idx);
            for idx in (0..end - start).rev() {
                if self.decls[start + idx].prefix.as_deref() == prefix {
                    return Some(NsRef {
                        scope_depth: depth_back as u32,
                        index: idx as u32,
                    });
                }
            }
        }
        None
    }

    /// Look a reference back up into the declaration it points to.
    pub fn lookup_ref(&self, r: NsRef) -> Option<&NamespaceDecl> {
        let n = self.scope_starts.len();
        let scope_idx = n.checked_sub(1 + r.scope_depth as usize)?;
        let (start, end) = self.scope_bounds(scope_idx);
        let idx = start + r.index as usize;
        if idx < end {
            self.decls.get(idx)
        } else {
            None
        }
    }
}

/// A borrowed, allocation-free scope chain for recursive codecs.
///
/// Where [`NsContext`] owns its declarations (and therefore clones every
/// prefix/URI string pushed into it), `ScopeChain` is a stack-allocated
/// linked list of borrows: each recursion level of an encoder or decoder
/// anchors one link pointing at the element's own `namespaces` slice and
/// at the parent link one stack frame up. Resolution semantics are
/// identical to `NsContext` — one scope per element (empty scopes
/// included in depth counting), innermost scope wins, later declarations
/// within a scope win.
#[derive(Debug, Clone, Copy)]
pub struct ScopeChain<'a> {
    decls: &'a [NamespaceDecl],
    parent: Option<&'a ScopeChain<'a>>,
}

impl<'a> ScopeChain<'a> {
    /// The outermost scope (the document root element's declarations).
    pub fn root(decls: &'a [NamespaceDecl]) -> ScopeChain<'a> {
        ScopeChain {
            decls,
            parent: None,
        }
    }

    /// A nested scope whose parent is `self`.
    pub fn child(&'a self, decls: &'a [NamespaceDecl]) -> ScopeChain<'a> {
        ScopeChain {
            decls,
            parent: Some(self),
        }
    }

    /// Resolve a prefix to its in-scope URI, innermost declaration wins.
    pub fn resolve(&self, prefix: Option<&str>) -> Option<&'a str> {
        let mut link = Some(self);
        while let Some(chain) = link {
            if let Some(decl) = chain
                .decls
                .iter()
                .rev()
                .find(|decl| decl.prefix.as_deref() == prefix)
            {
                return Some(&decl.uri);
            }
            link = chain.parent;
        }
        None
    }

    /// Find the BXSA *(scope depth, index)* reference for `prefix`,
    /// mirroring [`NsContext::find_ref`].
    pub fn find_ref(&self, prefix: Option<&str>) -> Option<NsRef> {
        let mut link = Some(self);
        let mut depth_back = 0u32;
        while let Some(chain) = link {
            for (idx, decl) in chain.decls.iter().enumerate().rev() {
                if decl.prefix.as_deref() == prefix {
                    return Some(NsRef {
                        scope_depth: depth_back,
                        index: idx as u32,
                    });
                }
            }
            depth_back += 1;
            link = chain.parent;
        }
        None
    }

    /// Look a reference back up into the declaration it points to,
    /// mirroring [`NsContext::lookup_ref`].
    pub fn lookup_ref(&self, r: NsRef) -> Option<&'a NamespaceDecl> {
        let mut link = Some(self);
        for _ in 0..r.scope_depth {
            link = link?.parent;
        }
        link?.decls.get(r.index as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> NsContext {
        let mut c = NsContext::new();
        c.push_scope(&[
            NamespaceDecl::prefixed("soap", "http://schemas.xmlsoap.org/soap/envelope/"),
            NamespaceDecl::prefixed("xsd", XSD_URI),
        ]);
        c.push_scope(&[]);
        c.push_scope(&[NamespaceDecl::prefixed("d", "http://example.org/data")]);
        c
    }

    #[test]
    fn resolve_walks_outward() {
        let c = ctx();
        assert_eq!(c.resolve(Some("d")), Some("http://example.org/data"));
        assert_eq!(c.resolve(Some("xsd")), Some(XSD_URI));
        assert_eq!(c.resolve(Some("nope")), None);
        assert_eq!(c.resolve(None), None);
    }

    #[test]
    fn inner_declaration_shadows_outer() {
        let mut c = ctx();
        c.push_scope(&[NamespaceDecl::prefixed("d", "http://example.org/other")]);
        assert_eq!(c.resolve(Some("d")), Some("http://example.org/other"));
        c.pop_scope();
        assert_eq!(c.resolve(Some("d")), Some("http://example.org/data"));
    }

    #[test]
    fn find_ref_counts_scopes_backwards() {
        let c = ctx();
        assert_eq!(
            c.find_ref(Some("d")),
            Some(NsRef {
                scope_depth: 0,
                index: 0
            })
        );
        assert_eq!(
            c.find_ref(Some("soap")),
            Some(NsRef {
                scope_depth: 2,
                index: 0
            })
        );
        assert_eq!(
            c.find_ref(Some("xsd")),
            Some(NsRef {
                scope_depth: 2,
                index: 1
            })
        );
        assert_eq!(c.find_ref(Some("missing")), None);
    }

    #[test]
    fn refs_roundtrip_through_lookup() {
        let c = ctx();
        for prefix in [Some("d"), Some("soap"), Some("xsd")] {
            let r = c.find_ref(prefix).unwrap();
            let decl = c.lookup_ref(r).unwrap();
            assert_eq!(decl.prefix.as_deref(), prefix);
        }
    }

    #[test]
    fn lookup_out_of_range_is_none() {
        let c = ctx();
        assert!(c
            .lookup_ref(NsRef {
                scope_depth: 10,
                index: 0
            })
            .is_none());
        assert!(c
            .lookup_ref(NsRef {
                scope_depth: 0,
                index: 7
            })
            .is_none());
    }

    #[test]
    fn default_namespace() {
        let mut c = NsContext::new();
        c.push_scope(&[NamespaceDecl::default("http://example.org/default")]);
        assert_eq!(c.resolve(None), Some("http://example.org/default"));
        let r = c.find_ref(None).unwrap();
        assert_eq!(c.lookup_ref(r).unwrap().prefix, None);
    }

    #[test]
    #[should_panic(expected = "no open scope")]
    fn pop_empty_panics() {
        NsContext::new().pop_scope();
    }

    #[test]
    fn clear_resets_depth() {
        let mut c = ctx();
        assert_eq!(c.depth(), 3);
        c.clear();
        assert_eq!(c.depth(), 0);
        assert_eq!(c.resolve(Some("d")), None);
        // Reusable after clear.
        c.push_scope(&[NamespaceDecl::prefixed("x", "http://example.org/x")]);
        assert_eq!(c.resolve(Some("x")), Some("http://example.org/x"));
    }

    /// The same three-scope shape as `ctx()`, built as a borrowed chain.
    fn chain_scopes() -> (Vec<NamespaceDecl>, Vec<NamespaceDecl>, Vec<NamespaceDecl>) {
        (
            vec![
                NamespaceDecl::prefixed("soap", "http://schemas.xmlsoap.org/soap/envelope/"),
                NamespaceDecl::prefixed("xsd", XSD_URI),
            ],
            vec![],
            vec![NamespaceDecl::prefixed("d", "http://example.org/data")],
        )
    }

    #[test]
    fn scope_chain_matches_ns_context() {
        let (outer, mid, inner) = chain_scopes();
        let root = ScopeChain::root(&outer);
        let middle = root.child(&mid);
        let leaf = middle.child(&inner);

        let c = ctx();
        for prefix in [Some("d"), Some("soap"), Some("xsd"), Some("missing"), None] {
            assert_eq!(leaf.resolve(prefix), c.resolve(prefix), "resolve {prefix:?}");
            assert_eq!(
                leaf.find_ref(prefix),
                c.find_ref(prefix),
                "find_ref {prefix:?}"
            );
        }
        for prefix in [Some("d"), Some("soap"), Some("xsd")] {
            let r = leaf.find_ref(prefix).unwrap();
            assert_eq!(leaf.lookup_ref(r).unwrap().prefix.as_deref(), prefix);
        }
    }

    #[test]
    fn scope_chain_shadowing_and_later_decl_wins() {
        let outer = vec![NamespaceDecl::prefixed("d", "http://example.org/old")];
        let inner = vec![
            NamespaceDecl::prefixed("d", "http://example.org/first"),
            NamespaceDecl::prefixed("d", "http://example.org/second"),
        ];
        let root = ScopeChain::root(&outer);
        let leaf = root.child(&inner);
        assert_eq!(leaf.resolve(Some("d")), Some("http://example.org/second"));
        assert_eq!(
            leaf.find_ref(Some("d")),
            Some(NsRef {
                scope_depth: 0,
                index: 1
            })
        );
        // Out-of-range lookups are None, not panics.
        assert!(leaf
            .lookup_ref(NsRef {
                scope_depth: 5,
                index: 0
            })
            .is_none());
        assert!(leaf
            .lookup_ref(NsRef {
                scope_depth: 0,
                index: 9
            })
            .is_none());
    }
}
