//! A framed-TCP message server.
//!
//! The server half of the raw `BXSA/TCP` binding: accepts connections,
//! reads length-prefixed messages, and replies with the handler's output.
//! Connections persist across messages (unlike the one-shot HTTP
//! binding) — raw TCP has no per-request protocol overhead, which is part
//! of why the paper's `SOAP over BXSA/TCP` wins on the LAN.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::error::TransportResult;
use crate::framed::FramedStream;

/// A running framed-TCP server.
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Bind and serve: `handler` maps each request message to a response
    /// message.
    pub fn bind<H>(addr: &str, handler: H) -> TransportResult<TcpServer>
    where
        H: Fn(Vec<u8>) -> Vec<u8> + Send + Sync + 'static,
    {
        TcpServer::bind_buffered(addr, move |request, out| {
            *out = handler(request.to_vec());
        })
    }

    /// Bind and serve with caller-managed buffers: `handler` reads the
    /// request slice and writes the response into `out` (handed over
    /// cleared). Each connection cycles one request and one response
    /// buffer for its whole lifetime, so steady-state service of
    /// similarly-sized messages does no per-message allocation.
    pub fn bind_buffered<H>(addr: &str, handler: H) -> TransportResult<TcpServer>
    where
        H: Fn(&[u8], &mut Vec<u8>) + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_accept = Arc::clone(&stop);
        let handler = Arc::new(handler);

        let accept_thread = std::thread::Builder::new()
            .name("tcp-accept".into())
            .spawn(move || {
                // Keep a shutdown handle per connection so stopping the
                // server can unblock workers parked in recv() on
                // still-open client connections.
                let mut workers: Vec<(JoinHandle<()>, TcpStream)> = Vec::new();
                for conn in listener.incoming() {
                    if stop_accept.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let Ok(shutdown_handle) = stream.try_clone() else {
                        continue;
                    };
                    let handler = Arc::clone(&handler);
                    let worker = std::thread::Builder::new()
                        .name("tcp-conn".into())
                        .spawn(move || {
                            let _ = serve_connection(stream, &*handler);
                        })
                        .expect("spawn tcp connection thread");
                    workers.push((worker, shutdown_handle));
                    workers.retain(|(w, _)| !w.is_finished());
                }
                for (w, stream) in workers {
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                    let _ = w.join();
                }
            })
            .expect("spawn tcp accept thread");

        Ok(TcpServer {
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept loop.
    pub fn shutdown(mut self) {
        self.do_shutdown();
    }

    fn do_shutdown(&mut self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.do_shutdown();
    }
}

fn serve_connection<H>(stream: TcpStream, handler: &H) -> TransportResult<()>
where
    H: Fn(&[u8], &mut Vec<u8>),
{
    stream.set_nodelay(true)?;
    let mut framed = FramedStream::new(stream);
    let mut request = Vec::new();
    let mut response = Vec::new();
    // Serve messages until the client hangs up cleanly, reusing the two
    // buffers across messages.
    while framed.recv_optional_into(&mut request)? {
        response.clear();
        handler(&request, &mut response);
        framed.send(&response)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_roundtrip_multiple_messages() {
        let server = TcpServer::bind("127.0.0.1:0", |mut req| {
            req.reverse();
            req
        })
        .unwrap();
        let addr = server.local_addr().to_string();
        let mut client = FramedStream::connect(&addr).unwrap();
        // Multiple messages over one persistent connection.
        for msg in [&b"abc"[..], b"", b"0123456789"] {
            client.send(msg).unwrap();
            let mut expected = msg.to_vec();
            expected.reverse();
            assert_eq!(client.recv().unwrap(), expected);
        }
        drop(client);
        server.shutdown();
    }

    #[test]
    fn buffered_handler_roundtrip() {
        let server = TcpServer::bind_buffered("127.0.0.1:0", |req, out| {
            assert!(out.is_empty());
            out.extend_from_slice(req);
            out.reverse();
        })
        .unwrap();
        let addr = server.local_addr().to_string();
        let mut client = FramedStream::connect(&addr).unwrap();
        for msg in [&b"abc"[..], b"", b"0123456789"] {
            client.send(msg).unwrap();
            let mut expected = msg.to_vec();
            expected.reverse();
            assert_eq!(client.recv().unwrap(), expected);
        }
        drop(client);
        server.shutdown();
    }

    #[test]
    fn concurrent_clients() {
        let server = TcpServer::bind("127.0.0.1:0", |req| req).unwrap();
        let addr = server.local_addr().to_string();
        crossbeam::thread::scope(|s| {
            let mut joins = Vec::new();
            for i in 0u8..6 {
                let addr = addr.clone();
                joins.push(s.spawn(move |_| {
                    let mut c = FramedStream::connect(&addr).unwrap();
                    let payload = vec![i; 100_000];
                    c.send(&payload).unwrap();
                    assert_eq!(c.recv().unwrap(), payload);
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
        })
        .unwrap();
        server.shutdown();
    }

    #[test]
    fn large_payload_roundtrip() {
        let server = TcpServer::bind("127.0.0.1:0", |req| req).unwrap();
        let addr = server.local_addr().to_string();
        let mut client = FramedStream::connect(&addr).unwrap();
        let payload: Vec<u8> = (0..2_000_000u32).map(|i| i as u8).collect();
        client.send(&payload).unwrap();
        assert_eq!(client.recv().unwrap(), payload);
        server.shutdown();
    }
}
