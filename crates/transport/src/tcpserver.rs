//! A framed-TCP message server.
//!
//! The server half of the raw `BXSA/TCP` binding: accepts connections,
//! reads length-prefixed messages, and replies with the handler's output.
//! Connections persist across messages (unlike the one-shot HTTP
//! binding) — raw TCP has no per-request protocol overhead, which is part
//! of why the paper's `SOAP over BXSA/TCP` wins on the LAN.
//!
//! Resilience: a connection that times out mid-read, trips the frame
//! limit, or dies mid-message takes a typed error path — the connection
//! is dropped, the error is counted by kind in
//! `bx_server_connection_errors_total{transport="tcp"}`, and the
//! listener stays alive for everyone else.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::error::TransportResult;
use crate::metrics;
use crate::faulty::{FaultingTransport, SharedInjector};
use crate::framed::FramedStream;

/// Per-connection service limits for a [`TcpServer`].
#[derive(Debug, Clone, Copy, Default)]
pub struct TcpServerConfig {
    /// Budget for each blocking read on a connection. A client that
    /// stalls mid-frame is disconnected when this expires (`None` =
    /// wait forever, the pre-resilience behaviour).
    pub read_timeout: Option<Duration>,
    /// Budget for each blocking write (a client that stops draining its
    /// receive window).
    pub write_timeout: Option<Duration>,
}

/// Per-reply knobs a handler may set — most importantly, capping the
/// reply's write budget to the *caller's* remaining deadline instead of
/// the server's static [`TcpServerConfig`]. Reset before each message.
#[derive(Debug, Default)]
pub struct ReplyControl {
    write_budget: Option<Duration>,
}

impl ReplyControl {
    /// Cap the budget for writing this reply (combined with the static
    /// config by taking the minimum). A handler that knows the caller
    /// only has 80 ms left should not spend 5 s pushing bytes at it.
    pub fn cap_write(&mut self, budget: Duration) {
        self.write_budget = Some(self.write_budget.map_or(budget, |b| b.min(budget)));
    }

    /// The cap set for this reply, if any.
    pub fn write_budget(&self) -> Option<Duration> {
        self.write_budget
    }

    fn reset(&mut self) {
        self.write_budget = None;
    }
}

/// A running framed-TCP server.
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    errors: Arc<AtomicU64>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Bind and serve: `handler` maps each request message to a response
    /// message.
    pub fn bind<H>(addr: &str, handler: H) -> TransportResult<TcpServer>
    where
        H: Fn(Vec<u8>) -> Vec<u8> + Send + Sync + 'static,
    {
        TcpServer::bind_buffered(addr, move |request, out| {
            *out = handler(request.to_vec());
        })
    }

    /// Bind and serve with caller-managed buffers: `handler` reads the
    /// request slice and writes the response into `out` (handed over
    /// cleared). Each connection cycles one request and one response
    /// buffer for its whole lifetime, so steady-state service of
    /// similarly-sized messages does no per-message allocation.
    pub fn bind_buffered<H>(addr: &str, handler: H) -> TransportResult<TcpServer>
    where
        H: Fn(&[u8], &mut Vec<u8>) + Send + Sync + 'static,
    {
        TcpServer::bind_buffered_with(addr, TcpServerConfig::default(), handler)
    }

    /// [`bind_buffered`](TcpServer::bind_buffered) with explicit
    /// per-connection limits.
    pub fn bind_buffered_with<H>(
        addr: &str,
        config: TcpServerConfig,
        handler: H,
    ) -> TransportResult<TcpServer>
    where
        H: Fn(&[u8], &mut Vec<u8>) + Send + Sync + 'static,
    {
        TcpServer::bind_scoped_with(addr, config, || (), move |_: &mut (), request, out| {
            handler(request, out)
        })
    }

    /// [`bind_buffered_with`](TcpServer::bind_buffered_with) plus
    /// per-connection handler state: `init` runs once per accepted
    /// connection, and the value it returns is threaded through every
    /// message on that connection. This is where connection-scoped
    /// scratch lives — decode documents refilled in place, session
    /// counters — extending the buffer-reuse discipline from the two
    /// payload buffers to whatever the handler needs to keep warm.
    ///
    /// The state never leaves its connection's thread, so it needs no
    /// `Send`/`Sync`; only the `init` factory is shared.
    pub fn bind_scoped_with<S, I, H>(
        addr: &str,
        config: TcpServerConfig,
        init: I,
        handler: H,
    ) -> TransportResult<TcpServer>
    where
        S: 'static,
        I: Fn() -> S + Send + Sync + 'static,
        H: Fn(&mut S, &[u8], &mut Vec<u8>) + Send + Sync + 'static,
    {
        TcpServer::bind_scoped_ctl_with(addr, config, init, move |state, request, out, _ctl| {
            handler(state, request, out)
        })
    }

    /// [`bind_scoped_with`](TcpServer::bind_scoped_with) plus a
    /// [`ReplyControl`] the handler may use to cap this reply's write
    /// budget — the hook deadline-aware services use to bound the reply
    /// write by the caller's remaining time instead of the static config.
    pub fn bind_scoped_ctl_with<S, I, H>(
        addr: &str,
        config: TcpServerConfig,
        init: I,
        handler: H,
    ) -> TransportResult<TcpServer>
    where
        S: 'static,
        I: Fn() -> S + Send + Sync + 'static,
        H: Fn(&mut S, &[u8], &mut Vec<u8>, &mut ReplyControl) + Send + Sync + 'static,
    {
        TcpServer::bind_inner(addr, config, None, init, handler)
    }

    /// [`bind_scoped_ctl_with`](TcpServer::bind_scoped_ctl_with) with
    /// every *accepted* stream wrapped in a [`FaultingTransport`] drawing
    /// from `injector` — byte-level fault injection on the server's own
    /// read *and write* paths, so torture tests exercise partial-write
    /// handling under a live accept loop, not just unit-level decode.
    pub fn bind_scoped_faulty_with<S, I, H>(
        addr: &str,
        config: TcpServerConfig,
        injector: SharedInjector,
        init: I,
        handler: H,
    ) -> TransportResult<TcpServer>
    where
        S: 'static,
        I: Fn() -> S + Send + Sync + 'static,
        H: Fn(&mut S, &[u8], &mut Vec<u8>, &mut ReplyControl) + Send + Sync + 'static,
    {
        TcpServer::bind_inner(addr, config, Some(injector), init, handler)
    }

    fn bind_inner<S, I, H>(
        addr: &str,
        config: TcpServerConfig,
        injector: Option<SharedInjector>,
        init: I,
        handler: H,
    ) -> TransportResult<TcpServer>
    where
        S: 'static,
        I: Fn() -> S + Send + Sync + 'static,
        H: Fn(&mut S, &[u8], &mut Vec<u8>, &mut ReplyControl) + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_accept = Arc::clone(&stop);
        let errors = Arc::new(AtomicU64::new(0));
        let errors_accept = Arc::clone(&errors);
        let handler = Arc::new(handler);
        let init = Arc::new(init);

        let accept_thread = std::thread::Builder::new()
            .name("tcp-accept".into())
            .spawn(move || {
                // Keep a shutdown handle per connection so stopping the
                // server can unblock workers parked in recv() on
                // still-open client connections.
                let mut workers: Vec<(JoinHandle<()>, TcpStream)> = Vec::new();
                for conn in listener.incoming() {
                    if stop_accept.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let Ok(shutdown_handle) = stream.try_clone() else {
                        continue;
                    };
                    metrics::tcp_server().connections.inc();
                    let handler = Arc::clone(&handler);
                    let init = Arc::clone(&init);
                    let errors = Arc::clone(&errors_accept);
                    let injector = injector.clone();
                    let worker = std::thread::Builder::new()
                        .name("tcp-conn".into())
                        .spawn(move || {
                            // Connection-scoped state, born and dying
                            // with this thread.
                            let mut state = init();
                            if let Err(e) =
                                serve_connection(stream, config, injector, &mut state, &*handler)
                            {
                                // A connection-level failure is counted by
                                // error kind; it never takes the listener
                                // down.
                                errors.fetch_add(1, Ordering::Relaxed);
                                metrics::count_server_error("tcp", metrics::error_kind(&e));
                            }
                        })
                        .expect("spawn tcp connection thread");
                    workers.push((worker, shutdown_handle));
                    workers.retain(|(w, _)| !w.is_finished());
                }
                for (w, stream) in workers {
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                    let _ = w.join();
                }
            })
            .expect("spawn tcp accept thread");

        Ok(TcpServer {
            addr: local,
            stop,
            errors,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections that ended with a transport error (truncated frame,
    /// oversize frame, mid-read timeout, reset) since the server started.
    pub fn error_count(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Stop accepting and join the accept loop.
    pub fn shutdown(mut self) {
        self.do_shutdown();
    }

    fn do_shutdown(&mut self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.do_shutdown();
    }
}

fn serve_connection<S, H>(
    stream: TcpStream,
    config: TcpServerConfig,
    injector: Option<SharedInjector>,
    state: &mut S,
    handler: &H,
) -> TransportResult<()>
where
    H: Fn(&mut S, &[u8], &mut Vec<u8>, &mut ReplyControl),
{
    stream.set_nodelay(true)?;
    stream.set_read_timeout(config.read_timeout)?;
    stream.set_write_timeout(config.write_timeout)?;
    // A cloned handle onto the same socket, kept outside any decorator,
    // so per-reply write budgets can be applied even when the data path
    // is wrapped in a FaultingTransport.
    let timeout_ctl = stream.try_clone()?;
    match injector {
        Some(inj) => {
            let mut framed = FramedStream::new(FaultingTransport::new(stream, inj));
            framed.assume_budgets(config.read_timeout, config.write_timeout);
            serve_messages(&mut framed, &timeout_ctl, config, state, handler)
        }
        None => {
            let mut framed = FramedStream::new(stream);
            framed.assume_budgets(config.read_timeout, config.write_timeout);
            serve_messages(&mut framed, &timeout_ctl, config, state, handler)
        }
    }
}

fn serve_messages<T, S, H>(
    framed: &mut FramedStream<T>,
    timeout_ctl: &TcpStream,
    config: TcpServerConfig,
    state: &mut S,
    handler: &H,
) -> TransportResult<()>
where
    T: Read + Write,
    H: Fn(&mut S, &[u8], &mut Vec<u8>, &mut ReplyControl),
{
    let mut request = Vec::new();
    let mut response = Vec::new();
    let mut ctl = ReplyControl::default();
    // Tracks whether a per-reply write cap is currently applied to the
    // socket, so the static budget is restored (one syscall) only when a
    // capped reply was actually sent — handlers that never cap cost no
    // extra syscalls.
    let mut capped = false;
    // Serve messages until the client hangs up cleanly, reusing the two
    // buffers (and the handler's state) across messages. Any transport
    // error (half-written frame, oversize prefix, stall past the read
    // budget) propagates to the caller, which logs and counts it — the
    // typed error path.
    let m = metrics::tcp_server();
    while framed.recv_optional_into(&mut request)? {
        m.bytes_in.add(request.len() as u64);
        response.clear();
        ctl.reset();
        let handler_start = Instant::now();
        handler(state, &request, &mut response, &mut ctl);
        m.handler_latency.observe_duration(handler_start.elapsed());
        match ctl.write_budget() {
            Some(budget) => {
                // Tighten only: the static write budget still bounds the
                // reply. std rejects a zero socket timeout, so clamp the
                // cap to ≥ 1 ms (an already-expired caller was faulted by
                // the handler; this write is the fault going out).
                let cap = config
                    .write_timeout
                    .map_or(budget, |w| w.min(budget))
                    .max(Duration::from_millis(1));
                timeout_ctl.set_write_timeout(Some(cap))?;
                framed.assume_budgets(config.read_timeout, Some(cap));
                capped = true;
            }
            None if capped => {
                timeout_ctl.set_write_timeout(config.write_timeout)?;
                framed.assume_budgets(config.read_timeout, config.write_timeout);
                capped = false;
            }
            None => {}
        }
        framed.send(&response)?;
        m.bytes_out.add(response.len() as u64);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn echo_roundtrip_multiple_messages() {
        let server = TcpServer::bind("127.0.0.1:0", |mut req| {
            req.reverse();
            req
        })
        .unwrap();
        let addr = server.local_addr().to_string();
        let mut client = FramedStream::connect(&addr).unwrap();
        // Multiple messages over one persistent connection.
        for msg in [&b"abc"[..], b"", b"0123456789"] {
            client.send(msg).unwrap();
            let mut expected = msg.to_vec();
            expected.reverse();
            assert_eq!(client.recv().unwrap(), expected);
        }
        drop(client);
        server.shutdown();
    }

    #[test]
    fn buffered_handler_roundtrip() {
        let server = TcpServer::bind_buffered("127.0.0.1:0", |req, out| {
            assert!(out.is_empty());
            out.extend_from_slice(req);
            out.reverse();
        })
        .unwrap();
        let addr = server.local_addr().to_string();
        let mut client = FramedStream::connect(&addr).unwrap();
        for msg in [&b"abc"[..], b"", b"0123456789"] {
            client.send(msg).unwrap();
            let mut expected = msg.to_vec();
            expected.reverse();
            assert_eq!(client.recv().unwrap(), expected);
        }
        drop(client);
        server.shutdown();
    }

    #[test]
    fn concurrent_clients() {
        let server = TcpServer::bind("127.0.0.1:0", |req| req).unwrap();
        let addr = server.local_addr().to_string();
        crossbeam::thread::scope(|s| {
            let mut joins = Vec::new();
            for i in 0u8..6 {
                let addr = addr.clone();
                joins.push(s.spawn(move |_| {
                    let mut c = FramedStream::connect(&addr).unwrap();
                    let payload = vec![i; 100_000];
                    c.send(&payload).unwrap();
                    assert_eq!(c.recv().unwrap(), payload);
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
        })
        .unwrap();
        server.shutdown();
    }

    #[test]
    fn large_payload_roundtrip() {
        let server = TcpServer::bind("127.0.0.1:0", |req| req).unwrap();
        let addr = server.local_addr().to_string();
        let mut client = FramedStream::connect(&addr).unwrap();
        let payload: Vec<u8> = (0..2_000_000u32).map(|i| i as u8).collect();
        client.send(&payload).unwrap();
        assert_eq!(client.recv().unwrap(), payload);
        server.shutdown();
    }

    #[test]
    fn half_written_frame_is_counted_and_listener_survives() {
        let server = TcpServer::bind("127.0.0.1:0", |req| req).unwrap();
        let addr = server.local_addr();
        // A client that declares 100 bytes, writes 3, and vanishes.
        {
            let mut raw = TcpStream::connect(addr).unwrap();
            raw.write_all(&100u32.to_be_bytes()).unwrap();
            raw.write_all(b"abc").unwrap();
        } // dropped: half-written frame
          // The listener must still serve the next client.
        let mut client = FramedStream::connect(&addr.to_string()).unwrap();
        client.send(b"still alive?").unwrap();
        assert_eq!(client.recv().unwrap(), b"still alive?");
        drop(client);
        // The bad connection was accounted as a typed error. (Poll: the
        // worker thread races the assertion.)
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while server.error_count() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(server.error_count() >= 1, "truncation must be counted");
        server.shutdown();
    }

    #[test]
    fn stalled_client_times_out_and_listener_survives() {
        let server = TcpServer::bind_buffered_with(
            "127.0.0.1:0",
            TcpServerConfig {
                read_timeout: Some(Duration::from_millis(40)),
                write_timeout: Some(Duration::from_secs(5)),
            },
            |req, out| out.extend_from_slice(req),
        )
        .unwrap();
        let addr = server.local_addr();
        // Stall mid-frame: prefix only, then silence.
        let mut staller = TcpStream::connect(addr).unwrap();
        staller.write_all(&8u32.to_be_bytes()).unwrap();
        // Wait for the server's read budget to fire.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while server.error_count() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(server.error_count() >= 1, "stall must surface as an error");
        // And fresh clients are still served.
        let mut client = FramedStream::connect(&addr.to_string()).unwrap();
        client.send(b"after the stall").unwrap();
        assert_eq!(client.recv().unwrap(), b"after the stall");
        drop((client, staller));
        server.shutdown();
    }
}
