//! A framed-TCP message server.
//!
//! The server half of the raw `BXSA/TCP` binding: accepts connections,
//! reads length-prefixed messages, and replies with the handler's output.
//! Connections persist across messages (unlike one-shot HTTP) — raw TCP
//! has no per-request protocol overhead, which is part of why the paper's
//! `SOAP over BXSA/TCP` wins on the LAN.
//!
//! Since the reactor port, connections are served by a fixed pool of
//! event-loop workers ([`crate::reactor`]) instead of a thread per
//! connection: the same `bind_*` surface, per-connection handler state,
//! and buffer-reuse discipline, but concurrency is bounded by worker
//! count, not thread count, so tens of thousands of idle-ish connections
//! cost file descriptors rather than stacks.
//!
//! Resilience: a connection that times out mid-read, trips the frame
//! limit, or dies mid-message takes a typed error path — the connection
//! is dropped, the error is counted by kind in
//! `bx_server_connection_errors_total{transport="tcp"}`, and the
//! listener stays alive for everyone else.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use crate::error::TransportResult;
use crate::faulty::SharedInjector;
use crate::metrics;
use crate::reactor::conn::FramedDriver;
use crate::reactor::overload::{Overload, OverloadConfig};
use crate::reactor::server::{EventServer, ReactorConfig, DEFAULT_DRAIN};

/// Per-connection service limits for a [`TcpServer`].
#[derive(Debug, Clone, Copy, Default)]
pub struct TcpServerConfig {
    /// Budget for making read progress on a message. A client that
    /// stalls mid-frame is disconnected when this expires (`None` =
    /// wait forever, the pre-resilience behaviour).
    pub read_timeout: Option<Duration>,
    /// Budget for each reply write (a client that stops draining its
    /// receive window).
    pub write_timeout: Option<Duration>,
    /// Overload protection: connection cap, request shedding, and the
    /// whole-message (slow-loris) deadline. Default: everything off.
    pub overload: OverloadConfig,
}

/// Per-reply knobs a handler may set — most importantly, capping the
/// reply's write budget to the *caller's* remaining deadline instead of
/// the server's static [`TcpServerConfig`]. Reset before each message.
#[derive(Debug, Default)]
pub struct ReplyControl {
    write_budget: Option<Duration>,
}

impl ReplyControl {
    /// Cap the budget for writing this reply (combined with the static
    /// config by taking the minimum). A handler that knows the caller
    /// only has 80 ms left should not spend 5 s pushing bytes at it.
    pub fn cap_write(&mut self, budget: Duration) {
        self.write_budget = Some(self.write_budget.map_or(budget, |b| b.min(budget)));
    }

    /// The cap set for this reply, if any.
    pub fn write_budget(&self) -> Option<Duration> {
        self.write_budget
    }

    pub(crate) fn reset(&mut self) {
        self.write_budget = None;
    }
}

/// A running framed-TCP server.
pub struct TcpServer {
    inner: EventServer,
}

impl TcpServer {
    /// Bind and serve: `handler` maps each request message to a response
    /// message.
    pub fn bind<H>(addr: &str, handler: H) -> TransportResult<TcpServer>
    where
        H: Fn(Vec<u8>) -> Vec<u8> + Send + Sync + 'static,
    {
        TcpServer::bind_with(addr, TcpServerConfig::default(), move |request, out| {
            *out = handler(request.to_vec());
        })
    }

    /// [`bind`](TcpServer::bind) with explicit per-connection limits and
    /// caller-managed buffers: `handler` reads the request slice and
    /// writes the response into `out` (handed over cleared).
    pub fn bind_with<H>(
        addr: &str,
        config: TcpServerConfig,
        handler: H,
    ) -> TransportResult<TcpServer>
    where
        H: Fn(&[u8], &mut Vec<u8>) + Send + Sync + 'static,
    {
        bind_framed_inner(addr, config, None, None, || (), move |_: &mut (), request, out, _ctl| {
            handler(request, out)
        })
    }

    /// Bind and serve with caller-managed buffers: `handler` reads the
    /// request slice and writes the response into `out` (handed over
    /// cleared). Each connection cycles one request and one response
    /// buffer for its whole lifetime, so steady-state service of
    /// similarly-sized messages does no per-message allocation.
    #[deprecated(since = "0.9.0", note = "use `TcpServer::bind_with` or `ServerBuilder::bind(addr).serve_framed(...)`")]
    pub fn bind_buffered<H>(addr: &str, handler: H) -> TransportResult<TcpServer>
    where
        H: Fn(&[u8], &mut Vec<u8>) + Send + Sync + 'static,
    {
        TcpServer::bind_with(addr, TcpServerConfig::default(), handler)
    }

    /// [`bind_buffered`](TcpServer::bind_buffered) with explicit
    /// per-connection limits.
    #[deprecated(since = "0.9.0", note = "use `TcpServer::bind_with` or `ServerBuilder::bind(addr).serve_framed(...)`")]
    pub fn bind_buffered_with<H>(
        addr: &str,
        config: TcpServerConfig,
        handler: H,
    ) -> TransportResult<TcpServer>
    where
        H: Fn(&[u8], &mut Vec<u8>) + Send + Sync + 'static,
    {
        bind_framed_inner(addr, config, None, None, || (), move |_: &mut (), request, out, _ctl| {
            handler(request, out)
        })
    }

    /// [`bind_buffered_with`](TcpServer::bind_buffered_with) plus
    /// per-connection handler state: `init` runs once per accepted
    /// connection, and the value it returns is threaded through every
    /// message on that connection. This is where connection-scoped
    /// scratch lives — decode documents refilled in place, session
    /// counters — extending the buffer-reuse discipline from the two
    /// payload buffers to whatever the handler needs to keep warm.
    ///
    /// The state never leaves the event-loop worker that owns its
    /// connection, so it needs no `Send`/`Sync`; only the `init` factory
    /// is shared.
    #[deprecated(since = "0.9.0", note = "use `ServerBuilder::bind(addr).serve_framed(init, handler)`")]
    pub fn bind_scoped_with<S, I, H>(
        addr: &str,
        config: TcpServerConfig,
        init: I,
        handler: H,
    ) -> TransportResult<TcpServer>
    where
        S: 'static,
        I: Fn() -> S + Send + Sync + 'static,
        H: Fn(&mut S, &[u8], &mut Vec<u8>) + Send + Sync + 'static,
    {
        bind_framed_inner(addr, config, None, None, init, move |state, request, out, _ctl| {
            handler(state, request, out)
        })
    }

    /// [`bind_scoped_with`](TcpServer::bind_scoped_with) plus a
    /// [`ReplyControl`] the handler may use to cap this reply's write
    /// budget — the hook deadline-aware services use to bound the reply
    /// write by the caller's remaining time instead of the static config.
    #[deprecated(since = "0.9.0", note = "use `ServerBuilder::bind(addr).serve_framed(init, handler)`")]
    pub fn bind_scoped_ctl_with<S, I, H>(
        addr: &str,
        config: TcpServerConfig,
        init: I,
        handler: H,
    ) -> TransportResult<TcpServer>
    where
        S: 'static,
        I: Fn() -> S + Send + Sync + 'static,
        H: Fn(&mut S, &[u8], &mut Vec<u8>, &mut ReplyControl) + Send + Sync + 'static,
    {
        bind_framed_inner(addr, config, None, None, init, handler)
    }

    /// [`bind_scoped_ctl_with`](TcpServer::bind_scoped_ctl_with) plus the
    /// canned payload overload protection answers with: `shed_payload`
    /// (typically an encoded SOAP Server fault carrying a
    /// `retry-after-ms=` detail) is sent — length-prefixed — as the reply
    /// to a request shed under [`OverloadConfig`] pressure, and as the
    /// parting frame of a connection rejected at the cap in
    /// `reject_when_full` mode. Without a payload (the other `bind_*`
    /// variants), shed and rejected connections are simply closed.
    #[deprecated(since = "0.9.0", note = "use `ServerBuilder::bind(addr).shed_payload(...).serve_framed(init, handler)`")]
    pub fn bind_scoped_ctl_overload_with<S, I, H>(
        addr: &str,
        config: TcpServerConfig,
        shed_payload: Option<Vec<u8>>,
        init: I,
        handler: H,
    ) -> TransportResult<TcpServer>
    where
        S: 'static,
        I: Fn() -> S + Send + Sync + 'static,
        H: Fn(&mut S, &[u8], &mut Vec<u8>, &mut ReplyControl) + Send + Sync + 'static,
    {
        bind_framed_inner(addr, config, shed_payload, None, init, handler)
    }

    /// [`bind_scoped_ctl_with`](TcpServer::bind_scoped_ctl_with) with
    /// every *accepted* stream wrapped in a
    /// [`crate::faulty::FaultingTransport`] drawing from `injector` —
    /// byte-level fault injection on the server's own read *and write*
    /// paths, so torture tests exercise partial-write handling under a
    /// live accept loop, not just unit-level decode.
    #[deprecated(since = "0.9.0", note = "use `ServerBuilder::bind(addr).faults(...).serve_framed(init, handler)`")]
    pub fn bind_scoped_faulty_with<S, I, H>(
        addr: &str,
        config: TcpServerConfig,
        injector: SharedInjector,
        init: I,
        handler: H,
    ) -> TransportResult<TcpServer>
    where
        S: 'static,
        I: Fn() -> S + Send + Sync + 'static,
        H: Fn(&mut S, &[u8], &mut Vec<u8>, &mut ReplyControl) + Send + Sync + 'static,
    {
        bind_framed_inner(addr, config, None, Some(injector), init, handler)
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr()
    }

    /// Connections that ended with a transport error (truncated frame,
    /// oversize frame, mid-read timeout, reset) since the server started.
    pub fn error_count(&self) -> u64 {
        self.inner.error_count()
    }

    /// Stop accepting and drain: in-flight messages get up to a short
    /// grace period to finish, idle connections close immediately.
    pub fn shutdown(self) {
        self.shutdown_within(DEFAULT_DRAIN);
    }

    /// [`shutdown`](TcpServer::shutdown) with an explicit drain deadline.
    /// Connections still mid-message when it expires are dropped and
    /// counted as `bx_server_connection_errors_total{kind="shutdown_drop"}`.
    pub fn shutdown_within(mut self, drain: Duration) {
        self.inner.shutdown_within(drain);
    }
}

/// The one true framed-TCP bind: every public constructor and the
/// [`crate::ServerBuilder`] funnel through here.
pub(crate) fn bind_framed_inner<S, I, H>(
    addr: &str,
    config: TcpServerConfig,
    shed_payload: Option<Vec<u8>>,
    injector: Option<SharedInjector>,
    init: I,
    handler: H,
) -> TransportResult<TcpServer>
where
    S: 'static,
    I: Fn() -> S + Send + Sync + 'static,
    H: Fn(&mut S, &[u8], &mut Vec<u8>, &mut ReplyControl) + Send + Sync + 'static,
{
    let m = metrics::tcp_server();
    let handler = Arc::new(handler);
    // A rejected connection gets the shed fault as a complete frame
    // (prefix + payload); a shed request reuses the raw payload.
    let reject_wire = shed_payload.as_ref().map(|p| {
        let mut wire = Vec::with_capacity(4 + p.len());
        wire.extend_from_slice(&(p.len() as u32).to_be_bytes());
        wire.extend_from_slice(p);
        Arc::<[u8]>::from(wire)
    });
    let overload = Arc::new(Overload::new(
        &config.overload,
        reject_wire,
        shed_payload.map(Arc::<[u8]>::from),
    ));
    let driver_overload = Arc::clone(&overload);
    let inner = EventServer::bind(
        addr,
        ReactorConfig {
            read_timeout: config.read_timeout,
            write_timeout: config.write_timeout,
            transport: "tcp",
            metrics: m,
            injector,
            overload,
        },
        Arc::new(move || {
            Box::new(FramedDriver::new(
                init(),
                Arc::clone(&handler),
                m,
                Arc::clone(&driver_overload),
            )) as Box<dyn crate::reactor::conn::ConnDriver>
        }),
    )?;
    Ok(TcpServer { inner })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framed::FramedStream;
    use std::io::Write;
    use std::net::TcpStream;

    #[test]
    fn echo_roundtrip_multiple_messages() {
        let server = TcpServer::bind("127.0.0.1:0", |mut req| {
            req.reverse();
            req
        })
        .unwrap();
        let addr = server.local_addr().to_string();
        let mut client = FramedStream::connect(&addr).unwrap();
        // Multiple messages over one persistent connection.
        for msg in [&b"abc"[..], b"", b"0123456789"] {
            client.send(msg).unwrap();
            let mut expected = msg.to_vec();
            expected.reverse();
            assert_eq!(client.recv().unwrap(), expected);
        }
        drop(client);
        server.shutdown();
    }

    #[test]
    fn buffered_handler_roundtrip() {
        let server = crate::ServerBuilder::bind("127.0.0.1:0")
            .serve_framed(
                || (),
                |_scratch, req, out: &mut Vec<u8>, _ctl| {
                    assert!(out.is_empty());
                    out.extend_from_slice(req);
                    out.reverse();
                },
            )
            .unwrap();
        let addr = server.local_addr().to_string();
        let mut client = FramedStream::connect(&addr).unwrap();
        for msg in [&b"abc"[..], b"", b"0123456789"] {
            client.send(msg).unwrap();
            let mut expected = msg.to_vec();
            expected.reverse();
            assert_eq!(client.recv().unwrap(), expected);
        }
        drop(client);
        server.shutdown();
    }

    #[test]
    fn concurrent_clients() {
        let server = TcpServer::bind("127.0.0.1:0", |req| req).unwrap();
        let addr = server.local_addr().to_string();
        crossbeam::thread::scope(|s| {
            let mut joins = Vec::new();
            for i in 0u8..6 {
                let addr = addr.clone();
                joins.push(s.spawn(move |_| {
                    let mut c = FramedStream::connect(&addr).unwrap();
                    let payload = vec![i; 100_000];
                    c.send(&payload).unwrap();
                    assert_eq!(c.recv().unwrap(), payload);
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
        })
        .unwrap();
        server.shutdown();
    }

    #[test]
    fn large_payload_roundtrip() {
        let server = TcpServer::bind("127.0.0.1:0", |req| req).unwrap();
        let addr = server.local_addr().to_string();
        let mut client = FramedStream::connect(&addr).unwrap();
        let payload: Vec<u8> = (0..2_000_000u32).map(|i| i as u8).collect();
        client.send(&payload).unwrap();
        assert_eq!(client.recv().unwrap(), payload);
        server.shutdown();
    }

    #[test]
    fn half_written_frame_is_counted_and_listener_survives() {
        let server = TcpServer::bind("127.0.0.1:0", |req| req).unwrap();
        let addr = server.local_addr();
        // A client that declares 100 bytes, writes 3, and vanishes.
        {
            let mut raw = TcpStream::connect(addr).unwrap();
            raw.write_all(&100u32.to_be_bytes()).unwrap();
            raw.write_all(b"abc").unwrap();
        } // dropped: half-written frame
          // The listener must still serve the next client.
        let mut client = FramedStream::connect(&addr.to_string()).unwrap();
        client.send(b"still alive?").unwrap();
        assert_eq!(client.recv().unwrap(), b"still alive?");
        drop(client);
        // The bad connection was accounted as a typed error. (Poll: the
        // event loop races the assertion.)
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while server.error_count() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(server.error_count() >= 1, "truncation must be counted");
        server.shutdown();
    }

    #[test]
    fn stalled_client_times_out_and_listener_survives() {
        let server = crate::ServerBuilder::bind("127.0.0.1:0")
            .read_timeout(Duration::from_millis(40))
            .write_timeout(Duration::from_secs(5))
            .serve_framed(
                || (),
                |_scratch, req, out: &mut Vec<u8>, _ctl| out.extend_from_slice(req),
            )
            .unwrap();
        let addr = server.local_addr();
        // Stall mid-frame: prefix only, then silence.
        let mut staller = TcpStream::connect(addr).unwrap();
        staller.write_all(&8u32.to_be_bytes()).unwrap();
        // Wait for the server's read budget to fire.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while server.error_count() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(server.error_count() >= 1, "stall must surface as an error");
        // And fresh clients are still served.
        let mut client = FramedStream::connect(&addr.to_string()).unwrap();
        client.send(b"after the stall").unwrap();
        assert_eq!(client.recv().unwrap(), b"after the stall");
        drop((client, staller));
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_an_in_flight_message() {
        // A handler that parks for 300 ms: shutdown issued right after
        // the request must still deliver the reply (drain > nap).
        let server = TcpServer::bind("127.0.0.1:0", |req| {
            std::thread::sleep(Duration::from_millis(300));
            req
        })
        .unwrap();
        let addr = server.local_addr().to_string();
        let mut client = FramedStream::connect(&addr).unwrap();
        client.send(b"draining").unwrap();
        std::thread::sleep(Duration::from_millis(50)); // request in flight
        let done = std::thread::spawn(move || server.shutdown_within(Duration::from_secs(5)));
        assert_eq!(client.recv().unwrap(), b"draining", "in-flight reply must drain");
        done.join().unwrap();
    }
}
