//! Transport-layer instrumentation, registered in [`obs::global`].
//!
//! The steady-state hot path (pool take/put, per-message byte counts,
//! handler latency) touches only `static` atomics: registration happens
//! once behind a [`Once`], after which every update is a relaxed
//! fetch-add — no locks, no allocation, so the bench crate's
//! alloc-counter gates stay green with instrumentation compiled in.
//! Error paths and per-endpoint breaker metrics go through the
//! registry's get-or-create accessors instead; those paths are already
//! off the fast path, so the label rendering they pay is fine.

use std::sync::{Arc, Once};

use obs::{Counter, Gauge, Histogram};

use crate::error::TransportError;

/// Per-transport server-side instrumentation
/// (`{transport="tcp"}` / `{transport="http"}`).
pub struct ServerMetrics {
    /// `bx_server_connections_total` — connections accepted.
    pub connections: Counter,
    /// `bx_server_connections_active` — connections currently open.
    pub connections_active: Gauge,
    /// `bx_server_requests_total` — requests dispatched to handlers.
    pub requests: Counter,
    /// `bx_server_bytes_in_total` — request payload bytes read.
    pub bytes_in: Counter,
    /// `bx_server_bytes_out_total` — response payload bytes written.
    pub bytes_out: Counter,
    /// `bx_server_handler_latency_nanoseconds` — time spent in the
    /// application handler per message.
    pub handler_latency: Histogram,
    /// `bx_server_accept_to_dispatch_nanoseconds` — time from accept to
    /// the connection being registered with an event-loop worker; grows
    /// when workers can't keep up with the accept rate.
    pub accept_to_dispatch: Histogram,
    /// `bx_server_requests_inflight` — requests admitted past the shed
    /// check whose response has not yet been fully written. One half of
    /// the overload signal ([`crate::OverloadConfig::max_inflight`]).
    pub requests_inflight: Gauge,
}

impl ServerMetrics {
    const fn new() -> ServerMetrics {
        ServerMetrics {
            connections: Counter::new(),
            connections_active: Gauge::new(),
            requests: Counter::new(),
            bytes_in: Counter::new(),
            bytes_out: Counter::new(),
            handler_latency: Histogram::new(),
            accept_to_dispatch: Histogram::new(),
            requests_inflight: Gauge::new(),
        }
    }

    fn register(&'static self, transport: &'static str) {
        let labels = &[("transport", transport)];
        let r = obs::global();
        r.register_counter(
            "bx_server_connections_total",
            "Connections accepted by a server.",
            labels,
            &self.connections,
        );
        r.register_gauge(
            "bx_server_connections_active",
            "Connections currently open on a server.",
            labels,
            &self.connections_active,
        );
        r.register_counter(
            "bx_server_requests_total",
            "Requests dispatched to a server's handler.",
            labels,
            &self.requests,
        );
        r.register_counter(
            "bx_server_bytes_in_total",
            "Request payload bytes read by a server.",
            labels,
            &self.bytes_in,
        );
        r.register_counter(
            "bx_server_bytes_out_total",
            "Response payload bytes written by a server.",
            labels,
            &self.bytes_out,
        );
        r.register_histogram(
            "bx_server_handler_latency_nanoseconds",
            "Time spent in the application handler per message.",
            labels,
            &self.handler_latency,
        );
        r.register_histogram(
            "bx_server_accept_to_dispatch_nanoseconds",
            "Time from accept to event-loop registration.",
            labels,
            &self.accept_to_dispatch,
        );
        r.register_gauge(
            "bx_server_requests_inflight",
            "Requests admitted and not yet fully answered.",
            labels,
            &self.requests_inflight,
        );
    }
}

/// Count one request shed by the overload signal before any decode or
/// handler work (`bx_server_shed_total{transport=,reason=}`; reasons:
/// `inflight`, `queue_delay`).
pub fn count_shed(transport: &'static str, reason: &'static str) {
    obs::global()
        .counter(
            "bx_server_shed_total",
            "Requests shed before handler work, by transport and reason.",
            &[("transport", transport), ("reason", reason)],
        )
        .inc();
}

/// Count one connection turned away at admission
/// (`bx_server_rejected_connections_total{transport=,reason=}`; reasons:
/// `conn_cap` for the server-wide cap, `worker_slab` for the per-worker
/// slab bound).
pub fn count_rejected(transport: &'static str, reason: &'static str) {
    obs::global()
        .counter(
            "bx_server_rejected_connections_total",
            "Connections rejected at admission, by transport and reason.",
            &[("transport", transport), ("reason", reason)],
        )
        .inc();
}

/// Count one handler panic caught by the reactor's `catch_unwind`
/// isolation (`bx_server_handler_panics_total{transport=}`). The
/// connection is answered with an error/closed, the worker survives, and
/// the event lands here instead of being silently swallowed.
pub fn count_handler_panic(transport: &'static str) {
    obs::global()
        .counter(
            "bx_server_handler_panics_total",
            "Handler panics caught by the reactor's unwind isolation.",
            &[("transport", transport)],
        )
        .inc();
}

/// Record that raising the listen backlog at bind failed
/// (`bx_server_backlog_raise_failed{transport=}` = 1). Without this a
/// refused backlog masquerades as mysterious connect failures under
/// flood.
pub fn backlog_raise_failed(transport: &'static str) {
    obs::global()
        .gauge(
            "bx_server_backlog_raise_failed",
            "1 when raising the listen backlog failed at bind.",
            &[("transport", transport)],
        )
        .set(1.0);
}

/// The per-worker loop-iteration counter
/// (`bx_server_worker_loop_iterations_total{transport=,worker=}`), so
/// event-loop imbalance across workers is visible in a scrape. Called
/// once at worker startup; the returned handle is a relaxed atomic.
pub fn worker_loop_iterations(transport: &'static str, worker: usize) -> Arc<Counter> {
    obs::global().counter(
        "bx_server_worker_loop_iterations_total",
        "Event-loop iterations per reactor worker.",
        &[("transport", transport), ("worker", &worker.to_string())],
    )
}

/// The framed-TCP server's metrics (registered on first use).
pub fn tcp_server() -> &'static ServerMetrics {
    static METRICS: ServerMetrics = ServerMetrics::new();
    static REGISTER: Once = Once::new();
    REGISTER.call_once(|| METRICS.register("tcp"));
    &METRICS
}

/// The HTTP server's metrics (registered on first use).
pub fn http_server() -> &'static ServerMetrics {
    static METRICS: ServerMetrics = ServerMetrics::new();
    static REGISTER: Once = Once::new();
    REGISTER.call_once(|| METRICS.register("http"));
    &METRICS
}

/// Count one server-side connection error, typed by
/// [`error_kind`]. Replaces the old `eprintln!` tallies; error paths are
/// off the hot path, so the registry lookup here is acceptable.
pub fn count_server_error(transport: &'static str, kind: &'static str) {
    obs::global()
        .counter(
            "bx_server_connection_errors_total",
            "Connection-handling errors, by transport and error kind.",
            &[("transport", transport), ("kind", kind)],
        )
        .inc();
}

/// A stable label value for a [`TransportError`] class.
pub fn error_kind(e: &TransportError) -> &'static str {
    match e {
        TransportError::Io(_) => "io",
        TransportError::FrameTooLarge { .. } => "frame_too_large",
        TransportError::ConnectionClosed => "closed",
        TransportError::ConnectFailed { .. } => "connect_failed",
        TransportError::TimedOut { .. } => "timed_out",
        TransportError::BadHttp { .. } => "bad_http",
        TransportError::HttpStatus { .. } => "http_status",
    }
}

/// Buffer-pool free-list hits (`bx_pool_hits_total`).
pub fn pool_hits() -> &'static Counter {
    static HITS: Counter = Counter::new();
    static REGISTER: Once = Once::new();
    REGISTER.call_once(|| {
        obs::global().register_counter(
            "bx_pool_hits_total",
            "Pool takes satisfied from the free list.",
            &[],
            &HITS,
        );
    });
    &HITS
}

/// Buffer-pool free-list misses (`bx_pool_misses_total`).
pub fn pool_misses() -> &'static Counter {
    static MISSES: Counter = Counter::new();
    static REGISTER: Once = Once::new();
    REGISTER.call_once(|| {
        obs::global().register_counter(
            "bx_pool_misses_total",
            "Pool takes that had to build a fresh value.",
            &[],
            &MISSES,
        );
    });
    &MISSES
}

/// Count of recovered lock poisonings
/// (`bx_breaker_lock_poisoned_total`). A panicked lock holder no longer
/// cascades — the inner state is recovered and the event lands here.
pub fn lock_poisonings() -> &'static Counter {
    static POISONED: Counter = Counter::new();
    static REGISTER: Once = Once::new();
    REGISTER.call_once(|| {
        obs::global().register_counter(
            "bx_breaker_lock_poisoned_total",
            "Mutex poisonings recovered instead of propagated.",
            &[],
            &POISONED,
        );
    });
    &POISONED
}

/// Per-endpoint breaker instrumentation, shared by every clone of a
/// [`crate::BreakerHandle`].
pub struct BreakerMetrics {
    /// `bx_breaker_state{endpoint=}` — 0 closed, 1 half-open, 2 open.
    pub state: Arc<Gauge>,
    /// `bx_breaker_trips_total{endpoint=}`.
    pub trips: Arc<Counter>,
    /// `bx_breaker_window_failure_rate{endpoint=}` — failed fraction of
    /// the sliding window at last observation.
    pub failure_rate: Arc<Gauge>,
}

impl BreakerMetrics {
    /// The shared metrics for `endpoint`, created on first use.
    pub fn for_endpoint(endpoint: &str) -> Arc<BreakerMetrics> {
        let labels = &[("endpoint", endpoint)];
        let r = obs::global();
        Arc::new(BreakerMetrics {
            state: r.gauge(
                "bx_breaker_state",
                "Circuit breaker state: 0 closed, 1 half-open, 2 open.",
                labels,
            ),
            trips: r.counter(
                "bx_breaker_trips_total",
                "Times the circuit breaker tripped open.",
                labels,
            ),
            failure_rate: r.gauge(
                "bx_breaker_window_failure_rate",
                "Failure fraction of the breaker's sliding window.",
                labels,
            ),
        })
    }
}
