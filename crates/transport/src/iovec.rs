//! Vectored-write helper shared by the framed and HTTP writers.

use std::io::{Error, ErrorKind, IoSlice, Result, Write};

/// Write every byte of `bufs` using vectored I/O.
///
/// A framed message (length prefix + payload) or an HTTP response (head +
/// body) is two logically separate buffers; writing them with one
/// `writev` per iteration avoids both the copy of concatenating them and
/// the extra syscall (and, on sockets without `TCP_NODELAY` discipline,
/// the small-packet stall) of writing them back-to-back.
///
/// `std::io::Write::write_all_vectored` is still unstable; this is the
/// same loop.
pub fn write_all_vectored(w: &mut impl Write, mut bufs: &mut [IoSlice<'_>]) -> Result<()> {
    // Drop leading empty slices so `write_vectored` never sees an
    // all-empty front (advancing by 0 removes exhausted slices only).
    IoSlice::advance_slices(&mut bufs, 0);
    while !bufs.is_empty() {
        match w.write_vectored(bufs) {
            Ok(0) => {
                return Err(Error::new(
                    ErrorKind::WriteZero,
                    "failed to write whole message",
                ))
            }
            Ok(n) => IoSlice::advance_slices(&mut bufs, n),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A writer that accepts at most `cap` bytes per call, to force the
    /// loop through partial-write resumption.
    struct Dribble {
        out: Vec<u8>,
        cap: usize,
    }

    impl Write for Dribble {
        fn write(&mut self, data: &[u8]) -> Result<usize> {
            let n = data.len().min(self.cap);
            self.out.extend_from_slice(&data[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> Result<()> {
            Ok(())
        }
    }

    #[test]
    fn writes_all_across_partial_writes() {
        let mut w = Dribble {
            out: Vec::new(),
            cap: 3,
        };
        let head = b"0123456789";
        let body = b"abcdefg";
        let mut bufs = [IoSlice::new(head), IoSlice::new(body)];
        write_all_vectored(&mut w, &mut bufs).unwrap();
        assert_eq!(w.out, b"0123456789abcdefg");
    }

    #[test]
    fn empty_slices_are_fine() {
        let mut w = Dribble {
            out: Vec::new(),
            cap: 100,
        };
        let mut bufs = [IoSlice::new(b""), IoSlice::new(b"x"), IoSlice::new(b"")];
        write_all_vectored(&mut w, &mut bufs).unwrap();
        assert_eq!(w.out, b"x");
        let mut none = [IoSlice::new(b""), IoSlice::new(b"")];
        write_all_vectored(&mut w, &mut none).unwrap();
        assert_eq!(w.out, b"x");
    }
}
