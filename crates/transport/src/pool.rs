//! A shared free list carrying reusable values across threads.
//!
//! The framed-TCP server gets buffer reuse for free: connections persist,
//! so each connection thread cycles its own request/response buffers for
//! its whole lifetime. HTTP connections are one-shot
//! (`Connection: close`), so reuse has to span connections — this pool is
//! the free list that hands a buffer's capacity from one connection
//! thread to the next.
//!
//! The pool is deliberately value-agnostic: items come back exactly as
//! they were put in, so a taken value must be treated as holding
//! arbitrary leftover contents. Every consumer in this stack already
//! does (body reads clear-and-resize, encoders replace).

use std::sync::Mutex;

/// A bounded, thread-safe free list of reusable values.
///
/// `take`/`put` never block beyond the internal lock, and the idle list
/// is capped so a burst of concurrent connections cannot pin an
/// unbounded amount of retained capacity.
pub struct Pool<T> {
    idle: Mutex<Vec<T>>,
    max_idle: usize,
}

/// The common case: pooled byte buffers for HTTP bodies.
pub type BufferPool = Pool<Vec<u8>>;

impl<T> Pool<T> {
    /// A pool retaining at most `max_idle` idle values.
    pub fn new(max_idle: usize) -> Pool<T> {
        Pool {
            idle: Mutex::new(Vec::new()),
            max_idle,
        }
    }

    /// Take an idle value, or build a fresh one with `make`.
    pub fn take_or(&self, make: impl FnOnce() -> T) -> T {
        let recycled = self.lock().pop();
        match recycled {
            Some(value) => {
                crate::metrics::pool_hits().inc();
                value
            }
            None => {
                crate::metrics::pool_misses().inc();
                make()
            }
        }
    }

    /// Return a value to the pool (dropped if the idle list is full).
    pub fn put(&self, value: T) {
        let mut idle = self.lock();
        if idle.len() < self.max_idle {
            idle.push(value);
        }
    }

    /// Values currently parked in the pool.
    pub fn idle_count(&self) -> usize {
        self.lock().len()
    }

    /// A free list is reusable capacity, never correctness: recover from
    /// a poisoned lock rather than cascade the panic into every
    /// connection thread sharing the pool.
    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<T>> {
        self.idle.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Pool<T> {
    /// Take an idle value, or a `Default` one.
    pub fn take(&self) -> T {
        self.take_or(T::default)
    }
}

impl<T> Default for Pool<T> {
    /// A pool sized for a busy threaded server (32 idle values — two
    /// buffers per connection across more simultaneous connections than
    /// the test servers ever spawn).
    fn default() -> Pool<T> {
        Pool::new(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_recycles_capacity() {
        let pool = BufferPool::new(4);
        let mut buf = pool.take();
        buf.reserve(4096);
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        pool.put(buf);
        let back = pool.take();
        assert_eq!(back.capacity(), cap);
        assert_eq!(back.as_ptr(), ptr, "same allocation must come back");
    }

    #[test]
    fn idle_list_is_bounded() {
        let pool = BufferPool::new(2);
        for _ in 0..5 {
            pool.put(Vec::with_capacity(16));
        }
        assert_eq!(pool.idle_count(), 2);
    }

    #[test]
    fn contents_are_callers_problem() {
        // The pool hands values back verbatim; consumers overwrite.
        let pool = BufferPool::new(1);
        pool.put(vec![1, 2, 3]);
        assert_eq!(pool.take(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_across_threads() {
        use std::sync::Arc;
        let pool = Arc::new(BufferPool::new(8));
        crossbeam::thread::scope(|s| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                s.spawn(move |_| {
                    for _ in 0..100 {
                        let mut b = pool.take();
                        b.clear();
                        b.extend_from_slice(b"payload");
                        pool.put(b);
                    }
                });
            }
        })
        .unwrap();
        assert!(pool.idle_count() <= 8);
    }
}
