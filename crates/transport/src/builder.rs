//! One builder for every server shape.
//!
//! The `bind_*` constructor zoo grew one method per option combination
//! (scratch init, reply control, shed payload, fault injection, shared
//! pools, …). [`ServerBuilder`] replaces it: chain the options you need,
//! then finish with [`serve_framed`](ServerBuilder::serve_framed) (the
//! framed-TCP binding) or [`serve_http`](ServerBuilder::serve_http) /
//! [`serve_http_ctl`](ServerBuilder::serve_http_ctl) (HTTP/1.1 with
//! keep-alive and streaming). The old constructors survive as thin
//! deprecated shims over the same two funnels.
//!
//! ```no_run
//! use transport::ServerBuilder;
//!
//! let server = ServerBuilder::bind("127.0.0.1:0")
//!     .read_timeout(std::time::Duration::from_secs(5))
//!     .serve_framed(
//!         || Vec::<u8>::new(), // per-connection scratch
//!         |_scratch, request, out, _ctl| out.extend_from_slice(request),
//!     )
//!     .unwrap();
//! # drop(server);
//! ```

use std::sync::Arc;
use std::time::Duration;

use crate::error::TransportResult;
use crate::faulty::SharedInjector;
use crate::http::request::HttpRequest;
use crate::http::response::HttpResponse;
use crate::http::server::{bind_http_inner, HttpServer, HttpServerConfig};
use crate::http::streaming::{StreamFactory, StreamRequestHead, StreamSession};
use crate::pool::BufferPool;
use crate::reactor::overload::OverloadConfig;
use crate::tcpserver::{bind_framed_inner, ReplyControl, TcpServer, TcpServerConfig};

/// A chainable server configuration, finished by a `serve_*` call.
#[derive(Clone)]
pub struct ServerBuilder {
    addr: String,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
    overload: OverloadConfig,
    metrics_path: Option<&'static str>,
    shed_payload: Option<Vec<u8>>,
    injector: Option<SharedInjector>,
    pool: Option<Arc<BufferPool>>,
    stream_factory: Option<StreamFactory>,
}

impl ServerBuilder {
    /// Start building a server for `addr` (port 0 = ephemeral).
    pub fn bind(addr: &str) -> ServerBuilder {
        ServerBuilder {
            addr: addr.to_owned(),
            read_timeout: None,
            write_timeout: None,
            overload: OverloadConfig::default(),
            metrics_path: None,
            shed_payload: None,
            injector: None,
            pool: None,
            stream_factory: None,
        }
    }

    /// Budget for making read progress on a message (and the idle
    /// allowance between keep-alive requests).
    pub fn read_timeout(mut self, budget: Duration) -> ServerBuilder {
        self.read_timeout = Some(budget);
        self
    }

    /// Budget for writing each reply.
    pub fn write_timeout(mut self, budget: Duration) -> ServerBuilder {
        self.write_timeout = Some(budget);
        self
    }

    /// Overload protection (connection cap, shedding, slow-loris
    /// deadline).
    pub fn overload(mut self, config: OverloadConfig) -> ServerBuilder {
        self.overload = config;
        self
    }

    /// Serve process metrics on `GET <path>` (HTTP servers only).
    pub fn metrics_path(mut self, path: &'static str) -> ServerBuilder {
        self.metrics_path = Some(path);
        self
    }

    /// Canned payload answered to shed/rejected requests (framed servers
    /// only; typically a pre-encoded SOAP Server fault).
    pub fn shed_payload(mut self, payload: Vec<u8>) -> ServerBuilder {
        self.shed_payload = Some(payload);
        self
    }

    /// Wrap every accepted stream in byte-level fault injection (framed
    /// servers only).
    pub fn faults(mut self, injector: SharedInjector) -> ServerBuilder {
        self.injector = Some(injector);
        self
    }

    /// Share an explicit request/response buffer pool (HTTP servers
    /// only).
    pub fn pool(mut self, pool: Arc<BufferPool>) -> ServerBuilder {
        self.pool = Some(pool);
        self
    }

    /// Serve chunked requests through streaming sessions: `factory` is
    /// consulted per chunked request head; a `Some` session receives one
    /// part per chunk and streams its reply (HTTP servers only — see
    /// [`crate::http::streaming`]).
    pub fn stream_factory<F>(mut self, factory: F) -> ServerBuilder
    where
        F: Fn(&StreamRequestHead<'_>) -> Option<Box<dyn StreamSession>> + Send + Sync + 'static,
    {
        self.stream_factory = Some(Arc::new(factory));
        self
    }

    /// Finish as a framed-TCP server: `init` builds per-connection
    /// scratch, `handler` maps each request to a response with a
    /// [`ReplyControl`] for deadline-aware reply capping.
    pub fn serve_framed<S, I, H>(self, init: I, handler: H) -> TransportResult<TcpServer>
    where
        S: 'static,
        I: Fn() -> S + Send + Sync + 'static,
        H: Fn(&mut S, &[u8], &mut Vec<u8>, &mut ReplyControl) + Send + Sync + 'static,
    {
        let config = TcpServerConfig {
            read_timeout: self.read_timeout,
            write_timeout: self.write_timeout,
            overload: self.overload,
        };
        bind_framed_inner(
            &self.addr,
            config,
            self.shed_payload,
            self.injector,
            init,
            handler,
        )
    }

    /// Finish as an HTTP/1.1 server with a plain request handler.
    pub fn serve_http<H>(self, handler: H) -> TransportResult<HttpServer>
    where
        H: Fn(&HttpRequest) -> HttpResponse + Send + Sync + 'static,
    {
        self.serve_http_ctl(move |request, _ctl| handler(request))
    }

    /// Finish as an HTTP/1.1 server whose handler also gets a
    /// [`ReplyControl`] for deadline-aware reply capping.
    pub fn serve_http_ctl<H>(self, handler: H) -> TransportResult<HttpServer>
    where
        H: Fn(&HttpRequest, &mut ReplyControl) -> HttpResponse + Send + Sync + 'static,
    {
        let config = HttpServerConfig {
            read_timeout: self.read_timeout,
            write_timeout: self.write_timeout,
            metrics_path: self.metrics_path,
            overload: self.overload,
        };
        let pool = self.pool.unwrap_or_default();
        bind_http_inner(&self.addr, config, pool, self.stream_factory, handler)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framed::FramedStream;
    use crate::http::client::http_get;

    #[test]
    fn builder_serves_framed_with_scratch() {
        let server = ServerBuilder::bind("127.0.0.1:0")
            .read_timeout(Duration::from_secs(5))
            .serve_framed(
                || 0u64,
                |count, request, out, _ctl| {
                    *count += 1;
                    out.extend_from_slice(request);
                    out.extend_from_slice(format!(" #{count}").as_bytes());
                },
            )
            .unwrap();
        let addr = server.local_addr().to_string();
        let mut client = FramedStream::connect(&addr).unwrap();
        client.send(b"msg").unwrap();
        assert_eq!(client.recv().unwrap(), b"msg #1");
        client.send(b"msg").unwrap();
        assert_eq!(client.recv().unwrap(), b"msg #2", "scratch persists per connection");
        drop(client);
        server.shutdown();
    }

    #[test]
    fn builder_serves_http() {
        let server = ServerBuilder::bind("127.0.0.1:0")
            .pool(Arc::new(BufferPool::default()))
            .serve_http(|req| HttpResponse::ok("text/plain", req.path.as_bytes().to_vec()))
            .unwrap();
        let addr = server.local_addr().to_string();
        assert_eq!(http_get(&addr, "/x").unwrap(), b"/x");
        server.shutdown();
    }
}
