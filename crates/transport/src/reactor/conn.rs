//! Per-connection state machines for the readiness loop.
//!
//! A [`ConnDriver`] owns everything about one connection except the
//! socket: parse state, request/response buffers, handler scratch. The
//! worker calls [`drive`](ConnDriver::drive) whenever the socket is (or
//! may be) ready; the driver runs its state machine until the socket
//! would block, then reports which readiness it needs next. Drivers are
//! created on the worker thread that owns them and never migrate, so
//! handler state needs no `Send` — the same property the old
//! thread-per-connection servers gave to connection-scoped scratch.

use std::io::{IoSlice, Read, Write};
use std::net::TcpStream;
use std::os::fd::{AsRawFd, RawFd};
use std::sync::Arc;
use std::time::{Duration, Instant};

use super::overload::{DriveCtx, Overload};
use crate::error::{TransportError, TransportResult};
use crate::faulty::FaultingTransport;
use crate::framed::{MAX_FRAME_LEN, RECV_CHUNK};
use crate::http::chunked::{self, ChunkDecoder, ChunkEvent};
use crate::http::request::HttpRequest;
use crate::http::response::HttpResponse;
use crate::http::streaming::{StreamFactory, StreamReply, StreamRequestHead, StreamSession};
use crate::metrics::ServerMetrics;
use crate::pool::BufferPool;
use crate::tcpserver::ReplyControl;

/// The socket as the driver sees it: plain, or wrapped in the
/// fault-injecting decorator (whose injected stalls surface as
/// `WouldBlock` — indistinguishable from "not ready", which on a
/// level-triggered loop simply retries the event).
pub(crate) enum ConnIo {
    Plain(TcpStream),
    Faulty(FaultingTransport<TcpStream>),
}

impl ConnIo {
    pub(crate) fn raw_fd(&self) -> RawFd {
        match self {
            ConnIo::Plain(s) => s.as_raw_fd(),
            ConnIo::Faulty(f) => f.get_ref().as_raw_fd(),
        }
    }
}

impl Read for ConnIo {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        match self {
            ConnIo::Plain(s) => s.read(out),
            ConnIo::Faulty(f) => f.read(out),
        }
    }
}

impl Write for ConnIo {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        match self {
            ConnIo::Plain(s) => s.write(data),
            ConnIo::Faulty(f) => f.write(data),
        }
    }

    fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> std::io::Result<usize> {
        match self {
            ConnIo::Plain(s) => s.write_vectored(bufs),
            // The decorator has no vectored path; one slice per call keeps
            // its per-event fault accounting intact.
            ConnIo::Faulty(f) => match bufs.iter().find(|b| !b.is_empty()) {
                Some(first) => f.write(first),
                None => Ok(0),
            },
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            ConnIo::Plain(s) => s.flush(),
            ConnIo::Faulty(f) => f.flush(),
        }
    }
}

/// What a driver wants from the event loop after a `drive` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Wants {
    /// Wake me when the socket is readable.
    Read,
    /// Wake me when the socket is writable.
    Write,
    /// Done (clean close) — deregister and drop the connection.
    Close,
    /// Drive me again this loop iteration even without socket readiness:
    /// the driver hit its per-drive dispatch quota with more pipelined
    /// requests already buffered in user space, where epoll cannot see
    /// them. The worker re-drives these after serving every other ready
    /// connection — the fairness bound on pipelining depth.
    Again,
}

/// One `drive` outcome: the wanted readiness plus the write budget the
/// handler capped this reply to (a [`ReplyControl`] deadline becomes a
/// write *deadline* on a non-blocking socket — the loop arms it and
/// times the connection out if the peer won't drain the reply in time).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Step {
    pub wants: Wants,
    pub write_cap: Option<Duration>,
}

impl Step {
    fn read() -> Step {
        Step {
            wants: Wants::Read,
            write_cap: None,
        }
    }

    fn write(cap: Option<Duration>) -> Step {
        Step {
            wants: Wants::Write,
            write_cap: cap,
        }
    }

    fn close() -> Step {
        Step {
            wants: Wants::Close,
            write_cap: None,
        }
    }

    fn again() -> Step {
        Step {
            wants: Wants::Again,
            write_cap: None,
        }
    }
}

/// Requests one `drive` call may serve before yielding the worker to
/// other connections. A peer that pipelines deeper than this still gets
/// every request answered — in slices, interleaved with everyone else's
/// traffic — instead of monopolizing its worker for the whole batch.
const MAX_DISPATCHES_PER_DRIVE: usize = 16;

/// A per-connection protocol state machine.
pub(crate) trait ConnDriver {
    /// Advance the state machine until the socket would block (or the
    /// dispatch quota yields). `ctx` carries the drain flag and the age
    /// of the event batch being served — the queue-delay half of the
    /// shed signal.
    fn drive(&mut self, io: &mut ConnIo, ctx: &DriveCtx) -> TransportResult<Step>;

    /// Is a message partially read, being handled, or partially written?
    /// Idle connections (`false`) are closed quietly on timeout or drain;
    /// in-flight ones are errors (`timed_out`) or drops (`shutdown_drop`).
    fn in_flight(&self) -> bool;
}

/// Run the handler, turning a panic into a typed connection error so one
/// poisoned request cannot take down the worker (and every other
/// connection parked on it) the way it took down a dedicated thread.
fn run_handler(f: impl FnOnce()) -> TransportResult<()> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).map_err(|_| {
        TransportError::Io(std::io::Error::other("handler panicked"))
    })
}

/// Read into `buf[*filled..]`, translating the outcome for a state
/// machine: `Ok(true)` made progress, `Ok(false)` would block,
/// `Err(ConnectionClosed)` on EOF.
fn read_some(io: &mut ConnIo, buf: &mut [u8], filled: &mut usize) -> TransportResult<bool> {
    loop {
        match io.read(&mut buf[*filled..]) {
            Ok(0) => return Err(TransportError::ConnectionClosed),
            Ok(n) => {
                *filled += n;
                return Ok(true);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(false),
            Err(e) => return Err(TransportError::Io(e)),
        }
    }
}

// ---------------------------------------------------------------------
// Framed TCP
// ---------------------------------------------------------------------

enum FramedPhase {
    /// Reading the 4-byte length prefix (`filled` bytes so far).
    Prefix { filled: usize },
    /// Reading `expected` payload bytes into `request`.
    Payload { expected: usize },
    /// Writing prefix + response (`written` of `4 + response.len()`).
    Write { written: usize },
}

/// The framed-TCP state machine: length-prefixed request in, handler,
/// length-prefixed response out, repeat. Mirrors the blocking
/// `FramedStream` semantics — chunk-bounded payload growth, the
/// [`MAX_FRAME_LEN`] cap before allocation, clean EOF only at a message
/// boundary — as a resumable non-blocking machine.
pub(crate) struct FramedDriver<S, H> {
    state: S,
    handler: Arc<H>,
    metrics: &'static ServerMetrics,
    overload: Arc<Overload>,
    phase: FramedPhase,
    prefix: [u8; 4],
    request: Vec<u8>,
    response: Vec<u8>,
    out_prefix: [u8; 4],
    ctl: ReplyControl,
    /// This driver holds one unit of the inflight gauge (a dispatched
    /// request whose response write hasn't completed) — released at
    /// write-complete, or in `Drop` when the connection dies mid-write.
    holds_inflight: bool,
}

impl<S, H> FramedDriver<S, H>
where
    H: Fn(&mut S, &[u8], &mut Vec<u8>, &mut ReplyControl),
{
    pub(crate) fn new(
        state: S,
        handler: Arc<H>,
        metrics: &'static ServerMetrics,
        overload: Arc<Overload>,
    ) -> Self {
        FramedDriver {
            state,
            handler,
            metrics,
            overload,
            phase: FramedPhase::Prefix { filled: 0 },
            prefix: [0; 4],
            request: Vec::new(),
            response: Vec::new(),
            out_prefix: [0; 4],
            ctl: ReplyControl::default(),
            holds_inflight: false,
        }
    }

    /// Shed the just-read request if the overload signal says so: the
    /// configured fault payload is staged as the response (no decode, no
    /// handler), or the connection closes when no payload was configured.
    /// Returns the step to take, or `None` to admit the request.
    fn maybe_shed(&mut self, ctx: &DriveCtx) -> Option<Option<Step>> {
        let inflight_with_me = self.metrics.requests_inflight.get() as i64 + 1;
        let reason = self.overload.should_shed(inflight_with_me, ctx.batch_age())?;
        crate::metrics::count_shed("tcp", reason);
        match self.overload.shed_payload.clone() {
            Some(payload) => {
                self.response.clear();
                self.response.extend_from_slice(&payload);
                self.ctl.reset();
                self.out_prefix = (self.response.len() as u32).to_be_bytes();
                self.phase = FramedPhase::Write { written: 0 };
                Some(None)
            }
            None => Some(Some(Step::close())),
        }
    }

    fn dispatch(&mut self) -> TransportResult<()> {
        self.metrics.bytes_in.add(self.request.len() as u64);
        self.metrics.requests.inc();
        self.metrics.requests_inflight.add(1.0);
        self.holds_inflight = true;
        self.response.clear();
        self.ctl.reset();
        let started = Instant::now();
        let (state, handler) = (&mut self.state, &self.handler);
        let (request, response, ctl) = (&self.request, &mut self.response, &mut self.ctl);
        if let Err(e) = run_handler(|| handler(state, request, response, ctl)) {
            crate::metrics::count_handler_panic("tcp");
            return Err(e);
        }
        let elapsed = started.elapsed();
        self.metrics.handler_latency.observe_duration(elapsed);
        self.overload.observe_handler_latency(elapsed);
        if self.response.len() > MAX_FRAME_LEN {
            return Err(TransportError::FrameTooLarge {
                declared: self.response.len() as u64,
            });
        }
        self.out_prefix = (self.response.len() as u32).to_be_bytes();
        self.phase = FramedPhase::Write { written: 0 };
        Ok(())
    }
}

impl<S, H> Drop for FramedDriver<S, H> {
    fn drop(&mut self) {
        if self.holds_inflight {
            self.metrics.requests_inflight.add(-1.0);
        }
    }
}

impl<S, H> ConnDriver for FramedDriver<S, H>
where
    H: Fn(&mut S, &[u8], &mut Vec<u8>, &mut ReplyControl),
{
    fn drive(&mut self, io: &mut ConnIo, ctx: &DriveCtx) -> TransportResult<Step> {
        let mut served = 0usize;
        loop {
            match &mut self.phase {
                FramedPhase::Prefix { filled } => {
                    while *filled < 4 {
                        let at_boundary = *filled == 0;
                        match read_some(io, &mut self.prefix, filled) {
                            Ok(true) => {}
                            Ok(false) => return Ok(Step::read()),
                            Err(TransportError::ConnectionClosed) if at_boundary => {
                                return Ok(Step::close());
                            }
                            Err(e) => return Err(e),
                        }
                    }
                    let expected = u32::from_be_bytes(self.prefix) as usize;
                    if expected > MAX_FRAME_LEN {
                        return Err(TransportError::FrameTooLarge {
                            declared: expected as u64,
                        });
                    }
                    self.request.clear();
                    self.phase = FramedPhase::Payload { expected };
                }
                FramedPhase::Payload { expected } => {
                    let expected = *expected;
                    // Chunk-bounded growth, resumable across WouldBlock:
                    // the buffer holds exactly the bytes received so far.
                    while self.request.len() < expected {
                        let have = self.request.len();
                        let target = expected.min(have + RECV_CHUNK);
                        self.request.resize(target, 0);
                        let mut filled = have;
                        let progressed =
                            read_some(io, &mut self.request[..target], &mut filled);
                        self.request.truncate(filled);
                        match progressed {
                            Ok(true) => {}
                            Ok(false) => return Ok(Step::read()),
                            Err(e) => return Err(e),
                        }
                    }
                    // The payload is complete but not yet decoded — the
                    // cheapest point to turn the request away.
                    match self.maybe_shed(ctx) {
                        Some(Some(step)) => return Ok(step),
                        Some(None) => {}
                        None => self.dispatch()?,
                    }
                }
                FramedPhase::Write { written } => {
                    let total = 4 + self.response.len();
                    while *written < total {
                        let bufs = if *written < 4 {
                            [
                                IoSlice::new(&self.out_prefix[*written..]),
                                IoSlice::new(&self.response),
                            ]
                        } else {
                            [
                                IoSlice::new(&self.response[*written - 4..]),
                                IoSlice::new(&[]),
                            ]
                        };
                        match io.write_vectored(&bufs) {
                            Ok(0) => {
                                return Err(TransportError::Io(std::io::Error::new(
                                    std::io::ErrorKind::WriteZero,
                                    "socket accepted no bytes",
                                )))
                            }
                            Ok(n) => *written += n,
                            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                return Ok(Step::write(self.ctl.write_budget()));
                            }
                            Err(e) => return Err(TransportError::Io(e)),
                        }
                    }
                    self.metrics.bytes_out.add(self.response.len() as u64);
                    if self.holds_inflight {
                        self.metrics.requests_inflight.add(-1.0);
                        self.holds_inflight = false;
                    }
                    if ctx.draining {
                        return Ok(Step::close());
                    }
                    self.phase = FramedPhase::Prefix { filled: 0 };
                    served += 1;
                    if served >= MAX_DISPATCHES_PER_DRIVE {
                        // Yield the worker; any further pipelined frames
                        // sit in the kernel buffer, which level-triggered
                        // epoll keeps reporting as readable.
                        return Ok(Step::read());
                    }
                }
            }
        }
    }

    fn in_flight(&self) -> bool {
        !matches!(self.phase, FramedPhase::Prefix { filled: 0 })
    }
}

// ---------------------------------------------------------------------
// HTTP/1.1
// ---------------------------------------------------------------------

/// Cap on accumulated header bytes before a request is rejected — a peer
/// that trickles an endless head can't grow the buffer unboundedly.
const MAX_HEAD_LEN: usize = 64 * 1024;

/// Per-read append granularity for the head buffer.
const HEAD_READ_CHUNK: usize = 8 * 1024;

/// Cap on one streamed part (one chunk) — a hostile peer declaring a
/// giant chunk is refused before the part buffer grows to match.
const MAX_STREAM_PART: usize = 4 * 1024 * 1024;

/// How far ahead of the socket the streaming reply path will pull parts:
/// once at least this many staged bytes are waiting to be written, no
/// more parts are pulled until the peer drains them — the backpressure
/// bound that keeps a streamed reply O(window) regardless of reply size.
const STREAM_WRITE_WINDOW: usize = 64 * 1024;

enum HttpPhase {
    /// Accumulating head bytes until the blank line.
    Head,
    /// Reading `remaining` body bytes for the parsed request.
    Body { remaining: usize },
    /// Reading a chunked request body. `streaming` feeds each completed
    /// chunk to the stream session as one part; otherwise the body is
    /// de-chunked into the ordinary request buffer for buffered dispatch.
    ChunkedBody { streaming: bool },
    /// Writing `head_out` + `body_out` (`written` bytes done).
    Write { written: usize },
    /// Writing a streamed (chunked) reply: flush `head_out` + the staged
    /// chunk batch in `body_out`, refill from the session when drained,
    /// finish once `source_done` and everything is on the wire.
    StreamWrite { written: usize, source_done: bool },
}

/// A request head parsed off the connection buffer, waiting for its body.
struct PendingRequest {
    method: String,
    path: String,
    headers: Vec<(String, String)>,
    keep_alive: bool,
}

/// How a request head declares its body.
enum BodyKind {
    Length(usize),
    Chunked,
}

/// The HTTP/1.1 state machine with keep-alive and pipelining.
///
/// Requests are parsed straight out of a connection read buffer, so a
/// pipelined batch is served back-to-back without extra socket reads;
/// while a response write is backpressured the machine stops consuming
/// input (no unbounded buffering of a client that won't read). The
/// `Connection:` disposition follows RFC 7230 §6: 1.1 defaults to
/// keep-alive, 1.0 to close, any `close` token (including conflicting
/// duplicate headers) closes conservatively.
pub(crate) struct HttpDriver<H> {
    handler: Arc<H>,
    metrics: &'static ServerMetrics,
    metrics_path: Option<&'static str>,
    pool: Arc<BufferPool>,
    overload: Arc<Overload>,
    phase: HttpPhase,
    read_buf: Vec<u8>,
    pending: Option<PendingRequest>,
    body: Vec<u8>,
    head_out: Vec<u8>,
    body_out: Vec<u8>,
    /// Disposition of the response currently being written.
    keep_alive: bool,
    /// The oversize-request path counts `frame_too_large` once per
    /// rejection, like the blocking server did.
    ctl: ReplyControl,
    /// One unit of the inflight gauge held by a dispatched request whose
    /// response hasn't fully gone out (released in `Drop` if the
    /// connection dies mid-write).
    holds_inflight: bool,
    /// Per-request streaming decision hook (None = always buffered).
    stream_factory: Option<StreamFactory>,
    /// The live stream session while a chunked exchange is in flight.
    session: Option<Box<dyn StreamSession>>,
    /// Chunked-body parse state (reset when a chunked body starts).
    chunk_dec: ChunkDecoder,
}

impl<H> HttpDriver<H>
where
    H: Fn(&HttpRequest, &mut ReplyControl) -> HttpResponse,
{
    pub(crate) fn new(
        handler: Arc<H>,
        metrics: &'static ServerMetrics,
        metrics_path: Option<&'static str>,
        pool: Arc<BufferPool>,
        overload: Arc<Overload>,
        stream_factory: Option<StreamFactory>,
    ) -> Self {
        let body = pool.take();
        HttpDriver {
            handler,
            metrics,
            metrics_path,
            pool,
            overload,
            phase: HttpPhase::Head,
            read_buf: Vec::new(),
            pending: None,
            body,
            head_out: Vec::new(),
            body_out: Vec::new(),
            keep_alive: false,
            ctl: ReplyControl::default(),
            holds_inflight: false,
            stream_factory,
            session: None,
            chunk_dec: ChunkDecoder::new(),
        }
    }

    /// Append socket bytes to the head buffer. `Ok(true)` = progress.
    fn fill_head_buf(&mut self, io: &mut ConnIo) -> TransportResult<bool> {
        let have = self.read_buf.len();
        self.read_buf.resize(have + HEAD_READ_CHUNK, 0);
        let mut filled = have;
        let outcome = read_some(io, &mut self.read_buf, &mut filled);
        self.read_buf.truncate(filled);
        outcome
    }

    /// Queue `response` for writing and flip to the write phase.
    fn stage_response(&mut self, response: HttpResponse) {
        // A handler that explicitly says `Connection: close` wins over
        // the negotiated disposition; the serialized header always states
        // what the server will actually do.
        if crate::http::wants_close(&response.headers) {
            self.keep_alive = false;
        }
        response.serialize_head(self.keep_alive, &mut self.head_out);
        // The previous response's body goes back to the pool and the new
        // one takes its place — same recycle point as the blocking server.
        self.pool.put(std::mem::replace(&mut self.body_out, response.body));
        self.phase = HttpPhase::Write { written: 0 };
    }

    /// Parse one request head out of `read_buf` if the blank line has
    /// arrived. `Ok(true)` = a request is pending (or a parse-error,
    /// reject, or shed response was staged); `Ok(false)` = need more
    /// bytes.
    fn try_parse_head(&mut self, ctx: &DriveCtx) -> TransportResult<bool> {
        let Some(head_end) = find_head_end(&self.read_buf) else {
            if self.read_buf.len() > MAX_HEAD_LEN {
                // Reply like the blocking server replied to any malformed
                // request, then close.
                self.keep_alive = false;
                self.stage_response(HttpResponse::bad_request("request head too large"));
            }
            return Ok(self.read_buf.len() > MAX_HEAD_LEN);
        };
        let parsed = parse_request_head(&self.read_buf[..head_end]);
        self.read_buf.drain(..head_end + 4);
        match parsed {
            Ok((pending, BodyKind::Chunked)) => {
                // Shed chunked requests at head-parse time like
                // length-delimited ones.
                let inflight_with_me = self.metrics.requests_inflight.get() as i64 + 1;
                if let Some(reason) = self
                    .overload
                    .should_shed(inflight_with_me, ctx.batch_age())
                {
                    crate::metrics::count_shed("http", reason);
                    self.keep_alive = false;
                    self.stage_response(HttpResponse::service_unavailable(
                        self.overload.retry_after_hint,
                    ));
                    return Ok(true);
                }
                self.keep_alive = pending.keep_alive;
                self.chunk_dec.reset();
                self.body.clear();
                let streaming = if let Some(factory) = &self.stream_factory {
                    let head = StreamRequestHead {
                        method: &pending.method,
                        path: &pending.path,
                        headers: &pending.headers,
                    };
                    self.session = factory(&head);
                    self.session.is_some()
                } else {
                    false
                };
                if streaming {
                    // A streamed request is dispatched now — the session
                    // is its handler — and inflight until the reply's
                    // last chunk is on the wire.
                    self.metrics.requests.inc();
                    self.metrics.requests_inflight.add(1.0);
                    self.holds_inflight = true;
                    self.ctl.reset();
                } else {
                    self.pending = Some(pending);
                }
                self.phase = HttpPhase::ChunkedBody { streaming };
                Ok(true)
            }
            Ok((pending, BodyKind::Length(body_len))) => {
                if body_len > MAX_FRAME_LEN {
                    // 413 at header-parse time: the body is never read (it
                    // may never even be sent), the error is counted, and
                    // the connection closes — a peer that declared gigabytes
                    // gets no second request.
                    crate::metrics::count_server_error(
                        "http",
                        crate::metrics::error_kind(&TransportError::FrameTooLarge {
                            declared: body_len as u64,
                        }),
                    );
                    self.keep_alive = false;
                    self.stage_response(HttpResponse::payload_too_large());
                    return Ok(true);
                }
                // Shed check at head-parse time — before the body is read,
                // decoded, or handled. The 503 says `Connection: close`,
                // so any body bytes in flight die with the connection.
                // Metrics scrapes are exempt: observability must survive
                // the very overload it is diagnosing.
                let is_metrics_scrape =
                    self.metrics_path == Some(pending.path.as_str()) && pending.method == "GET";
                if !is_metrics_scrape {
                    let inflight_with_me = self.metrics.requests_inflight.get() as i64 + 1;
                    if let Some(reason) = self
                        .overload
                        .should_shed(inflight_with_me, ctx.batch_age())
                    {
                        crate::metrics::count_shed("http", reason);
                        self.keep_alive = false;
                        self.stage_response(HttpResponse::service_unavailable(
                            self.overload.retry_after_hint,
                        ));
                        return Ok(true);
                    }
                }
                self.keep_alive = pending.keep_alive;
                self.pending = Some(pending);
                self.body.clear();
                self.phase = HttpPhase::Body {
                    remaining: body_len,
                };
                Ok(true)
            }
            Err(e) => {
                self.keep_alive = false;
                self.stage_response(HttpResponse::bad_request(&e.to_string()));
                Ok(true)
            }
        }
    }

    fn dispatch(&mut self) {
        let pending = self.pending.take().expect("body phase implies a parsed head");
        self.metrics.bytes_in.add(self.body.len() as u64);
        self.metrics.requests.inc();
        self.metrics.requests_inflight.add(1.0);
        self.holds_inflight = true;
        let mut request = HttpRequest {
            method: pending.method,
            path: pending.path,
            headers: pending.headers,
            body: std::mem::take(&mut self.body),
        };
        self.ctl.reset();
        let response = if self.metrics_path == Some(request.path.as_str())
            && request.method == "GET"
        {
            crate::http::server::metrics_response()
        } else {
            let started = Instant::now();
            let handler = Arc::clone(&self.handler);
            let ctl = &mut self.ctl;
            let mut out = None;
            let result = run_handler(|| out = Some(handler(&request, ctl)));
            let elapsed = started.elapsed();
            self.metrics.handler_latency.observe_duration(elapsed);
            self.overload.observe_handler_latency(elapsed);
            match (result, out) {
                (Ok(()), Some(response)) => response,
                // A panicked handler still owes the peer an answer; the
                // connection closes right after it.
                _ => {
                    crate::metrics::count_handler_panic("http");
                    self.keep_alive = false;
                    HttpResponse::server_error(b"handler failed".to_vec())
                }
            }
        };
        // The request body buffer returns to this connection's cycle.
        self.body = std::mem::take(&mut request.body);
        self.stage_response(response);
    }

    /// Pump a chunked request body: decode whatever is buffered, refill
    /// from the socket, feed completed parts to the session (streaming)
    /// or accumulate into the request buffer (buffered fallback).
    /// `Ok(Some(step))` yields to the event loop; `Ok(None)` means the
    /// phase changed — continue the drive loop.
    fn pump_chunked(
        &mut self,
        io: &mut ConnIo,
        ctx: &DriveCtx,
        streaming: bool,
    ) -> TransportResult<Option<Step>> {
        loop {
            let mut consumed = 0;
            let mut ended = false;
            let mut part_err = None;
            while consumed < self.read_buf.len() {
                let (n, event) = match self.chunk_dec.advance(&self.read_buf[consumed..]) {
                    Ok(step) => step,
                    Err(e) => {
                        // Malformed chunked framing: answer like any
                        // other parse error, then close.
                        self.read_buf.clear();
                        self.keep_alive = false;
                        self.stage_response(HttpResponse::bad_request(&e.to_string()));
                        return Ok(None);
                    }
                };
                consumed += n;
                match event {
                    ChunkEvent::NeedMore => break,
                    ChunkEvent::Data { payload, chunk_done } => {
                        let cap = if streaming { MAX_STREAM_PART } else { MAX_FRAME_LEN };
                        if self.body.len() + payload.len() > cap {
                            crate::metrics::count_server_error(
                                "http",
                                crate::metrics::error_kind(&TransportError::FrameTooLarge {
                                    declared: (self.body.len() + payload.len()) as u64,
                                }),
                            );
                            self.read_buf.clear();
                            self.keep_alive = false;
                            self.stage_response(HttpResponse::payload_too_large());
                            return Ok(None);
                        }
                        self.body.extend_from_slice(payload);
                        if streaming && chunk_done {
                            self.metrics.bytes_in.add(self.body.len() as u64);
                            let session =
                                self.session.as_mut().expect("streaming implies a session");
                            if let Err(e) = session.on_part(&self.body) {
                                part_err = Some(e);
                            }
                            self.body.clear();
                            if part_err.is_some() {
                                break;
                            }
                        }
                    }
                    ChunkEvent::End => {
                        ended = true;
                        break;
                    }
                }
            }
            self.read_buf.drain(..consumed);
            if let Some(e) = part_err {
                self.read_buf.clear();
                self.keep_alive = false;
                self.stage_response(HttpResponse::bad_request(&e.to_string()));
                return Ok(None);
            }
            if ended {
                self.finish_chunked(ctx);
                return Ok(None);
            }
            match self.fill_head_buf(io) {
                Ok(true) => {}
                Ok(false) => return Ok(Some(Step::read())),
                Err(e) => Err(e)?,
            }
        }
    }

    /// The chunked request terminator arrived: dispatch the buffered
    /// fallback, or ask the stream session for its reply.
    fn finish_chunked(&mut self, ctx: &DriveCtx) {
        if ctx.draining {
            self.keep_alive = false;
        }
        if self.session.is_none() {
            self.dispatch();
            return;
        }
        let session = self.session.as_mut().expect("checked above");
        match session.finish() {
            Ok(StreamReply::Buffered(response)) => {
                self.session = None;
                self.stage_response(response);
            }
            Ok(StreamReply::Streamed(response)) => {
                if crate::http::wants_close(&response.headers) {
                    self.keep_alive = false;
                }
                response.serialize_chunked_head(self.keep_alive, &mut self.head_out);
                self.body_out.clear();
                self.phase = HttpPhase::StreamWrite {
                    written: 0,
                    source_done: false,
                };
            }
            Err(e) => {
                self.session = None;
                self.keep_alive = false;
                self.stage_response(HttpResponse::server_error(e.to_string().into_bytes()));
            }
        }
    }
}

impl<H> ConnDriver for HttpDriver<H>
where
    H: Fn(&HttpRequest, &mut ReplyControl) -> HttpResponse,
{
    fn drive(&mut self, io: &mut ConnIo, ctx: &DriveCtx) -> TransportResult<Step> {
        let mut served = 0usize;
        loop {
            match &mut self.phase {
                HttpPhase::Head => {
                    if self.try_parse_head(ctx)? {
                        continue;
                    }
                    let at_boundary = self.read_buf.is_empty();
                    match self.fill_head_buf(io) {
                        Ok(true) => {}
                        Ok(false) => return Ok(Step::read()),
                        Err(TransportError::ConnectionClosed) if at_boundary => {
                            // Clean EOF between requests (including a
                            // half-closed peer whose last response just
                            // went out).
                            return Ok(Step::close());
                        }
                        Err(e) => return Err(e),
                    }
                }
                HttpPhase::Body { remaining } => {
                    // Buffered bytes first (pipelined clients send the
                    // body right behind the head), then the socket,
                    // chunk-bounded like the framed payload read.
                    let from_buf = (*remaining).min(self.read_buf.len());
                    if from_buf > 0 {
                        self.body.extend_from_slice(&self.read_buf[..from_buf]);
                        self.read_buf.drain(..from_buf);
                        *remaining -= from_buf;
                    }
                    while *remaining > 0 {
                        let have = self.body.len();
                        let target = have + (*remaining).min(RECV_CHUNK);
                        self.body.resize(target, 0);
                        let mut filled = have;
                        let progressed = read_some(io, &mut self.body[..target], &mut filled);
                        self.body.truncate(filled);
                        match progressed {
                            Ok(true) => *remaining -= filled - have,
                            Ok(false) => return Ok(Step::read()),
                            Err(e) => return Err(e),
                        }
                    }
                    if ctx.draining {
                        // The in-flight request completes, but its
                        // response says close.
                        self.keep_alive = false;
                    }
                    self.dispatch();
                }
                HttpPhase::ChunkedBody { streaming } => {
                    let streaming = *streaming;
                    if let Some(step) = self.pump_chunked(io, ctx, streaming)? {
                        return Ok(step);
                    }
                }
                HttpPhase::StreamWrite {
                    written,
                    source_done,
                } => {
                    let mut written = *written;
                    let mut source_done = *source_done;
                    if written >= self.head_out.len() + self.body_out.len() && !source_done {
                        // Previous batch fully on the wire: stage the next
                        // one, pulling parts only up to the write window —
                        // the backpressure bound.
                        self.head_out.clear();
                        self.body_out.clear();
                        written = 0;
                        while self.body_out.len() < STREAM_WRITE_WINDOW {
                            self.body.clear();
                            let session =
                                self.session.as_mut().expect("stream write implies a session");
                            // An error here is fatal for the connection:
                            // the chunked head already went out, so the
                            // only honest signal is a truncated stream.
                            if !session.next_part(&mut self.body)? {
                                chunked::write_final_chunk(&mut self.body_out);
                                source_done = true;
                                break;
                            }
                            if !self.body.is_empty() {
                                chunked::write_chunk(&mut self.body_out, &self.body);
                            }
                        }
                    }
                    let total = self.head_out.len() + self.body_out.len();
                    while written < total {
                        let head_len = self.head_out.len();
                        let bufs = if written < head_len {
                            [
                                IoSlice::new(&self.head_out[written..]),
                                IoSlice::new(&self.body_out),
                            ]
                        } else {
                            [
                                IoSlice::new(&self.body_out[written - head_len..]),
                                IoSlice::new(&[]),
                            ]
                        };
                        match io.write_vectored(&bufs) {
                            Ok(0) => {
                                return Err(TransportError::Io(std::io::Error::new(
                                    std::io::ErrorKind::WriteZero,
                                    "socket accepted no bytes",
                                )))
                            }
                            Ok(n) => written += n,
                            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                self.phase = HttpPhase::StreamWrite {
                                    written,
                                    source_done,
                                };
                                return Ok(Step::write(self.ctl.write_budget()));
                            }
                            Err(e) => return Err(TransportError::Io(e)),
                        }
                    }
                    self.metrics.bytes_out.add(self.body_out.len() as u64);
                    if source_done {
                        self.session = None;
                        self.body_out.clear();
                        if self.holds_inflight {
                            self.metrics.requests_inflight.add(-1.0);
                            self.holds_inflight = false;
                        }
                        if !self.keep_alive || ctx.draining {
                            return Ok(Step::close());
                        }
                        self.phase = HttpPhase::Head;
                        served += 1;
                        if served >= MAX_DISPATCHES_PER_DRIVE {
                            return Ok(if self.read_buf.is_empty() {
                                Step::read()
                            } else {
                                Step::again()
                            });
                        }
                    } else {
                        self.phase = HttpPhase::StreamWrite {
                            written,
                            source_done,
                        };
                    }
                }
                HttpPhase::Write { written } => {
                    let total = self.head_out.len() + self.body_out.len();
                    while *written < total {
                        let head_len = self.head_out.len();
                        let bufs = if *written < head_len {
                            [
                                IoSlice::new(&self.head_out[*written..]),
                                IoSlice::new(&self.body_out),
                            ]
                        } else {
                            [
                                IoSlice::new(&self.body_out[*written - head_len..]),
                                IoSlice::new(&[]),
                            ]
                        };
                        match io.write_vectored(&bufs) {
                            Ok(0) => {
                                return Err(TransportError::Io(std::io::Error::new(
                                    std::io::ErrorKind::WriteZero,
                                    "socket accepted no bytes",
                                )))
                            }
                            Ok(n) => *written += n,
                            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                return Ok(Step::write(self.ctl.write_budget()));
                            }
                            Err(e) => return Err(TransportError::Io(e)),
                        }
                    }
                    self.metrics.bytes_out.add(self.body_out.len() as u64);
                    self.pool.put(std::mem::take(&mut self.body_out));
                    if self.holds_inflight {
                        self.metrics.requests_inflight.add(-1.0);
                        self.holds_inflight = false;
                    }
                    if !self.keep_alive || ctx.draining {
                        return Ok(Step::close());
                    }
                    self.phase = HttpPhase::Head;
                    served += 1;
                    if served >= MAX_DISPATCHES_PER_DRIVE {
                        // Pipelined requests beyond the quota sit in the
                        // user-space read buffer where epoll can't see
                        // them: ask the loop for a re-drive instead of
                        // readiness. An empty buffer can wait for epoll.
                        return Ok(if self.read_buf.is_empty() {
                            Step::read()
                        } else {
                            Step::again()
                        });
                    }
                }
            }
        }
    }

    fn in_flight(&self) -> bool {
        match self.phase {
            HttpPhase::Head => !self.read_buf.is_empty(),
            HttpPhase::Body { .. }
            | HttpPhase::ChunkedBody { .. }
            | HttpPhase::Write { .. }
            | HttpPhase::StreamWrite { .. } => true,
        }
    }
}

impl<H> Drop for HttpDriver<H> {
    fn drop(&mut self) {
        // The connection's buffers rejoin the shared cycle.
        self.pool.put(std::mem::take(&mut self.body));
        self.pool.put(std::mem::take(&mut self.body_out));
        if self.holds_inflight {
            self.metrics.requests_inflight.add(-1.0);
        }
    }
}

/// Find the `\r\n\r\n` terminating a request head; returns its offset.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Parse a request head (request line + headers, no trailing blank line)
/// into a [`PendingRequest`] plus how the body is delimited.
fn parse_request_head(head: &[u8]) -> TransportResult<(PendingRequest, BodyKind)> {
    let head = std::str::from_utf8(head).map_err(|_| TransportError::BadHttp {
        what: "request head is not UTF-8".into(),
    })?;
    let mut lines = head.split("\r\n");
    let first = lines.next().unwrap_or("");
    let mut parts = first.split_ascii_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m, p, v),
        _ => {
            return Err(TransportError::BadHttp {
                what: format!("bad request line {first:?}"),
            })
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(TransportError::BadHttp {
            what: format!("unsupported version {version:?}"),
        });
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or_else(|| TransportError::BadHttp {
            what: format!("header line without a colon: {line:?}"),
        })?;
        headers.push((name.trim().to_owned(), value.trim().to_owned()));
        if headers.len() > 256 {
            return Err(TransportError::BadHttp {
                what: "too many headers".into(),
            });
        }
    }
    let body = if crate::http::body_is_chunked(&headers) {
        BodyKind::Chunked
    } else {
        match crate::http::find_header(&headers, "Content-Length") {
            Some(v) => BodyKind::Length(v.parse::<usize>().map_err(|_| {
                TransportError::BadHttp {
                    what: format!("bad Content-Length {v:?}"),
                }
            })?),
            None => BodyKind::Length(0),
        }
    };
    let keep_alive = crate::http::keep_alive_disposition(version == "HTTP/1.1", &headers);
    Ok((
        PendingRequest {
            method: method.to_owned(),
            path: path.to_owned(),
            headers,
            keep_alive,
        },
        body,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(14));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
        assert_eq!(find_head_end(b""), None);
    }

    #[test]
    fn request_head_parses_and_negotiates() {
        let (req, body) =
            parse_request_head(b"POST /soap HTTP/1.1\r\nContent-Length: 12\r\nHost: x").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/soap");
        assert!(matches!(body, BodyKind::Length(12)));
        assert!(req.keep_alive, "1.1 defaults to keep-alive");

        let (_, body) = parse_request_head(
            b"POST /soap HTTP/1.1\r\nTransfer-Encoding: chunked\r\nHost: x",
        )
        .unwrap();
        assert!(matches!(body, BodyKind::Chunked));

        let (req, _) = parse_request_head(b"GET / HTTP/1.0\r\nHost: x").unwrap();
        assert!(!req.keep_alive, "1.0 defaults to close");

        let (req, _) =
            parse_request_head(b"GET / HTTP/1.0\r\nConnection: keep-alive").unwrap();
        assert!(req.keep_alive, "1.0 opts in explicitly");

        let (req, _) = parse_request_head(b"GET / HTTP/1.1\r\nConnection: close").unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn conflicting_connection_headers_close_conservatively() {
        let (req, _) = parse_request_head(
            b"GET / HTTP/1.1\r\nConnection: keep-alive\r\nConnection: close",
        )
        .unwrap();
        assert!(!req.keep_alive, "any close token wins");
        let (req, _) =
            parse_request_head(b"GET / HTTP/1.1\r\nConnection: keep-alive, close").unwrap();
        assert!(!req.keep_alive, "close in a token list wins");
    }

    #[test]
    fn malformed_heads_are_rejected() {
        assert!(parse_request_head(b"NONSENSE").is_err());
        assert!(parse_request_head(b"GET / SPDY/3").is_err());
        assert!(parse_request_head(b"GET / HTTP/1.1\r\nNoColon").is_err());
        assert!(parse_request_head(b"POST / HTTP/1.1\r\nContent-Length: many").is_err());
        assert!(parse_request_head(&[0xff, 0xfe, 0x20, 0x20]).is_err());
    }
}
