//! Overload protection for the reactor: admission control at accept
//! time, request-level load shedding at dispatch time, and the shared
//! signal both decisions read.
//!
//! The design goal is *graceful* degradation: past saturation the server
//! keeps serving what it admitted at near-peak goodput and turns the
//! excess away **explicitly** — a canned response carrying a retry hint
//! (`Retry-After` on HTTP, `retry-after-ms=` fault detail on framed TCP)
//! that the client-side retry/breaker machinery already honors — instead
//! of letting queues, latency, and memory grow without bound.
//!
//! Two admission layers:
//!
//! * **Connections** — [`OverloadConfig::max_connections`] caps the
//!   server-wide open-connection count. The acceptor enforces it either
//!   by *pausing* accepts (connections wait in the kernel backlog — the
//!   TCP-native form of backpressure) or by *accept-then-reject*:
//!   accept, write a prebuilt rejection (HTTP 503 + `Retry-After` +
//!   `Connection: close`; a framed fault frame), close. A per-worker
//!   slab bound (2× the fair share) backstops the global cap against
//!   lifetime imbalance between workers.
//! * **Requests** — once a request head (HTTP) or payload (framed) has
//!   arrived, the driver consults [`Overload::should_shed`] *before* any
//!   decode or handler work. The signal is cheap: the process-wide
//!   inflight gauge, plus the age of the event batch being drained
//!   combined with an EWMA of handler latency (how long the peer has
//!   already waited in this batch, plus how long serving it would take).
//!   A saturated worker sheds the tail of its batch and keeps the head
//!   fast.

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Overload-protection knobs shared by [`crate::TcpServerConfig`] and
/// [`crate::HttpServerConfig`]. The default is fully permissive — every
/// protection off — so existing servers behave exactly as before.
#[derive(Debug, Clone, Copy)]
pub struct OverloadConfig {
    /// Server-wide cap on concurrently open connections (`None` =
    /// unbounded, the pre-overload behaviour). Also bounds each worker's
    /// slab at twice the per-worker fair share.
    /// Overridable at bind time by the `BX_SERVER_MAX_CONNS` env var.
    pub max_connections: Option<usize>,
    /// What a full server does with the next connection: `false` (the
    /// default) pauses accepting — arrivals queue in the kernel backlog
    /// and are served as slots free up; `true` accepts and immediately
    /// writes a rejection carrying the retry hint, then closes.
    pub reject_when_full: bool,
    /// Shed a request when admitting it would push the inflight gauge
    /// past this bound (`None` = no inflight-based shedding).
    pub max_inflight: Option<usize>,
    /// Shed a request when the age of the event batch it arrived in,
    /// plus the EWMA of handler latency, exceeds this bound — the
    /// request has already queued longer than the server considers
    /// serviceable (`None` = no delay-based shedding).
    pub shed_queue_delay: Option<Duration>,
    /// The hint attached to rejections and shed responses: how long the
    /// peer should wait before trying again.
    pub retry_after_hint: Duration,
    /// Total budget for one in-flight message exchange regardless of
    /// byte progress — the slow-loris defense. The per-phase read/write
    /// timeouts re-arm on every drive that makes progress, so a peer
    /// trickling one byte per budget dodges them forever; this deadline
    /// does not re-arm until the message completes.
    pub message_deadline: Option<Duration>,
}

impl Default for OverloadConfig {
    fn default() -> OverloadConfig {
        OverloadConfig {
            max_connections: None,
            reject_when_full: false,
            max_inflight: None,
            shed_queue_delay: None,
            retry_after_hint: Duration::from_secs(1),
            message_deadline: None,
        }
    }
}

impl OverloadConfig {
    /// `max_connections` with the `BX_SERVER_MAX_CONNS` env override
    /// applied (`0` disables the cap).
    pub(crate) fn effective_max_connections(&self) -> Option<usize> {
        if let Ok(v) = std::env::var("BX_SERVER_MAX_CONNS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return (n > 0).then_some(n);
            }
        }
        self.max_connections
    }
}

/// EWMA smoothing: `ewma += (sample - ewma) / 8`.
const EWMA_SHIFT: u32 = 3;

/// The shared overload state for one running server: the resolved
/// config, the admission counter, the latency EWMA, and the prebuilt
/// rejection/shed payloads.
pub(crate) struct Overload {
    pub max_connections: Option<usize>,
    pub reject_when_full: bool,
    pub max_inflight: Option<usize>,
    pub shed_queue_delay: Option<Duration>,
    pub retry_after_hint: Duration,
    pub message_deadline: Option<Duration>,
    /// Admitted, currently-open connections (acceptor increments on
    /// admit; workers decrement on close).
    active: AtomicI64,
    /// EWMA of handler latency in nanoseconds, updated after every
    /// handler run. Plain relaxed load/store: a lost race skews the
    /// average by one sample, which the next sample repairs.
    ewma_nanos: AtomicU64,
    /// Complete wire bytes written at a rejected connection (a full HTTP
    /// 503 response / a length-prefixed framed fault). `None` = close
    /// silently.
    pub reject_wire: Option<Arc<[u8]>>,
    /// The *payload* (no length prefix) a framed driver answers a shed
    /// request with. `None` = shed by closing the connection.
    pub shed_payload: Option<Arc<[u8]>>,
}

impl Overload {
    pub(crate) fn new(
        config: &OverloadConfig,
        reject_wire: Option<Arc<[u8]>>,
        shed_payload: Option<Arc<[u8]>>,
    ) -> Overload {
        Overload {
            max_connections: config.effective_max_connections(),
            reject_when_full: config.reject_when_full,
            max_inflight: config.max_inflight,
            shed_queue_delay: config.shed_queue_delay,
            retry_after_hint: config.retry_after_hint,
            message_deadline: config.message_deadline,
            active: AtomicI64::new(0),
            ewma_nanos: AtomicU64::new(0),
            reject_wire,
            shed_payload,
        }
    }

    /// Admitted-connection count as the acceptor sees it.
    pub(crate) fn active(&self) -> i64 {
        self.active.load(Ordering::Acquire)
    }

    /// Record one admitted connection.
    pub(crate) fn admit(&self) {
        self.active.fetch_add(1, Ordering::AcqRel);
    }

    /// Release one admitted connection (close, or registration failure).
    pub(crate) fn release(&self) {
        self.active.fetch_sub(1, Ordering::AcqRel);
    }

    /// Per-worker slab bound: twice the fair share of the global cap, so
    /// round-robin with uneven connection lifetimes has headroom, while
    /// one worker can never hold more than 2× its share of slab memory.
    pub(crate) fn per_worker_cap(&self, workers: usize) -> Option<usize> {
        self.max_connections
            .map(|cap| (cap.div_ceil(workers.max(1)) * 2).max(8))
    }

    /// Fold one handler-latency sample into the EWMA.
    pub(crate) fn observe_handler_latency(&self, elapsed: Duration) {
        let sample = elapsed.as_nanos().min(i64::MAX as u128) as i64;
        let old = self.ewma_nanos.load(Ordering::Relaxed) as i64;
        let new = if old == 0 {
            sample
        } else {
            old.saturating_add((sample - old) >> EWMA_SHIFT)
        };
        self.ewma_nanos.store(new.max(0) as u64, Ordering::Relaxed);
    }

    /// The current handler-latency EWMA.
    pub(crate) fn ewma_latency(&self) -> Duration {
        Duration::from_nanos(self.ewma_nanos.load(Ordering::Relaxed))
    }

    /// Should a just-arrived request be shed instead of served?
    /// `inflight_with_me` counts the request itself; `batch_age` is how
    /// long the worker has been draining the event batch the request
    /// arrived in. Returns the shed reason label, or `None` to admit.
    pub(crate) fn should_shed(
        &self,
        inflight_with_me: i64,
        batch_age: Duration,
    ) -> Option<&'static str> {
        if let Some(max) = self.max_inflight {
            if inflight_with_me > max as i64 {
                return Some("inflight");
            }
        }
        if let Some(limit) = self.shed_queue_delay {
            if batch_age + self.ewma_latency() > limit {
                return Some("queue_delay");
            }
        }
        None
    }

    /// Best-effort write of the rejection bytes at a just-accepted
    /// socket. Non-blocking with no retry loop: a fresh socket's send
    /// buffer is empty, so the canned few hundred bytes either go out in
    /// one call or the peer was never listening — either way the caller
    /// must not stall. Returns the stream when the rejection went out, so
    /// the caller can let it linger briefly instead of closing
    /// immediately (closing with the peer's request bytes unread turns
    /// into an RST that can destroy the rejection in flight).
    pub(crate) fn write_reject(&self, stream: TcpStream) -> Option<TcpStream> {
        let wire = self.reject_wire.as_ref()?;
        stream.set_nonblocking(true).ok()?;
        let mut stream = stream;
        let written = stream.write(wire).ok()?;
        if written < wire.len() {
            // A fresh socket's send buffer swallowed less than the canned
            // few hundred bytes: the peer is already gone. Close now.
            return None;
        }
        stream.shutdown(std::net::Shutdown::Write).ok()?;
        Some(stream)
    }
}

/// Context the worker hands a driver for one `drive` call.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DriveCtx {
    /// The server is shutting down: finish the in-flight message, then
    /// close instead of waiting for the next one.
    pub draining: bool,
    /// When the worker started draining the current event batch — the
    /// dispatch-queue-age half of the shed signal.
    pub batch_started: Instant,
}

impl DriveCtx {
    /// How long the current batch has been draining.
    pub(crate) fn batch_age(&self) -> Duration {
        self.batch_started.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn overload(config: &OverloadConfig) -> Overload {
        Overload::new(config, None, None)
    }

    #[test]
    fn default_config_never_sheds() {
        let o = overload(&OverloadConfig::default());
        assert_eq!(o.should_shed(1_000_000, Duration::from_secs(60)), None);
        assert_eq!(o.max_connections, None);
    }

    #[test]
    fn inflight_bound_sheds_past_the_cap() {
        let o = overload(&OverloadConfig {
            max_inflight: Some(2),
            ..OverloadConfig::default()
        });
        assert_eq!(o.should_shed(1, Duration::ZERO), None);
        assert_eq!(o.should_shed(2, Duration::ZERO), None);
        assert_eq!(o.should_shed(3, Duration::ZERO), Some("inflight"));
    }

    #[test]
    fn queue_delay_combines_batch_age_and_ewma() {
        let o = overload(&OverloadConfig {
            shed_queue_delay: Some(Duration::from_millis(10)),
            ..OverloadConfig::default()
        });
        // No latency history: only batch age counts.
        assert_eq!(o.should_shed(1, Duration::from_millis(5)), None);
        assert_eq!(
            o.should_shed(1, Duration::from_millis(11)),
            Some("queue_delay")
        );
        // With an 8 ms EWMA, a 5 ms-old batch entry is already over.
        for _ in 0..100 {
            o.observe_handler_latency(Duration::from_millis(8));
        }
        assert!(o.ewma_latency() >= Duration::from_millis(7));
        assert_eq!(
            o.should_shed(1, Duration::from_millis(5)),
            Some("queue_delay")
        );
    }

    #[test]
    fn ewma_tracks_samples() {
        let o = overload(&OverloadConfig::default());
        o.observe_handler_latency(Duration::from_millis(4));
        assert_eq!(o.ewma_latency(), Duration::from_millis(4));
        for _ in 0..64 {
            o.observe_handler_latency(Duration::from_millis(1));
        }
        let settled = o.ewma_latency();
        assert!(
            settled >= Duration::from_micros(900) && settled <= Duration::from_millis(2),
            "EWMA should settle near the steady sample, got {settled:?}"
        );
    }

    #[test]
    fn admission_counter_round_trips() {
        let o = overload(&OverloadConfig {
            max_connections: Some(10),
            ..OverloadConfig::default()
        });
        o.admit();
        o.admit();
        assert_eq!(o.active(), 2);
        o.release();
        assert_eq!(o.active(), 1);
        // ceil(10/4) * 2 = 6, floored to the minimum slab of 8.
        assert_eq!(o.per_worker_cap(4), Some(8));
    }
}
