//! A thin, safe wrapper over Linux `epoll`.
//!
//! The standard library deliberately exposes no readiness API, so the
//! reactor declares the four syscalls it needs directly: `std` already
//! links `libc`, which makes the `extern "C"` declarations below free.
//! Scope is exactly what the event loop uses — level-triggered
//! registration, interest updates, and a blocking wait with an optional
//! timeout — not a general-purpose polling abstraction.

use std::io;
use std::net::TcpListener;
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::time::Duration;

#[allow(non_camel_case_types)]
type c_int = i32;

// On x86-64 the kernel's `struct epoll_event` is packed (32-bit events
// word immediately followed by the 64-bit data word); everywhere else it
// has natural alignment. Getting this wrong corrupts every event.
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

const EPOLLIN: u32 = 0x1;
const EPOLLOUT: u32 = 0x4;
const EPOLLERR: u32 = 0x8;
const EPOLLHUP: u32 = 0x10;
const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0x80000;

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int)
        -> c_int;
    fn close(fd: c_int) -> c_int;
    fn listen(fd: c_int, backlog: c_int) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Which readiness classes a registration subscribes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interest {
    /// Readable (plus peer half-close).
    Readable,
    /// Writable.
    Writable,
    /// Both.
    Both,
}

impl Interest {
    fn bits(self) -> u32 {
        // RDHUP is always on: a peer that shuts down its write side
        // should wake the loop even when the connection is mid-write.
        match self {
            Interest::Readable => EPOLLIN | EPOLLRDHUP,
            Interest::Writable => EPOLLOUT | EPOLLRDHUP,
            Interest::Both => EPOLLIN | EPOLLOUT | EPOLLRDHUP,
        }
    }
}

/// One readiness notification, decoded from the raw event mask.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the file descriptor was registered with.
    pub token: u64,
    /// The socket is readable — or in an error/hang-up state, where a
    /// read is the way to surface the real error.
    pub readable: bool,
    /// The socket is writable (or errored; a write surfaces the error).
    pub writable: bool,
}

/// Reusable storage for one `epoll_wait` batch.
pub struct Events {
    raw: Vec<EpollEvent>,
    len: usize,
}

impl Events {
    /// Storage for up to `capacity` events per wait.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            raw: vec![EpollEvent { events: 0, data: 0 }; capacity.max(1)],
            len: 0,
        }
    }

    /// The events delivered by the last [`Poller::wait`].
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.raw[..self.len].iter().map(|e| {
            let bits = e.events;
            Event {
                token: e.data,
                readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                writable: bits & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
            }
        })
    }
}

/// A level-triggered epoll instance.
///
/// Level-triggered (the default) is deliberate: a state machine that
/// stops mid-burst (write backpressure, bounded batch) gets re-notified
/// on the next wait without edge re-arming bookkeeping.
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// A fresh epoll instance (close-on-exec).
    pub fn new() -> io::Result<Poller> {
        let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, interest: Option<(u64, Interest)>) -> io::Result<()> {
        let mut ev = interest.map(|(token, i)| EpollEvent {
            events: i.bits(),
            data: token,
        });
        cvt(unsafe {
            epoll_ctl(
                self.epfd,
                op,
                fd,
                ev.as_mut().map_or(std::ptr::null_mut(), |e| e as *mut _),
            )
        })?;
        Ok(())
    }

    /// Register `fd` under `token`.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, Some((token, interest)))
    }

    /// Change the interest set of a registered `fd`.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, Some((token, interest)))
    }

    /// Remove `fd` from the interest list.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, None)
    }

    /// Wait for readiness; `None` blocks indefinitely. Returns the number
    /// of events captured into `events`. `EINTR` retries internally.
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        let millis: c_int = match timeout {
            None => -1,
            // Round up so a 1 ns timeout doesn't busy-spin at 0 ms.
            Some(d) => d
                .as_millis()
                .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0))
                .min(c_int::MAX as u128) as c_int,
        };
        loop {
            match cvt(unsafe {
                epoll_wait(
                    self.epfd,
                    events.raw.as_mut_ptr(),
                    events.raw.len() as c_int,
                    millis,
                )
            }) {
                Ok(n) => {
                    events.len = n as usize;
                    return Ok(n as usize);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            close(self.epfd);
        }
    }
}

/// A cross-thread wake-up for a poller, built on a non-blocking
/// `UnixStream` pair: the read end is registered with the poller, any
/// thread may [`wake`](Waker::wake), and the loop [`drain`](Waker::drain)s
/// after waking. A full pipe means a wake is already pending, so
/// `WouldBlock` on the write side is success.
#[derive(Debug)]
pub struct Waker {
    tx: UnixStream,
    rx: UnixStream,
}

impl Waker {
    /// A fresh waker.
    pub fn new() -> io::Result<Waker> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok(Waker { tx, rx })
    }

    /// The descriptor to register (readable when woken).
    pub fn fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Wake the poller this waker is registered with.
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&self.tx).write(&[1]);
    }

    /// Consume pending wake-ups (call after the poller reports the waker
    /// readable, before processing whatever the wake signalled).
    pub fn drain(&self) {
        use std::io::Read;
        let mut sink = [0u8; 64];
        while matches!((&self.rx).read(&mut sink), Ok(n) if n > 0) {}
    }
}

/// Re-issue `listen()` on an already-listening socket to raise its accept
/// backlog — `TcpListener::bind` hard-codes 128, which a 10k-connection
/// ramp overflows (refused connects) long before the loop is saturated.
/// A kernel that refuses keeps the default backlog; the caller surfaces
/// the failure once (`bx_server_backlog_raise_failed`) instead of letting
/// it masquerade as connect failures under flood.
pub(crate) fn raise_backlog(listener: &TcpListener, backlog: i32) -> std::io::Result<()> {
    let rc = unsafe { listen(listener.as_raw_fd(), backlog) };
    if rc == 0 {
        Ok(())
    } else {
        Err(std::io::Error::last_os_error())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn readiness_roundtrip_on_a_socket_pair() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller
            .add(server.as_raw_fd(), 7, Interest::Readable)
            .unwrap();
        let mut events = Events::with_capacity(8);

        // Nothing pending: a short wait returns empty.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);

        // Bytes in flight: the registration reports readable under its
        // token.
        (&client).write_all(b"ping").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.token, 7);
        assert!(ev.readable);

        // Level-triggered: unread data keeps reporting.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert_eq!(n, 1);
        let mut sink = [0u8; 16];
        assert_eq!((&server).read(&mut sink).unwrap(), 4);

        // Interest change to writable (an idle socket is writable).
        poller
            .modify(server.as_raw_fd(), 7, Interest::Writable)
            .unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events.iter().next().unwrap().writable);

        poller.delete(server.as_raw_fd()).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn waker_wakes_and_drains() {
        let waker = Waker::new().unwrap();
        let poller = Poller::new().unwrap();
        poller.add(waker.fd(), u64::MAX, Interest::Readable).unwrap();
        let mut events = Events::with_capacity(4);

        waker.wake();
        waker.wake(); // coalesces; never blocks
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events.iter().next().unwrap().token, u64::MAX);
        waker.drain();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "drained waker must go quiet");
    }

    #[test]
    fn peer_hangup_reports_readable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        let poller = Poller::new().unwrap();
        poller
            .add(server.as_raw_fd(), 1, Interest::Readable)
            .unwrap();
        drop(client);
        let mut events = Events::with_capacity(4);
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events.iter().next().unwrap().readable, "EOF must read as readable");
    }
}
