//! The readiness-loop runtime: one blocking acceptor shard feeding N
//! epoll workers.
//!
//! Thread count is fixed at bind time — the acceptor plus
//! `BX_SERVER_WORKERS` event loops — regardless of how many connections
//! arrive. Each worker owns a [`Poller`], a slab of connections, and the
//! drivers' non-`Send` handler state; the acceptor hands accepted sockets
//! over through a per-worker inbox (round-robin) and a [`Waker`].
//!
//! Timeouts are loop-maintained deadlines, not socket options: a
//! non-blocking socket never parks a thread, so the worker re-arms a
//! deadline after every driver step and scans for expiries on each loop
//! iteration (bounded by the ~100 ms poll tick). An expired connection
//! that is mid-message is a counted `timed_out` error, exactly like the
//! blocking servers' socket-timeout path; an expired *idle* connection
//! (a keep-alive peer gone quiet between requests) closes silently.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use super::conn::{ConnDriver, ConnIo, Wants};
use super::overload::{DriveCtx, Overload};
use super::poll::{raise_backlog, Events, Interest, Poller, Waker};
use crate::error::{TransportError, TransportResult};
use crate::faulty::{FaultingTransport, SharedInjector};
use crate::metrics::{self, ServerMetrics};

/// Poller token reserved for the worker's waker.
const WAKER_TOKEN: u64 = u64::MAX;

/// Deadline-scan granularity: the poll tick whenever connections exist.
const POLL_TICK: Duration = Duration::from_millis(100);

/// How often a paused acceptor re-checks for a free connection slot (and
/// the stop flag). Arrivals meanwhile wait in the kernel backlog.
const PAUSE_ACCEPT_TICK: Duration = Duration::from_millis(2);

/// How long a rejected socket lingers after its 503/fault went out, so
/// the close's FIN (not an RST racing unread request bytes) follows the
/// rejection to the peer.
const REJECT_LINGER: Duration = Duration::from_millis(250);

/// Bound on lingering rejected sockets — past it the oldest close early,
/// trading their rejection bytes for a bounded fd count under flood.
const REJECT_LINGER_SLOTS: usize = 512;

/// Listen backlog during connection ramps (the std default of 128 refuses
/// connects long before an event loop is saturated).
const ACCEPT_BACKLOG: i32 = 4096;

/// How long `shutdown()` lets in-flight connections finish before they
/// are dropped (and counted as `shutdown_drop`).
pub(crate) const DEFAULT_DRAIN: Duration = Duration::from_secs(1);

/// How the reactor serves one listener.
pub(crate) struct ReactorConfig {
    /// Budget for making read progress on an in-flight message (and the
    /// idle allowance for a connection between messages).
    pub read_timeout: Option<Duration>,
    /// Budget for draining a response to the peer.
    pub write_timeout: Option<Duration>,
    /// Metrics label (`"tcp"` / `"http"`) for error counters.
    pub transport: &'static str,
    /// The per-transport static metrics the drivers also update.
    pub metrics: &'static ServerMetrics,
    /// Wrap accepted sockets in a [`FaultingTransport`].
    pub injector: Option<SharedInjector>,
    /// Shared overload state: admission cap, shed signal, canned
    /// rejection payloads.
    pub overload: Arc<Overload>,
}

/// The factory workers use to build one driver per accepted connection.
/// Only the factory crosses threads; the driver (and any handler state
/// inside it) is created on its worker and never leaves.
pub(crate) type DriverFactory = Arc<dyn Fn() -> Box<dyn ConnDriver> + Send + Sync>;

/// A running evented server: acceptor + workers, shared stop/drain state.
pub(crate) struct EventServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    errors: Arc<AtomicU64>,
    drain_until: Arc<Mutex<Option<Instant>>>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<WorkerHandle>,
}

/// A worker's handoff queue: accepted sockets with their accept stamp.
type Inbox = Arc<Mutex<VecDeque<(TcpStream, Instant)>>>;

struct WorkerHandle {
    join: JoinHandle<()>,
    inbox: Inbox,
    waker: Arc<Waker>,
}

/// Worker count: `BX_SERVER_WORKERS`, defaulting to the machine's
/// parallelism clamped to [1, 4] — event loops saturate cores, they don't
/// need one per thousand connections.
fn worker_count() -> usize {
    if let Ok(v) = std::env::var("BX_SERVER_WORKERS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.clamp(1, 64);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 4)
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl EventServer {
    /// Bind `addr` and start the acceptor and workers. `factory` builds
    /// one [`ConnDriver`] per accepted connection, on the owning worker.
    pub(crate) fn bind(
        addr: &str,
        config: ReactorConfig,
        factory: DriverFactory,
    ) -> TransportResult<EventServer> {
        let listener = TcpListener::bind(addr)?;
        if raise_backlog(&listener, ACCEPT_BACKLOG).is_err() {
            // Surfaced once: a refused backlog otherwise masquerades as
            // mysterious connect failures under flood.
            metrics::backlog_raise_failed(config.transport);
        }
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let errors = Arc::new(AtomicU64::new(0));
        let drain_until = Arc::new(Mutex::new(None));
        let overload = Arc::clone(&config.overload);
        let workers_n = worker_count();
        let worker_cap = overload.per_worker_cap(workers_n);

        let mut workers = Vec::new();
        for idx in 0..workers_n {
            // Poller and waker are created here, not on the worker, so a
            // resource failure surfaces as a bind error.
            let poller = Poller::new()?;
            let waker = Arc::new(Waker::new()?);
            poller.add(waker.fd(), WAKER_TOKEN, Interest::Readable)?;
            let inbox: Inbox = Arc::new(Mutex::new(VecDeque::new()));
            let ctx = WorkerCtx {
                poller,
                waker: Arc::clone(&waker),
                inbox: Arc::clone(&inbox),
                factory: Arc::clone(&factory),
                read_timeout: config.read_timeout,
                write_timeout: config.write_timeout,
                transport: config.transport,
                metrics: config.metrics,
                injector: config.injector.clone(),
                overload: Arc::clone(&overload),
                worker_cap,
                stop: Arc::clone(&stop),
                drain_until: Arc::clone(&drain_until),
                errors: Arc::clone(&errors),
            };
            let join = std::thread::Builder::new()
                .name(format!("evt-{}-{idx}", config.transport))
                .spawn(move || ctx.run(idx))
                .expect("spawn reactor worker");
            workers.push(WorkerHandle { join, inbox, waker });
        }

        let stop_accept = Arc::clone(&stop);
        let accept_metrics = config.metrics;
        let accept_overload = Arc::clone(&overload);
        let transport = config.transport;
        let shards: Vec<(Inbox, Arc<Waker>)> = workers
            .iter()
            .map(|w| (Arc::clone(&w.inbox), Arc::clone(&w.waker)))
            .collect();
        let accept_thread = std::thread::Builder::new()
            .name(format!("evt-{}-accept", config.transport))
            .spawn(move || {
                let at_cap = |o: &Overload| {
                    o.max_connections
                        .is_some_and(|cap| o.active() >= cap as i64)
                };
                let mut next = 0usize;
                // Rejected sockets linger briefly after the 503/fault is
                // written: closing with the peer's request bytes still
                // unread makes the kernel send RST, which can destroy the
                // rejection in flight before the peer reads it. Bounded in
                // both time and count, reaped on each accept.
                let mut parting: VecDeque<(Instant, TcpStream)> = VecDeque::new();
                'accept: loop {
                    while parting.len() >= REJECT_LINGER_SLOTS
                        || parting
                            .front()
                            .is_some_and(|(at, _)| at.elapsed() >= REJECT_LINGER)
                    {
                        parting.pop_front();
                    }
                    // Pause-accept admission: at the cap (and not in
                    // reject mode), leave arrivals in the kernel backlog
                    // until a slot frees. Only this thread admits, so
                    // once the gate opens it stays open through the
                    // accept below.
                    while !accept_overload.reject_when_full && at_cap(&accept_overload) {
                        if stop_accept.load(Ordering::Acquire) {
                            break 'accept;
                        }
                        std::thread::sleep(PAUSE_ACCEPT_TICK);
                    }
                    let Ok((stream, _)) = listener.accept() else {
                        if stop_accept.load(Ordering::Acquire) {
                            break;
                        }
                        continue;
                    };
                    if stop_accept.load(Ordering::Acquire) {
                        break;
                    }
                    accept_metrics.connections.inc();
                    if at_cap(&accept_overload) {
                        // Accept-then-reject: a canned, hint-carrying
                        // response goes out best-effort and the socket
                        // closes — the peer learns to back off instead of
                        // seeing a silent queue.
                        metrics::count_rejected(transport, "conn_cap");
                        if let Some(stream) = accept_overload.write_reject(stream) {
                            parting.push_back((Instant::now(), stream));
                        }
                        continue;
                    }
                    accept_overload.admit();
                    let (inbox, waker) = &shards[next % shards.len()];
                    next = next.wrapping_add(1);
                    lock(inbox).push_back((stream, Instant::now()));
                    waker.wake();
                }
            })
            .expect("spawn reactor accept thread");

        Ok(EventServer {
            addr: local,
            stop,
            errors,
            drain_until,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    pub(crate) fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    pub(crate) fn error_count(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    pub(crate) fn shutdown_within(&mut self, drain: Duration) {
        // Publish the drain deadline before the stop flag: a worker that
        // observes `stop` always finds the deadline already set.
        {
            let mut until = lock(&self.drain_until);
            if until.is_none() {
                *until = Some(Instant::now() + drain);
            }
        }
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Kick the blocking accept with a throwaway connection, then wake
        // every worker so the drain begins immediately.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in &self.workers {
            w.waker.wake();
        }
        for w in self.workers.drain(..) {
            let _ = w.join.join();
        }
    }
}

impl Drop for EventServer {
    fn drop(&mut self) {
        self.shutdown_within(DEFAULT_DRAIN);
    }
}

/// One registered connection in a worker's slab.
struct Conn {
    io: ConnIo,
    driver: Box<dyn ConnDriver>,
    interest: Interest,
    /// When the current phase times out (`None` = no budget configured).
    deadline: Option<Instant>,
    /// When the current deadline was armed (for `TimedOut::elapsed`).
    armed_at: Instant,
    /// The budget behind `deadline` (for `TimedOut::budget`).
    budget: Duration,
    /// Whole-message deadline (the slow-loris defense): armed when a
    /// message goes in flight and *not* re-armed on progress, unlike
    /// `deadline`, so trickling a byte per read budget doesn't extend it.
    msg_deadline: Option<Instant>,
}

/// Everything a worker thread owns.
struct WorkerCtx {
    poller: Poller,
    waker: Arc<Waker>,
    inbox: Inbox,
    factory: DriverFactory,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
    transport: &'static str,
    metrics: &'static ServerMetrics,
    injector: Option<SharedInjector>,
    overload: Arc<Overload>,
    /// Slab bound backstopping the global cap against worker imbalance.
    worker_cap: Option<usize>,
    stop: Arc<AtomicBool>,
    drain_until: Arc<Mutex<Option<Instant>>>,
    errors: Arc<AtomicU64>,
}

impl WorkerCtx {
    fn run(self, idx: usize) {
        let iterations = metrics::worker_loop_iterations(self.transport, idx);
        let mut events = Events::with_capacity(1024);
        let mut conns: Vec<Option<Conn>> = Vec::new();
        let mut free: Vec<usize> = Vec::new();
        let mut live = 0usize;
        // Tokens whose drivers asked to be re-driven without socket
        // readiness (pipelined requests buffered in user space).
        let mut again: Vec<usize> = Vec::new();

        loop {
            iterations.inc();
            let draining = self.stop.load(Ordering::Acquire);
            if draining && live == 0 && lock(&self.inbox).is_empty() {
                break;
            }

            // Sleep policy: re-drives pending means don't sleep at all;
            // with connections (or a drain pending) wake at the poll tick
            // to scan deadlines; empty and serving, park until the
            // acceptor's waker fires.
            let timeout = if !again.is_empty() {
                Some(Duration::ZERO)
            } else if live > 0 || draining {
                Some(POLL_TICK)
            } else {
                None
            };
            if self.poller.wait(&mut events, timeout).is_err() {
                break; // a broken epoll fd cannot be served around
            }
            // The event batch starts draining now; its age feeds the
            // queue-delay shed signal for every request in it.
            let ctx = DriveCtx {
                draining,
                batch_started: Instant::now(),
            };

            let pending = std::mem::take(&mut again);
            let mut woken = false;
            for ev in events.iter() {
                if ev.token == WAKER_TOKEN {
                    woken = true;
                    continue;
                }
                self.drive(
                    &mut conns,
                    &mut free,
                    &mut live,
                    &mut again,
                    ev.token as usize,
                    ctx,
                );
            }
            if woken {
                self.waker.drain();
            }
            // Quota-yielded connections continue after every ready one
            // got its turn. Stale tokens (closed meanwhile) are skipped
            // by `drive`; slots aren't reused until registration below.
            for token in pending {
                self.drive(&mut conns, &mut free, &mut live, &mut again, token, ctx);
            }

            // Registrations last: a slot freed earlier in this batch can
            // be reused only after its stale events were consumed.
            while let Some(arrival) = lock(&self.inbox).pop_front() {
                self.register(&mut conns, &mut free, &mut live, &mut again, arrival, ctx);
            }

            // Deadline scan; during a drain also close idle connections
            // and enforce the drain deadline.
            let now = Instant::now();
            let drain_expired = draining
                && lock(&self.drain_until)
                    .map(|until| now >= until)
                    .unwrap_or(true);
            for token in 0..conns.len() {
                let Some(conn) = conns[token].as_ref() else {
                    continue;
                };
                let in_flight = conn.driver.in_flight();
                if draining && (!in_flight || drain_expired) {
                    if in_flight {
                        // Dropped mid-message at the drain deadline.
                        metrics::count_server_error(self.transport, "shutdown_drop");
                    }
                    self.close(&mut conns, &mut free, &mut live, token);
                    continue;
                }
                if let Some(msg_deadline) = conn.msg_deadline {
                    if now >= msg_deadline && in_flight {
                        // The whole-message budget expired without the
                        // exchange completing: a slow-loris peer trickling
                        // just enough to re-arm the phase deadline.
                        self.errors.fetch_add(1, Ordering::Relaxed);
                        metrics::count_server_error(self.transport, "slow_peer");
                        self.close(&mut conns, &mut free, &mut live, token);
                        continue;
                    }
                }
                if let Some(deadline) = conn.deadline {
                    if now >= deadline {
                        if in_flight {
                            let e = TransportError::TimedOut {
                                elapsed: now - conn.armed_at,
                                budget: conn.budget,
                            };
                            self.errors.fetch_add(1, Ordering::Relaxed);
                            metrics::count_server_error(
                                self.transport,
                                metrics::error_kind(&e),
                            );
                        }
                        self.close(&mut conns, &mut free, &mut live, token);
                    }
                }
            }
        }

        // Final sweep (the loop exits with live == 0 unless epoll broke).
        for token in 0..conns.len() {
            if conns[token].is_some() {
                self.close(&mut conns, &mut free, &mut live, token);
            }
        }
    }

    fn register(
        &self,
        conns: &mut Vec<Option<Conn>>,
        free: &mut Vec<usize>,
        live: &mut usize,
        again: &mut Vec<usize>,
        arrival: (TcpStream, Instant),
        ctx: DriveCtx,
    ) {
        let (stream, accepted_at) = arrival;
        if let Some(cap) = self.worker_cap {
            if *live >= cap {
                // The slab bound backstops the global cap when connection
                // lifetimes skew the round-robin balance: this worker is
                // already carrying twice its fair share.
                metrics::count_rejected(self.transport, "worker_slab");
                self.overload.release();
                // Dropped immediately (no linger list on workers): the
                // slab bound only trips under extreme imbalance, where a
                // lost rejection is acceptable.
                drop(self.overload.write_reject(stream));
                return;
            }
        }
        if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
            self.overload.release();
            return;
        }
        let io = match &self.injector {
            Some(inj) => ConnIo::Faulty(FaultingTransport::new(stream, Arc::clone(inj))),
            None => ConnIo::Plain(stream),
        };
        let token = free.pop().unwrap_or_else(|| {
            conns.push(None);
            conns.len() - 1
        });
        if self.poller.add(io.raw_fd(), token as u64, Interest::Readable).is_err() {
            free.push(token);
            self.overload.release();
            return;
        }
        self.metrics.connections_active.add(1.0);
        self.metrics
            .accept_to_dispatch
            .observe_duration(accepted_at.elapsed());
        conns[token] = Some(Conn {
            io,
            driver: (self.factory)(),
            interest: Interest::Readable,
            deadline: self.read_timeout.map(|t| Instant::now() + t),
            armed_at: Instant::now(),
            budget: self.read_timeout.unwrap_or_default(),
            msg_deadline: None,
        });
        *live += 1;
        // A peer may have sent bytes before registration; level-triggered
        // epoll would report them, but driving once now saves a tick.
        self.drive(conns, free, live, again, token, ctx);
    }

    fn drive(
        &self,
        conns: &mut [Option<Conn>],
        free: &mut Vec<usize>,
        live: &mut usize,
        again: &mut Vec<usize>,
        token: usize,
        ctx: DriveCtx,
    ) {
        let Some(conn) = conns.get_mut(token).and_then(Option::as_mut) else {
            return; // stale event for an already-closed slot
        };
        match conn.driver.drive(&mut conn.io, &ctx) {
            Ok(step) => {
                let (interest, budget) = match step.wants {
                    Wants::Close => {
                        self.close_slice(conns, free, live, token);
                        return;
                    }
                    Wants::Read => (Interest::Readable, self.read_timeout),
                    Wants::Again => {
                        // Quota yield with buffered input: schedule a
                        // re-drive this loop, keep watching for bytes.
                        again.push(token);
                        (Interest::Readable, self.read_timeout)
                    }
                    Wants::Write => {
                        // The handler's ReplyControl cap becomes a write
                        // *deadline* here: tighten-only against the static
                        // budget, floored so an already-expired caller
                        // still gets the fault bytes pushed at it.
                        let budget = match (self.write_timeout, step.write_cap) {
                            (Some(w), Some(c)) => Some(w.min(c)),
                            (w, c) => w.or(c),
                        }
                        .map(|b| b.max(Duration::from_millis(1)));
                        (Interest::Writable, budget)
                    }
                };
                if interest != conn.interest
                    && self
                        .poller
                        .modify(conn.io.raw_fd(), token as u64, interest)
                        .is_ok()
                {
                    conn.interest = interest;
                }
                let now = Instant::now();
                conn.deadline = budget.map(|b| now + b);
                conn.armed_at = now;
                conn.budget = budget.unwrap_or_default();
                // The whole-message deadline arms when a message goes in
                // flight and only clears when it completes — progress
                // does not extend it (the slow-loris defense).
                match (self.overload.message_deadline, conn.driver.in_flight()) {
                    (Some(budget), true) => {
                        conn.msg_deadline.get_or_insert(now + budget);
                    }
                    (_, false) => conn.msg_deadline = None,
                    _ => {}
                }
            }
            Err(e) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                metrics::count_server_error(self.transport, metrics::error_kind(&e));
                self.close_slice(conns, free, live, token);
            }
        }
    }

    fn close(
        &self,
        conns: &mut Vec<Option<Conn>>,
        free: &mut Vec<usize>,
        live: &mut usize,
        token: usize,
    ) {
        self.close_slice(conns.as_mut_slice(), free, live, token);
    }

    fn close_slice(
        &self,
        conns: &mut [Option<Conn>],
        free: &mut Vec<usize>,
        live: &mut usize,
        token: usize,
    ) {
        if let Some(conn) = conns[token].take() {
            let _ = self.poller.delete(conn.io.raw_fd());
            self.metrics.connections_active.add(-1.0);
            self.overload.release();
            free.push(token);
            *live -= 1;
        }
    }
}
