//! An epoll-based readiness-loop runtime for the transport servers.
//!
//! Three layers, bottom-up:
//!
//! * [`poll`] — a thin safe wrapper over level-triggered `epoll`
//!   (declared directly against the syscalls; no new dependencies).
//! * `conn` (crate-private) — resumable per-connection state machines
//!   for framed-TCP and HTTP/1.1 (with keep-alive and pipelining),
//!   owning all parse state and the pooled-buffer discipline.
//! * `server` (crate-private) — the runtime: a blocking acceptor shard feeding N
//!   event-loop workers over wakered inboxes, loop-maintained deadlines,
//!   and bounded-drain shutdown.
//! * `overload` (crate-private) — admission control and load shedding: the
//!   connection cap the acceptor enforces (pause-accept or
//!   accept-then-reject), the inflight/queue-delay signal drivers consult
//!   before dispatching a request, and the whole-message deadline that
//!   kills slow-loris peers. Configured per server via
//!   [`crate::OverloadConfig`].
//!
//! `TcpServer` and `HttpServer` are thin facades over this module; their
//! `bind_*` APIs are unchanged from the thread-per-connection era.

pub mod poll;

pub(crate) mod conn;
pub(crate) mod overload;
pub(crate) mod server;

pub use overload::OverloadConfig;
pub use poll::{Event, Events, Interest, Poller, Waker};
