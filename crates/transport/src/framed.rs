//! Length-prefixed message framing over a byte stream.
//!
//! The raw-TCP SOAP binding needs message boundaries; a 4-byte big-endian
//! length prefix is the entire protocol — "the TCP binding will just dump
//! the serialization directly to a TCP connection" (paper §5.3).

use std::io::{IoSlice, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::deadline::Timeouts;
use crate::error::{TransportError, TransportResult};
use crate::iovec::write_all_vectored;

/// Upper bound on a single frame (256 MiB) — large enough for the paper's
/// 64 MB experiments with headroom, small enough to stop a hostile length
/// prefix from driving allocation.
pub const MAX_FRAME_LEN: usize = 256 << 20;

/// Receive-side allocation step: the payload buffer grows by at most this
/// much per read, so a hostile length prefix claiming gigabytes costs at
/// most one chunk of memory before the truncated stream is detected.
pub(crate) const RECV_CHUNK: usize = 1 << 20;

/// A framed message stream over any `Read + Write` (usually a
/// [`TcpStream`]).
#[derive(Debug)]
pub struct FramedStream<S = TcpStream> {
    inner: S,
    /// Configured read budget, reported in [`TransportError::TimedOut`]
    /// when the underlying stream signals a timeout.
    read_budget: Option<Duration>,
    /// Configured write budget, likewise.
    write_budget: Option<Duration>,
}

impl FramedStream<TcpStream> {
    /// Connect to a framed-TCP peer (no timeouts: block indefinitely).
    pub fn connect(addr: &str) -> TransportResult<FramedStream<TcpStream>> {
        FramedStream::connect_with(addr, &Timeouts::none())
    }

    /// Connect with per-phase time budgets. Connection-establishment
    /// failures (refused, unreachable, handshake timeout) surface as
    /// [`TransportError::ConnectFailed`] — the retry-safe class, since no
    /// request bytes can have been written yet.
    pub fn connect_with(addr: &str, timeouts: &Timeouts) -> TransportResult<FramedStream<TcpStream>> {
        let stream = connect_stream(addr, timeouts.connect)?;
        stream.set_nodelay(true)?;
        let mut fs = FramedStream::new(stream);
        fs.set_read_timeout(timeouts.read)?;
        fs.set_write_timeout(timeouts.write)?;
        Ok(fs)
    }

    /// Set (or clear) the per-read time budget on the underlying socket.
    pub fn set_read_timeout(&mut self, budget: Option<Duration>) -> TransportResult<()> {
        self.inner.set_read_timeout(budget)?;
        self.read_budget = budget;
        Ok(())
    }

    /// Set (or clear) the per-write time budget on the underlying socket.
    pub fn set_write_timeout(&mut self, budget: Option<Duration>) -> TransportResult<()> {
        self.inner.set_write_timeout(budget)?;
        self.write_budget = budget;
        Ok(())
    }
}

/// `TcpStream::connect` with an optional budget, resolving `addr` and
/// classifying every failure as [`TransportError::ConnectFailed`].
pub(crate) fn connect_stream(addr: &str, budget: Option<Duration>) -> TransportResult<TcpStream> {
    let fail = |source: std::io::Error| TransportError::ConnectFailed {
        addr: addr.to_owned(),
        source,
    };
    match budget {
        None => TcpStream::connect(addr).map_err(fail),
        Some(budget) => {
            let mut last = None;
            for sock_addr in addr.to_socket_addrs().map_err(fail)? {
                match TcpStream::connect_timeout(&sock_addr, budget) {
                    Ok(s) => return Ok(s),
                    Err(e) => last = Some(e),
                }
            }
            Err(fail(last.unwrap_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidInput, "address resolved to nothing")
            })))
        }
    }
}

impl<S: Read + Write> FramedStream<S> {
    /// Wrap an existing stream.
    pub fn new(inner: S) -> FramedStream<S> {
        FramedStream {
            inner,
            read_budget: None,
            write_budget: None,
        }
    }

    /// Consume the wrapper, returning the underlying stream.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Note the budgets a caller configured on the stream itself (for
    /// non-`TcpStream` transports whose timeouts are set out of band), so
    /// timeout errors report them.
    pub fn assume_budgets(&mut self, read: Option<Duration>, write: Option<Duration>) {
        self.read_budget = read;
        self.write_budget = write;
    }

    /// Translate a raw I/O error: socket-timeout kinds become the typed
    /// [`TransportError::TimedOut`] with the elapsed/budget pair.
    fn io_err(e: std::io::Error, started: Instant, budget: Option<Duration>) -> TransportError {
        if TransportError::io_is_timeout(&e) {
            TransportError::TimedOut {
                elapsed: started.elapsed(),
                budget: budget.unwrap_or_default(),
            }
        } else {
            TransportError::Io(e)
        }
    }

    /// Send one message.
    ///
    /// Length prefix and payload go out in a single vectored write, so a
    /// message costs one syscall and the payload buffer is never copied
    /// into a frame-assembly buffer.
    pub fn send(&mut self, payload: &[u8]) -> TransportResult<()> {
        if payload.len() > MAX_FRAME_LEN {
            return Err(TransportError::FrameTooLarge {
                declared: payload.len() as u64,
            });
        }
        let started = Instant::now();
        let prefix = (payload.len() as u32).to_be_bytes();
        let mut bufs = [IoSlice::new(&prefix), IoSlice::new(payload)];
        write_all_vectored(&mut self.inner, &mut bufs)
            .and_then(|()| self.inner.flush())
            .map_err(|e| Self::io_err(e, started, self.write_budget))
    }

    /// Receive one message.
    pub fn recv(&mut self) -> TransportResult<Vec<u8>> {
        let mut payload = Vec::new();
        self.recv_into(&mut payload)?;
        Ok(payload)
    }

    /// Receive one message into a caller-provided buffer (cleared first,
    /// capacity kept) — the allocation-free path for servers cycling one
    /// buffer per connection.
    pub fn recv_into(&mut self, payload: &mut Vec<u8>) -> TransportResult<()> {
        let started = Instant::now();
        let mut len_bytes = [0u8; 4];
        self.read_exact_or_closed(started, &mut len_bytes)?;
        self.recv_payload(started, u32::from_be_bytes(len_bytes), payload)
    }

    /// Try to receive; returns `None` on a clean EOF at a message
    /// boundary (peer hung up between messages).
    pub fn recv_optional(&mut self) -> TransportResult<Option<Vec<u8>>> {
        let mut payload = Vec::new();
        Ok(self.recv_optional_into(&mut payload)?.then_some(payload))
    }

    /// [`recv_into`](FramedStream::recv_into) with clean-EOF detection:
    /// `Ok(false)` (buffer cleared) when the peer hung up between
    /// messages, `Ok(true)` when a message was read into `payload`.
    pub fn recv_optional_into(&mut self, payload: &mut Vec<u8>) -> TransportResult<bool> {
        let started = Instant::now();
        let mut len_bytes = [0u8; 4];
        let mut filled = 0;
        while filled < 4 {
            match self.inner.read(&mut len_bytes[filled..]) {
                Ok(0) if filled == 0 => {
                    payload.clear();
                    return Ok(false);
                }
                Ok(0) => return Err(TransportError::ConnectionClosed),
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(Self::io_err(e, started, self.read_budget)),
            }
        }
        self.recv_payload(started, u32::from_be_bytes(len_bytes), payload)?;
        Ok(true)
    }

    /// Read a declared-length payload in bounded chunks: the buffer never
    /// grows more than [`RECV_CHUNK`] past the bytes actually received, so
    /// a declared length far larger than the stream costs one chunk of
    /// allocation before the truncation error, not the declared amount.
    fn recv_payload(
        &mut self,
        started: Instant,
        len: u32,
        payload: &mut Vec<u8>,
    ) -> TransportResult<()> {
        let len = len as usize;
        if len > MAX_FRAME_LEN {
            return Err(TransportError::FrameTooLarge {
                declared: len as u64,
            });
        }
        payload.clear();
        while payload.len() < len {
            let chunk = (len - payload.len()).min(RECV_CHUNK);
            let filled = payload.len();
            payload.resize(filled + chunk, 0);
            if let Err(e) = self.read_exact_or_closed(started, &mut payload[filled..]) {
                payload.truncate(filled);
                return Err(e);
            }
        }
        Ok(())
    }

    fn read_exact_or_closed(&mut self, started: Instant, buf: &mut [u8]) -> TransportResult<()> {
        match self.inner.read_exact(buf) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                Err(TransportError::ConnectionClosed)
            }
            Err(e) => Err(Self::io_err(e, started, self.read_budget)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// An in-memory duplex pipe for exercising framing without sockets.
    struct Pipe {
        buf: Cursor<Vec<u8>>,
    }

    impl Pipe {
        fn new() -> Pipe {
            Pipe {
                buf: Cursor::new(Vec::new()),
            }
        }
        fn rewind(&mut self) {
            self.buf.set_position(0);
        }
    }

    impl Read for Pipe {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            self.buf.read(out)
        }
    }

    impl Write for Pipe {
        fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
            self.buf.write(data)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn frame_roundtrip() {
        let mut fs = FramedStream::new(Pipe::new());
        fs.send(b"hello").unwrap();
        fs.send(b"").unwrap();
        fs.send(&[7u8; 1000]).unwrap();
        fs.inner.rewind();
        assert_eq!(fs.recv().unwrap(), b"hello");
        assert_eq!(fs.recv().unwrap(), b"");
        assert_eq!(fs.recv().unwrap(), vec![7u8; 1000]);
    }

    #[test]
    fn oversize_recv_rejected_without_io() {
        // A declared length beyond MAX_FRAME_LEN fails before any payload
        // byte is read or allocated.
        let mut fs = FramedStream::new(Pipe::new());
        fs.inner.write_all(&u32::MAX.to_be_bytes()).unwrap();
        fs.inner.rewind();
        assert!(matches!(
            fs.recv(),
            Err(TransportError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn oversize_send_rejected_without_io() {
        // The send side enforces the same cap before writing anything.
        // (A zeroed Vec this size is cheap: pages are committed lazily.)
        let mut fs = FramedStream::new(Pipe::new());
        let huge = vec![0u8; MAX_FRAME_LEN + 1];
        assert!(matches!(
            fs.send(&huge),
            Err(TransportError::FrameTooLarge { declared }) if declared == (MAX_FRAME_LEN + 1) as u64
        ));
        assert!(
            fs.inner.buf.get_ref().is_empty(),
            "nothing may reach the stream"
        );
    }

    #[test]
    fn max_len_boundary_is_accepted_not_rejected() {
        // Boundary: a declared length of exactly MAX_FRAME_LEN passes the
        // size check (the truncated stream then reads as a clean
        // ConnectionClosed, NOT FrameTooLarge) — and thanks to chunked
        // reads this doesn't commit 256 MiB to find out.
        let mut fs = FramedStream::new(Pipe::new());
        fs.inner
            .write_all(&(MAX_FRAME_LEN as u32).to_be_bytes())
            .unwrap();
        fs.inner.rewind();
        assert!(matches!(fs.recv(), Err(TransportError::ConnectionClosed)));
    }

    #[test]
    fn truncated_payload_is_connection_closed() {
        let mut fs = FramedStream::new(Pipe::new());
        fs.inner.write_all(&10u32.to_be_bytes()).unwrap();
        fs.inner.write_all(b"abc").unwrap(); // only 3 of 10 bytes
        fs.inner.rewind();
        assert!(matches!(fs.recv(), Err(TransportError::ConnectionClosed)));
    }

    #[test]
    fn huge_declared_length_with_tiny_stream_stays_cheap() {
        // Declared 64 MiB, 3 bytes present: must fail as a truncation
        // without allocating anywhere near the declared length.
        let mut fs = FramedStream::new(Pipe::new());
        fs.inner.write_all(&(64u32 << 20).to_be_bytes()).unwrap();
        fs.inner.write_all(b"abc").unwrap();
        fs.inner.rewind();
        let mut payload = Vec::new();
        assert!(matches!(
            fs.recv_into(&mut payload),
            Err(TransportError::ConnectionClosed)
        ));
        assert!(
            payload.capacity() <= 2 * RECV_CHUNK,
            "allocation {} must stay chunk-bounded, not follow the declared 64 MiB",
            payload.capacity()
        );
    }

    #[test]
    fn recv_optional_clean_eof() {
        let mut fs = FramedStream::new(Pipe::new());
        fs.send(b"x").unwrap();
        fs.inner.rewind();
        assert_eq!(fs.recv_optional().unwrap(), Some(b"x".to_vec()));
        assert_eq!(fs.recv_optional().unwrap(), None);
    }

    #[test]
    fn recv_optional_partial_prefix_is_error() {
        let mut fs = FramedStream::new(Pipe::new());
        fs.inner.write_all(&[0u8, 0]).unwrap(); // half a length prefix
        fs.inner.rewind();
        assert!(matches!(
            fs.recv_optional(),
            Err(TransportError::ConnectionClosed)
        ));
    }

    #[test]
    fn real_socket_roundtrip() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut fs = FramedStream::new(stream);
            let msg = fs.recv().unwrap();
            fs.send(&msg).unwrap(); // echo
        });
        let mut client = FramedStream::connect(&addr.to_string()).unwrap();
        client.send(b"ping around the loopback").unwrap();
        assert_eq!(client.recv().unwrap(), b"ping around the loopback");
        server.join().unwrap();
    }

    #[test]
    fn connect_refused_is_typed() {
        // Port 1 is essentially never listening.
        match FramedStream::connect_with("127.0.0.1:1", &Timeouts::none()) {
            Err(TransportError::ConnectFailed { addr, .. }) => {
                assert_eq!(addr, "127.0.0.1:1");
            }
            other => panic!("expected ConnectFailed, got {other:?}"),
        }
    }

    #[test]
    fn read_timeout_surfaces_as_timed_out() {
        // A server that accepts and then goes silent.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = std::thread::spawn(move || listener.accept().map(|(s, _)| s));
        let budget = Duration::from_millis(40);
        let mut client = FramedStream::connect_with(
            &addr.to_string(),
            &Timeouts {
                connect: Some(Duration::from_secs(5)),
                read: Some(budget),
                write: Some(Duration::from_secs(5)),
            },
        )
        .unwrap();
        client.send(b"anyone there?").unwrap();
        match client.recv() {
            Err(TransportError::TimedOut { elapsed, budget: b }) => {
                assert_eq!(b, budget);
                assert!(elapsed >= budget, "elapsed {elapsed:?} < budget {budget:?}");
            }
            other => panic!("expected TimedOut, got {other:?}"),
        }
        drop(client);
        let _ = hold.join();
    }
}
