//! Length-prefixed message framing over a byte stream.
//!
//! The raw-TCP SOAP binding needs message boundaries; a 4-byte big-endian
//! length prefix is the entire protocol — "the TCP binding will just dump
//! the serialization directly to a TCP connection" (paper §5.3).

use std::io::{IoSlice, Read, Write};
use std::net::TcpStream;

use crate::error::{TransportError, TransportResult};
use crate::iovec::write_all_vectored;

/// Upper bound on a single frame (256 MiB) — large enough for the paper's
/// 64 MB experiments with headroom, small enough to stop a hostile length
/// prefix from driving allocation.
pub const MAX_FRAME_LEN: usize = 256 << 20;

/// A framed message stream over any `Read + Write` (usually a
/// [`TcpStream`]).
#[derive(Debug)]
pub struct FramedStream<S = TcpStream> {
    inner: S,
}

impl FramedStream<TcpStream> {
    /// Connect to a framed-TCP peer.
    pub fn connect(addr: &str) -> TransportResult<FramedStream<TcpStream>> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(FramedStream { inner: stream })
    }
}

impl<S: Read + Write> FramedStream<S> {
    /// Wrap an existing stream.
    pub fn new(inner: S) -> FramedStream<S> {
        FramedStream { inner }
    }

    /// Consume the wrapper, returning the underlying stream.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Send one message.
    ///
    /// Length prefix and payload go out in a single vectored write, so a
    /// message costs one syscall and the payload buffer is never copied
    /// into a frame-assembly buffer.
    pub fn send(&mut self, payload: &[u8]) -> TransportResult<()> {
        if payload.len() > MAX_FRAME_LEN {
            return Err(TransportError::FrameTooLarge {
                declared: payload.len() as u64,
            });
        }
        let prefix = (payload.len() as u32).to_be_bytes();
        let mut bufs = [IoSlice::new(&prefix), IoSlice::new(payload)];
        write_all_vectored(&mut self.inner, &mut bufs)?;
        self.inner.flush()?;
        Ok(())
    }

    /// Receive one message.
    pub fn recv(&mut self) -> TransportResult<Vec<u8>> {
        let mut payload = Vec::new();
        self.recv_into(&mut payload)?;
        Ok(payload)
    }

    /// Receive one message into a caller-provided buffer (cleared first,
    /// capacity kept) — the allocation-free path for servers cycling one
    /// buffer per connection.
    pub fn recv_into(&mut self, payload: &mut Vec<u8>) -> TransportResult<()> {
        let mut len_bytes = [0u8; 4];
        read_exact_or_closed(&mut self.inner, &mut len_bytes)?;
        self.recv_payload(u32::from_be_bytes(len_bytes), payload)
    }

    /// Try to receive; returns `None` on a clean EOF at a message
    /// boundary (peer hung up between messages).
    pub fn recv_optional(&mut self) -> TransportResult<Option<Vec<u8>>> {
        let mut payload = Vec::new();
        Ok(self.recv_optional_into(&mut payload)?.then_some(payload))
    }

    /// [`recv_into`](FramedStream::recv_into) with clean-EOF detection:
    /// `Ok(false)` (buffer cleared) when the peer hung up between
    /// messages, `Ok(true)` when a message was read into `payload`.
    pub fn recv_optional_into(&mut self, payload: &mut Vec<u8>) -> TransportResult<bool> {
        let mut len_bytes = [0u8; 4];
        let mut filled = 0;
        while filled < 4 {
            match self.inner.read(&mut len_bytes[filled..]) {
                Ok(0) if filled == 0 => {
                    payload.clear();
                    return Ok(false);
                }
                Ok(0) => return Err(TransportError::ConnectionClosed),
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        self.recv_payload(u32::from_be_bytes(len_bytes), payload)?;
        Ok(true)
    }

    fn recv_payload(&mut self, len: u32, payload: &mut Vec<u8>) -> TransportResult<()> {
        let len = len as usize;
        if len > MAX_FRAME_LEN {
            return Err(TransportError::FrameTooLarge {
                declared: len as u64,
            });
        }
        payload.clear();
        payload.resize(len, 0);
        read_exact_or_closed(&mut self.inner, payload)
    }
}

fn read_exact_or_closed(r: &mut impl Read, buf: &mut [u8]) -> TransportResult<()> {
    match r.read_exact(buf) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
            Err(TransportError::ConnectionClosed)
        }
        Err(e) => Err(e.into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// An in-memory duplex pipe for exercising framing without sockets.
    struct Pipe {
        buf: Cursor<Vec<u8>>,
    }

    impl Pipe {
        fn new() -> Pipe {
            Pipe {
                buf: Cursor::new(Vec::new()),
            }
        }
        fn rewind(&mut self) {
            self.buf.set_position(0);
        }
    }

    impl Read for Pipe {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            self.buf.read(out)
        }
    }

    impl Write for Pipe {
        fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
            self.buf.write(data)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn frame_roundtrip() {
        let mut fs = FramedStream::new(Pipe::new());
        fs.send(b"hello").unwrap();
        fs.send(b"").unwrap();
        fs.send(&[7u8; 1000]).unwrap();
        fs.inner.rewind();
        assert_eq!(fs.recv().unwrap(), b"hello");
        assert_eq!(fs.recv().unwrap(), b"");
        assert_eq!(fs.recv().unwrap(), vec![7u8; 1000]);
    }

    #[test]
    fn oversize_send_rejected_without_io() {
        // Construct a frame-length check failure via a declared length
        // instead of allocating 256 MiB: check the recv path.
        let mut fs = FramedStream::new(Pipe::new());
        fs.inner.write_all(&u32::MAX.to_be_bytes()).unwrap();
        fs.inner.rewind();
        assert!(matches!(
            fs.recv(),
            Err(TransportError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn truncated_payload_is_connection_closed() {
        let mut fs = FramedStream::new(Pipe::new());
        fs.inner.write_all(&10u32.to_be_bytes()).unwrap();
        fs.inner.write_all(b"abc").unwrap(); // only 3 of 10 bytes
        fs.inner.rewind();
        assert!(matches!(fs.recv(), Err(TransportError::ConnectionClosed)));
    }

    #[test]
    fn recv_optional_clean_eof() {
        let mut fs = FramedStream::new(Pipe::new());
        fs.send(b"x").unwrap();
        fs.inner.rewind();
        assert_eq!(fs.recv_optional().unwrap(), Some(b"x".to_vec()));
        assert_eq!(fs.recv_optional().unwrap(), None);
    }

    #[test]
    fn recv_optional_partial_prefix_is_error() {
        let mut fs = FramedStream::new(Pipe::new());
        fs.inner.write_all(&[0u8, 0]).unwrap(); // half a length prefix
        fs.inner.rewind();
        assert!(matches!(
            fs.recv_optional(),
            Err(TransportError::ConnectionClosed)
        ));
    }

    #[test]
    fn real_socket_roundtrip() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut fs = FramedStream::new(stream);
            let msg = fs.recv().unwrap();
            fs.send(&msg).unwrap(); // echo
        });
        let mut client = FramedStream::connect(&addr.to_string()).unwrap();
        client.send(b"ping around the loopback").unwrap();
        assert_eq!(client.recv().unwrap(), b"ping around the loopback");
        server.join().unwrap();
    }
}
