//! # transport — real byte-moving substrates
//!
//! The generic SOAP engine's *binding policies* need actual transports.
//! This crate provides the two the paper uses, built over `std::net`:
//!
//! * **Framed TCP** ([`framed`]) — the `BXSA/TCP` binding "just dumps the
//!   serialization directly to a TCP connection" (§5.3); a 4-byte length
//!   prefix delimits messages.
//! * **HTTP/1.1** ([`http`]) — a from-scratch client and threaded server
//!   sufficient for SOAP-over-HTTP POSTs and for the separated scheme's
//!   file staging ([`fileserver`], the Apache stand-in).
//!
//! Everything here moves real bytes over real (loopback) sockets; the
//! simulated-time models live in the `netsim` crate instead.

pub mod error;
pub mod fileserver;
pub mod framed;
pub mod http;
pub mod iovec;
pub mod tcpserver;

pub use error::{TransportError, TransportResult};
pub use fileserver::FileServer;
pub use framed::{FramedStream, MAX_FRAME_LEN};
pub use http::client::{http_get, http_post};
pub use http::request::HttpRequest;
pub use http::response::HttpResponse;
pub use http::server::HttpServer;
pub use tcpserver::TcpServer;
