//! # transport — real byte-moving substrates
//!
//! The generic SOAP engine's *binding policies* need actual transports.
//! This crate provides the two the paper uses, built over `std::net`:
//!
//! * **Framed TCP** ([`framed`]) — the `BXSA/TCP` binding "just dumps the
//!   serialization directly to a TCP connection" (§5.3); a 4-byte length
//!   prefix delimits messages.
//! * **HTTP/1.1** ([`http`]) — a from-scratch client and threaded server
//!   sufficient for SOAP-over-HTTP POSTs and for the separated scheme's
//!   file staging ([`fileserver`], the Apache stand-in).
//!
//! Everything here moves real bytes over real (loopback) sockets; the
//! simulated-time models live in the `netsim` crate instead.
//!
//! The resilience layer threads through all of it: [`deadline`] turns an
//! absolute time budget into per-phase socket timeouts, [`retry`] decides
//! when a failed exchange may be replayed, [`breaker`] shares endpoint
//! health across engines so persistent outages fail fast, and [`faulty`]
//! wraps any stream in a deterministic fault injector for torture
//! testing.

pub mod breaker;
pub mod builder;
pub mod deadline;
pub mod error;
pub mod faulty;
pub mod fileserver;
pub mod framed;
pub mod http;
pub mod iovec;
pub mod metrics;
pub mod pool;
pub mod reactor;
pub mod retry;
pub mod tcpserver;

pub use breaker::{
    BreakerConfig, BreakerHandle, BreakerRegistry, BreakerState, CircuitBreaker, Permit,
};
pub use builder::ServerBuilder;
pub use deadline::{Deadline, Timeouts};
pub use error::{TransportError, TransportResult, HTTP_STATUS_BODY_PREFIX};
pub use faulty::{
    FaultAction, FaultInjector, FaultProfile, FaultingTransport, SharedInjector,
};
pub use fileserver::FileServer;
pub use framed::{FramedStream, MAX_FRAME_LEN};
pub use http::client::{
    http_get, http_post, send_request, send_request_with, send_request_with_into, HttpConnection,
};
pub use http::request::HttpRequest;
pub use http::response::HttpResponse;
pub use http::server::{metrics_response, HttpServer, HttpServerConfig};
pub use http::streaming::{StreamFactory, StreamReply, StreamRequestHead, StreamSession};
pub use pool::{BufferPool, Pool};
pub use reactor::{Event, Events, Interest, OverloadConfig, Poller, Waker};
pub use retry::{RetryPolicy, RetrySchedule};
pub use tcpserver::{ReplyControl, TcpServer, TcpServerConfig};
