//! HTTP requests.

use std::io::{BufRead, Write};

use crate::error::{TransportError, TransportResult};
use crate::http::{find_header, read_body_into, read_head, CRLF};

/// An HTTP/1.1 request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method (`GET`, `POST`, ...).
    pub method: String,
    /// Request target (origin-form path, e.g. `/data/run42.nc`).
    pub path: String,
    /// Headers in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body.
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// A GET request for `path`.
    pub fn get(path: &str) -> HttpRequest {
        HttpRequest {
            method: "GET".into(),
            path: path.into(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// A POST with a typed body.
    pub fn post(path: &str, content_type: &str, body: Vec<u8>) -> HttpRequest {
        HttpRequest {
            method: "POST".into(),
            path: path.into(),
            headers: vec![("Content-Type".into(), content_type.into())],
            body,
        }
    }

    /// Add a header (chainable).
    pub fn with_header(mut self, name: &str, value: &str) -> HttpRequest {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        find_header(&self.headers, name)
    }

    /// Serialize onto a stream for a one-shot exchange
    /// (`Connection: close`).
    pub fn write_to(&self, out: &mut impl Write) -> TransportResult<()> {
        self.write_to_with(out, false)
    }

    /// Serialize onto a stream, stating the actual connection
    /// disposition (`Connection: keep-alive` when the sender intends to
    /// reuse the connection, `close` otherwise). Adds `Content-Length`;
    /// caller-set `Connection`/`Content-Length` headers are dropped so
    /// exactly one of each goes out, and truthfully.
    pub fn write_to_with(&self, out: &mut impl Write, keep_alive: bool) -> TransportResult<()> {
        let mut head = String::with_capacity(128);
        head.push_str(&self.method);
        head.push(' ');
        head.push_str(&self.path);
        head.push_str(" HTTP/1.1");
        head.push_str(CRLF);
        for (name, value) in &self.headers {
            if name.eq_ignore_ascii_case("connection")
                || name.eq_ignore_ascii_case("content-length")
            {
                continue;
            }
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str(CRLF);
        }
        head.push_str(&format!("Content-Length: {}{CRLF}", self.body.len()));
        head.push_str(if keep_alive {
            "Connection: keep-alive"
        } else {
            "Connection: close"
        });
        head.push_str(CRLF);
        head.push_str(CRLF);
        out.write_all(head.as_bytes())?;
        out.write_all(&self.body)?;
        out.flush()?;
        Ok(())
    }

    /// Serialize only the head of this request for a **chunked** send:
    /// `Transfer-Encoding: chunked` replaces `Content-Length`, the body
    /// field is ignored, and the caller streams chunks (see
    /// [`crate::http::chunked`]) followed by the zero-chunk terminator.
    pub fn write_chunked_head_to(
        &self,
        out: &mut impl Write,
        keep_alive: bool,
    ) -> TransportResult<()> {
        let mut head = String::with_capacity(128);
        head.push_str(&self.method);
        head.push(' ');
        head.push_str(&self.path);
        head.push_str(" HTTP/1.1");
        head.push_str(CRLF);
        for (name, value) in &self.headers {
            if name.eq_ignore_ascii_case("connection")
                || name.eq_ignore_ascii_case("content-length")
                || name.eq_ignore_ascii_case("transfer-encoding")
            {
                continue;
            }
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str(CRLF);
        }
        head.push_str("Transfer-Encoding: chunked");
        head.push_str(CRLF);
        head.push_str(if keep_alive {
            "Connection: keep-alive"
        } else {
            "Connection: close"
        });
        head.push_str(CRLF);
        head.push_str(CRLF);
        out.write_all(head.as_bytes())?;
        out.flush()?;
        Ok(())
    }

    /// Parse a request from a buffered stream.
    pub fn read_from(reader: &mut impl BufRead) -> TransportResult<HttpRequest> {
        HttpRequest::read_from_with_body(reader, Vec::new())
    }

    /// [`read_from`](HttpRequest::read_from), adopting `body` as the body
    /// buffer (contents replaced, capacity kept) — the server side of the
    /// pooled-body discipline.
    pub fn read_from_with_body(
        reader: &mut impl BufRead,
        mut body: Vec<u8>,
    ) -> TransportResult<HttpRequest> {
        let (first, headers) = read_head(reader)?;
        let mut parts = first.split_ascii_whitespace();
        let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(p), Some(v)) => (m, p, v),
            _ => {
                return Err(TransportError::BadHttp {
                    what: format!("bad request line {first:?}"),
                })
            }
        };
        if !version.starts_with("HTTP/1.") {
            return Err(TransportError::BadHttp {
                what: format!("unsupported version {version:?}"),
            });
        }
        read_body_into(reader, &headers, &mut body)?;
        Ok(HttpRequest {
            method: method.to_owned(),
            path: path.to_owned(),
            headers,
            body,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn roundtrip_post() {
        let req = HttpRequest::post("/soap", "text/xml", b"<e/>".to_vec())
            .with_header("SOAPAction", "\"verify\"");
        let mut wire = Vec::new();
        req.write_to(&mut wire).unwrap();
        let mut r = BufReader::new(&wire[..]);
        let back = HttpRequest::read_from(&mut r).unwrap();
        assert_eq!(back.method, "POST");
        assert_eq!(back.path, "/soap");
        assert_eq!(back.header("soapaction"), Some("\"verify\""));
        assert_eq!(back.header("content-length"), Some("4"));
        assert_eq!(back.body, b"<e/>");
    }

    #[test]
    fn get_has_empty_body() {
        let mut wire = Vec::new();
        HttpRequest::get("/f.nc").write_to(&mut wire).unwrap();
        let back = HttpRequest::read_from(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(back.method, "GET");
        assert!(back.body.is_empty());
    }

    #[test]
    fn bad_request_line() {
        let mut r = BufReader::new(&b"NONSENSE\r\n\r\n"[..]);
        assert!(HttpRequest::read_from(&mut r).is_err());
        let mut r = BufReader::new(&b"GET / SPDY/3\r\n\r\n"[..]);
        assert!(HttpRequest::read_from(&mut r).is_err());
    }
}
