//! Server-side hooks for streamed (chunked) requests.
//!
//! When a request arrives with `Transfer-Encoding: chunked`, the
//! reactor's HTTP driver consults the server's [`StreamFactory`] (set
//! via [`crate::ServerBuilder::stream_factory`]). A factory that
//! recognizes the request returns a [`StreamSession`]; the driver then
//! feeds it one part per chunk as chunks complete, asks it to `finish`
//! when the terminator arrives, and — when the reply is streamed —
//! pulls reply parts on demand, writing each as one chunk and never
//! buffering more than a write window ahead (backpressure: a slow
//! client pauses the pull, not the worker).
//!
//! Requests the factory declines (or when no factory is set) fall back
//! to buffered service: the body is de-chunked into the ordinary
//! request buffer and dispatched to the regular handler, so plain
//! handlers interoperate with streaming clients transparently.

use std::sync::Arc;

use crate::error::TransportResult;
use crate::http::response::HttpResponse;

/// The head of a chunked request, offered to the [`StreamFactory`]
/// before any body bytes exist.
pub struct StreamRequestHead<'a> {
    /// Request method (`POST` for SOAP calls).
    pub method: &'a str,
    /// Request target.
    pub path: &'a str,
    /// Headers in arrival order.
    pub headers: &'a [(String, String)],
}

impl StreamRequestHead<'_> {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        crate::http::find_header(self.headers, name)
    }
}

/// What a [`StreamSession`] answers with once the request terminator has
/// been consumed.
pub enum StreamReply {
    /// Stream the reply: the response's head goes out with
    /// `Transfer-Encoding: chunked` (its `body` field is ignored) and
    /// parts are pulled via [`StreamSession::next_part`], one chunk each.
    Streamed(HttpResponse),
    /// Send a complete buffered response (faults, small replies).
    Buffered(HttpResponse),
}

/// One streamed exchange on one connection.
///
/// Sessions are created on the event-loop worker that owns the
/// connection and never migrate, so they need no `Send` — per-session
/// decode scratch follows the same discipline as connection-scoped
/// handler state.
pub trait StreamSession {
    /// One request part (the payload of one complete chunk) has arrived.
    /// Errors close the connection after a diagnostic response.
    fn on_part(&mut self, part: &[u8]) -> TransportResult<()>;

    /// The request terminator arrived: produce the reply.
    fn finish(&mut self) -> TransportResult<StreamReply>;

    /// Pull the next reply part into `out` (handed over cleared).
    /// `Ok(false)` ends the reply (the terminating chunk is written).
    /// Only called after [`finish`](StreamSession::finish) returned
    /// [`StreamReply::Streamed`].
    fn next_part(&mut self, out: &mut Vec<u8>) -> TransportResult<bool>;
}

/// Per-request decision hook: `None` falls back to buffered service.
pub type StreamFactory =
    Arc<dyn Fn(&StreamRequestHead<'_>) -> Option<Box<dyn StreamSession>> + Send + Sync>;
