//! A small threaded HTTP server (the Apache stand-in).

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::error::TransportResult;
use crate::http::request::HttpRequest;
use crate::http::response::HttpResponse;
use crate::metrics;
use crate::pool::BufferPool;
use crate::tcpserver::ReplyControl;

/// Per-connection limits for an [`HttpServer`].
#[derive(Debug, Clone, Copy, Default)]
pub struct HttpServerConfig {
    /// Budget for reading the request (headers + body). A client that
    /// stalls mid-request is disconnected when this expires.
    pub read_timeout: Option<Duration>,
    /// Budget for writing the response.
    pub write_timeout: Option<Duration>,
    /// When set, `GET <metrics_path>` is answered by the server itself
    /// with the process-wide metrics in Prometheus text format
    /// ([`metrics_response`]), before the application handler sees the
    /// request.
    pub metrics_path: Option<&'static str>,
}

/// The `/metrics` scrape response: everything registered in
/// [`obs::global`], rendered as Prometheus text exposition.
pub fn metrics_response() -> HttpResponse {
    HttpResponse::ok(
        "text/plain; version=0.0.4",
        obs::global().render().into_bytes(),
    )
}

/// A running HTTP server. One handler thread per connection; connections
/// are single-request (`Connection: close`).
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    errors: Arc<AtomicU64>,
    accept_thread: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Bind to `addr` (use port 0 for an ephemeral port) and start
    /// serving with `handler`, with no per-connection time limits.
    pub fn bind<H>(addr: &str, handler: H) -> TransportResult<HttpServer>
    where
        H: Fn(&HttpRequest) -> HttpResponse + Send + Sync + 'static,
    {
        HttpServer::bind_with(addr, HttpServerConfig::default(), handler)
    }

    /// [`bind`](HttpServer::bind) with explicit per-connection limits.
    pub fn bind_with<H>(
        addr: &str,
        config: HttpServerConfig,
        handler: H,
    ) -> TransportResult<HttpServer>
    where
        H: Fn(&HttpRequest) -> HttpResponse + Send + Sync + 'static,
    {
        HttpServer::bind_pooled(addr, config, Arc::new(BufferPool::default()), handler)
    }

    /// [`bind_with`](HttpServer::bind_with) sharing an explicit buffer
    /// pool. Request bodies are read into pooled buffers and every body
    /// (request and response) is recycled into `pool` once the response
    /// is on the wire — HTTP's one-shot connections get the same
    /// steady-state buffer reuse the framed-TCP server's persistent
    /// connections enjoy. Handlers that want their response bodies to
    /// come from the same cycle take buffers from the shared pool.
    pub fn bind_pooled<H>(
        addr: &str,
        config: HttpServerConfig,
        pool: Arc<BufferPool>,
        handler: H,
    ) -> TransportResult<HttpServer>
    where
        H: Fn(&HttpRequest) -> HttpResponse + Send + Sync + 'static,
    {
        HttpServer::bind_pooled_ctl(addr, config, pool, move |request, _ctl| handler(request))
    }

    /// [`bind_pooled`](HttpServer::bind_pooled) plus a [`ReplyControl`]
    /// the handler may use to cap the response's write budget to the
    /// caller's remaining deadline instead of the static config.
    pub fn bind_pooled_ctl<H>(
        addr: &str,
        config: HttpServerConfig,
        pool: Arc<BufferPool>,
        handler: H,
    ) -> TransportResult<HttpServer>
    where
        H: Fn(&HttpRequest, &mut ReplyControl) -> HttpResponse + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_accept = Arc::clone(&stop);
        let errors = Arc::new(AtomicU64::new(0));
        let errors_accept = Arc::clone(&errors);
        let handler = Arc::new(handler);
        let pool_accept = pool;

        let accept_thread = std::thread::Builder::new()
            .name("http-accept".into())
            .spawn(move || {
                // Connection-handler threads; joined on shutdown so tests
                // never leak work past the server's lifetime. The paired
                // stream handle lets shutdown unblock a worker parked in
                // read() on a connection the client never closed.
                let mut workers: Vec<(JoinHandle<()>, TcpStream)> = Vec::new();
                for conn in listener.incoming() {
                    if stop_accept.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let Ok(shutdown_handle) = stream.try_clone() else {
                        continue;
                    };
                    metrics::http_server().connections.inc();
                    let handler = Arc::clone(&handler);
                    let errors = Arc::clone(&errors_accept);
                    let pool = Arc::clone(&pool_accept);
                    let worker = std::thread::Builder::new()
                        .name("http-conn".into())
                        .spawn(move || {
                            if let Err(e) = serve_connection(stream, config, &*handler, &pool) {
                                // Counted by kind; never takes the
                                // listener down.
                                errors.fetch_add(1, Ordering::Relaxed);
                                metrics::count_server_error("http", metrics::error_kind(&e));
                            }
                        })
                        .expect("spawn http connection thread");
                    workers.push((worker, shutdown_handle));
                    // Reap finished workers opportunistically.
                    workers.retain(|(w, _)| !w.is_finished());
                }
                for (w, stream) in workers {
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                    let _ = w.join();
                }
            })
            .expect("spawn http accept thread");

        Ok(HttpServer {
            addr: local,
            stop,
            errors,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections that ended with a transport error (malformed beyond
    /// reply, stalled past the read budget, reset mid-response).
    pub fn error_count(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Stop accepting and wait for the accept loop to finish.
    pub fn shutdown(mut self) {
        self.do_shutdown();
    }

    fn do_shutdown(&mut self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Kick the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.do_shutdown();
    }
}

fn serve_connection<H>(
    mut stream: TcpStream,
    config: HttpServerConfig,
    handler: &H,
    pool: &BufferPool,
) -> TransportResult<()>
where
    H: Fn(&HttpRequest, &mut ReplyControl) -> HttpResponse,
{
    stream.set_nodelay(true)?;
    stream.set_read_timeout(config.read_timeout)?;
    stream.set_write_timeout(config.write_timeout)?;
    let started = Instant::now();
    let m = metrics::http_server();
    let mut ctl = ReplyControl::default();
    let mut reader = BufReader::new(stream.try_clone()?);
    let response = match HttpRequest::read_from_with_body(&mut reader, pool.take()) {
        Ok(mut request) => {
            m.bytes_in.add(request.body.len() as u64);
            let response = if config.metrics_path == Some(request.path.as_str())
                && request.method == "GET"
            {
                metrics_response()
            } else {
                let handler_start = Instant::now();
                let response = handler(&request, &mut ctl);
                m.handler_latency.observe_duration(handler_start.elapsed());
                response
            };
            pool.put(std::mem::take(&mut request.body));
            response
        }
        Err(crate::TransportError::ConnectionClosed) => return Ok(()), // shutdown kick
        Err(crate::TransportError::Io(e)) if crate::TransportError::io_is_timeout(&e) => {
            // Stalled mid-request: typed error for the accounting layer;
            // no response is owed to a peer that never finished asking.
            return Err(crate::TransportError::TimedOut {
                elapsed: started.elapsed(),
                budget: config.read_timeout.unwrap_or_default(),
            });
        }
        // A declared body length beyond the frame limit is the one
        // malformed-request class with its own status: 413, so clients
        // can tell "you asked for too much" from "you asked wrong".
        Err(e @ crate::TransportError::FrameTooLarge { .. }) => {
            metrics::count_server_error("http", metrics::error_kind(&e));
            HttpResponse::payload_too_large()
        }
        Err(e) => HttpResponse::bad_request(&e.to_string()),
    };
    if let Some(budget) = ctl.write_budget() {
        // Tighten only (the static budget still bounds the reply);
        // clamp to ≥ 1 ms because std rejects a zero socket timeout.
        let cap = config
            .write_timeout
            .map_or(budget, |w| w.min(budget))
            .max(Duration::from_millis(1));
        stream.set_write_timeout(Some(cap))?;
    }
    let result = response.write_to(&mut stream);
    if result.is_ok() {
        m.bytes_out.add(response.body.len() as u64);
    }
    // The response body rejoins the cycle whoever allocated it — the
    // next connection's request read (or a pool-aware handler) picks
    // its capacity back up.
    pool.put(response.body);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::client::{http_get, send_request};

    #[test]
    fn serves_concurrent_requests() {
        let server = HttpServer::bind("127.0.0.1:0", |req| {
            HttpResponse::ok("text/plain", req.path.as_bytes().to_vec())
        })
        .unwrap();
        let addr = server.local_addr().to_string();
        crossbeam::thread::scope(|s| {
            let mut joins = Vec::new();
            for i in 0..8 {
                let addr = addr.clone();
                joins.push(s.spawn(move |_| {
                    let path = format!("/req/{i}");
                    assert_eq!(http_get(&addr, &path).unwrap(), path.as_bytes());
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
        })
        .unwrap();
        server.shutdown();
    }

    #[test]
    fn malformed_request_gets_400() {
        let server =
            HttpServer::bind("127.0.0.1:0", |_req| HttpResponse::ok("text/plain", vec![])).unwrap();
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        use std::io::Write;
        stream.write_all(b"GARBAGE REQUEST LINE\r\n\r\n").unwrap();
        let mut reader = BufReader::new(stream);
        let resp = HttpResponse::read_from(&mut reader).unwrap();
        assert_eq!(resp.status, 400);
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_unblocks() {
        let server =
            HttpServer::bind("127.0.0.1:0", |_req| HttpResponse::ok("text/plain", vec![])).unwrap();
        let addr = server.local_addr().to_string();
        assert!(send_request(&addr, &HttpRequest::get("/")).is_ok());
        server.shutdown();
        // A second server can immediately rebind a fresh ephemeral port.
        let server2 =
            HttpServer::bind("127.0.0.1:0", |_req| HttpResponse::ok("text/plain", vec![])).unwrap();
        drop(server2); // Drop also shuts down cleanly.
    }
}
