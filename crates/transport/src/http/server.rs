//! The HTTP/1.1 server (the Apache stand-in).
//!
//! Since the reactor port this is an evented server with keep-alive and
//! pipelining: connections are parked on a fixed pool of event-loop
//! workers ([`crate::reactor`]), each serving as many requests as the
//! peer cares to send before `Connection: close` (from either side) or
//! the idle budget ends it. The `bind_*` surface is unchanged from the
//! one-thread-per-request era.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use crate::error::TransportResult;
use crate::http::request::HttpRequest;
use crate::http::response::HttpResponse;
use crate::metrics;
use crate::pool::BufferPool;
use crate::reactor::conn::HttpDriver;
use crate::reactor::overload::{Overload, OverloadConfig};
use crate::reactor::server::{EventServer, ReactorConfig, DEFAULT_DRAIN};
use crate::tcpserver::ReplyControl;

/// Per-connection limits for an [`HttpServer`].
#[derive(Debug, Clone, Copy, Default)]
pub struct HttpServerConfig {
    /// Budget for making read progress on a request (headers + body) —
    /// and the idle allowance for a keep-alive connection between
    /// requests. A client that stalls mid-request is disconnected (and
    /// counted) when this expires; a connection that is merely idle
    /// closes quietly.
    pub read_timeout: Option<Duration>,
    /// Budget for writing the response.
    pub write_timeout: Option<Duration>,
    /// When set, `GET <metrics_path>` is answered by the server itself
    /// with the process-wide metrics in Prometheus text format
    /// ([`metrics_response`]), before the application handler sees the
    /// request.
    pub metrics_path: Option<&'static str>,
    /// Overload protection: connection cap, request shedding, and the
    /// whole-message (slow-loris) deadline. Rejected connections and
    /// shed requests are answered `503 Service Unavailable` with
    /// `Retry-After` and `Connection: close`. Default: everything off.
    pub overload: OverloadConfig,
}

/// The `/metrics` scrape response: everything registered in
/// [`obs::global`], rendered as Prometheus text exposition.
pub fn metrics_response() -> HttpResponse {
    HttpResponse::ok(
        "text/plain; version=0.0.4",
        obs::global().render().into_bytes(),
    )
}

/// A running HTTP server with keep-alive connections.
pub struct HttpServer {
    inner: EventServer,
}

impl HttpServer {
    /// Bind to `addr` (use port 0 for an ephemeral port) and start
    /// serving with `handler`, with no per-connection time limits.
    pub fn bind<H>(addr: &str, handler: H) -> TransportResult<HttpServer>
    where
        H: Fn(&HttpRequest) -> HttpResponse + Send + Sync + 'static,
    {
        HttpServer::bind_with(addr, HttpServerConfig::default(), handler)
    }

    /// [`bind`](HttpServer::bind) with explicit per-connection limits.
    pub fn bind_with<H>(
        addr: &str,
        config: HttpServerConfig,
        handler: H,
    ) -> TransportResult<HttpServer>
    where
        H: Fn(&HttpRequest) -> HttpResponse + Send + Sync + 'static,
    {
        bind_http_inner(
            addr,
            config,
            Arc::new(BufferPool::default()),
            None,
            move |request, _ctl| handler(request),
        )
    }

    /// [`bind_with`](HttpServer::bind_with) sharing an explicit buffer
    /// pool. Each connection takes a request-body buffer from `pool` for
    /// its lifetime (cycled across its keep-alive requests) and returns
    /// it on close; response bodies are recycled into `pool` once on the
    /// wire. Handlers that want their response bodies to come from the
    /// same cycle take buffers from the shared pool.
    #[deprecated(since = "0.9.0", note = "use `ServerBuilder::bind(addr).pool(...).serve_http(...)`")]
    pub fn bind_pooled<H>(
        addr: &str,
        config: HttpServerConfig,
        pool: Arc<BufferPool>,
        handler: H,
    ) -> TransportResult<HttpServer>
    where
        H: Fn(&HttpRequest) -> HttpResponse + Send + Sync + 'static,
    {
        bind_http_inner(addr, config, pool, None, move |request, _ctl| {
            handler(request)
        })
    }

    /// [`bind_with`](HttpServer::bind_with) plus a shared pool and a
    /// [`ReplyControl`] the handler may use to cap the response's write
    /// budget to the caller's remaining deadline instead of the static
    /// config.
    #[deprecated(since = "0.9.0", note = "use `ServerBuilder::bind(addr).pool(...).serve_http_ctl(...)`")]
    pub fn bind_pooled_ctl<H>(
        addr: &str,
        config: HttpServerConfig,
        pool: Arc<BufferPool>,
        handler: H,
    ) -> TransportResult<HttpServer>
    where
        H: Fn(&HttpRequest, &mut ReplyControl) -> HttpResponse + Send + Sync + 'static,
    {
        bind_http_inner(addr, config, pool, None, handler)
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr()
    }

    /// Connections that ended with a transport error (malformed beyond
    /// reply, stalled past the read budget, reset mid-response).
    pub fn error_count(&self) -> u64 {
        self.inner.error_count()
    }

    /// Stop accepting and drain: in-flight requests get up to a short
    /// grace period to finish, idle keep-alive connections close
    /// immediately.
    pub fn shutdown(self) {
        self.shutdown_within(DEFAULT_DRAIN);
    }

    /// [`shutdown`](HttpServer::shutdown) with an explicit drain
    /// deadline. Connections still mid-request when it expires are
    /// dropped and counted as
    /// `bx_server_connection_errors_total{kind="shutdown_drop"}`.
    pub fn shutdown_within(mut self, drain: Duration) {
        self.inner.shutdown_within(drain);
    }
}

/// The one true HTTP bind: every public constructor and the
/// [`crate::ServerBuilder`] funnel through here.
pub(crate) fn bind_http_inner<H>(
    addr: &str,
    config: HttpServerConfig,
    pool: Arc<BufferPool>,
    stream_factory: Option<crate::http::streaming::StreamFactory>,
    handler: H,
) -> TransportResult<HttpServer>
where
    H: Fn(&HttpRequest, &mut ReplyControl) -> HttpResponse + Send + Sync + 'static,
{
    let m = metrics::http_server();
    let handler = Arc::new(handler);
    let metrics_path = config.metrics_path;
    // The canned wire bytes a connection rejected at the cap receives:
    // a complete 503 with Retry-After, honest `Connection: close`.
    let reject = HttpResponse::service_unavailable(config.overload.retry_after_hint);
    let mut reject_wire = Vec::with_capacity(256);
    reject.serialize_head(false, &mut reject_wire);
    reject_wire.extend_from_slice(&reject.body);
    let overload = Arc::new(Overload::new(
        &config.overload,
        Some(Arc::<[u8]>::from(reject_wire)),
        None,
    ));
    let driver_overload = Arc::clone(&overload);
    let inner = EventServer::bind(
        addr,
        ReactorConfig {
            read_timeout: config.read_timeout,
            write_timeout: config.write_timeout,
            transport: "http",
            metrics: m,
            injector: None,
            overload,
        },
        Arc::new(move || {
            Box::new(HttpDriver::new(
                Arc::clone(&handler),
                m,
                metrics_path,
                Arc::clone(&pool),
                Arc::clone(&driver_overload),
                stream_factory.clone(),
            )) as Box<dyn crate::reactor::conn::ConnDriver>
        }),
    )?;
    Ok(HttpServer { inner })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::client::{http_get, send_request};
    use std::io::BufReader;
    use std::net::TcpStream;

    #[test]
    fn serves_concurrent_requests() {
        let server = HttpServer::bind("127.0.0.1:0", |req| {
            HttpResponse::ok("text/plain", req.path.as_bytes().to_vec())
        })
        .unwrap();
        let addr = server.local_addr().to_string();
        crossbeam::thread::scope(|s| {
            let mut joins = Vec::new();
            for i in 0..8 {
                let addr = addr.clone();
                joins.push(s.spawn(move |_| {
                    let path = format!("/req/{i}");
                    assert_eq!(http_get(&addr, &path).unwrap(), path.as_bytes());
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
        })
        .unwrap();
        server.shutdown();
    }

    #[test]
    fn malformed_request_gets_400() {
        let server =
            HttpServer::bind("127.0.0.1:0", |_req| HttpResponse::ok("text/plain", vec![])).unwrap();
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        use std::io::Write;
        stream.write_all(b"GARBAGE REQUEST LINE\r\n\r\n").unwrap();
        let mut reader = BufReader::new(stream);
        let resp = HttpResponse::read_from(&mut reader).unwrap();
        assert_eq!(resp.status, 400);
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_unblocks() {
        let server =
            HttpServer::bind("127.0.0.1:0", |_req| HttpResponse::ok("text/plain", vec![])).unwrap();
        let addr = server.local_addr().to_string();
        assert!(send_request(&addr, &HttpRequest::get("/")).is_ok());
        server.shutdown();
        // A second server can immediately rebind a fresh ephemeral port.
        let server2 =
            HttpServer::bind("127.0.0.1:0", |_req| HttpResponse::ok("text/plain", vec![])).unwrap();
        drop(server2); // Drop also shuts down cleanly.
    }

    #[test]
    fn one_shot_clients_still_get_connection_close() {
        // The stock client helpers say `Connection: close`; the server
        // must honor it and say so in its own response header.
        let server =
            HttpServer::bind("127.0.0.1:0", |_req| HttpResponse::ok("text/plain", b"x".to_vec()))
                .unwrap();
        let addr = server.local_addr().to_string();
        let resp = send_request(&addr, &HttpRequest::get("/")).unwrap();
        assert_eq!(resp.header("connection"), Some("close"));
        server.shutdown();
    }
}
