//! A minimal HTTP/1.1 implementation.
//!
//! Covers what the paper's configurations need — SOAP POSTs and
//! whole-file GETs — with `Content-Length` bodies by default, plus
//! HTTP/1.1 [`chunked`] transfer-encoding for the streaming path (one
//! message part per chunk, unknown total length). Pipelining and TLS are
//! intentionally out of scope.

pub mod chunked;
pub mod client;
pub mod date;
pub mod request;
pub mod response;
pub mod server;
pub mod streaming;

pub(crate) const CRLF: &str = "\r\n";

/// Read HTTP header lines (terminated by an empty line) from a buffered
/// reader, returning (first_line, header_pairs).
pub(crate) fn read_head(
    reader: &mut impl std::io::BufRead,
) -> crate::TransportResult<(String, Vec<(String, String)>)> {
    use crate::TransportError;

    let mut first = String::new();
    if reader.read_line(&mut first)? == 0 {
        return Err(TransportError::ConnectionClosed);
    }
    let first = first.trim_end().to_owned();
    let mut headers = Vec::new();
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(TransportError::ConnectionClosed);
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        let (name, value) = trimmed.split_once(':').ok_or_else(|| TransportError::BadHttp {
            what: format!("header line without a colon: {trimmed:?}"),
        })?;
        headers.push((name.trim().to_owned(), value.trim().to_owned()));
        if headers.len() > 256 {
            return Err(TransportError::BadHttp {
                what: "too many headers".into(),
            });
        }
    }
    Ok((first, headers))
}

/// Case-insensitive header lookup.
pub(crate) fn find_header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}

/// Does any `Connection:` header carry a `close` token? Checked across
/// every header of that name, so duplicate/conflicting headers err on the
/// side of closing.
pub(crate) fn wants_close(headers: &[(String, String)]) -> bool {
    connection_tokens(headers).any(|t| t.eq_ignore_ascii_case("close"))
}

/// The RFC 7230 §6 connection disposition for a *request*: any `close`
/// token wins; an explicit `keep-alive` token opts in; any other
/// `Connection:` option (malformed or unknown) closes conservatively;
/// with no `Connection:` header at all, HTTP/1.1 defaults to keep-alive
/// and HTTP/1.0 to close.
pub(crate) fn keep_alive_disposition(http11: bool, headers: &[(String, String)]) -> bool {
    let mut saw_option = false;
    let mut saw_keep_alive = false;
    for token in connection_tokens(headers) {
        saw_option = true;
        if token.eq_ignore_ascii_case("close") {
            return false;
        }
        if token.eq_ignore_ascii_case("keep-alive") {
            saw_keep_alive = true;
        }
    }
    saw_keep_alive || (!saw_option && http11)
}

/// The disposition a *response* promises: reuse only on an explicit
/// `keep-alive` with no `close` token. A server that says nothing gets a
/// fresh connection next time — our own servers always state it.
pub(crate) fn response_keeps_alive(headers: &[(String, String)]) -> bool {
    !wants_close(headers)
        && connection_tokens(headers).any(|t| t.eq_ignore_ascii_case("keep-alive"))
}

/// All comma-separated tokens across every `Connection:` header.
fn connection_tokens(headers: &[(String, String)]) -> impl Iterator<Item = &str> {
    headers
        .iter()
        .filter(|(n, _)| n.eq_ignore_ascii_case("connection"))
        .flat_map(|(_, v)| v.split(','))
        .map(str::trim)
        .filter(|t| !t.is_empty())
}

/// Does the header set declare a chunked body? Transfer-Encoding takes
/// precedence over any Content-Length (RFC 9112 §6.3); encodings other
/// than a final `chunked` are rejected by the caller's parse.
pub(crate) fn body_is_chunked(headers: &[(String, String)]) -> bool {
    find_header(headers, "Transfer-Encoding")
        .map(|v| {
            v.split(',')
                .next_back()
                .is_some_and(|t| t.trim().eq_ignore_ascii_case("chunked"))
        })
        .unwrap_or(false)
}

/// Read a message body into a reusable buffer (contents replaced,
/// capacity kept): `Content-Length`-delimited, or de-chunked when the
/// headers declare `Transfer-Encoding: chunked` — so buffered consumers
/// handle streamed senders transparently.
pub(crate) fn read_body_into(
    reader: &mut impl std::io::BufRead,
    headers: &[(String, String)],
    body: &mut Vec<u8>,
) -> crate::TransportResult<()> {
    use crate::TransportError;

    if body_is_chunked(headers) {
        return chunked::read_chunked_body_into(reader, body, crate::framed::MAX_FRAME_LEN);
    }
    let len = match find_header(headers, "Content-Length") {
        Some(v) => v.parse::<usize>().map_err(|_| TransportError::BadHttp {
            what: format!("bad Content-Length {v:?}"),
        })?,
        None => 0,
    };
    if len > crate::framed::MAX_FRAME_LEN {
        return Err(TransportError::FrameTooLarge {
            declared: len as u64,
        });
    }
    body.clear();
    // Grow in bounded chunks, like the framed transport's payload read:
    // the declared length is capped above, but memory is still only
    // committed as bytes actually arrive, so a hostile Content-Length
    // paired with a trickle (or nothing) never pins more than one chunk
    // beyond what was received.
    while body.len() < len {
        let chunk = (len - body.len()).min(crate::framed::RECV_CHUNK);
        let start = body.len();
        body.resize(start + chunk, 0);
        reader
            .read_exact(&mut body[start..])
            .map_err(|e| match e.kind() {
                std::io::ErrorKind::UnexpectedEof => TransportError::ConnectionClosed,
                _ => TransportError::Io(e),
            })?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn read_body(
        reader: &mut impl std::io::BufRead,
        headers: &[(String, String)],
    ) -> crate::TransportResult<Vec<u8>> {
        let mut body = Vec::new();
        read_body_into(reader, headers, &mut body)?;
        Ok(body)
    }

    #[test]
    fn connection_disposition_follows_rfc7230() {
        let h = |v: &[(&str, &str)]| -> Vec<(String, String)> {
            v.iter().map(|(n, s)| (n.to_string(), s.to_string())).collect()
        };
        // Version defaults with no Connection header.
        assert!(keep_alive_disposition(true, &h(&[])));
        assert!(!keep_alive_disposition(false, &h(&[])));
        // Explicit tokens override the version default either way.
        assert!(!keep_alive_disposition(true, &h(&[("Connection", "close")])));
        assert!(keep_alive_disposition(false, &h(&[("connection", "Keep-Alive")])));
        // Duplicate conflicting headers and token lists close.
        assert!(!keep_alive_disposition(
            true,
            &h(&[("Connection", "keep-alive"), ("Connection", "close")])
        ));
        assert!(!keep_alive_disposition(true, &h(&[("Connection", "keep-alive, close")])));
        // Unknown options close conservatively.
        assert!(!keep_alive_disposition(true, &h(&[("Connection", "upgrade")])));
        // Responses must promise reuse explicitly.
        assert!(response_keeps_alive(&h(&[("Connection", "keep-alive")])));
        assert!(!response_keeps_alive(&h(&[])));
        assert!(!response_keeps_alive(&h(&[("Connection", "close")])));
    }

    #[test]
    fn read_head_parses_headers() {
        let raw = "GET / HTTP/1.1\r\nHost: x\r\nContent-Length: 3\r\n\r\nabc";
        let mut r = BufReader::new(raw.as_bytes());
        let (first, headers) = read_head(&mut r).unwrap();
        assert_eq!(first, "GET / HTTP/1.1");
        assert_eq!(find_header(&headers, "host"), Some("x"));
        let body = read_body(&mut r, &headers).unwrap();
        assert_eq!(body, b"abc");
    }

    #[test]
    fn read_body_into_reuses_capacity() {
        let headers = vec![("Content-Length".to_owned(), "5".to_owned())];
        let mut body = Vec::with_capacity(64);
        body.extend_from_slice(b"stale contents that must vanish");
        let ptr = body.as_ptr();
        let mut r = BufReader::new(&b"hello"[..]);
        read_body_into(&mut r, &headers, &mut body).unwrap();
        assert_eq!(body, b"hello");
        assert_eq!(body.as_ptr(), ptr, "capacity must be reused");
    }

    #[test]
    fn missing_colon_is_bad_http() {
        let raw = "GET / HTTP/1.1\r\nBogusHeader\r\n\r\n";
        let mut r = BufReader::new(raw.as_bytes());
        assert!(read_head(&mut r).is_err());
    }

    #[test]
    fn eof_is_connection_closed() {
        let mut r = BufReader::new(&b""[..]);
        assert!(matches!(
            read_head(&mut r),
            Err(crate::TransportError::ConnectionClosed)
        ));
    }

    #[test]
    fn body_without_length_is_empty() {
        let mut r = BufReader::new(&b"rest"[..]);
        assert_eq!(read_body(&mut r, &[]).unwrap(), b"");
    }

    #[test]
    fn truncated_body_is_closed() {
        let headers = vec![("Content-Length".to_owned(), "10".to_owned())];
        let mut r = BufReader::new(&b"abc"[..]);
        assert!(matches!(
            read_body(&mut r, &headers),
            Err(crate::TransportError::ConnectionClosed)
        ));
    }
}
