//! A minimal HTTP/1.1 implementation.
//!
//! Covers what the paper's configurations need — SOAP POSTs and
//! whole-file GETs — with `Content-Length` bodies and one request per
//! connection (`Connection: close`), which is how 2006-era SOAP toolkits
//! commonly drove HTTP. Chunked transfer encoding, pipelining and TLS are
//! intentionally out of scope.

pub mod client;
pub mod request;
pub mod response;
pub mod server;

pub(crate) const CRLF: &str = "\r\n";

/// Read HTTP header lines (terminated by an empty line) from a buffered
/// reader, returning (first_line, header_pairs).
pub(crate) fn read_head(
    reader: &mut impl std::io::BufRead,
) -> crate::TransportResult<(String, Vec<(String, String)>)> {
    use crate::TransportError;

    let mut first = String::new();
    if reader.read_line(&mut first)? == 0 {
        return Err(TransportError::ConnectionClosed);
    }
    let first = first.trim_end().to_owned();
    let mut headers = Vec::new();
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(TransportError::ConnectionClosed);
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        let (name, value) = trimmed.split_once(':').ok_or_else(|| TransportError::BadHttp {
            what: format!("header line without a colon: {trimmed:?}"),
        })?;
        headers.push((name.trim().to_owned(), value.trim().to_owned()));
        if headers.len() > 256 {
            return Err(TransportError::BadHttp {
                what: "too many headers".into(),
            });
        }
    }
    Ok((first, headers))
}

/// Case-insensitive header lookup.
pub(crate) fn find_header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}

/// Read a `Content-Length`-delimited body into a reusable buffer
/// (contents replaced, capacity kept).
pub(crate) fn read_body_into(
    reader: &mut impl std::io::BufRead,
    headers: &[(String, String)],
    body: &mut Vec<u8>,
) -> crate::TransportResult<()> {
    use crate::TransportError;

    let len = match find_header(headers, "Content-Length") {
        Some(v) => v.parse::<usize>().map_err(|_| TransportError::BadHttp {
            what: format!("bad Content-Length {v:?}"),
        })?,
        None => 0,
    };
    if len > crate::framed::MAX_FRAME_LEN {
        return Err(TransportError::FrameTooLarge {
            declared: len as u64,
        });
    }
    body.clear();
    // Grow in bounded chunks, like the framed transport's payload read:
    // the declared length is capped above, but memory is still only
    // committed as bytes actually arrive, so a hostile Content-Length
    // paired with a trickle (or nothing) never pins more than one chunk
    // beyond what was received.
    while body.len() < len {
        let chunk = (len - body.len()).min(crate::framed::RECV_CHUNK);
        let start = body.len();
        body.resize(start + chunk, 0);
        reader
            .read_exact(&mut body[start..])
            .map_err(|e| match e.kind() {
                std::io::ErrorKind::UnexpectedEof => TransportError::ConnectionClosed,
                _ => TransportError::Io(e),
            })?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn read_body(
        reader: &mut impl std::io::BufRead,
        headers: &[(String, String)],
    ) -> crate::TransportResult<Vec<u8>> {
        let mut body = Vec::new();
        read_body_into(reader, headers, &mut body)?;
        Ok(body)
    }

    #[test]
    fn read_head_parses_headers() {
        let raw = "GET / HTTP/1.1\r\nHost: x\r\nContent-Length: 3\r\n\r\nabc";
        let mut r = BufReader::new(raw.as_bytes());
        let (first, headers) = read_head(&mut r).unwrap();
        assert_eq!(first, "GET / HTTP/1.1");
        assert_eq!(find_header(&headers, "host"), Some("x"));
        let body = read_body(&mut r, &headers).unwrap();
        assert_eq!(body, b"abc");
    }

    #[test]
    fn read_body_into_reuses_capacity() {
        let headers = vec![("Content-Length".to_owned(), "5".to_owned())];
        let mut body = Vec::with_capacity(64);
        body.extend_from_slice(b"stale contents that must vanish");
        let ptr = body.as_ptr();
        let mut r = BufReader::new(&b"hello"[..]);
        read_body_into(&mut r, &headers, &mut body).unwrap();
        assert_eq!(body, b"hello");
        assert_eq!(body.as_ptr(), ptr, "capacity must be reused");
    }

    #[test]
    fn missing_colon_is_bad_http() {
        let raw = "GET / HTTP/1.1\r\nBogusHeader\r\n\r\n";
        let mut r = BufReader::new(raw.as_bytes());
        assert!(read_head(&mut r).is_err());
    }

    #[test]
    fn eof_is_connection_closed() {
        let mut r = BufReader::new(&b""[..]);
        assert!(matches!(
            read_head(&mut r),
            Err(crate::TransportError::ConnectionClosed)
        ));
    }

    #[test]
    fn body_without_length_is_empty() {
        let mut r = BufReader::new(&b"rest"[..]);
        assert_eq!(read_body(&mut r, &[]).unwrap(), b"");
    }

    #[test]
    fn truncated_body_is_closed() {
        let headers = vec![("Content-Length".to_owned(), "10".to_owned())];
        let mut r = BufReader::new(&b"abc"[..]);
        assert!(matches!(
            read_body(&mut r, &headers),
            Err(crate::TransportError::ConnectionClosed)
        ));
    }
}
