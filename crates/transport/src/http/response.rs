//! HTTP responses.

use std::io::{BufRead, Write};

use crate::error::{TransportError, TransportResult};
use crate::http::{find_header, read_body_into, read_head, CRLF};

/// An HTTP/1.1 response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code (200, 404, 500, ...).
    pub status: u16,
    /// Reason phrase.
    pub reason: String,
    /// Headers in arrival order.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// A 200 OK with a typed body.
    pub fn ok(content_type: &str, body: Vec<u8>) -> HttpResponse {
        HttpResponse {
            status: 200,
            reason: "OK".into(),
            headers: vec![("Content-Type".into(), content_type.into())],
            body,
        }
    }

    /// A 404 Not Found.
    pub fn not_found() -> HttpResponse {
        HttpResponse {
            status: 404,
            reason: "Not Found".into(),
            headers: Vec::new(),
            body: b"not found".to_vec(),
        }
    }

    /// A 400 Bad Request with a diagnostic body.
    pub fn bad_request(msg: &str) -> HttpResponse {
        HttpResponse {
            status: 400,
            reason: "Bad Request".into(),
            headers: Vec::new(),
            body: msg.as_bytes().to_vec(),
        }
    }

    /// A 413 Payload Too Large — the typed rejection for a declared
    /// `Content-Length` beyond the server's frame limit.
    pub fn payload_too_large() -> HttpResponse {
        HttpResponse {
            status: 413,
            reason: "Payload Too Large".into(),
            headers: Vec::new(),
            body: b"declared body length exceeds the frame size limit".to_vec(),
        }
    }

    /// A 500 Internal Server Error with a diagnostic body.
    ///
    /// SOAP-over-HTTP maps faults onto 500 responses, so the SOAP binding
    /// uses this constructor for fault envelopes.
    pub fn server_error(body: Vec<u8>) -> HttpResponse {
        HttpResponse {
            status: 500,
            reason: "Internal Server Error".into(),
            headers: Vec::new(),
            body,
        }
    }

    /// A 503 Service Unavailable with a `Retry-After` delta-seconds
    /// header — the explicit overload answer. The hint is rounded up to
    /// at least one second so a sub-second hint never serializes as
    /// `Retry-After: 0` (which some clients read as "hammer away").
    pub fn service_unavailable(retry_after: std::time::Duration) -> HttpResponse {
        let secs = retry_after.as_secs().max(1);
        HttpResponse {
            status: 503,
            reason: "Service Unavailable".into(),
            headers: vec![("Retry-After".into(), secs.to_string())],
            body: b"server overloaded; retry later".to_vec(),
        }
    }

    /// Add a header (chainable).
    pub fn with_header(mut self, name: &str, value: &str) -> HttpResponse {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        find_header(&self.headers, name)
    }

    /// `true` for 2xx statuses.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }

    /// This response as a typed status error, preserving a diagnostic
    /// body prefix and any `Retry-After` header — either delta-seconds
    /// or an RFC 7231 HTTP-date (converted to a delay from now, clamped
    /// to a day), so real-world 503s still stretch the retry backoff.
    pub fn status_error(&self) -> TransportError {
        let retry_after = self
            .header("Retry-After")
            .and_then(crate::http::date::parse_retry_after);
        TransportError::http_status(self.status, &self.reason, &self.body, retry_after)
    }

    /// Serialize onto a stream for a one-shot exchange
    /// (`Connection: close`).
    pub fn write_to(&self, out: &mut impl Write) -> TransportResult<()> {
        self.write_to_with(out, false)
    }

    /// Serialize onto a stream, stating the actual connection
    /// disposition: `Connection: keep-alive` when the sender will serve
    /// another request on this connection, `Connection: close` when it
    /// won't — so clients can trust the header.
    ///
    /// Head and body go out in one vectored write — the body (which may be
    /// a large BXSA payload) is never copied into the head buffer.
    pub fn write_to_with(&self, out: &mut impl Write, keep_alive: bool) -> TransportResult<()> {
        use std::io::IoSlice;

        let mut head = Vec::with_capacity(128);
        self.serialize_head(keep_alive, &mut head);
        let mut bufs = [IoSlice::new(&head), IoSlice::new(&self.body)];
        crate::iovec::write_all_vectored(out, &mut bufs)?;
        out.flush()?;
        Ok(())
    }

    /// Build the wire head (status line through blank line) into a
    /// reusable buffer, adding `Content-Length` and exactly one
    /// `Connection:` header reflecting `keep_alive`. Caller-set
    /// `Connection`/`Content-Length` headers are dropped: the message on
    /// the wire must describe what the connection will actually do.
    pub(crate) fn serialize_head(&self, keep_alive: bool, head: &mut Vec<u8>) {
        use std::io::Write as _;

        head.clear();
        let _ = write!(head, "HTTP/1.1 {} {}{CRLF}", self.status, self.reason);
        for (name, value) in &self.headers {
            if name.eq_ignore_ascii_case("connection")
                || name.eq_ignore_ascii_case("content-length")
            {
                continue;
            }
            let _ = write!(head, "{name}: {value}{CRLF}");
        }
        let _ = write!(head, "Content-Length: {}{CRLF}", self.body.len());
        let disposition: &[u8] = if keep_alive {
            b"Connection: keep-alive\r\n\r\n"
        } else {
            b"Connection: close\r\n\r\n"
        };
        head.extend_from_slice(disposition);
    }

    /// Build the wire head for a **chunked** reply into a reusable
    /// buffer: `Transfer-Encoding: chunked` replaces `Content-Length`,
    /// the body field is ignored, and the caller streams chunks followed
    /// by the zero-chunk terminator.
    pub(crate) fn serialize_chunked_head(&self, keep_alive: bool, head: &mut Vec<u8>) {
        use std::io::Write as _;

        head.clear();
        let _ = write!(head, "HTTP/1.1 {} {}{CRLF}", self.status, self.reason);
        for (name, value) in &self.headers {
            if name.eq_ignore_ascii_case("connection")
                || name.eq_ignore_ascii_case("content-length")
                || name.eq_ignore_ascii_case("transfer-encoding")
            {
                continue;
            }
            let _ = write!(head, "{name}: {value}{CRLF}");
        }
        head.extend_from_slice(b"Transfer-Encoding: chunked\r\n");
        let disposition: &[u8] = if keep_alive {
            b"Connection: keep-alive\r\n\r\n"
        } else {
            b"Connection: close\r\n\r\n"
        };
        head.extend_from_slice(disposition);
    }

    /// An empty placeholder (status 0, no headers, no body) — the
    /// reusable parse target for
    /// [`read_from_into`](HttpResponse::read_from_into).
    pub fn empty() -> HttpResponse {
        HttpResponse {
            status: 0,
            reason: String::new(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Parse a response from a buffered stream.
    pub fn read_from(reader: &mut impl BufRead) -> TransportResult<HttpResponse> {
        let mut response = HttpResponse::empty();
        HttpResponse::read_from_into(reader, &mut response)?;
        Ok(response)
    }

    /// [`read_from`](HttpResponse::read_from) into an existing value,
    /// reusing its body buffer's capacity — the client side of the
    /// pooled-body discipline. On error, `into` holds unspecified but
    /// valid contents.
    pub fn read_from_into(
        reader: &mut impl BufRead,
        into: &mut HttpResponse,
    ) -> TransportResult<()> {
        HttpResponse::read_head_into(reader, into)?;
        read_body_into(reader, &into.headers, &mut into.body)
    }

    /// Parse only the status line and headers into an existing value,
    /// leaving the body buffer untouched — the streaming client reads the
    /// head first to learn whether the reply body is chunked, then pulls
    /// parts (or the buffered body) separately.
    pub fn read_head_into(
        reader: &mut impl BufRead,
        into: &mut HttpResponse,
    ) -> TransportResult<()> {
        let (first, headers) = read_head(reader)?;
        let mut parts = first.splitn(3, ' ');
        let (version, status, reason) = match (parts.next(), parts.next(), parts.next()) {
            (Some(v), Some(s), reason) => (v, s, reason.unwrap_or("")),
            _ => {
                return Err(TransportError::BadHttp {
                    what: format!("bad status line {first:?}"),
                })
            }
        };
        if !version.starts_with("HTTP/1.") {
            return Err(TransportError::BadHttp {
                what: format!("unsupported version {version:?}"),
            });
        }
        let status: u16 = status.parse().map_err(|_| TransportError::BadHttp {
            what: format!("bad status code {status:?}"),
        })?;
        into.status = status;
        into.reason.clear();
        into.reason.push_str(reason);
        into.headers.clear();
        into.headers.extend(headers);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn roundtrip_ok() {
        let resp = HttpResponse::ok("application/octet-stream", vec![1, 2, 3])
            .with_header("X-Run", "42");
        let mut wire = Vec::new();
        resp.write_to(&mut wire).unwrap();
        let back = HttpResponse::read_from(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(back.status, 200);
        assert!(back.is_success());
        assert_eq!(back.header("x-run"), Some("42"));
        assert_eq!(back.body, vec![1, 2, 3]);
    }

    #[test]
    fn error_constructors() {
        assert_eq!(HttpResponse::not_found().status, 404);
        assert_eq!(HttpResponse::bad_request("x").status, 400);
        assert_eq!(HttpResponse::server_error(vec![]).status, 500);
        assert!(!HttpResponse::not_found().is_success());
    }

    #[test]
    fn reason_phrases_with_spaces_survive() {
        let mut wire = Vec::new();
        HttpResponse::not_found().write_to(&mut wire).unwrap();
        let back = HttpResponse::read_from(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(back.reason, "Not Found");
    }

    #[test]
    fn status_error_carries_body_and_retry_after() {
        let resp = HttpResponse {
            status: 503,
            reason: "Service Unavailable".into(),
            headers: vec![("Retry-After".into(), "3".into())],
            body: b"overloaded, come back later".to_vec(),
        };
        match resp.status_error() {
            TransportError::HttpStatus {
                status,
                body_prefix,
                retry_after_secs,
                ..
            } => {
                assert_eq!(status, 503);
                assert_eq!(body_prefix, b"overloaded, come back later");
                assert_eq!(retry_after_secs, Some(3));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn status_error_accepts_http_date_retry_after() {
        // A date in the past means "retry now" — hint of zero, not None.
        let resp = HttpResponse {
            status: 503,
            reason: "Service Unavailable".into(),
            headers: vec![(
                "Retry-After".into(),
                "Sun, 06 Nov 1994 08:49:37 GMT".into(),
            )],
            body: Vec::new(),
        };
        match resp.status_error() {
            TransportError::HttpStatus {
                retry_after_secs, ..
            } => assert_eq!(retry_after_secs, Some(0)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn service_unavailable_carries_a_nonzero_hint() {
        use std::time::Duration;
        let resp = HttpResponse::service_unavailable(Duration::from_millis(200));
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("retry-after"), Some("1"), "rounded up, never 0");
        let resp = HttpResponse::service_unavailable(Duration::from_secs(3));
        assert_eq!(resp.header("retry-after"), Some("3"));
    }

    #[test]
    fn connection_header_reflects_disposition() {
        let resp = HttpResponse::ok("text/plain", b"x".to_vec());
        let mut wire = Vec::new();
        resp.write_to_with(&mut wire, true).unwrap();
        let back = HttpResponse::read_from(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(back.header("connection"), Some("keep-alive"));

        wire.clear();
        resp.write_to(&mut wire).unwrap();
        let back = HttpResponse::read_from(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(back.header("connection"), Some("close"));

        // A handler-set Connection header cannot contradict the wire:
        // exactly one header goes out, stating the actual disposition.
        let lying = resp.clone().with_header("Connection", "keep-alive");
        wire.clear();
        lying.write_to(&mut wire).unwrap();
        let back = HttpResponse::read_from(&mut BufReader::new(&wire[..])).unwrap();
        let count = back
            .headers
            .iter()
            .filter(|(n, _)| n.eq_ignore_ascii_case("connection"))
            .count();
        assert_eq!(count, 1);
        assert_eq!(back.header("connection"), Some("close"));
    }

    #[test]
    fn bad_status_line() {
        let mut r = BufReader::new(&b"HTTP/1.1 abc Oops\r\n\r\n"[..]);
        assert!(HttpResponse::read_from(&mut r).is_err());
    }
}
