//! HTTP client helpers (the libcurl stand-in) and the keep-alive
//! [`HttpConnection`].

use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::time::Instant;

use crate::deadline::Timeouts;
use crate::error::{TransportError, TransportResult};
use crate::framed::connect_stream;
use crate::http::chunked::{self, ChunkDecoder};
use crate::http::request::HttpRequest;
use crate::http::response::HttpResponse;

/// A persistent HTTP/1.1 client connection with keep-alive reuse.
///
/// Requests go out with `Connection: keep-alive`; the socket is kept for
/// the next exchange whenever the server's response promises reuse
/// (explicit `Connection: keep-alive` — a server that says nothing, or
/// `close`, gets a fresh connection next time). Connects are lazy, so
/// constructing one costs nothing until the first exchange.
///
/// **Stale-connection handling.** A kept socket can die between
/// exchanges (server restarted, idle timeout fired). If that surfaces
/// before any response byte arrives — a write-side pipe error or EOF at
/// byte zero — the request provably never reached a handler, so it is
/// resent once on a fresh connection. Errors after the first response
/// byte, and timeouts, are never resent here: whether the exchange is
/// replayable at all is the retry layer's call, not the socket cache's.
#[derive(Debug)]
pub struct HttpConnection {
    addr: String,
    timeouts: Timeouts,
    stream: Option<BufReader<TcpStream>>,
    reuses: u64,
    phase: StreamPhase,
}

/// Where a chunked (streaming) exchange stands on this connection.
#[derive(Debug)]
enum StreamPhase {
    /// No streaming exchange in flight; plain exchanges are fine.
    Idle,
    /// Chunked request head written; parts may be sent.
    Sending,
    /// Chunked reply head read; parts may be pulled. `keep` caches the
    /// response's connection disposition until the terminator arrives.
    Receiving { dec: ChunkDecoder, keep: bool },
}

/// Why one wire attempt failed: a provably-unstarted exchange on a stale
/// kept socket (safe to resend), or a real error.
enum Attempt {
    Stale,
    Fatal(TransportError),
}

impl HttpConnection {
    /// A lazily-connected keep-alive client for `addr` (no timeouts).
    pub fn new(addr: &str) -> HttpConnection {
        HttpConnection {
            addr: addr.to_owned(),
            timeouts: Timeouts::none(),
            stream: None,
            reuses: 0,
            phase: StreamPhase::Idle,
        }
    }

    /// Set the per-phase budgets applied to every exchange (chainable).
    pub fn with_timeouts(mut self, timeouts: Timeouts) -> HttpConnection {
        self.timeouts = timeouts;
        self
    }

    /// Is a socket currently kept for reuse?
    pub fn is_connected(&self) -> bool {
        self.stream.is_some()
    }

    /// Exchanges that reused a kept socket (diagnostics).
    pub fn reuse_count(&self) -> u64 {
        self.reuses
    }

    /// Drop the kept socket (the next exchange reconnects). Abandons any
    /// streaming exchange in flight — the socket cannot be reused with
    /// half a chunked message on it.
    pub fn disconnect(&mut self) {
        self.stream = None;
        self.phase = StreamPhase::Idle;
    }

    /// Send `request` and return the response.
    pub fn exchange(&mut self, request: &HttpRequest) -> TransportResult<HttpResponse> {
        let mut response = HttpResponse::empty();
        self.exchange_into(request, &mut response)?;
        Ok(response)
    }

    /// [`exchange`](HttpConnection::exchange) into a reusable response
    /// value (body capacity kept across calls).
    pub fn exchange_into(
        &mut self,
        request: &HttpRequest,
        response: &mut HttpResponse,
    ) -> TransportResult<()> {
        let timeouts = self.timeouts;
        self.exchange_with_into(request, &timeouts, response)
    }

    /// [`exchange_into`](HttpConnection::exchange_into) with per-call
    /// budgets — the hook deadline-aware callers use to clamp each
    /// exchange to the remaining end-to-end budget.
    pub fn exchange_with_into(
        &mut self,
        request: &HttpRequest,
        timeouts: &Timeouts,
        response: &mut HttpResponse,
    ) -> TransportResult<()> {
        if !matches!(self.phase, StreamPhase::Idle) {
            // A plain exchange over a half-finished chunked message would
            // desynchronize the connection; start fresh instead.
            self.disconnect();
        }
        let mut resent = false;
        loop {
            let reused = self.stream.is_some();
            let reader = self.connected(timeouts)?;
            match try_exchange(reader, request, timeouts, response) {
                Ok(()) => {
                    if crate::http::response_keeps_alive(&response.headers) {
                        if reused {
                            self.reuses += 1;
                        }
                    } else {
                        self.stream = None;
                    }
                    return Ok(());
                }
                Err(Attempt::Stale) if reused && !resent => {
                    // The kept socket had died; nothing reached a
                    // handler, so one resend on a fresh connection.
                    self.stream = None;
                    resent = true;
                }
                Err(Attempt::Stale) => {
                    self.stream = None;
                    return Err(TransportError::ConnectionClosed);
                }
                Err(Attempt::Fatal(e)) => {
                    self.stream = None;
                    return Err(e);
                }
            }
        }
    }

    /// The kept socket, or a fresh connection; per-call budgets are
    /// (re)applied either way.
    fn connected(&mut self, timeouts: &Timeouts) -> TransportResult<&mut BufReader<TcpStream>> {
        if self.stream.is_none() {
            let stream = connect_stream(&self.addr, timeouts.connect)?;
            stream.set_nodelay(true)?;
            self.stream = Some(BufReader::new(stream));
        }
        let reader = self.stream.as_mut().expect("just connected");
        let socket = reader.get_ref();
        socket.set_read_timeout(timeouts.read)?;
        socket.set_write_timeout(timeouts.write)?;
        Ok(reader)
    }

    // --- Streaming (chunked) exchanges -----------------------------------
    //
    // A streaming exchange walks the connection through a small state
    // machine instead of one `exchange` call:
    //
    // ```text
    // stream_begin → stream_send_part* → stream_finish_send
    //   → stream_read_head → (stream_next_part_into* | buffered body)
    // ```
    //
    // Only the head write may transparently reconnect (nothing
    // irreplayable has been sent at that point). Any failure after the
    // first part is fatal for this exchange and poisons the socket — the
    // retry decision belongs to the caller, who knows whether the
    // operation is replayable.

    /// Start a chunked (streaming) request: write the head with
    /// `Transfer-Encoding: chunked`. `request.body` is ignored — the
    /// payload goes out via [`stream_send_part`](Self::stream_send_part).
    pub fn stream_begin(&mut self, request: &HttpRequest) -> TransportResult<()> {
        let timeouts = self.timeouts;
        self.stream_begin_with(request, &timeouts)
    }

    /// [`stream_begin`](Self::stream_begin) with per-call budgets.
    pub fn stream_begin_with(
        &mut self,
        request: &HttpRequest,
        timeouts: &Timeouts,
    ) -> TransportResult<()> {
        if !matches!(self.phase, StreamPhase::Idle) {
            self.disconnect();
        }
        let mut resent = false;
        loop {
            let reused = self.stream.is_some();
            let reader = self.connected(timeouts)?;
            match request.write_chunked_head_to(&mut reader.get_ref(), true) {
                Ok(()) => {
                    if reused {
                        self.reuses += 1;
                    }
                    self.phase = StreamPhase::Sending;
                    return Ok(());
                }
                Err(TransportError::Io(io)) if TransportError::io_is_timeout(&io) => {
                    self.stream = None;
                    return Err(TransportError::TimedOut {
                        elapsed: std::time::Duration::ZERO,
                        budget: timeouts.write.unwrap_or_default(),
                    });
                }
                Err(TransportError::Io(io)) if is_stale_pipe(&io) && reused && !resent => {
                    self.stream = None;
                    resent = true;
                }
                Err(e) => {
                    self.stream = None;
                    return Err(e);
                }
            }
        }
    }

    /// Send one message part as one chunk. Empty parts are skipped (an
    /// empty chunk would terminate the body).
    pub fn stream_send_part(&mut self, part: &[u8]) -> TransportResult<()> {
        if !matches!(self.phase, StreamPhase::Sending) {
            return Err(TransportError::BadHttp {
                what: "stream_send_part outside a streaming send".into(),
            });
        }
        if part.is_empty() {
            return Ok(());
        }
        let reader = self.stream.as_mut().expect("sending phase has a socket");
        if let Err(e) = chunked::write_chunk_to(&mut reader.get_ref(), part) {
            self.disconnect();
            return Err(e);
        }
        Ok(())
    }

    /// Terminate the request body (zero-length chunk) and flush.
    pub fn stream_finish_send(&mut self) -> TransportResult<()> {
        use std::io::Write as _;

        if !matches!(self.phase, StreamPhase::Sending) {
            return Err(TransportError::BadHttp {
                what: "stream_finish_send outside a streaming send".into(),
            });
        }
        let reader = self.stream.as_mut().expect("sending phase has a socket");
        let mut socket = reader.get_ref();
        if let Err(e) = socket
            .write_all(b"0\r\n\r\n")
            .and_then(|()| socket.flush())
        {
            self.disconnect();
            return Err(TransportError::Io(e));
        }
        Ok(())
    }

    /// Read the response head. Returns `true` when the reply body is
    /// chunked — pull parts with
    /// [`stream_next_part_into`](Self::stream_next_part_into) until it
    /// returns `false`. Returns `false` when the reply was buffered
    /// (e.g. a fault): the whole body is already in `response.body` and
    /// the exchange is complete.
    pub fn stream_read_head(&mut self, response: &mut HttpResponse) -> TransportResult<bool> {
        if !matches!(self.phase, StreamPhase::Sending) {
            return Err(TransportError::BadHttp {
                what: "stream_read_head outside a streaming exchange".into(),
            });
        }
        let reader = self.stream.as_mut().expect("sending phase has a socket");
        if let Err(e) = HttpResponse::read_head_into(reader, response) {
            self.disconnect();
            return Err(e);
        }
        let keep = crate::http::response_keeps_alive(&response.headers);
        if crate::http::body_is_chunked(&response.headers) {
            self.phase = StreamPhase::Receiving {
                dec: ChunkDecoder::new(),
                keep,
            };
            response.body.clear();
            return Ok(true);
        }
        let result = crate::http::read_body_into(reader, &response.headers, &mut response.body);
        self.phase = StreamPhase::Idle;
        match result {
            Ok(()) => {
                if !keep {
                    self.stream = None;
                }
                Ok(false)
            }
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }

    /// Pull the next reply part (one chunk) into `out` (contents
    /// replaced). Returns `false` once the terminator has been consumed —
    /// the exchange is complete and the socket is kept per the response's
    /// connection disposition. Parts larger than `max` are refused.
    pub fn stream_next_part_into(
        &mut self,
        out: &mut Vec<u8>,
        max: usize,
    ) -> TransportResult<bool> {
        let StreamPhase::Receiving { ref mut dec, keep } = self.phase else {
            return Err(TransportError::BadHttp {
                what: "stream_next_part_into outside a streaming reply".into(),
            });
        };
        let reader = self.stream.as_mut().expect("receiving phase has a socket");
        match chunked::read_one_chunk_into(reader, dec, out, max) {
            Ok(true) => Ok(true),
            Ok(false) => {
                self.phase = StreamPhase::Idle;
                if !keep {
                    self.stream = None;
                }
                Ok(false)
            }
            Err(e) => {
                self.disconnect();
                Err(e)
            }
        }
    }
}

/// One wire attempt on an established connection.
fn try_exchange(
    reader: &mut BufReader<TcpStream>,
    request: &HttpRequest,
    timeouts: &Timeouts,
    response: &mut HttpResponse,
) -> Result<(), Attempt> {
    let started = Instant::now();
    if let Err(e) = request.write_to_with(&mut reader.get_ref(), true) {
        return Err(match e {
            TransportError::Io(io) if TransportError::io_is_timeout(&io) => {
                Attempt::Fatal(TransportError::TimedOut {
                    elapsed: started.elapsed(),
                    budget: timeouts.write.unwrap_or_default(),
                })
            }
            TransportError::Io(io) if is_stale_pipe(&io) => Attempt::Stale,
            TransportError::ConnectionClosed => Attempt::Stale,
            other => Attempt::Fatal(other),
        });
    }
    // Peek before parsing: EOF (or a reset) at response byte zero means
    // the peer closed without seeing the request — the stale-socket case.
    let started = Instant::now();
    match reader.fill_buf() {
        Ok([]) => return Err(Attempt::Stale),
        Ok(_) => {}
        Err(io) if TransportError::io_is_timeout(&io) => {
            return Err(Attempt::Fatal(TransportError::TimedOut {
                elapsed: started.elapsed(),
                budget: timeouts.read.unwrap_or_default(),
            }))
        }
        Err(io) if is_stale_pipe(&io) => return Err(Attempt::Stale),
        Err(io) => return Err(Attempt::Fatal(TransportError::Io(io))),
    }
    HttpResponse::read_from_into(reader, response).map_err(|e| match e {
        TransportError::Io(io) if TransportError::io_is_timeout(&io) => {
            Attempt::Fatal(TransportError::TimedOut {
                elapsed: started.elapsed(),
                budget: timeouts.read.unwrap_or_default(),
            })
        }
        other => Attempt::Fatal(other),
    })
}

/// Error kinds that mean "the kept peer was already gone".
fn is_stale_pipe(io: &std::io::Error) -> bool {
    matches!(
        io.kind(),
        std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::UnexpectedEof
    )
}

/// Send one request to `addr` and read the response (one connection per
/// request, matching the servers' `Connection: close` behaviour), with no
/// time budgets.
pub fn send_request(addr: &str, request: &HttpRequest) -> TransportResult<HttpResponse> {
    send_request_with(addr, request, &Timeouts::none())
}

/// [`send_request`] with per-phase time budgets: connect failures surface
/// as [`TransportError::ConnectFailed`], read/write expiries as
/// [`TransportError::TimedOut`].
pub fn send_request_with(
    addr: &str,
    request: &HttpRequest,
    timeouts: &Timeouts,
) -> TransportResult<HttpResponse> {
    let mut response = HttpResponse::empty();
    send_request_with_into(addr, request, timeouts, &mut response)?;
    Ok(response)
}

/// [`send_request_with`], parsing the response into a reusable value
/// whose body buffer's capacity survives across calls — a client issuing
/// many similarly-sized requests receives allocation-free (bar headers).
pub fn send_request_with_into(
    addr: &str,
    request: &HttpRequest,
    timeouts: &Timeouts,
    response: &mut HttpResponse,
) -> TransportResult<()> {
    let mut stream = connect_stream(addr, timeouts.connect)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(timeouts.read)?;
    stream.set_write_timeout(timeouts.write)?;
    let started = Instant::now();
    request.write_to(&mut stream).map_err(|e| match e {
        TransportError::Io(io) if TransportError::io_is_timeout(&io) => TransportError::TimedOut {
            elapsed: started.elapsed(),
            budget: timeouts.write.unwrap_or_default(),
        },
        other => other,
    })?;
    let started = Instant::now();
    let mut reader = BufReader::new(stream);
    HttpResponse::read_from_into(&mut reader, response).map_err(|e| match e {
        TransportError::Io(io) if TransportError::io_is_timeout(&io) => TransportError::TimedOut {
            elapsed: started.elapsed(),
            budget: timeouts.read.unwrap_or_default(),
        },
        other => other,
    })
}

/// GET `path` from `addr`, returning the body; non-2xx is an error
/// carrying the status, a diagnostic body prefix, and any `Retry-After`.
pub fn http_get(addr: &str, path: &str) -> TransportResult<Vec<u8>> {
    let resp = send_request(addr, &HttpRequest::get(path))?;
    if !resp.is_success() {
        return Err(resp.status_error());
    }
    Ok(resp.body)
}

/// POST `body` to `path` at `addr`, returning the full response (SOAP
/// needs to read fault bodies out of 500s, so status checking is left to
/// the caller).
pub fn http_post(
    addr: &str,
    path: &str,
    content_type: &str,
    body: Vec<u8>,
) -> TransportResult<HttpResponse> {
    send_request(addr, &HttpRequest::post(path, content_type, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::server::HttpServer;
    use std::time::Duration;

    #[test]
    fn get_and_post_against_real_server() {
        let server = HttpServer::bind("127.0.0.1:0", |req| match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/hello") => HttpResponse::ok("text/plain", b"world".to_vec()),
            ("POST", "/echo") => HttpResponse::ok("application/octet-stream", req.body.clone()),
            _ => HttpResponse::not_found(),
        })
        .unwrap();
        let addr = server.local_addr().to_string();

        assert_eq!(http_get(&addr, "/hello").unwrap(), b"world");
        let resp = http_post(&addr, "/echo", "text/plain", b"payload".to_vec()).unwrap();
        assert_eq!(resp.body, b"payload");

        let err = http_get(&addr, "/missing").unwrap_err();
        match err {
            TransportError::HttpStatus {
                status: 404,
                body_prefix,
                ..
            } => assert_eq!(body_prefix, b"not found"),
            other => panic!("expected 404 with body, got {other:?}"),
        }

        server.shutdown();
    }

    #[test]
    fn connect_failure_is_typed() {
        let err = send_request("127.0.0.1:1", &HttpRequest::get("/")).unwrap_err();
        assert!(matches!(err, TransportError::ConnectFailed { .. }), "{err:?}");
    }

    #[test]
    fn silent_server_times_out() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let hold = std::thread::spawn(move || listener.accept().map(|(s, _)| s));
        let err = send_request_with(
            &addr,
            &HttpRequest::get("/"),
            &Timeouts {
                connect: Some(Duration::from_secs(5)),
                read: Some(Duration::from_millis(40)),
                write: Some(Duration::from_secs(5)),
            },
        )
        .unwrap_err();
        assert!(matches!(err, TransportError::TimedOut { .. }), "{err:?}");
        let _ = hold.join();
    }
}
