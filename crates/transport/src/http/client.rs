//! HTTP client helpers (the libcurl stand-in).

use std::io::BufReader;
use std::net::TcpStream;

use crate::error::{TransportError, TransportResult};
use crate::http::request::HttpRequest;
use crate::http::response::HttpResponse;

/// Send one request to `addr` and read the response (one connection per
/// request, matching the servers' `Connection: close` behaviour).
pub fn send_request(addr: &str, request: &HttpRequest) -> TransportResult<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    request.write_to(&mut stream)?;
    let mut reader = BufReader::new(stream);
    HttpResponse::read_from(&mut reader)
}

/// GET `path` from `addr`, returning the body; non-2xx is an error.
pub fn http_get(addr: &str, path: &str) -> TransportResult<Vec<u8>> {
    let resp = send_request(addr, &HttpRequest::get(path))?;
    if !resp.is_success() {
        return Err(TransportError::HttpStatus {
            status: resp.status,
            reason: resp.reason,
        });
    }
    Ok(resp.body)
}

/// POST `body` to `path` at `addr`, returning the full response (SOAP
/// needs to read fault bodies out of 500s, so status checking is left to
/// the caller).
pub fn http_post(
    addr: &str,
    path: &str,
    content_type: &str,
    body: Vec<u8>,
) -> TransportResult<HttpResponse> {
    send_request(addr, &HttpRequest::post(path, content_type, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::server::HttpServer;

    #[test]
    fn get_and_post_against_real_server() {
        let server = HttpServer::bind("127.0.0.1:0", |req| match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/hello") => HttpResponse::ok("text/plain", b"world".to_vec()),
            ("POST", "/echo") => HttpResponse::ok("application/octet-stream", req.body.clone()),
            _ => HttpResponse::not_found(),
        })
        .unwrap();
        let addr = server.local_addr().to_string();

        assert_eq!(http_get(&addr, "/hello").unwrap(), b"world");
        let resp = http_post(&addr, "/echo", "text/plain", b"payload".to_vec()).unwrap();
        assert_eq!(resp.body, b"payload");

        let err = http_get(&addr, "/missing").unwrap_err();
        assert!(matches!(err, TransportError::HttpStatus { status: 404, .. }));

        server.shutdown();
    }
}
