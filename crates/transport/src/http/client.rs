//! HTTP client helpers (the libcurl stand-in).

use std::io::BufReader;
use std::time::Instant;

use crate::deadline::Timeouts;
use crate::error::{TransportError, TransportResult};
use crate::framed::connect_stream;
use crate::http::request::HttpRequest;
use crate::http::response::HttpResponse;

/// Send one request to `addr` and read the response (one connection per
/// request, matching the servers' `Connection: close` behaviour), with no
/// time budgets.
pub fn send_request(addr: &str, request: &HttpRequest) -> TransportResult<HttpResponse> {
    send_request_with(addr, request, &Timeouts::none())
}

/// [`send_request`] with per-phase time budgets: connect failures surface
/// as [`TransportError::ConnectFailed`], read/write expiries as
/// [`TransportError::TimedOut`].
pub fn send_request_with(
    addr: &str,
    request: &HttpRequest,
    timeouts: &Timeouts,
) -> TransportResult<HttpResponse> {
    let mut response = HttpResponse::empty();
    send_request_with_into(addr, request, timeouts, &mut response)?;
    Ok(response)
}

/// [`send_request_with`], parsing the response into a reusable value
/// whose body buffer's capacity survives across calls — a client issuing
/// many similarly-sized requests receives allocation-free (bar headers).
pub fn send_request_with_into(
    addr: &str,
    request: &HttpRequest,
    timeouts: &Timeouts,
    response: &mut HttpResponse,
) -> TransportResult<()> {
    let mut stream = connect_stream(addr, timeouts.connect)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(timeouts.read)?;
    stream.set_write_timeout(timeouts.write)?;
    let started = Instant::now();
    request.write_to(&mut stream).map_err(|e| match e {
        TransportError::Io(io) if TransportError::io_is_timeout(&io) => TransportError::TimedOut {
            elapsed: started.elapsed(),
            budget: timeouts.write.unwrap_or_default(),
        },
        other => other,
    })?;
    let started = Instant::now();
    let mut reader = BufReader::new(stream);
    HttpResponse::read_from_into(&mut reader, response).map_err(|e| match e {
        TransportError::Io(io) if TransportError::io_is_timeout(&io) => TransportError::TimedOut {
            elapsed: started.elapsed(),
            budget: timeouts.read.unwrap_or_default(),
        },
        other => other,
    })
}

/// GET `path` from `addr`, returning the body; non-2xx is an error
/// carrying the status, a diagnostic body prefix, and any `Retry-After`.
pub fn http_get(addr: &str, path: &str) -> TransportResult<Vec<u8>> {
    let resp = send_request(addr, &HttpRequest::get(path))?;
    if !resp.is_success() {
        return Err(resp.status_error());
    }
    Ok(resp.body)
}

/// POST `body` to `path` at `addr`, returning the full response (SOAP
/// needs to read fault bodies out of 500s, so status checking is left to
/// the caller).
pub fn http_post(
    addr: &str,
    path: &str,
    content_type: &str,
    body: Vec<u8>,
) -> TransportResult<HttpResponse> {
    send_request(addr, &HttpRequest::post(path, content_type, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::server::HttpServer;
    use std::time::Duration;

    #[test]
    fn get_and_post_against_real_server() {
        let server = HttpServer::bind("127.0.0.1:0", |req| match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/hello") => HttpResponse::ok("text/plain", b"world".to_vec()),
            ("POST", "/echo") => HttpResponse::ok("application/octet-stream", req.body.clone()),
            _ => HttpResponse::not_found(),
        })
        .unwrap();
        let addr = server.local_addr().to_string();

        assert_eq!(http_get(&addr, "/hello").unwrap(), b"world");
        let resp = http_post(&addr, "/echo", "text/plain", b"payload".to_vec()).unwrap();
        assert_eq!(resp.body, b"payload");

        let err = http_get(&addr, "/missing").unwrap_err();
        match err {
            TransportError::HttpStatus {
                status: 404,
                body_prefix,
                ..
            } => assert_eq!(body_prefix, b"not found"),
            other => panic!("expected 404 with body, got {other:?}"),
        }

        server.shutdown();
    }

    #[test]
    fn connect_failure_is_typed() {
        let err = send_request("127.0.0.1:1", &HttpRequest::get("/")).unwrap_err();
        assert!(matches!(err, TransportError::ConnectFailed { .. }), "{err:?}");
    }

    #[test]
    fn silent_server_times_out() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let hold = std::thread::spawn(move || listener.accept().map(|(s, _)| s));
        let err = send_request_with(
            &addr,
            &HttpRequest::get("/"),
            &Timeouts {
                connect: Some(Duration::from_secs(5)),
                read: Some(Duration::from_millis(40)),
                write: Some(Duration::from_secs(5)),
            },
        )
        .unwrap_err();
        assert!(matches!(err, TransportError::TimedOut { .. }), "{err:?}");
        let _ = hold.join();
    }
}
