//! HTTP/1.1 chunked transfer-encoding (RFC 9112 §7.1).
//!
//! Chunked framing is what makes end-to-end streaming possible over
//! HTTP/1.1: neither side needs to know the body length up front, and —
//! by this stack's streaming convention — **each chunk carries exactly
//! one message part**, so the chunk boundaries double as part framing
//! and no inner length-prefix protocol is needed. The zero-length chunk
//! terminates the body; trailers are accepted and discarded.
//!
//! Both the incremental state machine ([`ChunkDecoder`], used by the
//! reactor's connection driver where reads arrive in arbitrary slices)
//! and the blocking reader helpers (used by the client) live here.

use std::io::BufRead;

use crate::error::{TransportError, TransportResult};

/// Upper bound on a chunk-size line (hex digits + optional extension +
/// CRLF). Hostile peers can otherwise stream an unbounded "size line".
pub const MAX_CHUNK_SIZE_LINE: usize = 256;

/// Upper bound on the trailer section after the final chunk.
pub const MAX_TRAILER_LEN: usize = 8 * 1024;

/// Render `n` as a hex chunk-size line (`digits CRLF`) into `buf`,
/// returning the start index of the rendered line (no allocation).
fn size_line(buf: &mut [u8; 18], mut n: usize) -> usize {
    buf[16] = b'\r';
    buf[17] = b'\n';
    let mut i = 16;
    loop {
        i -= 1;
        buf[i] = b"0123456789abcdef"[n & 0xf];
        n >>= 4;
        if n == 0 {
            break;
        }
    }
    i
}

/// Append one data chunk (`size-in-hex CRLF data CRLF`) to `out`.
pub fn write_chunk(out: &mut Vec<u8>, data: &[u8]) {
    let mut line = [0u8; 18];
    let i = size_line(&mut line, data.len());
    out.extend_from_slice(&line[i..]);
    out.extend_from_slice(data);
    out.extend_from_slice(b"\r\n");
}

/// Write one data chunk straight to a stream. The size line and trailing
/// CRLF go out with the payload in one vectored write — the payload is
/// never copied.
pub fn write_chunk_to(out: &mut impl std::io::Write, data: &[u8]) -> TransportResult<()> {
    use std::io::IoSlice;

    let mut line = [0u8; 18];
    let i = size_line(&mut line, data.len());
    let mut bufs = [
        IoSlice::new(&line[i..]),
        IoSlice::new(data),
        IoSlice::new(b"\r\n"),
    ];
    crate::iovec::write_all_vectored(out, &mut bufs)?;
    Ok(())
}

/// Append the terminating zero-length chunk (no trailers) to `out`.
pub fn write_final_chunk(out: &mut Vec<u8>) {
    out.extend_from_slice(b"0\r\n\r\n");
}

fn bad(what: impl Into<String>) -> TransportError {
    TransportError::BadHttp { what: what.into() }
}

/// Map a read-side io error: an unexpected EOF means the peer hung up.
fn read_io(e: std::io::Error) -> TransportError {
    match e.kind() {
        std::io::ErrorKind::UnexpectedEof => TransportError::ConnectionClosed,
        _ => TransportError::Io(e),
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    /// Accumulating the chunk-size line (bytes seen so far).
    SizeLine { seen: usize },
    /// Inside a chunk's payload.
    Data { remaining: usize },
    /// Expecting the CRLF that closes a data chunk.
    DataEnd { seen_cr: bool },
    /// After the zero chunk: discarding trailer lines until a blank one.
    Trailers { line_len: usize, total: usize },
    /// Terminator consumed; the message is complete.
    Done,
}

/// One step of [`ChunkDecoder::advance`].
#[derive(Debug, PartialEq)]
pub enum ChunkEvent<'a> {
    /// The input was exhausted mid-element; feed more bytes.
    NeedMore,
    /// A run of chunk payload. `chunk_done` marks the last run of the
    /// current chunk — under the one-part-per-chunk convention, the
    /// moment a complete part has been delivered.
    Data {
        /// Payload bytes (possibly a fraction of the chunk).
        payload: &'a [u8],
        /// True when this run completes the current chunk.
        chunk_done: bool,
    },
    /// The terminating chunk (and any trailers) has been consumed: the
    /// body is complete. Bytes after this belong to the next message.
    End,
}

/// Incremental chunked-body decoder.
///
/// Push-parse: call [`advance`](ChunkDecoder::advance) with whatever
/// bytes are on hand; it returns how many it consumed and what they
/// meant. The decoder never buffers payload — it borrows it straight
/// from the input slice — so the caller controls all memory.
#[derive(Debug)]
pub struct ChunkDecoder {
    state: State,
    /// Running value of a chunk-size line split across reads.
    partial: PartialSize,
}

impl Default for ChunkDecoder {
    fn default() -> ChunkDecoder {
        ChunkDecoder::new()
    }
}

impl ChunkDecoder {
    /// A decoder at the start of a chunked body.
    pub fn new() -> ChunkDecoder {
        ChunkDecoder {
            state: State::SizeLine { seen: 0 },
            partial: PartialSize::default(),
        }
    }

    /// Reset to the start of a (new) chunked body.
    pub fn reset(&mut self) {
        self.state = State::SizeLine { seen: 0 };
        self.partial = PartialSize::default();
    }

    /// Has the terminating chunk been consumed?
    pub fn is_done(&self) -> bool {
        self.state == State::Done
    }

    /// Consume a prefix of `input`; returns `(bytes_consumed, event)`.
    ///
    /// `NeedMore` with zero consumed means the element spans the input
    /// boundary — feed more bytes and call again with the *unconsumed*
    /// remainder plus the new bytes.
    pub fn advance<'a>(&mut self, input: &'a [u8]) -> TransportResult<(usize, ChunkEvent<'a>)> {
        match self.state {
            State::SizeLine { seen } => self.take_size_line(input, seen),
            State::Data { remaining } => {
                if input.is_empty() {
                    return Ok((0, ChunkEvent::NeedMore));
                }
                let take = remaining.min(input.len());
                let payload = &input[..take];
                if take == remaining {
                    self.state = State::DataEnd { seen_cr: false };
                    Ok((take, ChunkEvent::Data { payload, chunk_done: true }))
                } else {
                    self.state = State::Data { remaining: remaining - take };
                    Ok((take, ChunkEvent::Data { payload, chunk_done: false }))
                }
            }
            State::DataEnd { mut seen_cr } => {
                let mut used = 0;
                for &b in input {
                    used += 1;
                    match (seen_cr, b) {
                        (false, b'\r') => seen_cr = true,
                        (true, b'\n') => {
                            self.state = State::SizeLine { seen: 0 };
                            // Tail-call into the next element so a caller
                            // looping on advance() never stalls on an
                            // already-buffered size line.
                            let (n, event) = self.advance(&input[used..])?;
                            return Ok((used + n, event));
                        }
                        _ => return Err(bad("chunk data not followed by CRLF")),
                    }
                }
                self.state = State::DataEnd { seen_cr };
                Ok((used, ChunkEvent::NeedMore))
            }
            State::Trailers { mut line_len, mut total } => {
                let mut used = 0;
                for &b in input {
                    used += 1;
                    total += 1;
                    if total > MAX_TRAILER_LEN {
                        return Err(bad("chunked trailer section too large"));
                    }
                    match b {
                        b'\n' => {
                            // Lines are CRLF-terminated (bare LF
                            // tolerated); a blank line ends the section.
                            if line_len == 0 {
                                self.state = State::Done;
                                return Ok((used, ChunkEvent::End));
                            }
                            line_len = 0;
                        }
                        b'\r' => {} // doesn't count as line content
                        _ => line_len += 1,
                    }
                }
                self.state = State::Trailers { line_len, total };
                Ok((used, ChunkEvent::NeedMore))
            }
            State::Done => Ok((0, ChunkEvent::End)),
        }
    }

    fn take_size_line<'a>(
        &mut self,
        input: &'a [u8],
        seen: usize,
    ) -> TransportResult<(usize, ChunkEvent<'a>)> {
        // Find the LF ending the size line within the input on hand.
        match input.iter().position(|&b| b == b'\n') {
            Some(lf) => {
                if seen + lf + 1 > MAX_CHUNK_SIZE_LINE {
                    return Err(bad("chunk-size line too long"));
                }
                // `seen` bytes were consumed on earlier calls with this
                // state, so this line's prior bytes are gone — but a size
                // line split across reads is rare and the split prefix
                // was validated below before being dropped. Reconstruct
                // is unnecessary: we parse incrementally via `partial`.
                let line = &input[..lf];
                let line = line.strip_suffix(b"\r").unwrap_or(line);
                let size = parse_partial_size(line, seen != 0, self.partial_size())?;
                self.clear_partial();
                if size == 0 {
                    self.state = State::Trailers { line_len: 0, total: 0 };
                    let (n, event) = self.advance(&input[lf + 1..])?;
                    Ok((lf + 1 + n, event))
                } else {
                    self.state = State::Data { remaining: size };
                    let (n, event) = self.advance(&input[lf + 1..])?;
                    Ok((lf + 1 + n, event))
                }
            }
            None => {
                let new_seen = seen + input.len();
                if new_seen > MAX_CHUNK_SIZE_LINE {
                    return Err(bad("chunk-size line too long"));
                }
                // Absorb the partial line into the running hex value so
                // nothing needs re-feeding.
                self.absorb_partial(input)?;
                self.state = State::SizeLine { seen: new_seen };
                Ok((input.len(), ChunkEvent::NeedMore))
            }
        }
    }

    fn partial_size(&self) -> PartialSize {
        self.partial
    }

    fn clear_partial(&mut self) {
        self.partial = PartialSize::default();
    }

    fn absorb_partial(&mut self, bytes: &[u8]) -> TransportResult<()> {
        for &b in bytes {
            self.partial.push(b)?;
        }
        Ok(())
    }
}

/// Running state for a chunk-size line split across reads: the hex value
/// accumulated so far, and whether an extension/CR was reached (after
/// which digits no longer count).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct PartialSize {
    value: usize,
    digits: usize,
    in_extension: bool,
}

impl PartialSize {
    fn push(&mut self, b: u8) -> TransportResult<()> {
        if self.in_extension || b == b'\r' {
            self.in_extension = true;
            return Ok(());
        }
        if b == b';' {
            if self.digits == 0 {
                return Err(bad("chunk-size line missing size"));
            }
            self.in_extension = true;
            return Ok(());
        }
        let digit = match b {
            b'0'..=b'9' => b - b'0',
            b'a'..=b'f' => b - b'a' + 10,
            b'A'..=b'F' => b - b'A' + 10,
            _ => return Err(bad(format!("bad chunk-size byte 0x{b:02x}"))),
        };
        self.digits += 1;
        if self.digits > 15 {
            return Err(bad("chunk size overflows"));
        }
        self.value = (self.value << 4) | digit as usize;
        Ok(())
    }

    fn finish(self) -> TransportResult<usize> {
        if self.digits == 0 {
            return Err(bad("chunk-size line missing size"));
        }
        Ok(self.value)
    }
}

fn parse_partial_size(
    line: &[u8],
    _continued: bool,
    mut partial: PartialSize,
) -> TransportResult<usize> {
    for &b in line {
        partial.push(b)?;
    }
    partial.finish()
}

/// Blocking helper: read a complete chunked body from `r` into `out`
/// (replacing its contents), bounded by `max` total payload bytes.
pub fn read_chunked_body_into(
    r: &mut impl BufRead,
    out: &mut Vec<u8>,
    max: usize,
) -> TransportResult<()> {
    out.clear();
    let mut dec = ChunkDecoder::new();
    loop {
        let buf = r.fill_buf().map_err(read_io)?;
        if buf.is_empty() {
            return Err(TransportError::ConnectionClosed);
        }
        let mut pos = 0;
        let mut done = false;
        while pos < buf.len() {
            let (n, event) = dec.advance(&buf[pos..])?;
            pos += n;
            match event {
                ChunkEvent::NeedMore => break,
                ChunkEvent::Data { payload, .. } => {
                    if out.len() + payload.len() > max {
                        return Err(TransportError::FrameTooLarge {
                            declared: (out.len() + payload.len()) as u64,
                        });
                    }
                    out.extend_from_slice(payload);
                }
                ChunkEvent::End => {
                    done = true;
                    break;
                }
            }
        }
        r.consume(pos);
        if done {
            return Ok(());
        }
    }
}

/// Blocking helper: read exactly one chunk (one streamed part) from `r`
/// into `out`. Returns `false` when the terminating chunk was read
/// instead (trailers consumed, stream complete).
pub fn read_one_chunk_into(
    r: &mut impl BufRead,
    dec: &mut ChunkDecoder,
    out: &mut Vec<u8>,
    max: usize,
) -> TransportResult<bool> {
    out.clear();
    loop {
        let buf = r.fill_buf().map_err(read_io)?;
        if buf.is_empty() {
            return Err(TransportError::ConnectionClosed);
        }
        let mut pos = 0;
        let mut outcome = None;
        while pos < buf.len() {
            let (n, event) = dec.advance(&buf[pos..])?;
            pos += n;
            match event {
                ChunkEvent::NeedMore => break,
                ChunkEvent::Data { payload, chunk_done } => {
                    if out.len() + payload.len() > max {
                        return Err(TransportError::FrameTooLarge {
                            declared: (out.len() + payload.len()) as u64,
                        });
                    }
                    out.extend_from_slice(payload);
                    if chunk_done {
                        outcome = Some(true);
                        break;
                    }
                }
                ChunkEvent::End => {
                    outcome = Some(false);
                    break;
                }
            }
        }
        r.consume(pos);
        if let Some(more) = outcome {
            return Ok(more);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn drive(dec: &mut ChunkDecoder, wire: &[u8], step: usize) -> TransportResult<Vec<Vec<u8>>> {
        let mut parts = Vec::new();
        let mut part = Vec::new();
        let mut fed = 0;
        while fed < wire.len() {
            let end = (fed + step).min(wire.len());
            let mut window = &wire[fed..end];
            while !window.is_empty() {
                let (n, event) = dec.advance(window)?;
                window = &window[n..];
                match event {
                    ChunkEvent::NeedMore => break,
                    ChunkEvent::Data { payload, chunk_done } => {
                        part.extend_from_slice(payload);
                        if chunk_done {
                            parts.push(std::mem::take(&mut part));
                        }
                    }
                    ChunkEvent::End => return Ok(parts),
                }
            }
            fed = end;
        }
        Ok(parts)
    }

    #[test]
    fn roundtrip_at_every_split_size() {
        let mut wire = Vec::new();
        write_chunk(&mut wire, b"hello");
        write_chunk(&mut wire, b"");
        // An empty write_chunk would terminate; guard against misuse in
        // this test by writing real chunks only.
        wire.clear();
        write_chunk(&mut wire, b"hello");
        write_chunk(&mut wire, &[0xAB; 300]);
        write_chunk(&mut wire, b"x");
        write_final_chunk(&mut wire);
        for step in [1usize, 2, 3, 7, 100, 4096] {
            let mut dec = ChunkDecoder::new();
            let parts = drive(&mut dec, &wire, step).unwrap();
            assert_eq!(parts.len(), 3, "step {step}");
            assert_eq!(parts[0], b"hello");
            assert_eq!(parts[1], vec![0xAB; 300]);
            assert_eq!(parts[2], b"x");
            assert!(dec.is_done());
        }
    }

    #[test]
    fn trailers_are_consumed_and_discarded() {
        let mut wire = Vec::new();
        write_chunk(&mut wire, b"data");
        wire.extend_from_slice(b"0\r\nX-Checksum: abc123\r\nX-Other: y\r\n\r\n");
        for step in [1usize, 5, 1000] {
            let mut dec = ChunkDecoder::new();
            let parts = drive(&mut dec, &wire, step).unwrap();
            assert_eq!(parts, vec![b"data".to_vec()], "step {step}");
            assert!(dec.is_done());
        }
    }

    #[test]
    fn chunk_extensions_are_ignored() {
        let wire = b"5;ext=1\r\nhello\r\n0\r\n\r\n";
        let mut dec = ChunkDecoder::new();
        let parts = drive(&mut dec, wire, 4096).unwrap();
        assert_eq!(parts, vec![b"hello".to_vec()]);
    }

    #[test]
    fn oversized_size_line_is_rejected() {
        let mut wire = vec![b'1'; MAX_CHUNK_SIZE_LINE + 8];
        wire.extend_from_slice(b"\r\n");
        let mut dec = ChunkDecoder::new();
        assert!(drive(&mut dec, &wire, 4096).is_err());
        // Also when the line arrives one byte at a time.
        let mut dec = ChunkDecoder::new();
        assert!(drive(&mut dec, &wire, 1).is_err());
    }

    #[test]
    fn garbage_size_line_is_rejected() {
        let mut dec = ChunkDecoder::new();
        assert!(drive(&mut dec, b"zz\r\n", 4096).is_err());
        let mut dec = ChunkDecoder::new();
        assert!(drive(&mut dec, b"\r\n", 4096).is_err(), "empty size");
    }

    #[test]
    fn missing_chunk_crlf_is_rejected() {
        let mut dec = ChunkDecoder::new();
        assert!(drive(&mut dec, b"3\r\nabcXX", 4096).is_err());
    }

    #[test]
    fn blocking_reader_assembles_whole_body() {
        let mut wire = Vec::new();
        write_chunk(&mut wire, b"abc");
        write_chunk(&mut wire, b"defg");
        write_final_chunk(&mut wire);
        let mut r = BufReader::with_capacity(4, &wire[..]);
        let mut out = b"stale".to_vec();
        read_chunked_body_into(&mut r, &mut out, 1 << 20).unwrap();
        assert_eq!(out, b"abcdefg");
    }

    #[test]
    fn blocking_reader_enforces_cap() {
        let mut wire = Vec::new();
        write_chunk(&mut wire, &[0u8; 64]);
        write_final_chunk(&mut wire);
        let mut r = BufReader::new(&wire[..]);
        let mut out = Vec::new();
        assert!(matches!(
            read_chunked_body_into(&mut r, &mut out, 16),
            Err(TransportError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn premature_eof_is_connection_closed() {
        let mut wire = Vec::new();
        write_chunk(&mut wire, b"hello world");
        let cut = &wire[..wire.len() - 6];
        let mut r = BufReader::new(cut);
        let mut out = Vec::new();
        assert!(matches!(
            read_chunked_body_into(&mut r, &mut out, 1 << 20),
            Err(TransportError::ConnectionClosed)
        ));
    }

    #[test]
    fn one_chunk_reader_yields_parts_then_end() {
        let mut wire = Vec::new();
        write_chunk(&mut wire, b"part-one");
        write_chunk(&mut wire, b"part-two");
        write_final_chunk(&mut wire);
        wire.extend_from_slice(b"LEFTOVER"); // next message's bytes
        let mut r = BufReader::with_capacity(3, &wire[..]);
        let mut dec = ChunkDecoder::new();
        let mut out = Vec::new();
        assert!(read_one_chunk_into(&mut r, &mut dec, &mut out, 1 << 20).unwrap());
        assert_eq!(out, b"part-one");
        assert!(read_one_chunk_into(&mut r, &mut dec, &mut out, 1 << 20).unwrap());
        assert_eq!(out, b"part-two");
        assert!(!read_one_chunk_into(&mut r, &mut dec, &mut out, 1 << 20).unwrap());
        // The reader must not have eaten the next message's bytes beyond
        // its BufReader lookahead-consume discipline.
    }

    #[test]
    fn write_chunk_encodes_hex_sizes() {
        let mut out = Vec::new();
        write_chunk(&mut out, &[0u8; 255]);
        assert!(out.starts_with(b"ff\r\n"));
        assert!(out.ends_with(b"\r\n"));
        let mut out = Vec::new();
        write_chunk(&mut out, b"");
        // Zero-length data writes "0\r\n\r\n" — identical to the
        // terminator, so callers must use write_final_chunk explicitly
        // and never stream empty parts.
        assert_eq!(out, b"0\r\n\r\n");
    }
}
