//! HTTP-date parsing for `Retry-After` (RFC 7231 §7.1.1.1).
//!
//! `Retry-After` is either delta-seconds or an HTTP-date; real-world
//! 503s use both. All three date grammars the RFC requires recipients to
//! accept are parsed — IMF-fixdate (`Sun, 06 Nov 1994 08:49:37 GMT`),
//! the obsolete RFC 850 form (`Sunday, 06-Nov-94 08:49:37 GMT`), and
//! ANSI C `asctime()` (`Sun Nov  6 08:49:37 1994`) — without a calendar
//! dependency: civil dates convert to Unix seconds by the
//! days-from-civil algorithm.

use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Dates further out than this are clamped: a hostile or misconfigured
/// server must not be able to schedule a retry for next year.
pub const MAX_DATE_DELAY_SECS: u64 = 24 * 60 * 60;

/// Parse a `Retry-After` value into a delay in whole seconds.
///
/// Delta-seconds parse directly; an HTTP-date becomes the distance from
/// now (clamped to [`MAX_DATE_DELAY_SECS`]), with dates in the past
/// meaning "retry immediately" (`Some(0)`). Unparseable values are
/// `None` — no hint, rather than a guessed one.
pub fn parse_retry_after(value: &str) -> Option<u64> {
    let value = value.trim();
    if let Ok(secs) = value.parse::<u64>() {
        return Some(secs);
    }
    let when = parse_http_date(value)?;
    match when.duration_since(SystemTime::now()) {
        Ok(delay) => Some(delay.as_secs().min(MAX_DATE_DELAY_SECS)),
        Err(_) => Some(0), // already past: retry now
    }
}

/// Parse any of the three RFC 7231 HTTP-date forms.
pub fn parse_http_date(value: &str) -> Option<SystemTime> {
    let fields: Vec<&str> = value.split_ascii_whitespace().collect();
    let (civil, time) = match fields.as_slice() {
        // IMF-fixdate: Sun, 06 Nov 1994 08:49:37 GMT
        [_wkday, day, month, year, time, "GMT"] if _wkday.ends_with(',') => {
            let civil = (
                year.parse::<i64>().ok()?,
                month_number(month)?,
                day.parse::<u32>().ok()?,
            );
            (civil, *time)
        }
        // RFC 850: Sunday, 06-Nov-94 08:49:37 GMT
        [_weekday, date, time, "GMT"] if _weekday.ends_with(',') => {
            let mut parts = date.split('-');
            let day = parts.next()?.parse::<u32>().ok()?;
            let month = month_number(parts.next()?)?;
            let yy = parts.next()?.parse::<i64>().ok()?;
            if parts.next().is_some() {
                return None;
            }
            // Two-digit years: RFC 7231 says interpret as the nearest
            // future-leaning century; the pivot below matches common
            // practice (00-69 → 2000s, 70-99 → 1900s).
            let year = if yy < 70 { 2000 + yy } else { 1900 + yy };
            ((year, month, day), *time)
        }
        // asctime: Sun Nov  6 08:49:37 1994
        [_wkday, month, day, time, year] => {
            let civil = (
                year.parse::<i64>().ok()?,
                month_number(month)?,
                day.parse::<u32>().ok()?,
            );
            (civil, *time)
        }
        _ => return None,
    };
    let (year, month, day) = civil;
    if !(1601..=9999).contains(&year) || day < 1 || day > days_in_month(year, month) {
        // Impossible civil dates (Feb 29 off-leap-year, Sep 31) must be
        // rejected, not silently normalized into the next month by the
        // days-from-civil arithmetic.
        return None;
    }
    let mut hms = time.split(':');
    let hour = hms.next()?.parse::<u64>().ok()?;
    let minute = hms.next()?.parse::<u64>().ok()?;
    let second = hms.next()?.parse::<u64>().ok()?;
    if hms.next().is_some() || hour > 23 || minute > 59 || second > 60 {
        return None;
    }
    let days = days_from_civil(year, month, day);
    let secs = days
        .checked_mul(86_400)?
        .checked_add((hour * 3600 + minute * 60 + second) as i64)?;
    if secs < 0 {
        return None; // pre-epoch: older than any Retry-After worth honoring
    }
    Some(UNIX_EPOCH + Duration::from_secs(secs as u64))
}

fn month_number(name: &str) -> Option<u32> {
    const MONTHS: [&str; 12] = [
        "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
    ];
    MONTHS
        .iter()
        .position(|m| m.eq_ignore_ascii_case(name))
        .map(|i| i as u32 + 1)
}

/// Length of `month` in `year`, Gregorian rules.
fn days_in_month(year: i64, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            let leap = year % 4 == 0 && (year % 100 != 0 || year % 400 == 0);
            if leap {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Days between 1970-01-01 and the given proleptic-Gregorian civil date
/// (Howard Hinnant's `days_from_civil`, shifted so March is month 0 and
/// leap days land at era boundaries).
fn days_from_civil(year: i64, month: u32, day: u32) -> i64 {
    let y = year - i64::from(month <= 2);
    let era = y.div_euclid(400);
    let yoe = y - era * 400; // [0, 399]
    let mp = i64::from((month + 9) % 12); // [0, 11], March = 0
    let doy = (153 * mp + 2) / 5 + i64::from(day) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unix(when: SystemTime) -> u64 {
        when.duration_since(UNIX_EPOCH).unwrap().as_secs()
    }

    #[test]
    fn the_three_rfc7231_forms_agree() {
        // RFC 7231's own example instant in all three grammars.
        let expected = 784_111_777; // 1994-11-06 08:49:37 UTC
        let imf = parse_http_date("Sun, 06 Nov 1994 08:49:37 GMT").unwrap();
        let rfc850 = parse_http_date("Sunday, 06-Nov-94 08:49:37 GMT").unwrap();
        let asctime = parse_http_date("Sun Nov  6 08:49:37 1994").unwrap();
        assert_eq!(unix(imf), expected);
        assert_eq!(unix(rfc850), expected);
        assert_eq!(unix(asctime), expected);
    }

    #[test]
    fn epoch_and_leap_handling() {
        assert_eq!(unix(parse_http_date("Thu, 01 Jan 1970 00:00:00 GMT").unwrap()), 0);
        // Feb 29 exists only on leap years; impossible civil dates are
        // rejected instead of normalized into the following month.
        assert!(parse_http_date("Tue, 29 Feb 2000 12:00:00 GMT").is_some());
        assert!(parse_http_date("Mon, 29 Feb 1900 12:00:00 GMT").is_none());
        assert!(parse_http_date("Wed, 29 Feb 2023 12:00:00 GMT").is_none());
        assert!(parse_http_date("Thu, 31 Sep 2020 12:00:00 GMT").is_none());
        assert!(parse_http_date("Fri, 31 Apr 2020 12:00:00 GMT").is_none());
        assert_eq!(
            unix(parse_http_date("Sat, 01 Jan 2000 00:00:00 GMT").unwrap()),
            946_684_800
        );
    }

    #[test]
    fn garbage_is_rejected() {
        for bad in [
            "",
            "soon",
            "Sun, 06 Nov 1994 08:49:37", // missing GMT
            "Sun, 06 Nov 1994 08:49 GMT", // missing seconds
            "Sun, 06 Xxx 1994 08:49:37 GMT",
            "Sun, 06 Nov 1994 25:49:37 GMT",
            "Sun, 99 Nov 1994 08:49:37 GMT",
            "06 Nov 1994 08:49:37 GMT",
        ] {
            assert!(parse_http_date(bad).is_none(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn retry_after_prefers_delta_seconds() {
        assert_eq!(parse_retry_after("120"), Some(120));
        assert_eq!(parse_retry_after("  7 "), Some(7));
        assert_eq!(parse_retry_after("not a hint"), None);
    }

    #[test]
    fn retry_after_dates_clamp_and_floor() {
        // A date in the past means retry immediately.
        assert_eq!(
            parse_retry_after("Sun, 06 Nov 1994 08:49:37 GMT"),
            Some(0)
        );
        // A far-future date is clamped to the delay cap.
        assert_eq!(
            parse_retry_after("Fri, 31 Dec 9999 23:59:59 GMT"),
            Some(MAX_DATE_DELAY_SECS)
        );
    }

    #[test]
    fn near_future_dates_round_trip_to_sane_delays() {
        let soon = SystemTime::now() + Duration::from_secs(90);
        let days = unix(soon) / 86_400;
        let rem = unix(soon) % 86_400;
        // Re-render as an IMF-fixdate (weekday is not validated).
        let (y, m, d) = civil_from_days(days as i64);
        let months = [
            "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov",
            "Dec",
        ];
        let rendered = format!(
            "Xxx, {:02} {} {} {:02}:{:02}:{:02} GMT",
            d,
            months[(m - 1) as usize],
            y,
            rem / 3600,
            (rem % 3600) / 60,
            rem % 60
        );
        let delay = parse_retry_after(&rendered).unwrap();
        assert!((85..=90).contains(&delay), "got {delay}");
    }

    /// Inverse of `days_from_civil`, test-only.
    fn civil_from_days(z: i64) -> (i64, u32, u32) {
        let z = z + 719_468;
        let era = z.div_euclid(146_097);
        let doe = z - era * 146_097;
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
        let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32;
        (y + i64::from(m <= 2), m, d)
    }
}
