//! Transport-layer errors.

use std::fmt;
use std::time::Duration;

/// How many body bytes [`TransportError::HttpStatus`] preserves for
/// diagnostics. 503 pages and SOAP fault bodies fit their useful prefix
/// in this much; anything longer is truncated, never allocated through.
pub const HTTP_STATUS_BODY_PREFIX: usize = 256;

/// Errors from the framed-TCP and HTTP transports.
#[derive(Debug)]
pub enum TransportError {
    /// Socket/file I/O failure.
    Io(std::io::Error),
    /// A frame length prefix exceeded [`crate::framed::MAX_FRAME_LEN`].
    FrameTooLarge { declared: u64 },
    /// The peer closed the connection mid-message.
    ConnectionClosed,
    /// Establishing the connection failed — refused, unreachable, or
    /// timed out during the handshake. Distinct from [`TransportError::Io`]
    /// because no request bytes can have reached the peer, which makes
    /// this class safe to retry even for non-idempotent operations.
    ConnectFailed {
        /// The address we tried to reach.
        addr: String,
        /// The underlying socket error.
        source: std::io::Error,
    },
    /// A read or write exceeded its configured time budget.
    TimedOut {
        /// How long the operation ran before giving up.
        elapsed: Duration,
        /// The configured budget it exceeded.
        budget: Duration,
    },
    /// Malformed HTTP syntax.
    BadHttp { what: String },
    /// An HTTP response with a non-success status, surfaced by helpers
    /// that expect success.
    HttpStatus {
        status: u16,
        reason: String,
        /// The first [`HTTP_STATUS_BODY_PREFIX`] bytes of the response
        /// body — enough to make a 503 page or fault body actionable.
        body_prefix: Vec<u8>,
        /// A parsed `Retry-After: <seconds>` header, when the server sent
        /// one (503 throttling responses do).
        retry_after_secs: Option<u64>,
    },
}

impl TransportError {
    /// Build an [`TransportError::HttpStatus`], truncating the body to its
    /// diagnostic prefix.
    pub fn http_status(
        status: u16,
        reason: &str,
        body: &[u8],
        retry_after_secs: Option<u64>,
    ) -> TransportError {
        TransportError::HttpStatus {
            status,
            reason: reason.to_owned(),
            body_prefix: body[..body.len().min(HTTP_STATUS_BODY_PREFIX)].to_vec(),
            retry_after_secs,
        }
    }

    /// Does this `io::Error` mean a socket timeout fired? Both kinds
    /// appear in the wild: Unix sockets report `WouldBlock`, Windows
    /// `TimedOut`.
    pub fn io_is_timeout(e: &std::io::Error) -> bool {
        matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        )
    }

    /// Is it safe to retry the request that produced this error even when
    /// the operation is not idempotent?
    ///
    /// True exactly for the failure classes where the server cannot have
    /// processed the request: the connection was never established
    /// ([`TransportError::ConnectFailed`] — refused, unreachable, or
    /// handshake timeout, i.e. a timeout before any bytes were written),
    /// or the server explicitly declined it with `503 Service
    /// Unavailable`. A mid-exchange timeout, reset, or close is *not*
    /// retry-safe: the request may have been executed.
    pub fn retry_safe(&self) -> bool {
        matches!(
            self,
            TransportError::ConnectFailed { .. }
                | TransportError::HttpStatus { status: 503, .. }
        )
    }
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "I/O error: {e}"),
            TransportError::FrameTooLarge { declared } => {
                write!(f, "frame of {declared} bytes exceeds the frame size limit")
            }
            TransportError::ConnectionClosed => write!(f, "peer closed the connection"),
            TransportError::ConnectFailed { addr, source } => {
                write!(f, "connect to {addr} failed: {source}")
            }
            TransportError::TimedOut { elapsed, budget } => write!(
                f,
                "timed out after {:.3}s (budget {:.3}s)",
                elapsed.as_secs_f64(),
                budget.as_secs_f64()
            ),
            TransportError::BadHttp { what } => write!(f, "malformed HTTP: {what}"),
            TransportError::HttpStatus {
                status,
                reason,
                body_prefix,
                retry_after_secs,
            } => {
                write!(f, "HTTP error {status} {reason}")?;
                if let Some(secs) = retry_after_secs {
                    write!(f, " (Retry-After: {secs}s)")?;
                }
                if !body_prefix.is_empty() {
                    write!(f, ": {}", String::from_utf8_lossy(body_prefix))?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Io(e) => Some(e),
            TransportError::ConnectFailed { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> TransportError {
        TransportError::Io(e)
    }
}

/// Result alias for this crate.
pub type TransportResult<T> = Result<T, TransportError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(TransportError::ConnectionClosed.to_string().contains("closed"));
        assert!(TransportError::FrameTooLarge { declared: 99 }
            .to_string()
            .contains("99"));
        assert!(TransportError::http_status(404, "Not Found", b"", None)
            .to_string()
            .contains("404"));
        let s = TransportError::TimedOut {
            elapsed: Duration::from_millis(120),
            budget: Duration::from_millis(100),
        }
        .to_string();
        assert!(s.contains("0.120") && s.contains("0.100"), "{s}");
    }

    #[test]
    fn http_status_carries_and_truncates_body() {
        let long = vec![b'x'; 1000];
        let e = TransportError::http_status(503, "Service Unavailable", &long, Some(2));
        match &e {
            TransportError::HttpStatus {
                body_prefix,
                retry_after_secs,
                ..
            } => {
                assert_eq!(body_prefix.len(), HTTP_STATUS_BODY_PREFIX);
                assert_eq!(*retry_after_secs, Some(2));
            }
            other => panic!("unexpected {other:?}"),
        }
        let s = e.to_string();
        assert!(s.contains("503") && s.contains("xxx") && s.contains("Retry-After: 2s"));
    }

    #[test]
    fn retry_safety_classification() {
        let refused = TransportError::ConnectFailed {
            addr: "10.0.0.1:80".into(),
            source: std::io::ErrorKind::ConnectionRefused.into(),
        };
        assert!(refused.retry_safe());
        assert!(TransportError::http_status(503, "Service Unavailable", b"", None).retry_safe());
        assert!(!TransportError::http_status(500, "Internal Server Error", b"", None).retry_safe());
        assert!(!TransportError::ConnectionClosed.retry_safe());
        assert!(!TransportError::TimedOut {
            elapsed: Duration::ZERO,
            budget: Duration::ZERO
        }
        .retry_safe());
        assert!(!TransportError::Io(std::io::ErrorKind::BrokenPipe.into()).retry_safe());
    }

    #[test]
    fn io_timeout_detection() {
        assert!(TransportError::io_is_timeout(
            &std::io::ErrorKind::WouldBlock.into()
        ));
        assert!(TransportError::io_is_timeout(
            &std::io::ErrorKind::TimedOut.into()
        ));
        assert!(!TransportError::io_is_timeout(
            &std::io::ErrorKind::BrokenPipe.into()
        ));
    }
}
