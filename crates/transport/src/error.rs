//! Transport-layer errors.

use std::fmt;

/// Errors from the framed-TCP and HTTP transports.
#[derive(Debug)]
pub enum TransportError {
    /// Socket/file I/O failure.
    Io(std::io::Error),
    /// A frame length prefix exceeded [`crate::framed::MAX_FRAME_LEN`].
    FrameTooLarge { declared: u64 },
    /// The peer closed the connection mid-message.
    ConnectionClosed,
    /// Malformed HTTP syntax.
    BadHttp { what: String },
    /// An HTTP response with a non-success status, surfaced by helpers
    /// that expect success.
    HttpStatus { status: u16, reason: String },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "I/O error: {e}"),
            TransportError::FrameTooLarge { declared } => {
                write!(f, "frame of {declared} bytes exceeds the frame size limit")
            }
            TransportError::ConnectionClosed => write!(f, "peer closed the connection"),
            TransportError::BadHttp { what } => write!(f, "malformed HTTP: {what}"),
            TransportError::HttpStatus { status, reason } => {
                write!(f, "HTTP error {status} {reason}")
            }
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> TransportError {
        TransportError::Io(e)
    }
}

/// Result alias for this crate.
pub type TransportResult<T> = Result<T, TransportError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(TransportError::ConnectionClosed.to_string().contains("closed"));
        assert!(TransportError::FrameTooLarge { declared: 99 }
            .to_string()
            .contains("99"));
        assert!(TransportError::HttpStatus {
            status: 404,
            reason: "Not Found".into()
        }
        .to_string()
        .contains("404"));
    }
}
