//! Deadlines and timeout budgets.
//!
//! A [`Deadline`] is an absolute point in time by which an operation must
//! finish; [`Timeouts`] is the per-phase (connect/read/write) budget
//! configuration the transports accept. The two compose: a deadline can
//! be narrowed into the socket timeouts for each blocking call along the
//! way, so one end-to-end budget propagates through connect → send →
//! receive instead of each phase getting a full, independent allowance.

use std::time::{Duration, Instant};

use crate::error::{TransportError, TransportResult};

/// An absolute time budget for a multi-step operation.
///
/// `Deadline::within(budget)` starts the clock; each blocking phase asks
/// [`Deadline::remaining`] for what is left and uses that as its socket
/// timeout. Once the budget is spent, `remaining` returns the typed
/// [`TransportError::TimedOut`] so callers at any depth fail with the
/// elapsed/budget pair instead of a bare I/O error.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    started: Instant,
    budget: Option<Duration>,
}

impl Deadline {
    /// No deadline: `remaining()` always yields `None` (block forever).
    pub fn none() -> Deadline {
        Deadline {
            started: Instant::now(),
            budget: None,
        }
    }

    /// A deadline `budget` from now.
    pub fn within(budget: Duration) -> Deadline {
        Deadline {
            started: Instant::now(),
            budget: Some(budget),
        }
    }

    /// Time since the deadline started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// The configured total budget, if any.
    pub fn budget(&self) -> Option<Duration> {
        self.budget
    }

    /// Has the budget been spent?
    pub fn expired(&self) -> bool {
        match self.budget {
            Some(b) => self.elapsed() >= b,
            None => false,
        }
    }

    /// Budget left for the next blocking phase: `Ok(None)` when
    /// unbounded, `Ok(Some(d))` with `d > 0` otherwise, and the typed
    /// timeout error once expired.
    pub fn remaining(&self) -> TransportResult<Option<Duration>> {
        let Some(budget) = self.budget else {
            return Ok(None);
        };
        let elapsed = self.elapsed();
        if elapsed >= budget {
            return Err(TransportError::TimedOut { elapsed, budget });
        }
        Ok(Some(budget - elapsed))
    }

    /// The typed error for this deadline, for callers that detected the
    /// expiry through a socket timeout rather than [`Deadline::remaining`].
    pub fn timed_out(&self) -> TransportError {
        TransportError::TimedOut {
            elapsed: self.elapsed(),
            budget: self.budget.unwrap_or_default(),
        }
    }
}

/// Per-phase timeout budgets for a transport endpoint.
///
/// `None` means block indefinitely (the pre-resilience behaviour, and the
/// default). These map directly onto `TcpStream::connect_timeout`,
/// `set_read_timeout`, and `set_write_timeout`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Timeouts {
    /// Budget for establishing the connection.
    pub connect: Option<Duration>,
    /// Budget for each blocking read.
    pub read: Option<Duration>,
    /// Budget for each blocking write.
    pub write: Option<Duration>,
}

impl Timeouts {
    /// No timeouts anywhere (block forever).
    pub fn none() -> Timeouts {
        Timeouts::default()
    }

    /// One budget applied to all three phases.
    pub fn all(budget: Duration) -> Timeouts {
        Timeouts {
            connect: Some(budget),
            read: Some(budget),
            write: Some(budget),
        }
    }

    /// Narrow every phase budget to what a deadline has left; an expired
    /// deadline surfaces as the typed timeout error.
    pub fn clamped_to(&self, deadline: &Deadline) -> TransportResult<Timeouts> {
        let Some(left) = deadline.remaining()? else {
            return Ok(*self);
        };
        let clamp = |phase: Option<Duration>| Some(phase.map_or(left, |p| p.min(left)));
        Ok(Timeouts {
            connect: clamp(self.connect),
            read: clamp(self.read),
            write: clamp(self.write),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_deadline_never_expires() {
        let d = Deadline::none();
        assert!(!d.expired());
        assert_eq!(d.remaining().unwrap(), None);
    }

    #[test]
    fn expired_deadline_is_typed_error() {
        let d = Deadline::within(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        assert!(d.expired());
        match d.remaining() {
            Err(TransportError::TimedOut { elapsed, budget }) => {
                assert!(elapsed >= budget);
                assert_eq!(budget, Duration::from_millis(1));
            }
            other => panic!("expected TimedOut, got {other:?}"),
        }
    }

    #[test]
    fn remaining_shrinks() {
        let d = Deadline::within(Duration::from_secs(60));
        let r1 = d.remaining().unwrap().unwrap();
        std::thread::sleep(Duration::from_millis(2));
        let r2 = d.remaining().unwrap().unwrap();
        assert!(r2 < r1);
    }

    #[test]
    fn timeouts_clamp_to_deadline() {
        let t = Timeouts {
            connect: Some(Duration::from_secs(100)),
            read: None,
            write: Some(Duration::from_millis(1)),
        };
        let d = Deadline::within(Duration::from_secs(10));
        let clamped = t.clamped_to(&d).unwrap();
        // Longer-than-deadline budgets shrink, unbounded ones are capped,
        // shorter ones survive.
        assert!(clamped.connect.unwrap() <= Duration::from_secs(10));
        assert!(clamped.read.unwrap() <= Duration::from_secs(10));
        assert_eq!(clamped.write, Some(Duration::from_millis(1)));

        let spent = Deadline::within(Duration::ZERO);
        assert!(matches!(
            t.clamped_to(&spent),
            Err(TransportError::TimedOut { .. })
        ));
    }
}
