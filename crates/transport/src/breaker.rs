//! Endpoint-scoped circuit breakers (Nygard, *Release It!*).
//!
//! Retry ([`crate::retry`]) protects one *call*; a breaker protects the
//! *endpoint*. When an endpoint fails persistently, every engine holding
//! a handle to its breaker stops dialing it — failing fast locally
//! instead of burning connect timeouts — until a jittered cooldown
//! elapses and a half-open probe is allowed through to test recovery.
//!
//! The state machine is the classic three-state one:
//!
//! ```text
//!            failure rate over window ≥ threshold
//!   Closed ────────────────────────────────────────▶ Open
//!     ▲                                               │ cooldown elapses
//!     │  N probe successes                            ▼
//!     └───────────────────────────────────────── Half-open
//!                     (any probe failure re-opens, cooldown grows)
//! ```
//!
//! Probe scheduling reuses the retry module's decorrelated-jitter shape
//! (delay ~ U(base, 3·prev), capped) with a per-endpoint seed, so a fleet
//! of processes tripping on the same outage does not re-probe in
//! lockstep.
//!
//! The core type is clock-free: every method takes `now` as a [`Duration`]
//! since an arbitrary epoch, so tests drive it with a virtual clock and
//! never sleep. [`BreakerRegistry`] / [`BreakerHandle`] wrap the core
//! with a real [`Instant`] epoch for production use.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::metrics::{self, BreakerMetrics};

/// Lock `m`, recovering from poisoning instead of propagating it. A
/// breaker guards *endpoint health bookkeeping* — a panicked holder must
/// not cascade into every engine sharing the endpoint. The breaker state
/// machine tolerates a torn update (worst case: one outcome miscounted),
/// so recovery is safe; the event is counted in
/// `bx_breaker_lock_poisoned_total`.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| {
        metrics::lock_poisonings().inc();
        e.into_inner()
    })
}

/// Tuning knobs for one [`CircuitBreaker`] (and, via the registry, for
/// every breaker it creates).
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Sliding window over which the failure rate is measured.
    pub window: Duration,
    /// Failure fraction within the window that trips the breaker
    /// (`0.5` = half the recent calls failed).
    pub failure_threshold: f64,
    /// Minimum outcomes inside the window before the rate is meaningful;
    /// below this the breaker never trips.
    pub min_samples: u32,
    /// Base cooldown before the first half-open probe.
    pub cooldown: Duration,
    /// Cap on the (growing, jittered) cooldown between probes.
    pub cooldown_cap: Duration,
    /// Consecutive probe successes required to close again.
    pub half_open_successes: u32,
    /// Seed for probe-delay jitter. The registry derives a distinct
    /// per-endpoint seed from this.
    pub seed: u64,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            window: Duration::from_secs(10),
            failure_threshold: 0.5,
            min_samples: 5,
            cooldown: Duration::from_millis(250),
            cooldown_cap: Duration::from_secs(30),
            half_open_successes: 2,
            seed: 0x0b1e_a2e5,
        }
    }
}

impl BreakerConfig {
    /// Override the jitter seed (chainable).
    pub fn with_seed(mut self, seed: u64) -> BreakerConfig {
        self.seed = seed;
        self
    }
}

/// Where the breaker is in its state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows; outcomes are tallied.
    Closed,
    /// Fail fast; no traffic until the cooldown elapses.
    Open,
    /// One probe at a time is admitted to test recovery.
    HalfOpen,
}

/// The answer to "may I dial this endpoint right now?".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Permit {
    /// Breaker closed — go ahead.
    Allowed,
    /// Breaker half-open — you are *the* probe; your outcome decides.
    Probe,
    /// Breaker open — do not dial. `retry_after` is the time until the
    /// next probe slot.
    Rejected {
        /// Remaining cooldown before a probe will be admitted.
        retry_after: Duration,
    },
}

impl Permit {
    /// True for [`Permit::Allowed`] and [`Permit::Probe`].
    pub fn admitted(&self) -> bool {
        !matches!(self, Permit::Rejected { .. })
    }
}

/// The clock-free breaker core. All methods take `now` as time since an
/// arbitrary epoch chosen by the caller (a virtual clock in tests, an
/// [`Instant`] origin in [`BreakerHandle`]).
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    /// Recent outcomes as (when, ok), oldest first; pruned to `window`.
    outcomes: VecDeque<(Duration, bool)>,
    /// When the next half-open probe may start (meaningful while Open).
    probe_at: Duration,
    /// Previous cooldown, feeding the decorrelated-jitter growth.
    prev_cooldown: Duration,
    /// A probe is in flight (meaningful while HalfOpen).
    probe_outstanding: bool,
    /// Consecutive probe successes so far (meaningful while HalfOpen).
    probe_successes: u32,
    rng: StdRng,
    trips: u64,
}

impl CircuitBreaker {
    /// A fresh, closed breaker.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        let seed = config.seed;
        let base = config.cooldown;
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            outcomes: VecDeque::new(),
            probe_at: Duration::ZERO,
            prev_cooldown: base,
            probe_outstanding: false,
            probe_successes: 0,
            rng: StdRng::seed_from_u64(seed),
            trips: 0,
        }
    }

    /// Current state, advancing Open → Half-open if the cooldown has
    /// elapsed by `now` (state is lazily evaluated, so a quiescent open
    /// breaker "becomes" half-open only when someone looks).
    pub fn state(&mut self, now: Duration) -> BreakerState {
        if self.state == BreakerState::Open && now >= self.probe_at {
            self.state = BreakerState::HalfOpen;
            self.probe_outstanding = false;
            self.probe_successes = 0;
        }
        self.state
    }

    /// Ask permission to dial. Never blocks; open breakers answer
    /// [`Permit::Rejected`] immediately.
    pub fn preflight(&mut self, now: Duration) -> Permit {
        match self.state(now) {
            BreakerState::Closed => Permit::Allowed,
            BreakerState::Open => Permit::Rejected {
                retry_after: self.probe_at.saturating_sub(now),
            },
            BreakerState::HalfOpen => {
                if self.probe_outstanding {
                    // One probe at a time; others wait a base cooldown.
                    Permit::Rejected {
                        retry_after: self.config.cooldown,
                    }
                } else {
                    self.probe_outstanding = true;
                    Permit::Probe
                }
            }
        }
    }

    /// Record a successful exchange.
    pub fn record_success(&mut self, now: Duration) {
        match self.state {
            BreakerState::Closed => self.push_outcome(now, true),
            BreakerState::HalfOpen => {
                self.probe_outstanding = false;
                self.probe_successes += 1;
                if self.probe_successes >= self.config.half_open_successes {
                    self.state = BreakerState::Closed;
                    self.outcomes.clear();
                    self.prev_cooldown = self.config.cooldown;
                }
            }
            // A success from a call that was in flight when we tripped:
            // stale evidence, ignore.
            BreakerState::Open => {}
        }
    }

    /// Record a failed exchange (endpoint-level: connect refused, timed
    /// out, connection died — *not* an application fault).
    pub fn record_failure(&mut self, now: Duration) {
        match self.state {
            BreakerState::Closed => {
                self.push_outcome(now, false);
                let (total, failed) = self.window_counts(now);
                if total >= self.config.min_samples
                    && failed as f64 >= self.config.failure_threshold * total as f64
                {
                    self.trip(now);
                }
            }
            BreakerState::HalfOpen => {
                self.probe_outstanding = false;
                self.trip(now);
            }
            BreakerState::Open => {}
        }
    }

    /// Time until the next probe slot, if the breaker is open at `now`.
    pub fn retry_after(&mut self, now: Duration) -> Option<Duration> {
        match self.state(now) {
            BreakerState::Open => Some(self.probe_at.saturating_sub(now)),
            _ => None,
        }
    }

    /// How many times this breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Failed fraction of the outcomes inside the sliding window at
    /// `now` (`0.0` when the window is empty).
    pub fn failure_rate(&mut self, now: Duration) -> f64 {
        let (total, failed) = self.window_counts(now);
        if total == 0 {
            0.0
        } else {
            failed as f64 / total as f64
        }
    }

    fn trip(&mut self, now: Duration) {
        // Decorrelated jitter, same shape as RetrySchedule::next_delay:
        // cooldown ~ U(base, 3·prev), capped. Repeated trips grow the
        // cooldown; a close resets it.
        let lo = self.config.cooldown.as_secs_f64();
        let hi = (self.prev_cooldown.as_secs_f64() * 3.0).max(lo);
        let raw = if hi > lo { self.rng.random_range(lo..hi) } else { lo };
        let cooldown = Duration::from_secs_f64(raw).min(self.config.cooldown_cap);
        self.state = BreakerState::Open;
        self.probe_at = now + cooldown;
        self.prev_cooldown = cooldown.max(self.config.cooldown);
        self.outcomes.clear();
        self.trips += 1;
    }

    fn push_outcome(&mut self, now: Duration, ok: bool) {
        self.outcomes.push_back((now, ok));
        self.prune(now);
    }

    fn prune(&mut self, now: Duration) {
        let horizon = now.saturating_sub(self.config.window);
        while let Some(&(t, _)) = self.outcomes.front() {
            if t < horizon {
                self.outcomes.pop_front();
            } else {
                break;
            }
        }
    }

    fn window_counts(&mut self, now: Duration) -> (u32, u32) {
        self.prune(now);
        let total = self.outcomes.len() as u32;
        let failed = self.outcomes.iter().filter(|&&(_, ok)| !ok).count() as u32;
        (total, failed)
    }
}

/// A process-wide registry of breakers keyed by endpoint address, so
/// every engine dialing `"10.0.0.7:9000"` shares one breaker and one
/// view of that endpoint's health.
pub struct BreakerRegistry {
    config: BreakerConfig,
    epoch: Instant,
    breakers: Mutex<HashMap<String, Arc<Mutex<CircuitBreaker>>>>,
}

impl BreakerRegistry {
    /// A registry whose breakers all use `config` (with per-endpoint
    /// jitter seeds derived from `config.seed`).
    pub fn new(config: BreakerConfig) -> BreakerRegistry {
        BreakerRegistry {
            config,
            epoch: Instant::now(),
            breakers: Mutex::new(HashMap::new()),
        }
    }

    /// The shared breaker for `endpoint`, created on first use. Handles
    /// are cheap clones; give one to every engine that dials the
    /// endpoint.
    pub fn handle(&self, endpoint: &str) -> BreakerHandle {
        let mut map = lock_recover(&self.breakers);
        let breaker = map
            .entry(endpoint.to_owned())
            .or_insert_with(|| {
                let config = self
                    .config
                    .clone()
                    .with_seed(self.config.seed ^ fnv1a(endpoint.as_bytes()));
                Arc::new(Mutex::new(CircuitBreaker::new(config)))
            })
            .clone();
        BreakerHandle {
            endpoint: Arc::from(endpoint),
            epoch: self.epoch,
            breaker,
            metrics: BreakerMetrics::for_endpoint(endpoint),
        }
    }

    /// Number of endpoints with a live breaker.
    pub fn len(&self) -> usize {
        lock_recover(&self.breakers).len()
    }

    /// True when no endpoint has been dialed through this registry yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for BreakerRegistry {
    fn default() -> BreakerRegistry {
        BreakerRegistry::new(BreakerConfig::default())
    }
}

/// A clonable, real-clock view of one endpoint's shared breaker.
#[derive(Clone)]
pub struct BreakerHandle {
    endpoint: Arc<str>,
    epoch: Instant,
    breaker: Arc<Mutex<CircuitBreaker>>,
    metrics: Arc<BreakerMetrics>,
}

impl BreakerHandle {
    /// A standalone handle not backed by a registry — for single-engine
    /// use or tests.
    pub fn standalone(endpoint: &str, config: BreakerConfig) -> BreakerHandle {
        BreakerHandle {
            endpoint: Arc::from(endpoint),
            epoch: Instant::now(),
            breaker: Arc::new(Mutex::new(CircuitBreaker::new(config))),
            metrics: BreakerMetrics::for_endpoint(endpoint),
        }
    }

    /// The endpoint this breaker guards.
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// Ask permission to dial now.
    pub fn preflight(&self) -> Permit {
        let now = self.epoch.elapsed();
        let mut b = lock_recover(&self.breaker);
        let permit = b.preflight(now);
        self.observe(&mut b, now);
        permit
    }

    /// Record the outcome of an admitted exchange.
    pub fn record(&self, ok: bool) {
        let now = self.epoch.elapsed();
        let mut b = lock_recover(&self.breaker);
        let trips_before = b.trips();
        if ok {
            b.record_success(now);
        } else {
            b.record_failure(now);
        }
        self.metrics.trips.add(b.trips() - trips_before);
        self.observe(&mut b, now);
    }

    /// Current state (advancing open → half-open if the cooldown is up).
    pub fn state(&self) -> BreakerState {
        let now = self.epoch.elapsed();
        let mut b = lock_recover(&self.breaker);
        let state = b.state(now);
        self.observe(&mut b, now);
        state
    }

    /// How many times the underlying breaker has tripped.
    pub fn trips(&self) -> u64 {
        lock_recover(&self.breaker).trips()
    }

    /// Refresh the exported gauges from the state under the lock.
    fn observe(&self, b: &mut CircuitBreaker, now: Duration) {
        self.metrics.state.set(match b.state(now) {
            BreakerState::Closed => 0.0,
            BreakerState::HalfOpen => 1.0,
            BreakerState::Open => 2.0,
        });
        self.metrics.failure_rate.set(b.failure_rate(now));
    }
}

impl std::fmt::Debug for BreakerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BreakerHandle")
            .field("endpoint", &self.endpoint)
            .finish_non_exhaustive()
    }
}

/// FNV-1a, for deriving per-endpoint jitter seeds.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn test_config() -> BreakerConfig {
        BreakerConfig {
            window: ms(1000),
            failure_threshold: 0.5,
            min_samples: 4,
            cooldown: ms(100),
            cooldown_cap: ms(2000),
            half_open_successes: 2,
            seed: 7,
        }
    }

    #[test]
    fn stays_closed_below_min_samples() {
        let mut b = CircuitBreaker::new(test_config());
        for i in 0..3 {
            b.record_failure(ms(i * 10));
        }
        assert_eq!(b.state(ms(30)), BreakerState::Closed);
        assert_eq!(b.preflight(ms(31)), Permit::Allowed);
    }

    #[test]
    fn trips_at_failure_threshold_and_fast_fails() {
        let mut b = CircuitBreaker::new(test_config());
        b.record_success(ms(0));
        b.record_success(ms(10));
        b.record_failure(ms(20));
        assert_eq!(b.state(ms(20)), BreakerState::Closed);
        // 4th sample makes 2/4 = 50% ≥ threshold.
        b.record_failure(ms(30));
        assert_eq!(b.state(ms(30)), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        match b.preflight(ms(31)) {
            Permit::Rejected { retry_after } => {
                assert!(retry_after >= ms(90), "cooldown at least near base: {retry_after:?}")
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn old_outcomes_age_out_of_the_window() {
        let mut b = CircuitBreaker::new(test_config());
        // Two old failures, far outside the 1 s window by the time the
        // later samples land.
        b.record_failure(ms(0));
        b.record_failure(ms(10));
        b.record_success(ms(2000));
        b.record_success(ms(2010));
        b.record_success(ms(2020));
        // This failure is 1/4 in-window — under the 50% threshold.
        b.record_failure(ms(2030));
        assert_eq!(b.state(ms(2030)), BreakerState::Closed);
    }

    #[test]
    fn half_open_probe_then_recovery() {
        let mut b = CircuitBreaker::new(test_config());
        for i in 0..4 {
            b.record_failure(ms(i * 10));
        }
        assert_eq!(b.state(ms(40)), BreakerState::Open);
        let retry_after = b.retry_after(ms(40)).unwrap();
        let probe_time = ms(40) + retry_after;
        // Cooldown elapses → half-open, exactly one probe admitted.
        assert_eq!(b.preflight(probe_time), Permit::Probe);
        assert!(matches!(b.preflight(probe_time), Permit::Rejected { .. }));
        // Two probe successes close it.
        b.record_success(probe_time + ms(1));
        assert_eq!(b.preflight(probe_time + ms(2)), Permit::Probe);
        b.record_success(probe_time + ms(3));
        assert_eq!(b.state(probe_time + ms(3)), BreakerState::Closed);
        assert_eq!(b.preflight(probe_time + ms(4)), Permit::Allowed);
    }

    #[test]
    fn failed_probe_reopens_with_growing_cooldown() {
        let mut b = CircuitBreaker::new(test_config());
        for i in 0..4 {
            b.record_failure(ms(i * 10));
        }
        let first_cooldown = b.retry_after(ms(40)).unwrap();
        let probe_time = ms(40) + first_cooldown;
        assert_eq!(b.preflight(probe_time), Permit::Probe);
        b.record_failure(probe_time + ms(1));
        assert_eq!(b.state(probe_time + ms(1)), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        // Jittered growth: the new cooldown stays within [base, 3·prev],
        // capped.
        let second_cooldown = b.retry_after(probe_time + ms(1)).unwrap();
        assert!(second_cooldown >= ms(100));
        assert!(second_cooldown <= ms(2000));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = CircuitBreaker::new(test_config());
        let mut b = CircuitBreaker::new(test_config());
        for i in 0..4 {
            a.record_failure(ms(i * 10));
            b.record_failure(ms(i * 10));
        }
        assert_eq!(a.retry_after(ms(40)), b.retry_after(ms(40)));
    }

    #[test]
    fn handle_exports_state_and_trip_metrics() {
        let handle = BreakerHandle::standalone("metrics-test:9", test_config());
        assert_eq!(handle.state(), BreakerState::Closed);
        assert_eq!(handle.metrics.state.get(), 0.0);
        for _ in 0..4 {
            handle.record(false);
        }
        assert_eq!(handle.metrics.state.get(), 2.0);
        assert_eq!(handle.metrics.trips.get(), 1);
        assert_eq!(handle.metrics.failure_rate.get(), 0.0, "window clears on trip");
    }

    #[test]
    fn poisoned_handle_recovers_instead_of_panicking() {
        let handle = BreakerHandle::standalone("poison-test:1", test_config());
        let clone = handle.clone();
        let poisoned_before = metrics::lock_poisonings().get();
        std::thread::spawn(move || {
            let _guard = clone.breaker.lock().unwrap();
            panic!("poison the breaker lock");
        })
        .join()
        .unwrap_err();
        // Every accessor keeps working against the poisoned lock.
        assert_eq!(handle.preflight(), Permit::Allowed);
        handle.record(true);
        assert_eq!(handle.state(), BreakerState::Closed);
        assert_eq!(handle.trips(), 0);
        assert!(
            metrics::lock_poisonings().get() > poisoned_before,
            "recovery must be counted"
        );
    }

    #[test]
    fn poisoned_registry_recovers_instead_of_panicking() {
        let registry = std::sync::Arc::new(BreakerRegistry::new(test_config()));
        let for_thread = std::sync::Arc::clone(&registry);
        std::thread::spawn(move || {
            let _guard = for_thread.breakers.lock().unwrap();
            panic!("poison the registry lock");
        })
        .join()
        .unwrap_err();
        let handle = registry.handle("poison-test:2");
        assert_eq!(registry.len(), 1);
        assert_eq!(handle.preflight(), Permit::Allowed);
    }

    #[test]
    fn registry_shares_one_breaker_per_endpoint() {
        let registry = BreakerRegistry::new(test_config());
        let h1 = registry.handle("10.0.0.7:9000");
        let h2 = registry.handle("10.0.0.7:9000");
        let other = registry.handle("10.0.0.8:9000");
        assert_eq!(registry.len(), 2);
        // Failures recorded through one handle are visible to the other.
        for _ in 0..4 {
            h1.record(false);
        }
        assert_eq!(h2.state(), BreakerState::Open);
        assert!(matches!(h2.preflight(), Permit::Rejected { .. }));
        // ...but not to a different endpoint.
        assert_eq!(other.state(), BreakerState::Closed);
    }
}
