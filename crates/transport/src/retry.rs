//! Retry policies: exponential backoff with decorrelated jitter.
//!
//! The schedule is deterministic for a given seed (the workspace `rand`
//! shim is a seeded SplitMix64), so tests can assert exact retry
//! behaviour, and a fleet of clients started with distinct seeds will not
//! synchronize their retries into thundering herds.
//!
//! Which *failures* are worth retrying is not this module's business —
//! that classification lives in
//! [`TransportError::retry_safe`](crate::TransportError::retry_safe) and
//! the SOAP engine applies it; this module only answers "how long until
//! the next attempt, if any".

use std::time::Duration;

use rand::{rngs::StdRng, Rng, SeedableRng};

/// A bounded retry policy.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts allowed, including the first (so `1` = no retries).
    pub max_attempts: u32,
    /// Floor for each backoff delay (also the first delay's scale).
    pub base: Duration,
    /// Cap for any single backoff delay.
    pub cap: Duration,
    /// Cumulative sleep budget across all retries of one operation.
    pub total_budget: Duration,
    /// Seed for the jitter generator.
    pub seed: u64,
}

impl RetryPolicy {
    /// A sensible default: `max_attempts` tries, 25 ms base, 2 s cap,
    /// 10 s total sleep budget.
    pub fn new(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            base: Duration::from_millis(25),
            cap: Duration::from_secs(2),
            total_budget: Duration::from_secs(10),
            seed: 0x5eed_5eed,
        }
    }

    /// A policy that retries immediately (zero backoff) — for tests and
    /// in-process loopback transports where sleeping buys nothing.
    pub fn no_delay(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            base: Duration::ZERO,
            cap: Duration::ZERO,
            total_budget: Duration::ZERO,
            seed: 0x5eed_5eed,
        }
    }

    /// Override the jitter seed (chainable).
    pub fn with_seed(mut self, seed: u64) -> RetryPolicy {
        self.seed = seed;
        self
    }

    /// Start a fresh schedule for one operation.
    pub fn schedule(&self) -> RetrySchedule {
        RetrySchedule {
            policy: self.clone(),
            rng: StdRng::seed_from_u64(self.seed),
            prev: self.base,
            attempts_made: 1, // the caller is about to make the first attempt
            slept: Duration::ZERO,
        }
    }
}

/// The per-operation state of a [`RetryPolicy`]: hands out backoff delays
/// until attempts or budget run out.
#[derive(Debug)]
pub struct RetrySchedule {
    policy: RetryPolicy,
    rng: StdRng,
    prev: Duration,
    attempts_made: u32,
    slept: Duration,
}

impl RetrySchedule {
    /// The delay before the next retry, or `None` when the policy is
    /// exhausted (attempt cap or total sleep budget reached). Each call
    /// accounts for one more attempt.
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.attempts_made >= self.policy.max_attempts {
            return None;
        }
        // Decorrelated jitter (Brooker): delay ~ U(base, 3·prev), capped.
        let lo = self.policy.base.as_secs_f64();
        let hi = (self.prev.as_secs_f64() * 3.0).max(lo);
        let raw = if hi > lo {
            self.rng.random_range(lo..hi)
        } else {
            lo
        };
        let delay = Duration::from_secs_f64(raw).min(self.policy.cap);
        if self.slept + delay > self.policy.total_budget {
            return None;
        }
        self.attempts_made += 1;
        self.slept += delay;
        self.prev = delay.max(self.policy.base);
        Some(delay)
    }

    /// Attempts accounted for so far (≥ 1: the initial try counts).
    pub fn attempts_made(&self) -> u32 {
        self.attempts_made
    }

    /// Charge extra sleep against the total budget — for callers that
    /// stretch a delay beyond what [`next_delay`](Self::next_delay)
    /// handed out (a server's `Retry-After` hint, a breaker's cooldown).
    /// Without this, hint-stretched waits would not count toward
    /// `total_budget` and a throttling server could keep the schedule
    /// alive far past its sleep cap.
    pub fn absorb(&mut self, extra: Duration) {
        self.slept += extra;
    }

    /// Sleep budget remaining before the schedule refuses further
    /// retries.
    pub fn budget_left(&self) -> Duration {
        self.policy.total_budget.saturating_sub(self.slept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attempt_cap_enforced() {
        let mut s = RetryPolicy::no_delay(3).schedule();
        assert!(s.next_delay().is_some()); // retry #1 (attempt 2)
        assert!(s.next_delay().is_some()); // retry #2 (attempt 3)
        assert!(s.next_delay().is_none()); // attempt 4 would exceed the cap
        assert_eq!(s.attempts_made(), 3);
    }

    #[test]
    fn single_attempt_never_retries() {
        let mut s = RetryPolicy::no_delay(1).schedule();
        assert!(s.next_delay().is_none());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let p = RetryPolicy::new(8).with_seed(17);
        let mut s1 = p.schedule();
        let mut s2 = p.schedule();
        for _ in 0..7 {
            assert_eq!(s1.next_delay(), s2.next_delay());
        }
    }

    #[test]
    fn delays_bounded_by_base_and_cap() {
        let p = RetryPolicy {
            max_attempts: 50,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(200),
            total_budget: Duration::from_secs(3600),
            seed: 3,
        };
        let mut s = p.schedule();
        while let Some(d) = s.next_delay() {
            assert!(d >= Duration::from_millis(10), "below base: {d:?}");
            assert!(d <= Duration::from_millis(200), "above cap: {d:?}");
        }
        assert_eq!(s.attempts_made(), 50);
    }

    #[test]
    fn total_budget_stops_schedule() {
        let p = RetryPolicy {
            max_attempts: 1000,
            base: Duration::from_millis(40),
            cap: Duration::from_millis(40),
            total_budget: Duration::from_millis(100),
            seed: 1,
        };
        let mut s = p.schedule();
        let mut total = Duration::ZERO;
        while let Some(d) = s.next_delay() {
            total += d;
        }
        assert!(total <= Duration::from_millis(100));
        assert!(s.attempts_made() < 1000, "budget should bind before attempts");
    }
}
