//! A static file server over HTTP — the separated scheme's data channel.
//!
//! In the paper's separated configuration the client saves the payload as
//! a netCDF file, and the server pulls it over HTTP from an Apache
//! instance on the client's machine. This is that Apache stand-in: GET
//! only, rooted in one directory, with path traversal rejected.

use std::net::SocketAddr;
use std::path::{Component, Path, PathBuf};

use crate::error::TransportResult;
use crate::http::response::HttpResponse;
use crate::http::server::HttpServer;

/// A running static file server.
pub struct FileServer {
    inner: HttpServer,
}

impl FileServer {
    /// Serve files under `root` on `addr` (port 0 for ephemeral).
    pub fn bind(addr: &str, root: impl Into<PathBuf>) -> TransportResult<FileServer> {
        let root: PathBuf = root.into();
        let inner = HttpServer::bind(addr, move |req| {
            if req.method != "GET" {
                return HttpResponse::bad_request("only GET is supported");
            }
            match sanitize(&root, &req.path) {
                Some(path) => match std::fs::read(&path) {
                    Ok(bytes) => HttpResponse::ok("application/octet-stream", bytes),
                    Err(_) => HttpResponse::not_found(),
                },
                None => HttpResponse::bad_request("invalid path"),
            }
        })?;
        Ok(FileServer { inner })
    }

    /// The address being served on.
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr()
    }

    /// Stop the server.
    pub fn shutdown(self) {
        self.inner.shutdown();
    }
}

/// Resolve a request path against the root, rejecting anything that
/// escapes it.
fn sanitize(root: &Path, request_path: &str) -> Option<PathBuf> {
    let rel = request_path.strip_prefix('/')?;
    let rel = rel.split('?').next().unwrap_or(rel); // drop query strings
    let mut out = root.to_path_buf();
    for comp in Path::new(rel).components() {
        match comp {
            Component::Normal(c) => out.push(c),
            // "." is harmless but nonstandard in URLs; anything else
            // (parent dirs, absolute roots) is rejected outright.
            Component::CurDir => {}
            _ => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::client::http_get;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bxsoap_fs_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn serves_files_and_404s() {
        let root = temp_root("serve");
        std::fs::write(root.join("data.nc"), b"CDF\x01payload").unwrap();
        let server = FileServer::bind("127.0.0.1:0", &root).unwrap();
        let addr = server.local_addr().to_string();

        assert_eq!(http_get(&addr, "/data.nc").unwrap(), b"CDF\x01payload");
        assert!(http_get(&addr, "/missing.nc").is_err());

        server.shutdown();
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn rejects_traversal() {
        let root = temp_root("trav");
        let server = FileServer::bind("127.0.0.1:0", &root).unwrap();
        let addr = server.local_addr().to_string();
        let err = http_get(&addr, "/../etc/passwd").unwrap_err();
        assert!(matches!(
            err,
            crate::TransportError::HttpStatus { status: 400, .. }
        ));
        server.shutdown();
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn sanitize_paths() {
        let root = Path::new("/srv/data");
        assert_eq!(
            sanitize(root, "/a/b.nc"),
            Some(PathBuf::from("/srv/data/a/b.nc"))
        );
        assert_eq!(sanitize(root, "/a/../../x"), None);
        assert_eq!(sanitize(root, "no-leading-slash"), None);
        assert_eq!(
            sanitize(root, "/f.nc?token=1"),
            Some(PathBuf::from("/srv/data/f.nc"))
        );
    }
}
