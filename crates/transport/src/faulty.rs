//! Deterministic fault injection for resilience testing.
//!
//! A production-scale SOAP node has to survive stalled peers, truncated
//! frames, corrupt bytes, and transient connect failures. This module
//! makes every one of those paths *testable on demand*: a seeded
//! [`FaultInjector`] decides, per I/O event, whether to deliver, drop,
//! truncate, corrupt, delay, or stall — and [`FaultingTransport`] applies
//! those decisions to any `Read + Write` stream, so a
//! `FramedStream<FaultingTransport<TcpStream>>` (or an in-memory pipe)
//! exercises the exact code paths a hostile network would.
//!
//! Delays do not sleep: they advance a `netsim` [`VirtualClock`] by the
//! transfer duration the configured [`NetworkProfile`]'s TCP model
//! assigns to the payload, so a fault schedule is reproducible and a test
//! can assert on the virtual time a lossy exchange consumed.

use std::io::{Read, Write};
use std::sync::Arc;

use netsim::{NetworkProfile, SimTime, TcpFlow, VirtualClock};
use parking_lot::Mutex;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Per-event fault probabilities (each in `[0, 1]`; evaluated in the
/// order drop → stall → truncate → corrupt → delay, first match wins).
#[derive(Debug, Clone, Copy)]
pub struct FaultProfile {
    /// RNG seed — same seed, same fault schedule.
    pub seed: u64,
    /// Probability a connect attempt is refused.
    pub connect_fail: f64,
    /// Probability an I/O event kills the connection (reset).
    pub drop: f64,
    /// Probability an I/O event stalls past the peer's patience
    /// (surfaces as a socket timeout).
    pub stall: f64,
    /// Probability the stream is cut short mid-payload.
    pub truncate: f64,
    /// Probability one delivered byte is flipped.
    pub corrupt: f64,
    /// Probability the event is delayed (virtual time only).
    pub delay: f64,
}

impl FaultProfile {
    /// No faults at all — the decorator becomes a transparent wrapper.
    pub fn clean(seed: u64) -> FaultProfile {
        FaultProfile {
            seed,
            connect_fail: 0.0,
            drop: 0.0,
            stall: 0.0,
            truncate: 0.0,
            corrupt: 0.0,
            delay: 0.0,
        }
    }

    /// Connect failures only, at probability `p` — the retry-layer
    /// workout: every established exchange is clean.
    pub fn flaky_connect(seed: u64, p: f64) -> FaultProfile {
        FaultProfile {
            connect_fail: p,
            ..FaultProfile::clean(seed)
        }
    }

    /// A hostile mix exercising every decoder/transport error path.
    pub fn hostile(seed: u64) -> FaultProfile {
        FaultProfile {
            seed,
            connect_fail: 0.1,
            drop: 0.1,
            stall: 0.05,
            truncate: 0.15,
            corrupt: 0.15,
            delay: 0.2,
        }
    }
}

/// What the injector decided to do with one I/O event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Pass the bytes through untouched.
    Deliver,
    /// Kill the connection (connection reset).
    Drop,
    /// Block past the peer's patience (socket timeout).
    Stall,
    /// Deliver only the first `n` bytes, then end the stream.
    Truncate(usize),
    /// Deliver all bytes with byte `at` XORed with `xor` (never 0).
    Corrupt { at: usize, xor: u8 },
    /// Deliver after a simulated delay.
    Delay(SimTime),
}

/// The seeded fault oracle: one per simulated network, shared (behind
/// `Arc<Mutex<_>>` via [`SharedInjector`]) by every decorated stream so
/// the whole test run draws from a single deterministic schedule.
#[derive(Debug)]
pub struct FaultInjector {
    profile: FaultProfile,
    rng: StdRng,
    clock: VirtualClock,
    flow: TcpFlow,
    connects_refused: u64,
    faults_injected: u64,
    events: u64,
}

impl FaultInjector {
    /// An injector over the paper's LAN profile.
    pub fn new(profile: FaultProfile) -> FaultInjector {
        FaultInjector::with_network(profile, NetworkProfile::lan())
    }

    /// An injector whose delay model comes from a specific network.
    pub fn with_network(profile: FaultProfile, net: NetworkProfile) -> FaultInjector {
        FaultInjector {
            profile,
            rng: StdRng::seed_from_u64(profile.seed),
            clock: VirtualClock::new(),
            flow: TcpFlow::new(net.tcp()),
            connects_refused: 0,
            faults_injected: 0,
            events: 0,
        }
    }

    /// Wrap into the shareable handle the decorators take.
    pub fn shared(self) -> SharedInjector {
        Arc::new(Mutex::new(self))
    }

    /// Decide whether a connect attempt succeeds.
    pub fn connect_allowed(&mut self) -> bool {
        self.events += 1;
        if self.rng.random_unit_f64() < self.profile.connect_fail {
            self.connects_refused += 1;
            false
        } else {
            true
        }
    }

    /// Decide the fate of an I/O event moving `len` bytes.
    pub fn decide(&mut self, len: usize) -> FaultAction {
        self.events += 1;
        let roll = self.rng.random_unit_f64();
        let p = &self.profile;
        let mut edge = p.drop;
        if roll < edge {
            self.faults_injected += 1;
            return FaultAction::Drop;
        }
        edge += p.stall;
        if roll < edge {
            self.faults_injected += 1;
            return FaultAction::Stall;
        }
        edge += p.truncate;
        if roll < edge && len > 0 {
            self.faults_injected += 1;
            return FaultAction::Truncate(self.rng.random_range(0..len));
        }
        edge += p.corrupt;
        if roll < edge && len > 0 {
            self.faults_injected += 1;
            return FaultAction::Corrupt {
                at: self.rng.random_range(0..len),
                xor: self.rng.random_range(1u16..256) as u8,
            };
        }
        edge += p.delay;
        if roll < edge {
            self.faults_injected += 1;
            let dt = self.flow.transfer_duration(len.max(1));
            self.clock.advance(dt);
            return FaultAction::Delay(dt);
        }
        FaultAction::Deliver
    }

    /// Apply a message-level decision in place: mutates/truncates `buf`
    /// for data faults and reports connection-level faults back for the
    /// caller to surface as errors.
    pub fn mutate_message(&mut self, buf: &mut Vec<u8>) -> FaultAction {
        let action = self.decide(buf.len());
        match action {
            FaultAction::Truncate(n) => buf.truncate(n),
            FaultAction::Corrupt { at, xor } => buf[at] ^= xor,
            _ => {}
        }
        action
    }

    /// Connect attempts the injector refused.
    pub fn connects_refused(&self) -> u64 {
        self.connects_refused
    }

    /// Total faults injected (any kind, connect refusals excluded).
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected
    }

    /// Total I/O events consulted.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Virtual time consumed by injected delays.
    pub fn virtual_elapsed(&self) -> SimTime {
        self.clock.now()
    }
}

/// The handle decorated streams share.
pub type SharedInjector = Arc<Mutex<FaultInjector>>;

/// A fault-injecting decorator over any byte stream.
///
/// Reads and writes consult the shared [`FaultInjector`] once per
/// syscall-shaped event; injected faults surface as the `io::Error`s a
/// real hostile network would produce (`ConnectionReset`, `WouldBlock`,
/// early EOF), so the layers above exercise their genuine error paths.
#[derive(Debug)]
pub struct FaultingTransport<S> {
    inner: S,
    injector: SharedInjector,
    /// Bytes still deliverable after a `Truncate` decision (`None` =
    /// unlimited). Once it reaches zero, reads yield EOF and writes
    /// report a reset peer.
    quota: Option<usize>,
}

impl<S> FaultingTransport<S> {
    /// Decorate `inner`, drawing fault decisions from `injector`.
    pub fn new(inner: S, injector: SharedInjector) -> FaultingTransport<S> {
        FaultingTransport {
            inner,
            injector,
            quota: None,
        }
    }

    /// Unwrap the underlying stream.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// The wrapped stream (the reactor needs its file descriptor).
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    fn apply_quota(&mut self, wanted: usize) -> Option<usize> {
        self.quota.map(|q| wanted.min(q))
    }
}

fn reset_err() -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::ConnectionReset, "injected fault: reset")
}

fn stall_err() -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::WouldBlock, "injected fault: stall")
}

impl<S: Read> Read for FaultingTransport<S> {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        if self.quota == Some(0) {
            return Ok(0); // truncated: stream ends early
        }
        let action = self.injector.lock().decide(out.len());
        match action {
            FaultAction::Drop => return Err(reset_err()),
            FaultAction::Stall => return Err(stall_err()),
            FaultAction::Truncate(n) => {
                self.quota = Some(self.quota.map_or(n, |q| q.min(n)));
                if self.quota == Some(0) {
                    return Ok(0);
                }
            }
            FaultAction::Deliver | FaultAction::Corrupt { .. } | FaultAction::Delay(_) => {}
        }
        let cap = self.apply_quota(out.len()).unwrap_or(out.len());
        let n = self.inner.read(&mut out[..cap])?;
        if let Some(q) = &mut self.quota {
            *q -= n.min(*q);
        }
        if let FaultAction::Corrupt { at, xor } = action {
            if n > 0 {
                out[at.min(n - 1)] ^= xor;
            }
        }
        Ok(n)
    }
}

impl<S: Write> Write for FaultingTransport<S> {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        if self.quota == Some(0) {
            return Err(reset_err()); // peer "gone" after the cut
        }
        let action = self.injector.lock().decide(data.len());
        match action {
            FaultAction::Drop => return Err(reset_err()),
            FaultAction::Stall => return Err(stall_err()),
            FaultAction::Truncate(n) => {
                // Accept a prefix, then the connection is dead.
                self.quota = Some(0);
                if n == 0 {
                    return Err(reset_err());
                }
                return self.inner.write(&data[..n.min(data.len())]);
            }
            FaultAction::Corrupt { at, xor } => {
                let mut copy = data.to_vec();
                if !copy.is_empty() {
                    let idx = at.min(copy.len() - 1);
                    copy[idx] ^= xor;
                }
                return self.inner.write(&copy).map(|n| n.min(data.len()));
            }
            FaultAction::Deliver | FaultAction::Delay(_) => {}
        }
        self.inner.write(data)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn injector(profile: FaultProfile) -> SharedInjector {
        FaultInjector::new(profile).shared()
    }

    #[test]
    fn clean_profile_is_transparent() {
        let inj = injector(FaultProfile::clean(1));
        let mut t = FaultingTransport::new(Cursor::new(Vec::new()), Arc::clone(&inj));
        t.write_all(b"hello world").unwrap();
        t.inner.set_position(0);
        let mut back = String::new();
        t.read_to_string(&mut back).unwrap();
        assert_eq!(back, "hello world");
        assert_eq!(inj.lock().faults_injected(), 0);
        assert!(inj.lock().events() > 0);
    }

    #[test]
    fn deterministic_schedule_for_same_seed() {
        let mk = || {
            let mut i = FaultInjector::new(FaultProfile::hostile(42));
            (0..64).map(|_| i.decide(100)).collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn connect_failure_rate_tracks_probability() {
        let mut i = FaultInjector::new(FaultProfile::flaky_connect(7, 0.3));
        let mut refused = 0;
        for _ in 0..1000 {
            if !i.connect_allowed() {
                refused += 1;
            }
        }
        assert_eq!(refused, i.connects_refused());
        assert!((200..400).contains(&refused), "refused={refused}");
    }

    #[test]
    fn drop_surfaces_as_reset_and_stall_as_wouldblock() {
        let drop_only = FaultProfile {
            drop: 1.0,
            ..FaultProfile::clean(1)
        };
        let mut t = FaultingTransport::new(Cursor::new(vec![0u8; 16]), injector(drop_only));
        let e = t.read(&mut [0u8; 8]).unwrap_err();
        assert_eq!(e.kind(), std::io::ErrorKind::ConnectionReset);

        let stall_only = FaultProfile {
            stall: 1.0,
            ..FaultProfile::clean(1)
        };
        let mut t = FaultingTransport::new(Cursor::new(vec![0u8; 16]), injector(stall_only));
        let e = t.read(&mut [0u8; 8]).unwrap_err();
        assert_eq!(e.kind(), std::io::ErrorKind::WouldBlock);
    }

    #[test]
    fn truncate_ends_the_read_stream_early() {
        let trunc = FaultProfile {
            truncate: 1.0,
            ..FaultProfile::clean(5)
        };
        let mut t = FaultingTransport::new(Cursor::new(vec![7u8; 1000]), injector(trunc));
        let mut got = Vec::new();
        let n = t.read_to_end(&mut got).unwrap();
        assert!(n < 1000, "stream should be cut short, got {n}");
    }

    #[test]
    fn corrupt_flips_exactly_one_byte() {
        let corrupt = FaultProfile {
            corrupt: 1.0,
            ..FaultProfile::clean(3)
        };
        let data = vec![0u8; 64];
        let mut t = FaultingTransport::new(Cursor::new(data.clone()), injector(corrupt));
        let mut got = vec![0u8; 64];
        t.read_exact(&mut got).unwrap();
        let flipped = got.iter().filter(|&&b| b != 0).count();
        // One flip per read event; read_exact may issue one read here.
        assert!(flipped >= 1, "at least one byte must differ");
    }

    #[test]
    fn delay_advances_virtual_clock_only() {
        let delayed = FaultProfile {
            delay: 1.0,
            ..FaultProfile::clean(9)
        };
        let inj = injector(delayed);
        let mut t = FaultingTransport::new(Cursor::new(vec![1u8; 4096]), Arc::clone(&inj));
        let wall = std::time::Instant::now();
        let mut sink = Vec::new();
        t.read_to_end(&mut sink).unwrap();
        assert!(inj.lock().virtual_elapsed() > SimTime::ZERO);
        assert!(wall.elapsed() < std::time::Duration::from_secs(1));
    }

    #[test]
    fn mutate_message_truncates_and_corrupts_in_place() {
        let mut i = FaultInjector::new(FaultProfile {
            truncate: 0.5,
            corrupt: 0.5,
            ..FaultProfile::clean(11)
        });
        let golden = vec![0xabu8; 256];
        let mut mutated = 0;
        for _ in 0..200 {
            let mut m = golden.clone();
            i.mutate_message(&mut m);
            if m != golden {
                mutated += 1;
            }
        }
        assert!(mutated > 150, "most messages should be mutated: {mutated}");
    }
}
