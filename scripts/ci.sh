#!/usr/bin/env bash
# CI gate: release build, full test suite (including the zero-allocation
# steady-state check behind the bench crate's alloc-counter feature), the
# fault-injection resilience job, and warning-free clippy.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --workspace
# Zero-allocation steady-state gates: encode (PR 1) and decode (PR 3).
# `steady_state_decode_is_allocation_free` fails this step — and the
# build — if a change reintroduces per-message decode allocation.
cargo test -q -p bench --features alloc-counter --lib

# Decode benches: run the codec-throughput ablation and require that the
# decode-path benchmarks (including the reused-document `*_into`
# variants) actually execute and report. Medians across runs are
# recorded per-PR in BENCH_PR*.json; this step keeps the benches alive.
codec_log="$(mktemp)"
cargo bench -p bench --bench codec_throughput 2>&1 | tee "$codec_log"
for id in bxsa_decode bxsa_decode_into xml_decode xml_decode_into; do
    if ! grep -q "^BENCH {\"id\":\"codec_throughput/${id}/" "$codec_log"; then
        echo "bench: missing decode benchmark ${id}" >&2
        exit 1
    fi
done
rm -f "$codec_log"

# Typed fast-path job (PR 8): the typed codec benches must exist and
# report (tree-vs-typed medians are recorded per-PR in BENCH_PR8.json by
# the typed_fastpath bin); the typed steady state must pass the
# alloc-counter zero-allocation gate (covered by the alloc-counter step
# above via typed_steady_state_is_allocation_free); and the seed-corpus
# fuzz smoke must feed mutated typed envelopes to the typed decoders on
# both encodings without a panic anywhere in the log.
typed_log="$(mktemp)"
cargo bench -p bench --bench typed_codec 2>&1 | tee "$typed_log"
for id in typed_bxsa_encode typed_bxsa_decode typed_xml_encode typed_xml_decode; do
    if ! grep -q "^BENCH {\"id\":\"typed_codec/${id}/" "$typed_log"; then
        echo "bench: missing typed benchmark ${id}" >&2
        exit 1
    fi
done
rm -f "$typed_log"
typed_fuzz_log="$(mktemp)"
cargo test -q --test typed_fuzz_smoke -- --nocapture 2>&1 | tee "$typed_fuzz_log"
if grep -q "panicked at" "$typed_fuzz_log"; then
    echo "typed: panic detected in typed-decoder fuzz smoke" >&2
    exit 1
fi
rm -f "$typed_fuzz_log"

# Resilience job: drive the seeded torture corpus (mutated/truncated
# messages, flaky connects) through the decoders and both live servers,
# and assert nothing anywhere panicked — a panicking worker thread can
# hide behind a green test binary, so the log is grepped explicitly.
resilience_log="$(mktemp)"
trap 'rm -f "$resilience_log"' EXIT
RESILIENCE_SEED=${RESILIENCE_SEED:-1} cargo test -q --test resilience -- --nocapture \
    2>&1 | tee "$resilience_log"
if grep -q "panicked at" "$resilience_log"; then
    echo "resilience: panic detected in fault-injection run" >&2
    exit 1
fi

# Failure-model job: end-to-end deadline propagation (3-hop budget,
# expired-on-arrival rejection, hop decrement) and circuit-breaker
# open/fast-fail/recover against real sockets, plus the seeded-clock
# breaker state-machine tests in the transport crate.
cargo test -q --test deadlines
cargo test -q -p transport breaker::

# Metrics job: the obs crate's primitives (multithreaded exactness,
# exposition shape), the live /metrics scrape + dump()-snapshot e2e
# tests, and the zero-allocation instrumentation gate (covered by the
# alloc-counter step above). Server diagnostics must flow through the
# typed error counters, not stderr — grep keeps eprintln! out of the
# server accept/serve paths for good.
cargo test -q -p obs
cargo test -q --test metrics
for f in crates/transport/src/tcpserver.rs crates/transport/src/http/server.rs \
         crates/transport/src/reactor/*.rs; do
    if grep -n 'eprintln!' "$f"; then
        echo "metrics: $f writes to stderr; use the obs error counters" >&2
        exit 1
    fi
done

# Server-runtime job: HTTP/1.1 keep-alive conformance (pipelining,
# Connection negotiation, half-close, client connection cache), then the
# load-harness smoke run — 1k concurrent keep-alive connections against
# the evented server, zero errors and a generous tail bound, plus the
# keep-alive-beats-one-shot sanity check. The full 10k grid is recorded
# per-PR in BENCH_PR6.json; this keeps the harness alive and honest.
cargo test -q --test keepalive
cargo run --release -p bench --bin loadgen -- --smoke

# Overload job: admission control, load shedding, and hostile-client
# defense. The integration tests pin the contracts (503 + Retry-After +
# Connection: close on HTTP, in-band retryable faults on framed TCP,
# slow-loris deadline kills, shed-vs-drop accounting across shutdown);
# the loadgen smoke run then proves them under real attack shapes —
# open-loop 2x overload, connection flood, a slow-loris swarm, stalled
# readers — against the release binary. The full-scale grid is recorded
# per-PR in BENCH_PR7.json. The shed-path allocation bound rides the
# alloc-counter step above.
cargo test -q --test overload
cargo run --release -p bench --bin loadgen -- --overload-smoke

# Evented means evented: connections are multiplexed onto the reactor's
# fixed worker pool (spawned via thread::Builder at bind time), so no
# per-connection thread::spawn may reappear on the serving path. Test
# modules are exempt (clients and fixtures there spawn freely);
# fileserver.rs predates the reactor and is out of scope.
for f in crates/transport/src/tcpserver.rs crates/transport/src/http/server.rs \
         crates/transport/src/reactor/*.rs; do
    if awk '/#\[cfg\(test\)\]/{exit} {print}' "$f" | grep -n 'thread::spawn'; then
        echo "reactor: $f spawns per-connection threads; use the event loop" >&2
        exit 1
    fi
done

# Streaming job (PR 9): the end-to-end streamed lane stays live and
# constant-memory. The e2e tests drive a >=8x-window payload
# client -> transcoding intermediary -> server and back; the chunked
# edge tests feed the server degenerate framing over raw sockets; the
# alloc gate (rides the alloc-counter step above; STREAM_GATE_FULL=1
# scales it to a simulated gigabyte) pins a warm streamed exchange's
# client-side allocations independent of payload size; and the bench
# must keep emitting both lanes' rows for BENCH_PR9.json.
cargo test -q --test streaming_live
cargo test -q --test chunked_edges
stream_bench_out=$(cargo bench -p bench --bench stream_pipeline 2>&1 | grep '^BENCH ') || {
    echo "stream_pipeline bench produced no BENCH lines" >&2
    exit 1
}
for row in 'stream_pipeline/buffered/1MB' 'stream_pipeline/streamed/1MB' \
           'stream_pipeline/streamed/256MB'; do
    if ! grep -q "^BENCH {\"id\":\"$row\"" <<<"$stream_bench_out"; then
        echo "stream_pipeline bench is missing row $row" >&2
        exit 1
    fi
done

# Streaming means streaming: no serving-path code may slurp a body with
# read_to_end — bodies arrive through the sized/chunked readers with
# their frame and part caps. Test modules are exempt (faulty.rs's
# fixtures read sockets to EOF on purpose).
for f in crates/transport/src/http/*.rs crates/transport/src/reactor/*.rs \
         crates/soap/src/*.rs; do
    if awk '/#\[cfg\(test\)\]/{exit} {print}' "$f" | grep -n 'read_to_end'; then
        echo "streaming: $f buffers a whole body with read_to_end" >&2
        exit 1
    fi
done

cargo clippy --workspace --all-targets -- -D warnings

# The API is the product: rustdoc must build clean (broken intra-doc
# links and malformed HTML fail the gate).
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

# Adversarial-hardening job (PR 10): the fuzz workspace must build, every
# fuzz target must have a seed corpus (a target without one silently
# fuzzes from nothing), and a short smoke run over the checked-in corpora
# — which include every minimized crash reproducer — must come back
# crash-free. The smoke uses the stable-toolchain build (blind mutation);
# the coverage-guided nightly+sancov build is for longer local sessions,
# see fuzz/Cargo.toml. Differential regression tests ride the workspace
# test step above (fuzz_regressions, differential_oracles).
cargo build --release --manifest-path fuzz/Cargo.toml -q
for t in fuzz/fuzz_targets/*.rs; do
    name=$(basename "$t" .rs)
    if [ ! -d "fuzz/corpus/$name" ] || [ -z "$(ls -A "fuzz/corpus/$name")" ]; then
        echo "fuzz: target $name has no seed corpus in fuzz/corpus/$name" >&2
        exit 1
    fi
    if ! fuzz/target/release/"$name" -max_total_time=8 \
         -artifact_prefix="fuzz/artifacts/ci-$name-" "fuzz/corpus/$name" \
         > /tmp/fuzz-smoke-"$name".log 2>&1; then
        echo "fuzz: $name crashed during the CI smoke run:" >&2
        tail -20 /tmp/fuzz-smoke-"$name".log >&2
        exit 1
    fi
done
