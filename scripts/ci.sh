#!/usr/bin/env bash
# CI gate: release build, full test suite (including the zero-allocation
# steady-state check behind the bench crate's alloc-counter feature), the
# fault-injection resilience job, and warning-free clippy.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --workspace
cargo test -q -p bench --features alloc-counter --lib

# Resilience job: drive the seeded torture corpus (mutated/truncated
# messages, flaky connects) through the decoders and both live servers,
# and assert nothing anywhere panicked — a panicking worker thread can
# hide behind a green test binary, so the log is grepped explicitly.
resilience_log="$(mktemp)"
trap 'rm -f "$resilience_log"' EXIT
RESILIENCE_SEED=${RESILIENCE_SEED:-1} cargo test -q --test resilience -- --nocapture \
    2>&1 | tee "$resilience_log"
if grep -q "panicked at" "$resilience_log"; then
    echo "resilience: panic detected in fault-injection run" >&2
    exit 1
fi

cargo clippy --workspace --all-targets -- -D warnings
