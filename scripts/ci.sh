#!/usr/bin/env bash
# CI gate: release build, full test suite (including the zero-allocation
# steady-state check behind the bench crate's alloc-counter feature), and
# warning-free clippy.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --workspace
cargo test -q -p bench --features alloc-counter --lib
cargo clippy --workspace --all-targets -- -D warnings
