//! # bxsoap — a generic SOAP framework over binary XML
//!
//! Umbrella crate re-exporting the whole stack, bottom to top:
//!
//! | layer | crate | paper section |
//! |-------|-------|---------------|
//! | primitive binary serializer | [`xbs`] | §4 (XBS) |
//! | typed data model | [`bxdm`] | §3 (bXDM) |
//! | textual XML 1.0 codec | [`xmltext`] | §2 (baseline encoding) |
//! | binary XML codec | [`bxsa`] | §4 (BXSA) |
//! | netCDF-3 substrate | [`netcdf3`] | §6 (separated scheme) |
//! | network/disk/auth simulator | [`netsim`] | §6 (testbeds) |
//! | real TCP + HTTP transports | [`transport`] | §5.3 (bindings) |
//! | simulated GridFTP | [`gridftp`] | §6 (separated scheme) |
//! | generic SOAP engine | [`soap`] | §5 |
//! | WS-* upper stack | [`wsstack`] | §5.1, Figure 3 |
//!
//! See `examples/quickstart.rs` for the five-minute tour and DESIGN.md for
//! the experiment map.

pub use bxdm;
pub use bxsa;
pub use gridftp;
pub use netcdf3;
pub use netsim;
pub use soap;
pub use transport;
pub use wsstack;
pub use xbs;
pub use xmltext;

/// Generate the paper's LEAD-derived workload: `model_size` pairs of a
/// 4-byte integer index and an 8-byte double value (atmospheric readings
/// over time/y/x/height — §6: "the data set consists of two equal-size
/// arrays").
///
/// Values are quantized to realistic instrument precision (hundredths),
/// which also keeps their ASCII lexical forms near the lengths the
/// paper's data produced — that matters for Table 1.
pub fn lead_dataset(model_size: usize, seed: u64) -> (Vec<i32>, Vec<f64>) {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let index: Vec<i32> = (0..model_size as i32).collect();
    let values: Vec<f64> = (0..model_size)
        .map(|_| {
            // Atmospheric temperature-like values in Kelvin.
            let v: f64 = rng.random_range(180.0..330.0);
            (v * 100.0).round() / 100.0
        })
        .collect();
    (index, values)
}

/// Build the unified-solution request envelope: the whole dataset inside
/// the SOAP body as two array elements (§6 "Unified solution").
pub fn verify_request_envelope(index: &[i32], values: &[f64]) -> soap::SoapEnvelope {
    use bxdm::{ArrayValue, Element};
    soap::SoapEnvelope::with_body(
        Element::component("d:Verify")
            .with_namespace("d", "http://bxsoap.example.org/lead")
            .with_child(Element::array("d:index", ArrayValue::I32(index.to_vec())))
            .with_child(Element::array(
                "d:values",
                ArrayValue::F64(values.to_vec()),
            )),
    )
}

/// The verification the paper's server performs on each value: every
/// index is in range and every reading is physically plausible.
pub fn verify_dataset(index: &[i32], values: &[f64]) -> bool {
    index.len() == values.len()
        && index.iter().enumerate().all(|(i, &x)| x == i as i32)
        && values.iter().all(|v| v.is_finite() && (100.0..400.0).contains(v))
}

/// Register the LEAD `Verify` operation on a service registry. Shared by
/// the examples, the integration tests and the benchmark harnesses.
pub fn register_verify(registry: &mut soap::ServiceRegistry) {
    use bxdm::{AtomicValue, Element};
    registry.register("Verify", |req| {
        let body = req
            .body_element()
            .expect("dispatch guarantees a body element");
        let index = body
            .find_child("index")
            .and_then(|e| e.as_i32_array())
            .ok_or_else(|| soap::SoapError::Protocol("missing index array".into()))?;
        let values = body
            .find_child("values")
            .and_then(|e| e.as_f64_array())
            .ok_or_else(|| soap::SoapError::Protocol("missing values array".into()))?;
        let ok = verify_dataset(index, values);
        Ok(soap::SoapEnvelope::with_body(
            Element::component("VerifyResponse")
                .with_child(Element::leaf("ok", AtomicValue::Bool(ok)))
                .with_child(Element::leaf(
                    "count",
                    AtomicValue::I64(values.len() as i64),
                )),
        ))
    });
}

/// The LEAD dataset namespace used by the `Verify` operation.
pub const LEAD_NS: &str = "http://bxsoap.example.org/lead";
const LEAD_DECLS: [bxsa::TypedDecl; 1] = [(Some("d"), LEAD_NS)];

/// The unified-solution request as a typed struct: the whole dataset as
/// two packed arrays, ready for the typed fast path
/// ([`soap::ToBxsa`]/[`soap::FromBxsa`]). Encodes byte-for-byte
/// identically to [`verify_request_envelope`] on both wire encodings.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VerifyRequest {
    /// Position of each reading in the model grid.
    pub index: Vec<i32>,
    /// The readings themselves.
    pub values: Vec<f64>,
}

/// The `Verify` reply as a typed struct; mirrors the tree response
/// [`register_verify`] produces.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VerifyResponse {
    /// Every reading passed verification.
    pub ok: bool,
    /// How many readings were checked.
    pub count: i64,
}

impl soap::ToBxsa for VerifyRequest {
    fn element_name(&self) -> bxsa::TypedName {
        bxsa::TypedName::new(Some("d"), "Verify")
    }

    fn bxsa_body_bound(&self) -> usize {
        use bxsa::estimate::{framed, plain_array_body_bound, plain_component_body_bound};
        let index = plain_array_body_bound("index", &[], xbs::TypeCode::I32, self.index.len());
        let values = plain_array_body_bound("values", &[], xbs::TypeCode::F64, self.values.len());
        plain_component_body_bound("Verify", &LEAD_DECLS, 2, framed(index) + framed(values))
    }

    fn encode_bxsa(&self, w: &mut bxsa::FrameWriter) -> soap::SoapResult<()> {
        w.begin_component(self.element_name(), &LEAD_DECLS, 2, self.bxsa_body_bound())?;
        w.array(bxsa::TypedName::new(Some("d"), "index"), &[], &self.index)?;
        w.array(bxsa::TypedName::new(Some("d"), "values"), &[], &self.values)?;
        Ok(w.end_component()?)
    }

    fn encode_xml(&self, w: &mut xmltext::XmlFieldWriter<'_>) {
        w.begin_component("d:Verify", &LEAD_DECLS);
        w.array("d:index", &[], &self.index);
        w.array("d:values", &[], &self.values);
        w.end_component("d:Verify");
    }
}

impl soap::FromBxsa for VerifyRequest {
    fn expected_local() -> &'static str {
        "Verify"
    }

    fn decode_bxsa<'a>(
        &mut self,
        r: &mut bxsa::FieldReader<'a>,
        head: &bxsa::ElementHead<'a>,
    ) -> soap::SoapResult<()> {
        let (mut saw_index, mut saw_values) = (false, false);
        self.index.clear();
        self.values.clear();
        for _ in 0..head.child_count {
            let f = r.open()?;
            match f.local {
                "index" => {
                    r.read_array_into(&f, &mut self.index)?;
                    saw_index = true;
                }
                "values" => {
                    r.read_array_into(&f, &mut self.values)?;
                    saw_values = true;
                }
                _ => r.skip(&f)?,
            }
        }
        r.close(head)?;
        require_arrays(saw_index, saw_values)
    }

    fn decode_xml<'a>(
        &mut self,
        r: &mut xmltext::XmlFieldReader<'a>,
        head: &xmltext::XmlHead<'a>,
    ) -> soap::SoapResult<()> {
        let (mut saw_index, mut saw_values) = (false, false);
        self.index.clear();
        self.values.clear();
        if !head.self_closing {
            loop {
                match r.next()? {
                    xmltext::XmlItem::Start(f) if f.local == "index" => {
                        r.array_into(&f, &mut self.index)?;
                        saw_index = true;
                    }
                    xmltext::XmlItem::Start(f) if f.local == "values" => {
                        r.array_into(&f, &mut self.values)?;
                        saw_values = true;
                    }
                    xmltext::XmlItem::Start(f) => r.skip(&f)?,
                    xmltext::XmlItem::End(l) if l == head.local => break,
                    _ => {
                        return Err(soap::SoapError::Protocol(
                            "unexpected content inside Verify".into(),
                        ))
                    }
                }
            }
        }
        require_arrays(saw_index, saw_values)
    }
}

/// Both dataset arrays are required — same contract the tree handler
/// enforces.
fn require_arrays(saw_index: bool, saw_values: bool) -> soap::SoapResult<()> {
    match (saw_index, saw_values) {
        (true, true) => Ok(()),
        (false, _) => Err(soap::SoapError::Protocol("missing index array".into())),
        (_, false) => Err(soap::SoapError::Protocol("missing values array".into())),
    }
}

impl soap::ToBxsa for VerifyResponse {
    fn element_name(&self) -> bxsa::TypedName {
        bxsa::TypedName::new(None, "VerifyResponse")
    }

    fn bxsa_body_bound(&self) -> usize {
        use bxsa::estimate::{framed, plain_component_body_bound, plain_leaf_body_bound};
        let ok = plain_leaf_body_bound("ok", &[], xbs::TypeCode::Bool, 0);
        let count = plain_leaf_body_bound("count", &[], xbs::TypeCode::I64, 0);
        plain_component_body_bound("VerifyResponse", &[], 2, framed(ok) + framed(count))
    }

    fn encode_bxsa(&self, w: &mut bxsa::FrameWriter) -> soap::SoapResult<()> {
        w.begin_component(self.element_name(), &[], 2, self.bxsa_body_bound())?;
        w.leaf_bool(bxsa::TypedName::new(None, "ok"), &[], self.ok)?;
        w.leaf(bxsa::TypedName::new(None, "count"), &[], self.count)?;
        Ok(w.end_component()?)
    }

    fn encode_xml(&self, w: &mut xmltext::XmlFieldWriter<'_>) {
        w.begin_component("VerifyResponse", &[]);
        w.leaf_bool("ok", &[], self.ok);
        w.leaf("count", &[], self.count);
        w.end_component("VerifyResponse");
    }
}

impl soap::FromBxsa for VerifyResponse {
    fn expected_local() -> &'static str {
        "VerifyResponse"
    }

    fn decode_bxsa<'a>(
        &mut self,
        r: &mut bxsa::FieldReader<'a>,
        head: &bxsa::ElementHead<'a>,
    ) -> soap::SoapResult<()> {
        let (mut ok, mut count) = (None, None);
        for _ in 0..head.child_count {
            let f = r.open()?;
            match f.local {
                "ok" => ok = Some(r.read_bool(&f)?),
                "count" => count = Some(r.read_value::<i64>(&f)?),
                _ => r.skip(&f)?,
            }
        }
        r.close(head)?;
        self.ok = ok.ok_or_else(|| soap::SoapError::Protocol("missing ok field".into()))?;
        self.count = count.ok_or_else(|| soap::SoapError::Protocol("missing count field".into()))?;
        Ok(())
    }

    fn decode_xml<'a>(
        &mut self,
        r: &mut xmltext::XmlFieldReader<'a>,
        head: &xmltext::XmlHead<'a>,
    ) -> soap::SoapResult<()> {
        let (mut ok, mut count) = (None, None);
        if !head.self_closing {
            loop {
                match r.next()? {
                    xmltext::XmlItem::Start(f) if f.local == "ok" => {
                        ok = Some(r.leaf_bool(&f)?)
                    }
                    xmltext::XmlItem::Start(f) if f.local == "count" => {
                        count = Some(r.leaf_value::<i64>(&f)?)
                    }
                    xmltext::XmlItem::Start(f) => r.skip(&f)?,
                    xmltext::XmlItem::End(l) if l == head.local => break,
                    _ => {
                        return Err(soap::SoapError::Protocol(
                            "unexpected content inside VerifyResponse".into(),
                        ))
                    }
                }
            }
        }
        self.ok = ok.ok_or_else(|| soap::SoapError::Protocol("missing ok field".into()))?;
        self.count = count.ok_or_else(|| soap::SoapError::Protocol("missing count field".into()))?;
        Ok(())
    }
}

/// Register the typed fast path for `Verify` on a service: same
/// semantics as [`register_verify`], no element tree either direction.
pub fn register_verify_typed<E>(service: &mut soap::SoapService<E>)
where
    E: soap::TypedEncoding + Clone + Send + Sync + 'static,
{
    service.register_typed::<VerifyRequest, VerifyResponse, _>("Verify", |req, resp| {
        resp.ok = verify_dataset(&req.index, &req.values);
        resp.count = req.values.len() as i64;
        Ok(())
    });
}

/// The call defaults the LEAD service publishes for `Verify`: a 30 s
/// end-to-end budget, three attempts, and the binary encoding the
/// payload shape favors. Clients that install this metadata get those
/// settings on every bare `Verify` call.
pub fn verify_operation_defaults() -> soap::OperationDefaults {
    soap::OperationDefaults::new()
        .with_deadline(std::time::Duration::from_secs(30))
        .with_retry(soap::RetryPolicy::new(3))
        .idempotent(true)
        .prefer_encoding(soap::WireEncoding::Bxsa)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_is_deterministic_and_valid() {
        let (i1, v1) = lead_dataset(100, 7);
        let (i2, v2) = lead_dataset(100, 7);
        assert_eq!(i1, i2);
        assert_eq!(v1, v2);
        assert!(verify_dataset(&i1, &v1));
        let (i3, _) = lead_dataset(100, 8);
        assert_eq!(i1, i3); // indexes are deterministic regardless of seed
    }

    #[test]
    fn verify_rejects_bad_data() {
        let (index, mut values) = lead_dataset(10, 1);
        values[3] = f64::NAN;
        assert!(!verify_dataset(&index, &values));
        let (index, values) = lead_dataset(10, 1);
        assert!(!verify_dataset(&index[..9], &values));
    }

    #[test]
    fn verify_operation_dispatches() {
        let (index, values) = lead_dataset(50, 3);
        let mut registry = soap::ServiceRegistry::new();
        register_verify(&mut registry);
        let resp = registry.dispatch(&verify_request_envelope(&index, &values));
        assert!(!resp.is_fault());
        assert_eq!(
            resp.body_element().unwrap().child_value("ok"),
            Some(&bxdm::AtomicValue::Bool(true))
        );
    }

    #[test]
    fn typed_verify_request_matches_the_tree_envelope_on_both_encodings() {
        use soap::{EncodingPolicy, TypedEncoding, TypedScratch};
        let (index, values) = lead_dataset(64, 11);
        let typed = VerifyRequest {
            index: index.clone(),
            values: values.clone(),
        };
        let tree = verify_request_envelope(&index, &values).to_document();
        let mut scratch = TypedScratch::default();

        let enc = soap::BxsaEncoding::default();
        let mut out = Vec::new();
        enc.encode_typed(&typed, None, &mut scratch, &mut out).unwrap();
        assert_eq!(out, EncodingPolicy::encode(&enc, &tree).unwrap());

        let enc = soap::XmlEncoding::default();
        let mut out = Vec::new();
        enc.encode_typed(&typed, None, &mut scratch, &mut out).unwrap();
        assert_eq!(out, EncodingPolicy::encode(&enc, &tree).unwrap());
    }

    #[test]
    fn typed_verify_service_roundtrips_and_rejects_bad_data() {
        use soap::{TypedDecode, TypedEncoding, TypedScratch};
        use std::sync::Arc;
        let enc = soap::BxsaEncoding::default();
        let mut service =
            soap::SoapService::new(enc.clone(), Arc::new(soap::ServiceRegistry::new()));
        register_verify_typed(&mut service);

        let (index, values) = lead_dataset(32, 5);
        let mut scratch = TypedScratch::default();
        let mut request = Vec::new();
        enc.encode_typed(
            &VerifyRequest { index, values },
            None,
            &mut scratch,
            &mut request,
        )
        .unwrap();
        let (reply, is_fault) = service.handle_bytes(&request);
        assert!(!is_fault);
        let mut response = VerifyResponse::default();
        assert_eq!(
            enc.decode_typed_reply(&reply, &mut response).unwrap(),
            TypedDecode::Matched
        );
        assert_eq!(
            response,
            VerifyResponse {
                ok: true,
                count: 32
            }
        );

        // A NaN reading fails verification but still answers cleanly.
        let (index, mut values) = lead_dataset(8, 5);
        values[2] = f64::NAN;
        let mut request = Vec::new();
        enc.encode_typed(
            &VerifyRequest { index, values },
            None,
            &mut scratch,
            &mut request,
        )
        .unwrap();
        let (reply, is_fault) = service.handle_bytes(&request);
        assert!(!is_fault);
        enc.decode_typed_reply(&reply, &mut response).unwrap();
        assert!(!response.ok);
        assert_eq!(response.count, 8);
    }
}
