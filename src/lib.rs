//! # bxsoap — a generic SOAP framework over binary XML
//!
//! Umbrella crate re-exporting the whole stack, bottom to top:
//!
//! | layer | crate | paper section |
//! |-------|-------|---------------|
//! | primitive binary serializer | [`xbs`] | §4 (XBS) |
//! | typed data model | [`bxdm`] | §3 (bXDM) |
//! | textual XML 1.0 codec | [`xmltext`] | §2 (baseline encoding) |
//! | binary XML codec | [`bxsa`] | §4 (BXSA) |
//! | netCDF-3 substrate | [`netcdf3`] | §6 (separated scheme) |
//! | network/disk/auth simulator | [`netsim`] | §6 (testbeds) |
//! | real TCP + HTTP transports | [`transport`] | §5.3 (bindings) |
//! | simulated GridFTP | [`gridftp`] | §6 (separated scheme) |
//! | generic SOAP engine | [`soap`] | §5 |
//! | WS-* upper stack | [`wsstack`] | §5.1, Figure 3 |
//!
//! See `examples/quickstart.rs` for the five-minute tour and DESIGN.md for
//! the experiment map.

pub use bxdm;
pub use bxsa;
pub use gridftp;
pub use netcdf3;
pub use netsim;
pub use soap;
pub use transport;
pub use wsstack;
pub use xbs;
pub use xmltext;

/// Generate the paper's LEAD-derived workload: `model_size` pairs of a
/// 4-byte integer index and an 8-byte double value (atmospheric readings
/// over time/y/x/height — §6: "the data set consists of two equal-size
/// arrays").
///
/// Values are quantized to realistic instrument precision (hundredths),
/// which also keeps their ASCII lexical forms near the lengths the
/// paper's data produced — that matters for Table 1.
pub fn lead_dataset(model_size: usize, seed: u64) -> (Vec<i32>, Vec<f64>) {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let index: Vec<i32> = (0..model_size as i32).collect();
    let values: Vec<f64> = (0..model_size)
        .map(|_| {
            // Atmospheric temperature-like values in Kelvin.
            let v: f64 = rng.random_range(180.0..330.0);
            (v * 100.0).round() / 100.0
        })
        .collect();
    (index, values)
}

/// Build the unified-solution request envelope: the whole dataset inside
/// the SOAP body as two array elements (§6 "Unified solution").
pub fn verify_request_envelope(index: &[i32], values: &[f64]) -> soap::SoapEnvelope {
    use bxdm::{ArrayValue, Element};
    soap::SoapEnvelope::with_body(
        Element::component("d:Verify")
            .with_namespace("d", "http://bxsoap.example.org/lead")
            .with_child(Element::array("d:index", ArrayValue::I32(index.to_vec())))
            .with_child(Element::array(
                "d:values",
                ArrayValue::F64(values.to_vec()),
            )),
    )
}

/// The verification the paper's server performs on each value: every
/// index is in range and every reading is physically plausible.
pub fn verify_dataset(index: &[i32], values: &[f64]) -> bool {
    index.len() == values.len()
        && index.iter().enumerate().all(|(i, &x)| x == i as i32)
        && values.iter().all(|v| v.is_finite() && (100.0..400.0).contains(v))
}

/// Register the LEAD `Verify` operation on a service registry. Shared by
/// the examples, the integration tests and the benchmark harnesses.
pub fn register_verify(registry: &mut soap::ServiceRegistry) {
    use bxdm::{AtomicValue, Element};
    registry.register("Verify", |req| {
        let body = req
            .body_element()
            .expect("dispatch guarantees a body element");
        let index = body
            .find_child("index")
            .and_then(|e| e.as_i32_array())
            .ok_or_else(|| soap::SoapError::Protocol("missing index array".into()))?;
        let values = body
            .find_child("values")
            .and_then(|e| e.as_f64_array())
            .ok_or_else(|| soap::SoapError::Protocol("missing values array".into()))?;
        let ok = verify_dataset(index, values);
        Ok(soap::SoapEnvelope::with_body(
            Element::component("VerifyResponse")
                .with_child(Element::leaf("ok", AtomicValue::Bool(ok)))
                .with_child(Element::leaf(
                    "count",
                    AtomicValue::I64(values.len() as i64),
                )),
        ))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_is_deterministic_and_valid() {
        let (i1, v1) = lead_dataset(100, 7);
        let (i2, v2) = lead_dataset(100, 7);
        assert_eq!(i1, i2);
        assert_eq!(v1, v2);
        assert!(verify_dataset(&i1, &v1));
        let (i3, _) = lead_dataset(100, 8);
        assert_eq!(i1, i3); // indexes are deterministic regardless of seed
    }

    #[test]
    fn verify_rejects_bad_data() {
        let (index, mut values) = lead_dataset(10, 1);
        values[3] = f64::NAN;
        assert!(!verify_dataset(&index, &values));
        let (index, values) = lead_dataset(10, 1);
        assert!(!verify_dataset(&index[..9], &values));
    }

    #[test]
    fn verify_operation_dispatches() {
        let (index, values) = lead_dataset(50, 3);
        let mut registry = soap::ServiceRegistry::new();
        register_verify(&mut registry);
        let resp = registry.dispatch(&verify_request_envelope(&index, &values));
        assert!(!resp.is_fault());
        assert_eq!(
            resp.body_element().unwrap().child_value("ok"),
            Some(&bxdm::AtomicValue::Bool(true))
        );
    }
}
