//! Runtime service discovery: WSDL-described ports, picked at runtime.
//!
//! Paper §2: SOAP "intentionally leaves the message encoding and
//! transport protocol open... Users are free to specify the alternative
//! message encoding/binding scheme in the WSDL file, though most
//! implementations support this flexibility either poorly or not at
//! all." Here it is supported properly:
//!
//! 1. A verification service exposes three live ports — `fast`
//!    (BXSA/TCP), `interop` (XML/HTTP), and `secure` (BXSA/TCP with
//!    HMAC-signed messages).
//! 2. Its WSDL-lite description is itself shipped as **binary XML**.
//! 3. The client decodes the description, connects to each port through
//!    the runtime-dispatch engine, and calls the same operation.
//!
//! Run with: `cargo run --release --example service_discovery`

use std::sync::Arc;

use bxdm::AtomicValue;
use soap::{
    BxsaEncoding, HttpSoapServer, ServiceRegistry, SoapEngine, TcpBinding, TcpSoapServer,
    WireConfig, XmlEncoding,
};
use wsstack::{HmacSigner, ServiceDescription};

fn main() {
    // ---- Publish the service on three ports.
    let mut registry = ServiceRegistry::new();
    bxsoap::register_verify(&mut registry);
    let registry = Arc::new(registry);

    // The secure port reuses the same operations behind a signature gate.
    let signer = HmacSigner::new(b"org shared key", "org-key-1");
    let secure_registry = {
        let mut r = ServiceRegistry::new();
        let inner = Arc::clone(&registry);
        r.register(
            "Verify",
            signer.protect(move |req| Ok(inner.dispatch(req))),
        );
        Arc::new(r)
    };

    let fast = TcpSoapServer::bind("127.0.0.1:0", BxsaEncoding::default(), registry.clone())
        .expect("fast port");
    let interop = HttpSoapServer::bind(
        "127.0.0.1:0",
        "/soap",
        XmlEncoding::default(),
        registry.clone(),
    )
    .expect("interop port");
    let secure = TcpSoapServer::bind("127.0.0.1:0", BxsaEncoding::default(), secure_registry)
        .expect("secure port");

    let description = ServiceDescription::new("LeadVerifier", "http://bxsoap.example.org/lead")
        .with_operation("Verify", Some("verify an atmospheric dataset"))
        .with_port(
            "fast",
            WireConfig::parse("bxsa", "tcp").expect("config"),
            &fast.local_addr().to_string(),
            "/",
        )
        .with_port(
            "interop",
            WireConfig::parse("xml", "http").expect("config"),
            &interop.local_addr().to_string(),
            "/soap",
        )
        .with_port(
            "secure",
            WireConfig::parse("bxsa", "tcp").expect("config"),
            &secure.local_addr().to_string(),
            "/",
        );

    // ---- Ship the description as binary XML; the client decodes it.
    let wire = bxsa::encode(&description.to_document()).expect("encode wsdl");
    println!("WSDL description: {} bytes of binary XML", wire.len());
    let discovered =
        ServiceDescription::from_document(&bxsa::decode(&wire).expect("decode")).expect("parse");
    println!(
        "discovered service {:?} with operations {:?} and {} ports",
        discovered.name,
        discovered
            .operations
            .iter()
            .map(|o| o.name.as_str())
            .collect::<Vec<_>>(),
        discovered.ports.len()
    );

    // ---- Call through each unsecured port via runtime dispatch.
    let (index, values) = bxsoap::lead_dataset(5_000, 77);
    let request = bxsoap::verify_request_envelope(&index, &values);
    for port in ["fast", "interop"] {
        let mut engine = discovered.connect(port).expect("connect");
        let resp = engine.call_with(request.clone(), &soap::CallOptions::new()).expect("call");
        let ok = resp
            .body_element()
            .and_then(|b| b.child_value("ok"))
            .and_then(AtomicValue::as_bool)
            .unwrap_or(false);
        let (enc, tr) = discovered.port(port).expect("port").config.tokens();
        println!("port {port:<8} ({enc}/{tr:<4}): verified={ok}");
    }

    // ---- The secure port needs the signing policy (third type param).
    let secure_port = discovered.port("secure").expect("secure port");
    let mut engine = SoapEngine::with_security(
        BxsaEncoding::default(),
        TcpBinding::new(&secure_port.address),
        HmacSigner::new(b"org shared key", "org-key-1"),
    );
    let resp = engine.call_with(request.clone(), &soap::CallOptions::new()).expect("signed call");
    let ok = resp
        .body_element()
        .and_then(|b| b.child_value("ok"))
        .and_then(AtomicValue::as_bool)
        .unwrap_or(false);
    println!("port secure   (bxsa/tcp + hmac): verified={ok}");

    // An unsigned client is turned away from the secure port.
    let mut unsigned = discovered.connect("secure").expect("connect");
    match unsigned.call_with(request, &soap::CallOptions::new()) {
        Err(soap::SoapError::Fault(f)) => {
            println!("unsigned client rejected as expected: {}", f.string)
        }
        other => panic!("expected a security fault, got {other:?}"),
    }

    fast.shutdown();
    interop.shutdown();
    secure.shutdown();
}
