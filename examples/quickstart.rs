//! Quickstart: the whole stack in one file.
//!
//! 1. Build a typed document in the bXDM model.
//! 2. Serialize it as textual XML and as BXSA; compare sizes.
//! 3. Transcode BXSA → XML → BXSA and verify nothing changed.
//! 4. Stand up a SOAP service and call it over BXSA/TCP *and* XML/HTTP —
//!    same service code, different policy instantiations.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use bxdm::{ArrayValue, AtomicValue, Document, Element};
use soap::{
    BxsaEncoding, HttpBinding, HttpSoapServer, ServiceRegistry, SoapEngine, SoapEnvelope,
    TcpBinding, TcpSoapServer, XmlEncoding,
};

fn main() {
    // 1. A typed document: scientific payloads are arrays, not text.
    let (index, values) = bxsoap::lead_dataset(1000, 42);
    let doc = Document::with_root(
        Element::component("d:Dataset")
            .with_namespace("d", "http://bxsoap.example.org/lead")
            .with_child(Element::leaf("d:station", AtomicValue::Str("KBMG".into())))
            .with_child(Element::array("d:index", ArrayValue::I32(index.clone())))
            .with_child(Element::array("d:values", ArrayValue::F64(values.clone()))),
    );

    // 2. Two serializations of the same logical structure.
    let xml = xmltext::to_string(&doc).expect("infallible");
    let bin = bxsa::encode(&doc).expect("encode");
    let native = index.len() * 4 + values.len() * 8;
    println!("native payload : {native:>7} bytes");
    println!(
        "BXSA           : {:>7} bytes  ({:+.1}% vs native)",
        bin.len(),
        100.0 * (bin.len() as f64 - native as f64) / native as f64
    );
    println!(
        "textual XML    : {:>7} bytes  ({:+.1}% vs native)",
        xml.len(),
        100.0 * (xml.len() as f64 - native as f64) / native as f64
    );

    // 3. Transcodability (paper §4.2): binary → text → binary, unchanged.
    let text = bxsa::bxsa_to_xml(&bin).expect("to xml");
    let back = bxsa::xml_to_bxsa(&text).expect("to bxsa");
    assert_eq!(back, bin, "transcoding must be lossless");
    println!("transcoding    : BXSA -> XML -> BXSA is byte-identical");

    // 4. One service, two engine instantiations.
    let mut registry = ServiceRegistry::new();
    bxsoap::register_verify(&mut registry);
    let registry = Arc::new(registry);

    let tcp_server = TcpSoapServer::bind(
        "127.0.0.1:0",
        BxsaEncoding::default(),
        Arc::clone(&registry),
    )
    .expect("bind tcp");
    let http_server = HttpSoapServer::bind(
        "127.0.0.1:0",
        "/soap",
        XmlEncoding::default(),
        Arc::clone(&registry),
    )
    .expect("bind http");

    let request = bxsoap::verify_request_envelope(&index, &values);

    // SOAP over BXSA/TCP — the paper's fast path.
    let mut bin_engine = SoapEngine::new(
        BxsaEncoding::default(),
        TcpBinding::new(&tcp_server.local_addr().to_string()),
    );
    let resp = bin_engine.call_with(request.clone(), &soap::CallOptions::new()).expect("bxsa/tcp call");
    report("SOAP over BXSA/TCP", &resp);

    // SOAP over XML/HTTP — the conventional path. Identical service.
    let mut xml_engine = SoapEngine::new(
        XmlEncoding::default(),
        HttpBinding::new(&http_server.local_addr().to_string(), "/soap"),
    );
    let resp = xml_engine.call_with(request, &soap::CallOptions::new()).expect("xml/http call");
    report("SOAP over XML/HTTP", &resp);

    tcp_server.shutdown();
    http_server.shutdown();
}

fn report(scheme: &str, resp: &SoapEnvelope) {
    let body = resp.body_element().expect("response body");
    let ok = body.child_value("ok").and_then(AtomicValue::as_bool);
    let count = body.child_value("count").and_then(AtomicValue::as_i64);
    println!(
        "{scheme:<20}: verified={} count={}",
        ok.unwrap_or(false),
        count.unwrap_or(0)
    );
}
