//! Wide-scale sensor network scenario: *small* messages at high
//! frequency, with push notifications.
//!
//! The paper's introduction names this as the second scientific workload
//! class ("small data messages are transmitted between the machines but
//! at very high frequency and on real-time demand") — the regime where
//! Figure 4 shows per-message overheads dominating.
//!
//! Sensors publish readings to an aggregation service; downstream
//! consumers subscribe via the WS-Eventing layer and receive pushed
//! notifications. Everything runs over SOAP/BXSA/TCP.
//!
//! Run with: `cargo run --release --example sensor_network`

use std::sync::Arc;
use std::time::Instant;

use bxdm::{AtomicValue, Element};
use parking_lot::Mutex;
use soap::{
    BxsaEncoding, ServiceRegistry, SoapEngine, SoapEnvelope, SoapError, TcpBinding, TcpSoapServer,
};
use wsstack::EventSource;

fn main() {
    // ---- Aggregation service: accepts readings, re-publishes over the
    // eventing layer when a threshold trips.
    let source = Arc::new(EventSource::new());
    let readings: Arc<Mutex<Vec<(String, f64)>>> = Arc::new(Mutex::new(Vec::new()));

    let mut registry = ServiceRegistry::new();
    {
        let readings = Arc::clone(&readings);
        registry.register("Report", move |req| {
            let body = req.body_element().expect("dispatch checked");
            let station = body
                .child_value("station")
                .and_then(AtomicValue::as_str)
                .ok_or_else(|| SoapError::Protocol("missing station".into()))?
                .to_owned();
            let reading = body
                .child_value("reading")
                .and_then(AtomicValue::as_f64)
                .ok_or_else(|| SoapError::Protocol("missing reading".into()))?;
            readings.lock().push((station, reading));
            Ok(SoapEnvelope::with_body(Element::component("ReportAck")))
        });
    }
    Arc::clone(&source).register_operations(&mut registry);
    let aggregator =
        TcpSoapServer::bind("127.0.0.1:0", BxsaEncoding::default(), Arc::new(registry))
            .expect("bind aggregator");
    let aggregator_addr = aggregator.local_addr().to_string();

    // ---- A consumer service receiving pushed alerts.
    let alerts: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
    let consumer_registry = {
        let alerts = Arc::clone(&alerts);
        Arc::new(ServiceRegistry::new().with_operation("Notify", move |req| {
            let v = req
                .body_element()
                .and_then(|b| b.find_child("alert"))
                .and_then(|a| a.child_value("value"))
                .and_then(AtomicValue::as_f64)
                .unwrap_or(f64::NAN);
            alerts.lock().push(v);
            Ok(SoapEnvelope::with_body(Element::component("Ack")))
        }))
    };
    let consumer = TcpSoapServer::bind("127.0.0.1:0", BxsaEncoding::default(), consumer_registry)
        .expect("bind consumer");
    source.subscribe(&consumer.local_addr().to_string(), "overheat");

    // ---- Sensors: many tiny messages over one persistent connection
    // each (this is where raw TCP framing beats per-request HTTP).
    let n_sensors = 4;
    let msgs_per_sensor = 500;
    let start = Instant::now();
    crossbeam::thread::scope(|s| {
        for sensor in 0..n_sensors {
            let addr = aggregator_addr.clone();
            s.spawn(move |_| {
                let mut engine =
                    SoapEngine::new(BxsaEncoding::default(), TcpBinding::new(&addr));
                for i in 0..msgs_per_sensor {
                    let reading = 280.0 + (i % 40) as f64 * 0.5;
                    let env = SoapEnvelope::with_body(
                        Element::component("Report")
                            .with_child(Element::leaf(
                                "station",
                                AtomicValue::Str(format!("S{sensor}")),
                            ))
                            .with_child(Element::leaf("reading", AtomicValue::F64(reading))),
                    );
                    engine.call_with(env, &soap::CallOptions::new()).expect("report");
                }
            });
        }
    })
    .expect("sensor threads");
    let elapsed = start.elapsed();
    let total = n_sensors * msgs_per_sensor;
    println!(
        "{total} sensor reports in {elapsed:?} — {:.0} msgs/s, {:.0} µs/msg",
        total as f64 / elapsed.as_secs_f64(),
        elapsed.as_micros() as f64 / total as f64
    );

    // ---- Threshold sweep: push alerts for hot readings.
    let hot: Vec<f64> = readings
        .lock()
        .iter()
        .filter(|(_, v)| *v > 295.0)
        .map(|&(_, v)| v)
        .collect();
    let mut delivered = 0;
    for v in &hot {
        let results = source.notify(
            "overheat",
            Element::component("alert").with_child(Element::leaf(
                "value",
                AtomicValue::F64(*v),
            )),
            |sub| SoapEngine::new(BxsaEncoding::default(), TcpBinding::new(&sub.endpoint)),
        );
        delivered += results.iter().filter(|(_, r)| r.is_ok()).count();
    }
    println!(
        "pushed {delivered} overheat alerts; consumer recorded {}",
        alerts.lock().len()
    );
    assert_eq!(delivered, alerts.lock().len());

    consumer.shutdown();
    aggregator.shutdown();
}
