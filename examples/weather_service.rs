//! A LEAD-style atmospheric data service (the paper's motivating
//! workload) exercised through **all four** engine instantiations.
//!
//! The service accepts a dataset (index + value arrays over the
//! time/y/x/height parameters), verifies every value, and answers with a
//! verification summary. The client measures wall-clock response time per
//! (encoding, binding) combination on loopback.
//!
//! Run with: `cargo run --release --example weather_service`

use std::sync::Arc;
use std::time::Instant;

use bxdm::AtomicValue;
use soap::{
    BindingPolicy, BxsaEncoding, EncodingPolicy, HttpBinding, HttpSoapServer, ServiceRegistry,
    SoapEngine, TcpBinding, TcpSoapServer, XmlEncoding,
};

fn main() {
    let mut registry = ServiceRegistry::new();
    bxsoap::register_verify(&mut registry);
    let registry = Arc::new(registry);

    // One server per (encoding, transport) endpoint.
    let tcp_bxsa = TcpSoapServer::bind("127.0.0.1:0", BxsaEncoding::default(), registry.clone())
        .expect("bind");
    let tcp_xml =
        TcpSoapServer::bind("127.0.0.1:0", XmlEncoding::default(), registry.clone()).expect("bind");
    let http_bxsa = HttpSoapServer::bind(
        "127.0.0.1:0",
        "/soap",
        BxsaEncoding::default(),
        registry.clone(),
    )
    .expect("bind");
    let http_xml = HttpSoapServer::bind(
        "127.0.0.1:0",
        "/soap",
        XmlEncoding::default(),
        registry.clone(),
    )
    .expect("bind");

    println!("model_size  scheme              round-trips/s   µs/call");
    for model_size in [10usize, 1000, 100_000] {
        let (index, values) = bxsoap::lead_dataset(model_size, 7);
        let request = bxsoap::verify_request_envelope(&index, &values);
        let calls = if model_size >= 100_000 { 5 } else { 50 };

        run(
            "BXSA/TCP",
            model_size,
            calls,
            &request,
            SoapEngine::new(
                BxsaEncoding::default(),
                TcpBinding::new(&tcp_bxsa.local_addr().to_string()),
            ),
        );
        run(
            "XML/TCP",
            model_size,
            calls,
            &request,
            SoapEngine::new(
                XmlEncoding::default(),
                TcpBinding::new(&tcp_xml.local_addr().to_string()),
            ),
        );
        run(
            "BXSA/HTTP",
            model_size,
            calls,
            &request,
            SoapEngine::new(
                BxsaEncoding::default(),
                HttpBinding::new(&http_bxsa.local_addr().to_string(), "/soap"),
            ),
        );
        run(
            "XML/HTTP",
            model_size,
            calls,
            &request,
            SoapEngine::new(
                XmlEncoding::default(),
                HttpBinding::new(&http_xml.local_addr().to_string(), "/soap"),
            ),
        );
    }

    tcp_bxsa.shutdown();
    tcp_xml.shutdown();
    http_bxsa.shutdown();
    http_xml.shutdown();
}

fn run<E, B>(
    name: &str,
    model_size: usize,
    calls: usize,
    request: &soap::SoapEnvelope,
    mut engine: SoapEngine<E, B>,
) where
    E: EncodingPolicy,
    B: BindingPolicy,
{
    // Warm-up call establishes connections and page caches.
    let warm = engine.call_with(request.clone(), &soap::CallOptions::new()).expect("warmup call");
    assert_eq!(
        warm.body_element()
            .and_then(|b| b.child_value("ok"))
            .and_then(AtomicValue::as_bool),
        Some(true),
        "service must verify the dataset"
    );

    let start = Instant::now();
    for _ in 0..calls {
        engine.call_with(request.clone(), &soap::CallOptions::new()).expect("call");
    }
    let elapsed = start.elapsed();
    let per_call_us = elapsed.as_micros() as f64 / calls as f64;
    println!(
        "{model_size:>10}  {name:<18} {:>13.1} {per_call_us:>9.0}",
        1e6 / per_call_us
    );
}
