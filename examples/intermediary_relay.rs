//! SOAP intermediary demo: textual endpoints, binary middle hop.
//!
//! Paper §5.1: intermediaries "can just simply deploy multiple generic
//! SOAP engines with different policy configurations to serve the up-link
//! and down-link message flows", and "transcodability enables BXSA to be
//! the intermediate protocol over the message hops, even when the message
//! sender and receiver are communicating via textual XML."
//!
//! Topology here (each hop a real loopback socket):
//!
//! ```text
//! client --(BXSA over TCP)--> relay --(XML over TCP)--> terminal service
//! ```
//!
//! WS-Addressing headers ride along untouched, demonstrating that the
//! upper stack does not care what the hops speak.
//!
//! Run with: `cargo run --example intermediary_relay`

use std::sync::Arc;

use bxdm::{ArrayValue, AtomicValue, Element};
use soap::{
    BxsaEncoding, Intermediary, ServiceRegistry, SoapEngine, SoapEnvelope, TcpBinding,
    TcpSoapServer, XmlEncoding,
};
use wsstack::WsAddressing;

fn main() {
    // Terminal service: speaks textual XML, computes simple statistics,
    // and echoes the addressing properties it saw.
    let registry = Arc::new(ServiceRegistry::new().with_operation("Stats", |req| {
        let addressing = WsAddressing::from_envelope(req);
        let data = req
            .body_element()
            .expect("dispatch checked")
            .find_child("data")
            .and_then(Element::as_f64_array)
            .ok_or_else(|| soap::SoapError::Protocol("missing data".into()))?;
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n.max(1.0);
        let var = data.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n.max(1.0);
        let reply_addr = WsAddressing::reply_to_message(&addressing, "urn:uuid:stats-reply");
        Ok(reply_addr.apply(SoapEnvelope::with_body(
            Element::component("StatsResponse")
                .with_child(Element::leaf("mean", AtomicValue::F64(mean)))
                .with_child(Element::leaf("stddev", AtomicValue::F64(var.sqrt())))
                .with_child(Element::leaf(
                    "sawAction",
                    AtomicValue::Str(addressing.action.unwrap_or_default()),
                )),
        )))
    }));
    let terminal =
        TcpSoapServer::bind("127.0.0.1:0", XmlEncoding::default(), registry).expect("terminal");
    println!("terminal service (XML/TCP) on {}", terminal.local_addr());

    // The relay: BXSA down-link, XML up-link.
    let relay = Intermediary::bind_tcp(
        "127.0.0.1:0",
        BxsaEncoding::default(),
        XmlEncoding::default(),
        TcpBinding::new(&terminal.local_addr().to_string()),
    )
    .expect("relay");
    println!("intermediary (BXSA -> XML) on {}", relay.local_addr());

    // Client: speaks binary to the relay, with addressing headers.
    let mut engine = SoapEngine::new(
        BxsaEncoding::default(),
        TcpBinding::new(&relay.local_addr().to_string()),
    );
    let (_, values) = bxsoap::lead_dataset(10_000, 3);
    let addressing = WsAddressing::request(
        "tcp://terminal/stats",
        "http://bxsoap.example.org/Stats",
        "urn:uuid:req-1",
    );
    let request = addressing.apply(SoapEnvelope::with_body(
        Element::component("Stats")
            .with_child(Element::array("data", ArrayValue::F64(values))),
    ));

    let response = engine.call_with(request, &soap::CallOptions::new()).expect("relayed call");
    let body = response.body_element().expect("body");
    let reply_addressing = WsAddressing::from_envelope(&response);
    println!(
        "mean = {:.3}, stddev = {:.3}",
        body.child_value("mean")
            .and_then(AtomicValue::as_f64)
            .unwrap(),
        body.child_value("stddev")
            .and_then(AtomicValue::as_f64)
            .unwrap()
    );
    println!(
        "terminal saw action {:?}; reply RelatesTo = {:?}",
        body.child_value("sawAction")
            .and_then(AtomicValue::as_str)
            .unwrap(),
        reply_addressing.relates_to.as_deref().unwrap()
    );
    assert_eq!(reply_addressing.relates_to.as_deref(), Some("urn:uuid:req-1"));

    relay.shutdown();
    terminal.shutdown();
}
