//! Distributed data mining scenario: *large* binary datasets, unified vs
//! separated — with the separated scheme running for real.
//!
//! The unified solution ships the dataset inside the SOAP message
//! (BXSA/TCP). The separated solution does what the paper describes
//! (§6): the client saves a **netCDF file**, serves it over HTTP, and
//! sends a SOAP control message containing only the URL; the server then
//! downloads the file, parses it, and verifies the data. Both paths run
//! over real loopback sockets and a real filesystem here, so the
//! *structural* costs (extra exchange, disk round trip, second
//! connection) are genuine; the paper's wide-area numbers come from the
//! `bench` harnesses, which add the simulated network.
//!
//! Run with: `cargo run --release --example data_mining`

use std::sync::Arc;
use std::time::Instant;

use bxdm::{AtomicValue, Element};
use netcdf3::{NcFile, NcValue};
use soap::{
    BxsaEncoding, ServiceRegistry, SoapEngine, SoapEnvelope, SoapError, TcpBinding, TcpSoapServer,
};
use transport::FileServer;

fn main() {
    let staging = std::env::temp_dir().join(format!("bxsoap_mining_{}", std::process::id()));
    std::fs::create_dir_all(&staging).expect("staging dir");

    // The client-side file server (the paper runs Apache on the client
    // host; the transfer server pulls from it).
    let file_server = FileServer::bind("127.0.0.1:0", &staging).expect("file server");
    let file_addr = file_server.local_addr().to_string();

    // The analysis service supports both request shapes.
    let mut registry = ServiceRegistry::new();
    bxsoap::register_verify(&mut registry); // unified: arrays in-message
    registry.register("VerifyByUrl", move |req| {
        // Separated: the body carries a URL; fetch + parse + verify.
        let body = req.body_element().expect("dispatch checked");
        let url = body
            .child_value("url")
            .and_then(AtomicValue::as_str)
            .ok_or_else(|| SoapError::Protocol("missing url".into()))?;
        let (addr, path) = url
            .strip_prefix("http://")
            .and_then(|r| r.split_once('/'))
            .ok_or_else(|| SoapError::Protocol(format!("unparseable url {url:?}")))?;
        let bytes = transport::http_get(addr, &format!("/{path}"))?;
        let nc = NcFile::from_bytes(&bytes)
            .map_err(|e| SoapError::Protocol(format!("bad netCDF file: {e}")))?;
        let index = nc
            .var("index")
            .and_then(|v| v.data.as_int())
            .ok_or_else(|| SoapError::Protocol("file lacks index variable".into()))?;
        let values = nc
            .var("values")
            .and_then(|v| v.data.as_double())
            .ok_or_else(|| SoapError::Protocol("file lacks values variable".into()))?;
        let ok = bxsoap::verify_dataset(index, values);
        Ok(SoapEnvelope::with_body(
            Element::component("VerifyResponse")
                .with_child(Element::leaf("ok", AtomicValue::Bool(ok)))
                .with_child(Element::leaf(
                    "count",
                    AtomicValue::I64(values.len() as i64),
                )),
        ))
    });
    let server = TcpSoapServer::bind("127.0.0.1:0", BxsaEncoding::default(), Arc::new(registry))
        .expect("bind service");
    let mut engine = SoapEngine::new(
        BxsaEncoding::default(),
        TcpBinding::new(&server.local_addr().to_string()),
    );

    println!("model_size     unified      separated   (loopback wall time)");
    for model_size in [1_000usize, 100_000, 1_000_000] {
        let (index, values) = bxsoap::lead_dataset(model_size, 11);

        // ---- Unified: data inside the SOAP message.
        let request = bxsoap::verify_request_envelope(&index, &values);
        let start = Instant::now();
        let resp = engine.call_with(request, &soap::CallOptions::new()).expect("unified call");
        let unified = start.elapsed();
        assert_verified(&resp, model_size);

        // ---- Separated: netCDF file + HTTP staging + control message.
        let start = Instant::now();
        let mut nc = NcFile::new();
        let d = nc.add_dim("model", model_size);
        nc.add_var("index", &[d], NcValue::Int(index.clone()))
            .expect("var");
        nc.add_var("values", &[d], NcValue::Double(values.clone()))
            .expect("var");
        let file_name = format!("run_{model_size}.nc");
        nc.write_file(&staging.join(&file_name)).expect("write nc");
        let control = SoapEnvelope::with_body(
            Element::component("VerifyByUrl").with_child(Element::leaf(
                "url",
                AtomicValue::Str(format!("http://{file_addr}/{file_name}")),
            )),
        );
        let resp = engine.call_with(control, &soap::CallOptions::new()).expect("separated call");
        let separated = start.elapsed();
        assert_verified(&resp, model_size);

        println!("{model_size:>10} {unified:>12.2?} {separated:>14.2?}");
    }

    server.shutdown();
    file_server.shutdown();
    let _ = std::fs::remove_dir_all(&staging);
}

fn assert_verified(resp: &SoapEnvelope, expected_count: usize) {
    let body = resp.body_element().expect("body");
    assert_eq!(
        body.child_value("ok").and_then(AtomicValue::as_bool),
        Some(true)
    );
    assert_eq!(
        body.child_value("count").and_then(AtomicValue::as_i64),
        Some(expected_count as i64)
    );
}
