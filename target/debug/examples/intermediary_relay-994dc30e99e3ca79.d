/root/repo/target/debug/examples/intermediary_relay-994dc30e99e3ca79.d: examples/intermediary_relay.rs

/root/repo/target/debug/examples/intermediary_relay-994dc30e99e3ca79: examples/intermediary_relay.rs

examples/intermediary_relay.rs:
