/root/repo/target/debug/examples/sensor_network-2eea42d1a2f1f92b.d: examples/sensor_network.rs

/root/repo/target/debug/examples/sensor_network-2eea42d1a2f1f92b: examples/sensor_network.rs

examples/sensor_network.rs:
