/root/repo/target/debug/examples/intermediary_relay-65b3eca00a3c638d.d: examples/intermediary_relay.rs

/root/repo/target/debug/examples/intermediary_relay-65b3eca00a3c638d: examples/intermediary_relay.rs

examples/intermediary_relay.rs:
