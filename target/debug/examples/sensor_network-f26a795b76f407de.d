/root/repo/target/debug/examples/sensor_network-f26a795b76f407de.d: examples/sensor_network.rs Cargo.toml

/root/repo/target/debug/examples/libsensor_network-f26a795b76f407de.rmeta: examples/sensor_network.rs Cargo.toml

examples/sensor_network.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
