/root/repo/target/debug/examples/weather_service-5b9d039e54c15099.d: examples/weather_service.rs Cargo.toml

/root/repo/target/debug/examples/libweather_service-5b9d039e54c15099.rmeta: examples/weather_service.rs Cargo.toml

examples/weather_service.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
