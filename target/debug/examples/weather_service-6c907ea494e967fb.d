/root/repo/target/debug/examples/weather_service-6c907ea494e967fb.d: examples/weather_service.rs

/root/repo/target/debug/examples/weather_service-6c907ea494e967fb: examples/weather_service.rs

examples/weather_service.rs:
