/root/repo/target/debug/examples/quickstart-b44c9a88f05ed161.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-b44c9a88f05ed161: examples/quickstart.rs

examples/quickstart.rs:
