/root/repo/target/debug/examples/data_mining-054cebaf0ab17f8c.d: examples/data_mining.rs

/root/repo/target/debug/examples/data_mining-054cebaf0ab17f8c: examples/data_mining.rs

examples/data_mining.rs:
