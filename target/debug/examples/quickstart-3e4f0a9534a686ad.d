/root/repo/target/debug/examples/quickstart-3e4f0a9534a686ad.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-3e4f0a9534a686ad.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
