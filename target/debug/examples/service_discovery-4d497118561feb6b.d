/root/repo/target/debug/examples/service_discovery-4d497118561feb6b.d: examples/service_discovery.rs Cargo.toml

/root/repo/target/debug/examples/libservice_discovery-4d497118561feb6b.rmeta: examples/service_discovery.rs Cargo.toml

examples/service_discovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
