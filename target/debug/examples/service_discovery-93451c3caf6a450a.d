/root/repo/target/debug/examples/service_discovery-93451c3caf6a450a.d: examples/service_discovery.rs

/root/repo/target/debug/examples/service_discovery-93451c3caf6a450a: examples/service_discovery.rs

examples/service_discovery.rs:
