/root/repo/target/debug/examples/intermediary_relay-a00cce041a56171c.d: examples/intermediary_relay.rs Cargo.toml

/root/repo/target/debug/examples/libintermediary_relay-a00cce041a56171c.rmeta: examples/intermediary_relay.rs Cargo.toml

examples/intermediary_relay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
