/root/repo/target/debug/examples/sensor_network-6b2cf98f5a880f96.d: examples/sensor_network.rs

/root/repo/target/debug/examples/sensor_network-6b2cf98f5a880f96: examples/sensor_network.rs

examples/sensor_network.rs:
