/root/repo/target/debug/examples/data_mining-fe135b1b153093ae.d: examples/data_mining.rs

/root/repo/target/debug/examples/data_mining-fe135b1b153093ae: examples/data_mining.rs

examples/data_mining.rs:
