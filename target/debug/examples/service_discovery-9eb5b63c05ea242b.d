/root/repo/target/debug/examples/service_discovery-9eb5b63c05ea242b.d: examples/service_discovery.rs

/root/repo/target/debug/examples/service_discovery-9eb5b63c05ea242b: examples/service_discovery.rs

examples/service_discovery.rs:
