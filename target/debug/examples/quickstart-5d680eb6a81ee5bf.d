/root/repo/target/debug/examples/quickstart-5d680eb6a81ee5bf.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-5d680eb6a81ee5bf: examples/quickstart.rs

examples/quickstart.rs:
