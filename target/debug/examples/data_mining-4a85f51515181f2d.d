/root/repo/target/debug/examples/data_mining-4a85f51515181f2d.d: examples/data_mining.rs Cargo.toml

/root/repo/target/debug/examples/libdata_mining-4a85f51515181f2d.rmeta: examples/data_mining.rs Cargo.toml

examples/data_mining.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
