/root/repo/target/debug/examples/weather_service-2172ca1c2e8fc38f.d: examples/weather_service.rs

/root/repo/target/debug/examples/weather_service-2172ca1c2e8fc38f: examples/weather_service.rs

examples/weather_service.rs:
