/root/repo/target/debug/deps/gridftp-ec074885fe182c07.d: crates/gridftp/src/lib.rs crates/gridftp/src/session.rs Cargo.toml

/root/repo/target/debug/deps/libgridftp-ec074885fe182c07.rmeta: crates/gridftp/src/lib.rs crates/gridftp/src/session.rs Cargo.toml

crates/gridftp/src/lib.rs:
crates/gridftp/src/session.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
