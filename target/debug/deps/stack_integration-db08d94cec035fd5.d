/root/repo/target/debug/deps/stack_integration-db08d94cec035fd5.d: tests/stack_integration.rs

/root/repo/target/debug/deps/stack_integration-db08d94cec035fd5: tests/stack_integration.rs

tests/stack_integration.rs:
