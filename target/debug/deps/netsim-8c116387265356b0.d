/root/repo/target/debug/deps/netsim-8c116387265356b0.d: crates/netsim/src/lib.rs crates/netsim/src/auth.rs crates/netsim/src/clock.rs crates/netsim/src/disk.rs crates/netsim/src/profile.rs crates/netsim/src/queue.rs crates/netsim/src/striped.rs crates/netsim/src/tcp.rs crates/netsim/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libnetsim-8c116387265356b0.rmeta: crates/netsim/src/lib.rs crates/netsim/src/auth.rs crates/netsim/src/clock.rs crates/netsim/src/disk.rs crates/netsim/src/profile.rs crates/netsim/src/queue.rs crates/netsim/src/striped.rs crates/netsim/src/tcp.rs crates/netsim/src/time.rs Cargo.toml

crates/netsim/src/lib.rs:
crates/netsim/src/auth.rs:
crates/netsim/src/clock.rs:
crates/netsim/src/disk.rs:
crates/netsim/src/profile.rs:
crates/netsim/src/queue.rs:
crates/netsim/src/striped.rs:
crates/netsim/src/tcp.rs:
crates/netsim/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
