/root/repo/target/debug/deps/engine_overhead-cc2189eaf5de1e9e.d: crates/bench/benches/engine_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libengine_overhead-cc2189eaf5de1e9e.rmeta: crates/bench/benches/engine_overhead.rs Cargo.toml

crates/bench/benches/engine_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
