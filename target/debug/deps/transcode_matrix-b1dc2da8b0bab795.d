/root/repo/target/debug/deps/transcode_matrix-b1dc2da8b0bab795.d: tests/transcode_matrix.rs Cargo.toml

/root/repo/target/debug/deps/libtranscode_matrix-b1dc2da8b0bab795.rmeta: tests/transcode_matrix.rs Cargo.toml

tests/transcode_matrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
