/root/repo/target/debug/deps/bxsoap-fabe5d2b5fbafb22.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbxsoap-fabe5d2b5fbafb22.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
