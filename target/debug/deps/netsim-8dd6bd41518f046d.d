/root/repo/target/debug/deps/netsim-8dd6bd41518f046d.d: crates/netsim/src/lib.rs crates/netsim/src/auth.rs crates/netsim/src/clock.rs crates/netsim/src/disk.rs crates/netsim/src/profile.rs crates/netsim/src/queue.rs crates/netsim/src/striped.rs crates/netsim/src/tcp.rs crates/netsim/src/time.rs

/root/repo/target/debug/deps/libnetsim-8dd6bd41518f046d.rlib: crates/netsim/src/lib.rs crates/netsim/src/auth.rs crates/netsim/src/clock.rs crates/netsim/src/disk.rs crates/netsim/src/profile.rs crates/netsim/src/queue.rs crates/netsim/src/striped.rs crates/netsim/src/tcp.rs crates/netsim/src/time.rs

/root/repo/target/debug/deps/libnetsim-8dd6bd41518f046d.rmeta: crates/netsim/src/lib.rs crates/netsim/src/auth.rs crates/netsim/src/clock.rs crates/netsim/src/disk.rs crates/netsim/src/profile.rs crates/netsim/src/queue.rs crates/netsim/src/striped.rs crates/netsim/src/tcp.rs crates/netsim/src/time.rs

crates/netsim/src/lib.rs:
crates/netsim/src/auth.rs:
crates/netsim/src/clock.rs:
crates/netsim/src/disk.rs:
crates/netsim/src/profile.rs:
crates/netsim/src/queue.rs:
crates/netsim/src/striped.rs:
crates/netsim/src/tcp.rs:
crates/netsim/src/time.rs:
