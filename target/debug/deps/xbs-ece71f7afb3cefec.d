/root/repo/target/debug/deps/xbs-ece71f7afb3cefec.d: crates/xbs/src/lib.rs crates/xbs/src/byteorder.rs crates/xbs/src/error.rs crates/xbs/src/prim.rs crates/xbs/src/reader.rs crates/xbs/src/typecode.rs crates/xbs/src/vls.rs crates/xbs/src/writer.rs

/root/repo/target/debug/deps/libxbs-ece71f7afb3cefec.rlib: crates/xbs/src/lib.rs crates/xbs/src/byteorder.rs crates/xbs/src/error.rs crates/xbs/src/prim.rs crates/xbs/src/reader.rs crates/xbs/src/typecode.rs crates/xbs/src/vls.rs crates/xbs/src/writer.rs

/root/repo/target/debug/deps/libxbs-ece71f7afb3cefec.rmeta: crates/xbs/src/lib.rs crates/xbs/src/byteorder.rs crates/xbs/src/error.rs crates/xbs/src/prim.rs crates/xbs/src/reader.rs crates/xbs/src/typecode.rs crates/xbs/src/vls.rs crates/xbs/src/writer.rs

crates/xbs/src/lib.rs:
crates/xbs/src/byteorder.rs:
crates/xbs/src/error.rs:
crates/xbs/src/prim.rs:
crates/xbs/src/reader.rs:
crates/xbs/src/typecode.rs:
crates/xbs/src/vls.rs:
crates/xbs/src/writer.rs:
