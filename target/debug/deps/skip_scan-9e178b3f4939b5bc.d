/root/repo/target/debug/deps/skip_scan-9e178b3f4939b5bc.d: crates/bench/benches/skip_scan.rs Cargo.toml

/root/repo/target/debug/deps/libskip_scan-9e178b3f4939b5bc.rmeta: crates/bench/benches/skip_scan.rs Cargo.toml

crates/bench/benches/skip_scan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
