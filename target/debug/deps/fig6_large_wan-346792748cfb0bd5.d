/root/repo/target/debug/deps/fig6_large_wan-346792748cfb0bd5.d: crates/bench/src/bin/fig6_large_wan.rs

/root/repo/target/debug/deps/fig6_large_wan-346792748cfb0bd5: crates/bench/src/bin/fig6_large_wan.rs

crates/bench/src/bin/fig6_large_wan.rs:
