/root/repo/target/debug/deps/wsstack-251bf2c65e6ddde9.d: crates/wsstack/src/lib.rs crates/wsstack/src/addressing.rs crates/wsstack/src/databinding.rs crates/wsstack/src/eventing.rs crates/wsstack/src/security.rs crates/wsstack/src/sha256.rs crates/wsstack/src/wsdl.rs crates/wsstack/src/xpath.rs

/root/repo/target/debug/deps/libwsstack-251bf2c65e6ddde9.rlib: crates/wsstack/src/lib.rs crates/wsstack/src/addressing.rs crates/wsstack/src/databinding.rs crates/wsstack/src/eventing.rs crates/wsstack/src/security.rs crates/wsstack/src/sha256.rs crates/wsstack/src/wsdl.rs crates/wsstack/src/xpath.rs

/root/repo/target/debug/deps/libwsstack-251bf2c65e6ddde9.rmeta: crates/wsstack/src/lib.rs crates/wsstack/src/addressing.rs crates/wsstack/src/databinding.rs crates/wsstack/src/eventing.rs crates/wsstack/src/security.rs crates/wsstack/src/sha256.rs crates/wsstack/src/wsdl.rs crates/wsstack/src/xpath.rs

crates/wsstack/src/lib.rs:
crates/wsstack/src/addressing.rs:
crates/wsstack/src/databinding.rs:
crates/wsstack/src/eventing.rs:
crates/wsstack/src/security.rs:
crates/wsstack/src/sha256.rs:
crates/wsstack/src/wsdl.rs:
crates/wsstack/src/xpath.rs:
