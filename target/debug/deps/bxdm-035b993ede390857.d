/root/repo/target/debug/deps/bxdm-035b993ede390857.d: crates/bxdm/src/lib.rs crates/bxdm/src/builder.rs crates/bxdm/src/name.rs crates/bxdm/src/namespace.rs crates/bxdm/src/navigate.rs crates/bxdm/src/node.rs crates/bxdm/src/value.rs crates/bxdm/src/visitor.rs Cargo.toml

/root/repo/target/debug/deps/libbxdm-035b993ede390857.rmeta: crates/bxdm/src/lib.rs crates/bxdm/src/builder.rs crates/bxdm/src/name.rs crates/bxdm/src/namespace.rs crates/bxdm/src/navigate.rs crates/bxdm/src/node.rs crates/bxdm/src/value.rs crates/bxdm/src/visitor.rs Cargo.toml

crates/bxdm/src/lib.rs:
crates/bxdm/src/builder.rs:
crates/bxdm/src/name.rs:
crates/bxdm/src/namespace.rs:
crates/bxdm/src/navigate.rs:
crates/bxdm/src/node.rs:
crates/bxdm/src/value.rs:
crates/bxdm/src/visitor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
