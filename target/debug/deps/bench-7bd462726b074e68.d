/root/repo/target/debug/deps/bench-7bd462726b074e68.d: crates/bench/src/lib.rs crates/bench/src/alloc_counter.rs crates/bench/src/cpu.rs crates/bench/src/schemes.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/bench-7bd462726b074e68: crates/bench/src/lib.rs crates/bench/src/alloc_counter.rs crates/bench/src/cpu.rs crates/bench/src/schemes.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/alloc_counter.rs:
crates/bench/src/cpu.rs:
crates/bench/src/schemes.rs:
crates/bench/src/workload.rs:
