/root/repo/target/debug/deps/fig6_large_wan-331f9b5bc9885253.d: crates/bench/src/bin/fig6_large_wan.rs

/root/repo/target/debug/deps/fig6_large_wan-331f9b5bc9885253: crates/bench/src/bin/fig6_large_wan.rs

crates/bench/src/bin/fig6_large_wan.rs:
