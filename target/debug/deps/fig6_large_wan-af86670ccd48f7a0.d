/root/repo/target/debug/deps/fig6_large_wan-af86670ccd48f7a0.d: crates/bench/src/bin/fig6_large_wan.rs

/root/repo/target/debug/deps/fig6_large_wan-af86670ccd48f7a0: crates/bench/src/bin/fig6_large_wan.rs

crates/bench/src/bin/fig6_large_wan.rs:
