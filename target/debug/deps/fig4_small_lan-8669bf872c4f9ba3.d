/root/repo/target/debug/deps/fig4_small_lan-8669bf872c4f9ba3.d: crates/bench/src/bin/fig4_small_lan.rs

/root/repo/target/debug/deps/fig4_small_lan-8669bf872c4f9ba3: crates/bench/src/bin/fig4_small_lan.rs

crates/bench/src/bin/fig4_small_lan.rs:
