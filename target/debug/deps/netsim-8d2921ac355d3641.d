/root/repo/target/debug/deps/netsim-8d2921ac355d3641.d: crates/netsim/src/lib.rs crates/netsim/src/auth.rs crates/netsim/src/clock.rs crates/netsim/src/disk.rs crates/netsim/src/profile.rs crates/netsim/src/queue.rs crates/netsim/src/striped.rs crates/netsim/src/tcp.rs crates/netsim/src/time.rs

/root/repo/target/debug/deps/netsim-8d2921ac355d3641: crates/netsim/src/lib.rs crates/netsim/src/auth.rs crates/netsim/src/clock.rs crates/netsim/src/disk.rs crates/netsim/src/profile.rs crates/netsim/src/queue.rs crates/netsim/src/striped.rs crates/netsim/src/tcp.rs crates/netsim/src/time.rs

crates/netsim/src/lib.rs:
crates/netsim/src/auth.rs:
crates/netsim/src/clock.rs:
crates/netsim/src/disk.rs:
crates/netsim/src/profile.rs:
crates/netsim/src/queue.rs:
crates/netsim/src/striped.rs:
crates/netsim/src/tcp.rs:
crates/netsim/src/time.rs:
