/root/repo/target/debug/deps/table1_sizes-f651cb3d1cb73d0d.d: crates/bench/src/bin/table1_sizes.rs

/root/repo/target/debug/deps/table1_sizes-f651cb3d1cb73d0d: crates/bench/src/bin/table1_sizes.rs

crates/bench/src/bin/table1_sizes.rs:
