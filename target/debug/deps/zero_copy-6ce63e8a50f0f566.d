/root/repo/target/debug/deps/zero_copy-6ce63e8a50f0f566.d: crates/bench/benches/zero_copy.rs Cargo.toml

/root/repo/target/debug/deps/libzero_copy-6ce63e8a50f0f566.rmeta: crates/bench/benches/zero_copy.rs Cargo.toml

crates/bench/benches/zero_copy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
