/root/repo/target/debug/deps/stack_integration-c39a732d4572528d.d: tests/stack_integration.rs

/root/repo/target/debug/deps/stack_integration-c39a732d4572528d: tests/stack_integration.rs

tests/stack_integration.rs:
