/root/repo/target/debug/deps/zero_copy-4be6961cb278884b.d: crates/bench/benches/zero_copy.rs Cargo.toml

/root/repo/target/debug/deps/libzero_copy-4be6961cb278884b.rmeta: crates/bench/benches/zero_copy.rs Cargo.toml

crates/bench/benches/zero_copy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
