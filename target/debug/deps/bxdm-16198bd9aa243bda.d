/root/repo/target/debug/deps/bxdm-16198bd9aa243bda.d: crates/bxdm/src/lib.rs crates/bxdm/src/builder.rs crates/bxdm/src/name.rs crates/bxdm/src/namespace.rs crates/bxdm/src/navigate.rs crates/bxdm/src/node.rs crates/bxdm/src/value.rs crates/bxdm/src/visitor.rs

/root/repo/target/debug/deps/libbxdm-16198bd9aa243bda.rlib: crates/bxdm/src/lib.rs crates/bxdm/src/builder.rs crates/bxdm/src/name.rs crates/bxdm/src/namespace.rs crates/bxdm/src/navigate.rs crates/bxdm/src/node.rs crates/bxdm/src/value.rs crates/bxdm/src/visitor.rs

/root/repo/target/debug/deps/libbxdm-16198bd9aa243bda.rmeta: crates/bxdm/src/lib.rs crates/bxdm/src/builder.rs crates/bxdm/src/name.rs crates/bxdm/src/namespace.rs crates/bxdm/src/navigate.rs crates/bxdm/src/node.rs crates/bxdm/src/value.rs crates/bxdm/src/visitor.rs

crates/bxdm/src/lib.rs:
crates/bxdm/src/builder.rs:
crates/bxdm/src/name.rs:
crates/bxdm/src/namespace.rs:
crates/bxdm/src/navigate.rs:
crates/bxdm/src/node.rs:
crates/bxdm/src/value.rs:
crates/bxdm/src/visitor.rs:
