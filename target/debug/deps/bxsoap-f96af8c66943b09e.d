/root/repo/target/debug/deps/bxsoap-f96af8c66943b09e.d: src/lib.rs

/root/repo/target/debug/deps/libbxsoap-f96af8c66943b09e.rlib: src/lib.rs

/root/repo/target/debug/deps/libbxsoap-f96af8c66943b09e.rmeta: src/lib.rs

src/lib.rs:
