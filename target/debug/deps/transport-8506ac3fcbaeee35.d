/root/repo/target/debug/deps/transport-8506ac3fcbaeee35.d: crates/transport/src/lib.rs crates/transport/src/error.rs crates/transport/src/fileserver.rs crates/transport/src/framed.rs crates/transport/src/http/mod.rs crates/transport/src/http/client.rs crates/transport/src/http/request.rs crates/transport/src/http/response.rs crates/transport/src/http/server.rs crates/transport/src/iovec.rs crates/transport/src/tcpserver.rs

/root/repo/target/debug/deps/libtransport-8506ac3fcbaeee35.rlib: crates/transport/src/lib.rs crates/transport/src/error.rs crates/transport/src/fileserver.rs crates/transport/src/framed.rs crates/transport/src/http/mod.rs crates/transport/src/http/client.rs crates/transport/src/http/request.rs crates/transport/src/http/response.rs crates/transport/src/http/server.rs crates/transport/src/iovec.rs crates/transport/src/tcpserver.rs

/root/repo/target/debug/deps/libtransport-8506ac3fcbaeee35.rmeta: crates/transport/src/lib.rs crates/transport/src/error.rs crates/transport/src/fileserver.rs crates/transport/src/framed.rs crates/transport/src/http/mod.rs crates/transport/src/http/client.rs crates/transport/src/http/request.rs crates/transport/src/http/response.rs crates/transport/src/http/server.rs crates/transport/src/iovec.rs crates/transport/src/tcpserver.rs

crates/transport/src/lib.rs:
crates/transport/src/error.rs:
crates/transport/src/fileserver.rs:
crates/transport/src/framed.rs:
crates/transport/src/http/mod.rs:
crates/transport/src/http/client.rs:
crates/transport/src/http/request.rs:
crates/transport/src/http/response.rs:
crates/transport/src/http/server.rs:
crates/transport/src/iovec.rs:
crates/transport/src/tcpserver.rs:
