/root/repo/target/debug/deps/xbs-ea9f0884e72efe5c.d: crates/xbs/src/lib.rs crates/xbs/src/byteorder.rs crates/xbs/src/error.rs crates/xbs/src/prim.rs crates/xbs/src/reader.rs crates/xbs/src/typecode.rs crates/xbs/src/vls.rs crates/xbs/src/writer.rs Cargo.toml

/root/repo/target/debug/deps/libxbs-ea9f0884e72efe5c.rmeta: crates/xbs/src/lib.rs crates/xbs/src/byteorder.rs crates/xbs/src/error.rs crates/xbs/src/prim.rs crates/xbs/src/reader.rs crates/xbs/src/typecode.rs crates/xbs/src/vls.rs crates/xbs/src/writer.rs Cargo.toml

crates/xbs/src/lib.rs:
crates/xbs/src/byteorder.rs:
crates/xbs/src/error.rs:
crates/xbs/src/prim.rs:
crates/xbs/src/reader.rs:
crates/xbs/src/typecode.rs:
crates/xbs/src/vls.rs:
crates/xbs/src/writer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
