/root/repo/target/debug/deps/robustness-babb3461651bc789.d: tests/robustness.rs

/root/repo/target/debug/deps/robustness-babb3461651bc789: tests/robustness.rs

tests/robustness.rs:
