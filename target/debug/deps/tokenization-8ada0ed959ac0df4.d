/root/repo/target/debug/deps/tokenization-8ada0ed959ac0df4.d: crates/bench/benches/tokenization.rs Cargo.toml

/root/repo/target/debug/deps/libtokenization-8ada0ed959ac0df4.rmeta: crates/bench/benches/tokenization.rs Cargo.toml

crates/bench/benches/tokenization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
