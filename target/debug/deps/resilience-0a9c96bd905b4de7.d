/root/repo/target/debug/deps/resilience-0a9c96bd905b4de7.d: tests/resilience.rs Cargo.toml

/root/repo/target/debug/deps/libresilience-0a9c96bd905b4de7.rmeta: tests/resilience.rs Cargo.toml

tests/resilience.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
