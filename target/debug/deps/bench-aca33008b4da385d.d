/root/repo/target/debug/deps/bench-aca33008b4da385d.d: crates/bench/src/lib.rs crates/bench/src/alloc_counter.rs crates/bench/src/cpu.rs crates/bench/src/schemes.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/bench-aca33008b4da385d: crates/bench/src/lib.rs crates/bench/src/alloc_counter.rs crates/bench/src/cpu.rs crates/bench/src/schemes.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/alloc_counter.rs:
crates/bench/src/cpu.rs:
crates/bench/src/schemes.rs:
crates/bench/src/workload.rs:
