/root/repo/target/debug/deps/robustness-9445f7729915bfef.d: tests/robustness.rs

/root/repo/target/debug/deps/robustness-9445f7729915bfef: tests/robustness.rs

tests/robustness.rs:
