/root/repo/target/debug/deps/ascii_conversion-2633db8b58e9162d.d: crates/bench/benches/ascii_conversion.rs Cargo.toml

/root/repo/target/debug/deps/libascii_conversion-2633db8b58e9162d.rmeta: crates/bench/benches/ascii_conversion.rs Cargo.toml

crates/bench/benches/ascii_conversion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
