/root/repo/target/debug/deps/table1_sizes-5d40e047bb8e9f37.d: crates/bench/src/bin/table1_sizes.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_sizes-5d40e047bb8e9f37.rmeta: crates/bench/src/bin/table1_sizes.rs Cargo.toml

crates/bench/src/bin/table1_sizes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
