/root/repo/target/debug/deps/wsstack-f129147c5a0fd157.d: crates/wsstack/src/lib.rs crates/wsstack/src/addressing.rs crates/wsstack/src/databinding.rs crates/wsstack/src/eventing.rs crates/wsstack/src/security.rs crates/wsstack/src/sha256.rs crates/wsstack/src/wsdl.rs crates/wsstack/src/xpath.rs

/root/repo/target/debug/deps/libwsstack-f129147c5a0fd157.rlib: crates/wsstack/src/lib.rs crates/wsstack/src/addressing.rs crates/wsstack/src/databinding.rs crates/wsstack/src/eventing.rs crates/wsstack/src/security.rs crates/wsstack/src/sha256.rs crates/wsstack/src/wsdl.rs crates/wsstack/src/xpath.rs

/root/repo/target/debug/deps/libwsstack-f129147c5a0fd157.rmeta: crates/wsstack/src/lib.rs crates/wsstack/src/addressing.rs crates/wsstack/src/databinding.rs crates/wsstack/src/eventing.rs crates/wsstack/src/security.rs crates/wsstack/src/sha256.rs crates/wsstack/src/wsdl.rs crates/wsstack/src/xpath.rs

crates/wsstack/src/lib.rs:
crates/wsstack/src/addressing.rs:
crates/wsstack/src/databinding.rs:
crates/wsstack/src/eventing.rs:
crates/wsstack/src/security.rs:
crates/wsstack/src/sha256.rs:
crates/wsstack/src/wsdl.rs:
crates/wsstack/src/xpath.rs:
