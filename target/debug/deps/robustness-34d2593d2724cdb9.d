/root/repo/target/debug/deps/robustness-34d2593d2724cdb9.d: tests/robustness.rs Cargo.toml

/root/repo/target/debug/deps/librobustness-34d2593d2724cdb9.rmeta: tests/robustness.rs Cargo.toml

tests/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
