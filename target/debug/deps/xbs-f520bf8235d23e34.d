/root/repo/target/debug/deps/xbs-f520bf8235d23e34.d: crates/xbs/src/lib.rs crates/xbs/src/byteorder.rs crates/xbs/src/error.rs crates/xbs/src/prim.rs crates/xbs/src/reader.rs crates/xbs/src/typecode.rs crates/xbs/src/vls.rs crates/xbs/src/writer.rs

/root/repo/target/debug/deps/xbs-f520bf8235d23e34: crates/xbs/src/lib.rs crates/xbs/src/byteorder.rs crates/xbs/src/error.rs crates/xbs/src/prim.rs crates/xbs/src/reader.rs crates/xbs/src/typecode.rs crates/xbs/src/vls.rs crates/xbs/src/writer.rs

crates/xbs/src/lib.rs:
crates/xbs/src/byteorder.rs:
crates/xbs/src/error.rs:
crates/xbs/src/prim.rs:
crates/xbs/src/reader.rs:
crates/xbs/src/typecode.rs:
crates/xbs/src/vls.rs:
crates/xbs/src/writer.rs:
