/root/repo/target/debug/deps/transcode_matrix-0aa8e10e374593c1.d: tests/transcode_matrix.rs

/root/repo/target/debug/deps/transcode_matrix-0aa8e10e374593c1: tests/transcode_matrix.rs

tests/transcode_matrix.rs:
