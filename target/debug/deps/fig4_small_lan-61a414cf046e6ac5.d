/root/repo/target/debug/deps/fig4_small_lan-61a414cf046e6ac5.d: crates/bench/src/bin/fig4_small_lan.rs

/root/repo/target/debug/deps/fig4_small_lan-61a414cf046e6ac5: crates/bench/src/bin/fig4_small_lan.rs

crates/bench/src/bin/fig4_small_lan.rs:
