/root/repo/target/debug/deps/table1_sizes-46f49b4120c69da6.d: crates/bench/src/bin/table1_sizes.rs

/root/repo/target/debug/deps/table1_sizes-46f49b4120c69da6: crates/bench/src/bin/table1_sizes.rs

crates/bench/src/bin/table1_sizes.rs:
