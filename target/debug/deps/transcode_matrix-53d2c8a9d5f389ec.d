/root/repo/target/debug/deps/transcode_matrix-53d2c8a9d5f389ec.d: tests/transcode_matrix.rs Cargo.toml

/root/repo/target/debug/deps/libtranscode_matrix-53d2c8a9d5f389ec.rmeta: tests/transcode_matrix.rs Cargo.toml

tests/transcode_matrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
