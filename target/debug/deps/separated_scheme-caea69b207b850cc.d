/root/repo/target/debug/deps/separated_scheme-caea69b207b850cc.d: tests/separated_scheme.rs

/root/repo/target/debug/deps/separated_scheme-caea69b207b850cc: tests/separated_scheme.rs

tests/separated_scheme.rs:
