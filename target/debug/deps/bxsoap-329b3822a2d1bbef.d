/root/repo/target/debug/deps/bxsoap-329b3822a2d1bbef.d: src/lib.rs

/root/repo/target/debug/deps/libbxsoap-329b3822a2d1bbef.rlib: src/lib.rs

/root/repo/target/debug/deps/libbxsoap-329b3822a2d1bbef.rmeta: src/lib.rs

src/lib.rs:
