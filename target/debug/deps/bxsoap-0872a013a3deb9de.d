/root/repo/target/debug/deps/bxsoap-0872a013a3deb9de.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbxsoap-0872a013a3deb9de.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
