/root/repo/target/debug/deps/bench-45da50003605a52b.d: crates/bench/src/lib.rs crates/bench/src/alloc_counter.rs crates/bench/src/cpu.rs crates/bench/src/schemes.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/bench-45da50003605a52b: crates/bench/src/lib.rs crates/bench/src/alloc_counter.rs crates/bench/src/cpu.rs crates/bench/src/schemes.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/alloc_counter.rs:
crates/bench/src/cpu.rs:
crates/bench/src/schemes.rs:
crates/bench/src/workload.rs:
