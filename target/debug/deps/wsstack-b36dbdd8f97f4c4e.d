/root/repo/target/debug/deps/wsstack-b36dbdd8f97f4c4e.d: crates/wsstack/src/lib.rs crates/wsstack/src/addressing.rs crates/wsstack/src/databinding.rs crates/wsstack/src/eventing.rs crates/wsstack/src/security.rs crates/wsstack/src/sha256.rs crates/wsstack/src/wsdl.rs crates/wsstack/src/xpath.rs

/root/repo/target/debug/deps/wsstack-b36dbdd8f97f4c4e: crates/wsstack/src/lib.rs crates/wsstack/src/addressing.rs crates/wsstack/src/databinding.rs crates/wsstack/src/eventing.rs crates/wsstack/src/security.rs crates/wsstack/src/sha256.rs crates/wsstack/src/wsdl.rs crates/wsstack/src/xpath.rs

crates/wsstack/src/lib.rs:
crates/wsstack/src/addressing.rs:
crates/wsstack/src/databinding.rs:
crates/wsstack/src/eventing.rs:
crates/wsstack/src/security.rs:
crates/wsstack/src/sha256.rs:
crates/wsstack/src/wsdl.rs:
crates/wsstack/src/xpath.rs:
