/root/repo/target/debug/deps/transport-40d10ca1b0a13d2c.d: crates/transport/src/lib.rs crates/transport/src/error.rs crates/transport/src/fileserver.rs crates/transport/src/framed.rs crates/transport/src/http/mod.rs crates/transport/src/http/client.rs crates/transport/src/http/request.rs crates/transport/src/http/response.rs crates/transport/src/http/server.rs crates/transport/src/iovec.rs crates/transport/src/tcpserver.rs Cargo.toml

/root/repo/target/debug/deps/libtransport-40d10ca1b0a13d2c.rmeta: crates/transport/src/lib.rs crates/transport/src/error.rs crates/transport/src/fileserver.rs crates/transport/src/framed.rs crates/transport/src/http/mod.rs crates/transport/src/http/client.rs crates/transport/src/http/request.rs crates/transport/src/http/response.rs crates/transport/src/http/server.rs crates/transport/src/iovec.rs crates/transport/src/tcpserver.rs Cargo.toml

crates/transport/src/lib.rs:
crates/transport/src/error.rs:
crates/transport/src/fileserver.rs:
crates/transport/src/framed.rs:
crates/transport/src/http/mod.rs:
crates/transport/src/http/client.rs:
crates/transport/src/http/request.rs:
crates/transport/src/http/response.rs:
crates/transport/src/http/server.rs:
crates/transport/src/iovec.rs:
crates/transport/src/tcpserver.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
