/root/repo/target/debug/deps/separated_scheme-5a7ce93625309e0d.d: tests/separated_scheme.rs Cargo.toml

/root/repo/target/debug/deps/libseparated_scheme-5a7ce93625309e0d.rmeta: tests/separated_scheme.rs Cargo.toml

tests/separated_scheme.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
