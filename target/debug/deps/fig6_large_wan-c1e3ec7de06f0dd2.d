/root/repo/target/debug/deps/fig6_large_wan-c1e3ec7de06f0dd2.d: crates/bench/src/bin/fig6_large_wan.rs

/root/repo/target/debug/deps/fig6_large_wan-c1e3ec7de06f0dd2: crates/bench/src/bin/fig6_large_wan.rs

crates/bench/src/bin/fig6_large_wan.rs:
