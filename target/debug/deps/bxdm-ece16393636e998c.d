/root/repo/target/debug/deps/bxdm-ece16393636e998c.d: crates/bxdm/src/lib.rs crates/bxdm/src/builder.rs crates/bxdm/src/name.rs crates/bxdm/src/namespace.rs crates/bxdm/src/navigate.rs crates/bxdm/src/node.rs crates/bxdm/src/value.rs crates/bxdm/src/visitor.rs

/root/repo/target/debug/deps/bxdm-ece16393636e998c: crates/bxdm/src/lib.rs crates/bxdm/src/builder.rs crates/bxdm/src/name.rs crates/bxdm/src/namespace.rs crates/bxdm/src/navigate.rs crates/bxdm/src/node.rs crates/bxdm/src/value.rs crates/bxdm/src/visitor.rs

crates/bxdm/src/lib.rs:
crates/bxdm/src/builder.rs:
crates/bxdm/src/name.rs:
crates/bxdm/src/namespace.rs:
crates/bxdm/src/navigate.rs:
crates/bxdm/src/node.rs:
crates/bxdm/src/value.rs:
crates/bxdm/src/visitor.rs:
