/root/repo/target/debug/deps/transcode_matrix-b1b78dd72539e6e6.d: tests/transcode_matrix.rs

/root/repo/target/debug/deps/transcode_matrix-b1b78dd72539e6e6: tests/transcode_matrix.rs

tests/transcode_matrix.rs:
