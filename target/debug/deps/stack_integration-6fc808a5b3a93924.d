/root/repo/target/debug/deps/stack_integration-6fc808a5b3a93924.d: tests/stack_integration.rs Cargo.toml

/root/repo/target/debug/deps/libstack_integration-6fc808a5b3a93924.rmeta: tests/stack_integration.rs Cargo.toml

tests/stack_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
