/root/repo/target/debug/deps/gridftp-40ae731133101755.d: crates/gridftp/src/lib.rs crates/gridftp/src/session.rs

/root/repo/target/debug/deps/libgridftp-40ae731133101755.rlib: crates/gridftp/src/lib.rs crates/gridftp/src/session.rs

/root/repo/target/debug/deps/libgridftp-40ae731133101755.rmeta: crates/gridftp/src/lib.rs crates/gridftp/src/session.rs

crates/gridftp/src/lib.rs:
crates/gridftp/src/session.rs:
