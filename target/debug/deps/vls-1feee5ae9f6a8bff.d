/root/repo/target/debug/deps/vls-1feee5ae9f6a8bff.d: crates/bench/benches/vls.rs Cargo.toml

/root/repo/target/debug/deps/libvls-1feee5ae9f6a8bff.rmeta: crates/bench/benches/vls.rs Cargo.toml

crates/bench/benches/vls.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
