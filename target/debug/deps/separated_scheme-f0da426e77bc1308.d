/root/repo/target/debug/deps/separated_scheme-f0da426e77bc1308.d: tests/separated_scheme.rs Cargo.toml

/root/repo/target/debug/deps/libseparated_scheme-f0da426e77bc1308.rmeta: tests/separated_scheme.rs Cargo.toml

tests/separated_scheme.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
