/root/repo/target/debug/deps/wsstack-4b3b624e09282555.d: crates/wsstack/src/lib.rs crates/wsstack/src/addressing.rs crates/wsstack/src/databinding.rs crates/wsstack/src/eventing.rs crates/wsstack/src/security.rs crates/wsstack/src/sha256.rs crates/wsstack/src/wsdl.rs crates/wsstack/src/xpath.rs Cargo.toml

/root/repo/target/debug/deps/libwsstack-4b3b624e09282555.rmeta: crates/wsstack/src/lib.rs crates/wsstack/src/addressing.rs crates/wsstack/src/databinding.rs crates/wsstack/src/eventing.rs crates/wsstack/src/security.rs crates/wsstack/src/sha256.rs crates/wsstack/src/wsdl.rs crates/wsstack/src/xpath.rs Cargo.toml

crates/wsstack/src/lib.rs:
crates/wsstack/src/addressing.rs:
crates/wsstack/src/databinding.rs:
crates/wsstack/src/eventing.rs:
crates/wsstack/src/security.rs:
crates/wsstack/src/sha256.rs:
crates/wsstack/src/wsdl.rs:
crates/wsstack/src/xpath.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
