/root/repo/target/debug/deps/fig5_large_lan-0af248f75e8788d6.d: crates/bench/src/bin/fig5_large_lan.rs

/root/repo/target/debug/deps/fig5_large_lan-0af248f75e8788d6: crates/bench/src/bin/fig5_large_lan.rs

crates/bench/src/bin/fig5_large_lan.rs:
