/root/repo/target/debug/deps/wsstack-16729993cb2e6e84.d: crates/wsstack/src/lib.rs crates/wsstack/src/addressing.rs crates/wsstack/src/databinding.rs crates/wsstack/src/eventing.rs crates/wsstack/src/security.rs crates/wsstack/src/sha256.rs crates/wsstack/src/wsdl.rs crates/wsstack/src/xpath.rs

/root/repo/target/debug/deps/wsstack-16729993cb2e6e84: crates/wsstack/src/lib.rs crates/wsstack/src/addressing.rs crates/wsstack/src/databinding.rs crates/wsstack/src/eventing.rs crates/wsstack/src/security.rs crates/wsstack/src/sha256.rs crates/wsstack/src/wsdl.rs crates/wsstack/src/xpath.rs

crates/wsstack/src/lib.rs:
crates/wsstack/src/addressing.rs:
crates/wsstack/src/databinding.rs:
crates/wsstack/src/eventing.rs:
crates/wsstack/src/security.rs:
crates/wsstack/src/sha256.rs:
crates/wsstack/src/wsdl.rs:
crates/wsstack/src/xpath.rs:
