/root/repo/target/debug/deps/fig5_large_lan-7083f6f2be7ad060.d: crates/bench/src/bin/fig5_large_lan.rs

/root/repo/target/debug/deps/fig5_large_lan-7083f6f2be7ad060: crates/bench/src/bin/fig5_large_lan.rs

crates/bench/src/bin/fig5_large_lan.rs:
