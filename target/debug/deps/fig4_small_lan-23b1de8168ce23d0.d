/root/repo/target/debug/deps/fig4_small_lan-23b1de8168ce23d0.d: crates/bench/src/bin/fig4_small_lan.rs

/root/repo/target/debug/deps/fig4_small_lan-23b1de8168ce23d0: crates/bench/src/bin/fig4_small_lan.rs

crates/bench/src/bin/fig4_small_lan.rs:
