/root/repo/target/debug/deps/table1_sizes-0427b9a6775c8598.d: crates/bench/src/bin/table1_sizes.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_sizes-0427b9a6775c8598.rmeta: crates/bench/src/bin/table1_sizes.rs Cargo.toml

crates/bench/src/bin/table1_sizes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
