/root/repo/target/debug/deps/bench-6db55e6117e15217.d: crates/bench/src/lib.rs crates/bench/src/cpu.rs crates/bench/src/schemes.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/bench-6db55e6117e15217: crates/bench/src/lib.rs crates/bench/src/cpu.rs crates/bench/src/schemes.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/cpu.rs:
crates/bench/src/schemes.rs:
crates/bench/src/workload.rs:
