/root/repo/target/debug/deps/bench-8af67b63c6397621.d: crates/bench/src/lib.rs crates/bench/src/cpu.rs crates/bench/src/schemes.rs crates/bench/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libbench-8af67b63c6397621.rmeta: crates/bench/src/lib.rs crates/bench/src/cpu.rs crates/bench/src/schemes.rs crates/bench/src/workload.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/cpu.rs:
crates/bench/src/schemes.rs:
crates/bench/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
