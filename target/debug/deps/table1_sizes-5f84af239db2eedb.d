/root/repo/target/debug/deps/table1_sizes-5f84af239db2eedb.d: crates/bench/src/bin/table1_sizes.rs

/root/repo/target/debug/deps/table1_sizes-5f84af239db2eedb: crates/bench/src/bin/table1_sizes.rs

crates/bench/src/bin/table1_sizes.rs:
