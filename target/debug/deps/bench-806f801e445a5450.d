/root/repo/target/debug/deps/bench-806f801e445a5450.d: crates/bench/src/lib.rs crates/bench/src/cpu.rs crates/bench/src/schemes.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/libbench-806f801e445a5450.rlib: crates/bench/src/lib.rs crates/bench/src/cpu.rs crates/bench/src/schemes.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/libbench-806f801e445a5450.rmeta: crates/bench/src/lib.rs crates/bench/src/cpu.rs crates/bench/src/schemes.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/cpu.rs:
crates/bench/src/schemes.rs:
crates/bench/src/workload.rs:
