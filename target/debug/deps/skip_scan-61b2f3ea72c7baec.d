/root/repo/target/debug/deps/skip_scan-61b2f3ea72c7baec.d: crates/bench/benches/skip_scan.rs Cargo.toml

/root/repo/target/debug/deps/libskip_scan-61b2f3ea72c7baec.rmeta: crates/bench/benches/skip_scan.rs Cargo.toml

crates/bench/benches/skip_scan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
