/root/repo/target/debug/deps/bench-a969155657f36f11.d: crates/bench/src/lib.rs crates/bench/src/cpu.rs crates/bench/src/schemes.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/bench-a969155657f36f11: crates/bench/src/lib.rs crates/bench/src/cpu.rs crates/bench/src/schemes.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/cpu.rs:
crates/bench/src/schemes.rs:
crates/bench/src/workload.rs:
