/root/repo/target/debug/deps/codec_throughput-f945036472fb811d.d: crates/bench/benches/codec_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libcodec_throughput-f945036472fb811d.rmeta: crates/bench/benches/codec_throughput.rs Cargo.toml

crates/bench/benches/codec_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
