/root/repo/target/debug/deps/bxsoap-141e4f09f6d053ee.d: src/lib.rs

/root/repo/target/debug/deps/bxsoap-141e4f09f6d053ee: src/lib.rs

src/lib.rs:
