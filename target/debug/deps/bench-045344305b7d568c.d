/root/repo/target/debug/deps/bench-045344305b7d568c.d: crates/bench/src/lib.rs crates/bench/src/cpu.rs crates/bench/src/schemes.rs crates/bench/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libbench-045344305b7d568c.rmeta: crates/bench/src/lib.rs crates/bench/src/cpu.rs crates/bench/src/schemes.rs crates/bench/src/workload.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/cpu.rs:
crates/bench/src/schemes.rs:
crates/bench/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
