/root/repo/target/debug/deps/xmltext-cdfadb6e17bd202a.d: crates/xmltext/src/lib.rs crates/xmltext/src/error.rs crates/xmltext/src/escape.rs crates/xmltext/src/lexer.rs crates/xmltext/src/num.rs crates/xmltext/src/reader.rs crates/xmltext/src/writer.rs

/root/repo/target/debug/deps/xmltext-cdfadb6e17bd202a: crates/xmltext/src/lib.rs crates/xmltext/src/error.rs crates/xmltext/src/escape.rs crates/xmltext/src/lexer.rs crates/xmltext/src/num.rs crates/xmltext/src/reader.rs crates/xmltext/src/writer.rs

crates/xmltext/src/lib.rs:
crates/xmltext/src/error.rs:
crates/xmltext/src/escape.rs:
crates/xmltext/src/lexer.rs:
crates/xmltext/src/num.rs:
crates/xmltext/src/reader.rs:
crates/xmltext/src/writer.rs:
