/root/repo/target/debug/deps/bxsoap-ad91fc9ee3ba5761.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbxsoap-ad91fc9ee3ba5761.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
