/root/repo/target/debug/deps/gridftp-5ef4dfaa0b3ae93f.d: crates/gridftp/src/lib.rs crates/gridftp/src/session.rs Cargo.toml

/root/repo/target/debug/deps/libgridftp-5ef4dfaa0b3ae93f.rmeta: crates/gridftp/src/lib.rs crates/gridftp/src/session.rs Cargo.toml

crates/gridftp/src/lib.rs:
crates/gridftp/src/session.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
