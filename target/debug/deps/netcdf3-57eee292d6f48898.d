/root/repo/target/debug/deps/netcdf3-57eee292d6f48898.d: crates/netcdf3/src/lib.rs crates/netcdf3/src/error.rs crates/netcdf3/src/model.rs crates/netcdf3/src/read.rs crates/netcdf3/src/write.rs

/root/repo/target/debug/deps/libnetcdf3-57eee292d6f48898.rlib: crates/netcdf3/src/lib.rs crates/netcdf3/src/error.rs crates/netcdf3/src/model.rs crates/netcdf3/src/read.rs crates/netcdf3/src/write.rs

/root/repo/target/debug/deps/libnetcdf3-57eee292d6f48898.rmeta: crates/netcdf3/src/lib.rs crates/netcdf3/src/error.rs crates/netcdf3/src/model.rs crates/netcdf3/src/read.rs crates/netcdf3/src/write.rs

crates/netcdf3/src/lib.rs:
crates/netcdf3/src/error.rs:
crates/netcdf3/src/model.rs:
crates/netcdf3/src/read.rs:
crates/netcdf3/src/write.rs:
