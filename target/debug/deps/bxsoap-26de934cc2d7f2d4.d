/root/repo/target/debug/deps/bxsoap-26de934cc2d7f2d4.d: src/lib.rs

/root/repo/target/debug/deps/bxsoap-26de934cc2d7f2d4: src/lib.rs

src/lib.rs:
