/root/repo/target/debug/deps/fig4_small_lan-3d70474dfa180521.d: crates/bench/src/bin/fig4_small_lan.rs

/root/repo/target/debug/deps/fig4_small_lan-3d70474dfa180521: crates/bench/src/bin/fig4_small_lan.rs

crates/bench/src/bin/fig4_small_lan.rs:
