/root/repo/target/debug/deps/fig4_small_lan-de36be0838a98d56.d: crates/bench/src/bin/fig4_small_lan.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_small_lan-de36be0838a98d56.rmeta: crates/bench/src/bin/fig4_small_lan.rs Cargo.toml

crates/bench/src/bin/fig4_small_lan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
