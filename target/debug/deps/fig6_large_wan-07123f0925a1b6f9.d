/root/repo/target/debug/deps/fig6_large_wan-07123f0925a1b6f9.d: crates/bench/src/bin/fig6_large_wan.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_large_wan-07123f0925a1b6f9.rmeta: crates/bench/src/bin/fig6_large_wan.rs Cargo.toml

crates/bench/src/bin/fig6_large_wan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
