/root/repo/target/debug/deps/robustness-598086b40bf27886.d: tests/robustness.rs Cargo.toml

/root/repo/target/debug/deps/librobustness-598086b40bf27886.rmeta: tests/robustness.rs Cargo.toml

tests/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
