/root/repo/target/debug/deps/fig5_large_lan-eae37d71f23b2df5.d: crates/bench/src/bin/fig5_large_lan.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_large_lan-eae37d71f23b2df5.rmeta: crates/bench/src/bin/fig5_large_lan.rs Cargo.toml

crates/bench/src/bin/fig5_large_lan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
