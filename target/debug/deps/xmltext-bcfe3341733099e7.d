/root/repo/target/debug/deps/xmltext-bcfe3341733099e7.d: crates/xmltext/src/lib.rs crates/xmltext/src/error.rs crates/xmltext/src/escape.rs crates/xmltext/src/lexer.rs crates/xmltext/src/num.rs crates/xmltext/src/reader.rs crates/xmltext/src/writer.rs Cargo.toml

/root/repo/target/debug/deps/libxmltext-bcfe3341733099e7.rmeta: crates/xmltext/src/lib.rs crates/xmltext/src/error.rs crates/xmltext/src/escape.rs crates/xmltext/src/lexer.rs crates/xmltext/src/num.rs crates/xmltext/src/reader.rs crates/xmltext/src/writer.rs Cargo.toml

crates/xmltext/src/lib.rs:
crates/xmltext/src/error.rs:
crates/xmltext/src/escape.rs:
crates/xmltext/src/lexer.rs:
crates/xmltext/src/num.rs:
crates/xmltext/src/reader.rs:
crates/xmltext/src/writer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
