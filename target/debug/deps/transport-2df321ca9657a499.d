/root/repo/target/debug/deps/transport-2df321ca9657a499.d: crates/transport/src/lib.rs crates/transport/src/deadline.rs crates/transport/src/error.rs crates/transport/src/faulty.rs crates/transport/src/fileserver.rs crates/transport/src/framed.rs crates/transport/src/http/mod.rs crates/transport/src/http/client.rs crates/transport/src/http/request.rs crates/transport/src/http/response.rs crates/transport/src/http/server.rs crates/transport/src/iovec.rs crates/transport/src/pool.rs crates/transport/src/retry.rs crates/transport/src/tcpserver.rs Cargo.toml

/root/repo/target/debug/deps/libtransport-2df321ca9657a499.rmeta: crates/transport/src/lib.rs crates/transport/src/deadline.rs crates/transport/src/error.rs crates/transport/src/faulty.rs crates/transport/src/fileserver.rs crates/transport/src/framed.rs crates/transport/src/http/mod.rs crates/transport/src/http/client.rs crates/transport/src/http/request.rs crates/transport/src/http/response.rs crates/transport/src/http/server.rs crates/transport/src/iovec.rs crates/transport/src/pool.rs crates/transport/src/retry.rs crates/transport/src/tcpserver.rs Cargo.toml

crates/transport/src/lib.rs:
crates/transport/src/deadline.rs:
crates/transport/src/error.rs:
crates/transport/src/faulty.rs:
crates/transport/src/fileserver.rs:
crates/transport/src/framed.rs:
crates/transport/src/http/mod.rs:
crates/transport/src/http/client.rs:
crates/transport/src/http/request.rs:
crates/transport/src/http/response.rs:
crates/transport/src/http/server.rs:
crates/transport/src/iovec.rs:
crates/transport/src/pool.rs:
crates/transport/src/retry.rs:
crates/transport/src/tcpserver.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
