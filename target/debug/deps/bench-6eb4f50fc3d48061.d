/root/repo/target/debug/deps/bench-6eb4f50fc3d48061.d: crates/bench/src/lib.rs crates/bench/src/cpu.rs crates/bench/src/schemes.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/libbench-6eb4f50fc3d48061.rlib: crates/bench/src/lib.rs crates/bench/src/cpu.rs crates/bench/src/schemes.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/libbench-6eb4f50fc3d48061.rmeta: crates/bench/src/lib.rs crates/bench/src/cpu.rs crates/bench/src/schemes.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/cpu.rs:
crates/bench/src/schemes.rs:
crates/bench/src/workload.rs:
