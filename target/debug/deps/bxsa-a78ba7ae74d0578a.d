/root/repo/target/debug/deps/bxsa-a78ba7ae74d0578a.d: crates/bxsa/src/lib.rs crates/bxsa/src/decoder.rs crates/bxsa/src/encoder.rs crates/bxsa/src/error.rs crates/bxsa/src/estimate.rs crates/bxsa/src/frame.rs crates/bxsa/src/pull.rs crates/bxsa/src/scan.rs crates/bxsa/src/transcode.rs

/root/repo/target/debug/deps/bxsa-a78ba7ae74d0578a: crates/bxsa/src/lib.rs crates/bxsa/src/decoder.rs crates/bxsa/src/encoder.rs crates/bxsa/src/error.rs crates/bxsa/src/estimate.rs crates/bxsa/src/frame.rs crates/bxsa/src/pull.rs crates/bxsa/src/scan.rs crates/bxsa/src/transcode.rs

crates/bxsa/src/lib.rs:
crates/bxsa/src/decoder.rs:
crates/bxsa/src/encoder.rs:
crates/bxsa/src/error.rs:
crates/bxsa/src/estimate.rs:
crates/bxsa/src/frame.rs:
crates/bxsa/src/pull.rs:
crates/bxsa/src/scan.rs:
crates/bxsa/src/transcode.rs:
