/root/repo/target/debug/deps/fig5_large_lan-9ae4286ad4e2f219.d: crates/bench/src/bin/fig5_large_lan.rs

/root/repo/target/debug/deps/fig5_large_lan-9ae4286ad4e2f219: crates/bench/src/bin/fig5_large_lan.rs

crates/bench/src/bin/fig5_large_lan.rs:
