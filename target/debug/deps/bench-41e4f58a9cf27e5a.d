/root/repo/target/debug/deps/bench-41e4f58a9cf27e5a.d: crates/bench/src/lib.rs crates/bench/src/alloc_counter.rs crates/bench/src/cpu.rs crates/bench/src/schemes.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/libbench-41e4f58a9cf27e5a.rlib: crates/bench/src/lib.rs crates/bench/src/alloc_counter.rs crates/bench/src/cpu.rs crates/bench/src/schemes.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/libbench-41e4f58a9cf27e5a.rmeta: crates/bench/src/lib.rs crates/bench/src/alloc_counter.rs crates/bench/src/cpu.rs crates/bench/src/schemes.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/alloc_counter.rs:
crates/bench/src/cpu.rs:
crates/bench/src/schemes.rs:
crates/bench/src/workload.rs:
