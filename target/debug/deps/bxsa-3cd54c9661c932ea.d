/root/repo/target/debug/deps/bxsa-3cd54c9661c932ea.d: crates/bxsa/src/lib.rs crates/bxsa/src/decoder.rs crates/bxsa/src/encoder.rs crates/bxsa/src/error.rs crates/bxsa/src/estimate.rs crates/bxsa/src/frame.rs crates/bxsa/src/pull.rs crates/bxsa/src/scan.rs crates/bxsa/src/transcode.rs Cargo.toml

/root/repo/target/debug/deps/libbxsa-3cd54c9661c932ea.rmeta: crates/bxsa/src/lib.rs crates/bxsa/src/decoder.rs crates/bxsa/src/encoder.rs crates/bxsa/src/error.rs crates/bxsa/src/estimate.rs crates/bxsa/src/frame.rs crates/bxsa/src/pull.rs crates/bxsa/src/scan.rs crates/bxsa/src/transcode.rs Cargo.toml

crates/bxsa/src/lib.rs:
crates/bxsa/src/decoder.rs:
crates/bxsa/src/encoder.rs:
crates/bxsa/src/error.rs:
crates/bxsa/src/estimate.rs:
crates/bxsa/src/frame.rs:
crates/bxsa/src/pull.rs:
crates/bxsa/src/scan.rs:
crates/bxsa/src/transcode.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
