/root/repo/target/debug/deps/gridftp-898650aed4fa541c.d: crates/gridftp/src/lib.rs crates/gridftp/src/session.rs

/root/repo/target/debug/deps/gridftp-898650aed4fa541c: crates/gridftp/src/lib.rs crates/gridftp/src/session.rs

crates/gridftp/src/lib.rs:
crates/gridftp/src/session.rs:
