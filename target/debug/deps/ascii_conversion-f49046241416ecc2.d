/root/repo/target/debug/deps/ascii_conversion-f49046241416ecc2.d: crates/bench/benches/ascii_conversion.rs Cargo.toml

/root/repo/target/debug/deps/libascii_conversion-f49046241416ecc2.rmeta: crates/bench/benches/ascii_conversion.rs Cargo.toml

crates/bench/benches/ascii_conversion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
