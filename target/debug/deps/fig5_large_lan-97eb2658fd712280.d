/root/repo/target/debug/deps/fig5_large_lan-97eb2658fd712280.d: crates/bench/src/bin/fig5_large_lan.rs

/root/repo/target/debug/deps/fig5_large_lan-97eb2658fd712280: crates/bench/src/bin/fig5_large_lan.rs

crates/bench/src/bin/fig5_large_lan.rs:
