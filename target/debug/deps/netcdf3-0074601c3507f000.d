/root/repo/target/debug/deps/netcdf3-0074601c3507f000.d: crates/netcdf3/src/lib.rs crates/netcdf3/src/error.rs crates/netcdf3/src/model.rs crates/netcdf3/src/read.rs crates/netcdf3/src/write.rs

/root/repo/target/debug/deps/netcdf3-0074601c3507f000: crates/netcdf3/src/lib.rs crates/netcdf3/src/error.rs crates/netcdf3/src/model.rs crates/netcdf3/src/read.rs crates/netcdf3/src/write.rs

crates/netcdf3/src/lib.rs:
crates/netcdf3/src/error.rs:
crates/netcdf3/src/model.rs:
crates/netcdf3/src/read.rs:
crates/netcdf3/src/write.rs:
