/root/repo/target/debug/deps/soap-1884559b71d7edd4.d: crates/soap/src/lib.rs crates/soap/src/anyengine.rs crates/soap/src/binding.rs crates/soap/src/encoding.rs crates/soap/src/engine.rs crates/soap/src/envelope.rs crates/soap/src/error.rs crates/soap/src/fault.rs crates/soap/src/intermediary.rs crates/soap/src/server.rs crates/soap/src/service.rs Cargo.toml

/root/repo/target/debug/deps/libsoap-1884559b71d7edd4.rmeta: crates/soap/src/lib.rs crates/soap/src/anyengine.rs crates/soap/src/binding.rs crates/soap/src/encoding.rs crates/soap/src/engine.rs crates/soap/src/envelope.rs crates/soap/src/error.rs crates/soap/src/fault.rs crates/soap/src/intermediary.rs crates/soap/src/server.rs crates/soap/src/service.rs Cargo.toml

crates/soap/src/lib.rs:
crates/soap/src/anyengine.rs:
crates/soap/src/binding.rs:
crates/soap/src/encoding.rs:
crates/soap/src/engine.rs:
crates/soap/src/envelope.rs:
crates/soap/src/error.rs:
crates/soap/src/fault.rs:
crates/soap/src/intermediary.rs:
crates/soap/src/server.rs:
crates/soap/src/service.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
