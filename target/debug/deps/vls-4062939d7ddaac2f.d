/root/repo/target/debug/deps/vls-4062939d7ddaac2f.d: crates/bench/benches/vls.rs Cargo.toml

/root/repo/target/debug/deps/libvls-4062939d7ddaac2f.rmeta: crates/bench/benches/vls.rs Cargo.toml

crates/bench/benches/vls.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
