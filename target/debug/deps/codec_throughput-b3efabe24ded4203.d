/root/repo/target/debug/deps/codec_throughput-b3efabe24ded4203.d: crates/bench/benches/codec_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libcodec_throughput-b3efabe24ded4203.rmeta: crates/bench/benches/codec_throughput.rs Cargo.toml

crates/bench/benches/codec_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
