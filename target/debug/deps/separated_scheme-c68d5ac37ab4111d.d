/root/repo/target/debug/deps/separated_scheme-c68d5ac37ab4111d.d: tests/separated_scheme.rs

/root/repo/target/debug/deps/separated_scheme-c68d5ac37ab4111d: tests/separated_scheme.rs

tests/separated_scheme.rs:
