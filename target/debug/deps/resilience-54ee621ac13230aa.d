/root/repo/target/debug/deps/resilience-54ee621ac13230aa.d: tests/resilience.rs

/root/repo/target/debug/deps/resilience-54ee621ac13230aa: tests/resilience.rs

tests/resilience.rs:
