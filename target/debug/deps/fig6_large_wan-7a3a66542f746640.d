/root/repo/target/debug/deps/fig6_large_wan-7a3a66542f746640.d: crates/bench/src/bin/fig6_large_wan.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_large_wan-7a3a66542f746640.rmeta: crates/bench/src/bin/fig6_large_wan.rs Cargo.toml

crates/bench/src/bin/fig6_large_wan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
