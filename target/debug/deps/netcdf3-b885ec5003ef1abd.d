/root/repo/target/debug/deps/netcdf3-b885ec5003ef1abd.d: crates/netcdf3/src/lib.rs crates/netcdf3/src/error.rs crates/netcdf3/src/model.rs crates/netcdf3/src/read.rs crates/netcdf3/src/write.rs Cargo.toml

/root/repo/target/debug/deps/libnetcdf3-b885ec5003ef1abd.rmeta: crates/netcdf3/src/lib.rs crates/netcdf3/src/error.rs crates/netcdf3/src/model.rs crates/netcdf3/src/read.rs crates/netcdf3/src/write.rs Cargo.toml

crates/netcdf3/src/lib.rs:
crates/netcdf3/src/error.rs:
crates/netcdf3/src/model.rs:
crates/netcdf3/src/read.rs:
crates/netcdf3/src/write.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
