/root/repo/target/debug/deps/bench-cdbb86c4304e0c8f.d: crates/bench/src/lib.rs crates/bench/src/cpu.rs crates/bench/src/schemes.rs crates/bench/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libbench-cdbb86c4304e0c8f.rmeta: crates/bench/src/lib.rs crates/bench/src/cpu.rs crates/bench/src/schemes.rs crates/bench/src/workload.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/cpu.rs:
crates/bench/src/schemes.rs:
crates/bench/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
