/root/repo/target/debug/deps/transport-d810e2101eca0cd3.d: crates/transport/src/lib.rs crates/transport/src/error.rs crates/transport/src/fileserver.rs crates/transport/src/framed.rs crates/transport/src/http/mod.rs crates/transport/src/http/client.rs crates/transport/src/http/request.rs crates/transport/src/http/response.rs crates/transport/src/http/server.rs crates/transport/src/iovec.rs crates/transport/src/tcpserver.rs Cargo.toml

/root/repo/target/debug/deps/libtransport-d810e2101eca0cd3.rmeta: crates/transport/src/lib.rs crates/transport/src/error.rs crates/transport/src/fileserver.rs crates/transport/src/framed.rs crates/transport/src/http/mod.rs crates/transport/src/http/client.rs crates/transport/src/http/request.rs crates/transport/src/http/response.rs crates/transport/src/http/server.rs crates/transport/src/iovec.rs crates/transport/src/tcpserver.rs Cargo.toml

crates/transport/src/lib.rs:
crates/transport/src/error.rs:
crates/transport/src/fileserver.rs:
crates/transport/src/framed.rs:
crates/transport/src/http/mod.rs:
crates/transport/src/http/client.rs:
crates/transport/src/http/request.rs:
crates/transport/src/http/response.rs:
crates/transport/src/http/server.rs:
crates/transport/src/iovec.rs:
crates/transport/src/tcpserver.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
