/root/repo/target/debug/deps/soap-ac214db95de4ca3e.d: crates/soap/src/lib.rs crates/soap/src/anyengine.rs crates/soap/src/binding.rs crates/soap/src/encoding.rs crates/soap/src/engine.rs crates/soap/src/envelope.rs crates/soap/src/error.rs crates/soap/src/fault.rs crates/soap/src/intermediary.rs crates/soap/src/server.rs crates/soap/src/service.rs

/root/repo/target/debug/deps/libsoap-ac214db95de4ca3e.rlib: crates/soap/src/lib.rs crates/soap/src/anyengine.rs crates/soap/src/binding.rs crates/soap/src/encoding.rs crates/soap/src/engine.rs crates/soap/src/envelope.rs crates/soap/src/error.rs crates/soap/src/fault.rs crates/soap/src/intermediary.rs crates/soap/src/server.rs crates/soap/src/service.rs

/root/repo/target/debug/deps/libsoap-ac214db95de4ca3e.rmeta: crates/soap/src/lib.rs crates/soap/src/anyengine.rs crates/soap/src/binding.rs crates/soap/src/encoding.rs crates/soap/src/engine.rs crates/soap/src/envelope.rs crates/soap/src/error.rs crates/soap/src/fault.rs crates/soap/src/intermediary.rs crates/soap/src/server.rs crates/soap/src/service.rs

crates/soap/src/lib.rs:
crates/soap/src/anyengine.rs:
crates/soap/src/binding.rs:
crates/soap/src/encoding.rs:
crates/soap/src/engine.rs:
crates/soap/src/envelope.rs:
crates/soap/src/error.rs:
crates/soap/src/fault.rs:
crates/soap/src/intermediary.rs:
crates/soap/src/server.rs:
crates/soap/src/service.rs:
