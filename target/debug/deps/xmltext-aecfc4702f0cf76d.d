/root/repo/target/debug/deps/xmltext-aecfc4702f0cf76d.d: crates/xmltext/src/lib.rs crates/xmltext/src/error.rs crates/xmltext/src/escape.rs crates/xmltext/src/lexer.rs crates/xmltext/src/num.rs crates/xmltext/src/reader.rs crates/xmltext/src/writer.rs

/root/repo/target/debug/deps/libxmltext-aecfc4702f0cf76d.rlib: crates/xmltext/src/lib.rs crates/xmltext/src/error.rs crates/xmltext/src/escape.rs crates/xmltext/src/lexer.rs crates/xmltext/src/num.rs crates/xmltext/src/reader.rs crates/xmltext/src/writer.rs

/root/repo/target/debug/deps/libxmltext-aecfc4702f0cf76d.rmeta: crates/xmltext/src/lib.rs crates/xmltext/src/error.rs crates/xmltext/src/escape.rs crates/xmltext/src/lexer.rs crates/xmltext/src/num.rs crates/xmltext/src/reader.rs crates/xmltext/src/writer.rs

crates/xmltext/src/lib.rs:
crates/xmltext/src/error.rs:
crates/xmltext/src/escape.rs:
crates/xmltext/src/lexer.rs:
crates/xmltext/src/num.rs:
crates/xmltext/src/reader.rs:
crates/xmltext/src/writer.rs:
