/root/repo/target/debug/deps/table1_sizes-44687b2d152ed703.d: crates/bench/src/bin/table1_sizes.rs

/root/repo/target/debug/deps/table1_sizes-44687b2d152ed703: crates/bench/src/bin/table1_sizes.rs

crates/bench/src/bin/table1_sizes.rs:
