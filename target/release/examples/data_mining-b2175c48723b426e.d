/root/repo/target/release/examples/data_mining-b2175c48723b426e.d: examples/data_mining.rs

/root/repo/target/release/examples/data_mining-b2175c48723b426e: examples/data_mining.rs

examples/data_mining.rs:
