/root/repo/target/release/examples/_probe-57eeb6e87b45400b.d: examples/_probe.rs

/root/repo/target/release/examples/_probe-57eeb6e87b45400b: examples/_probe.rs

examples/_probe.rs:
