/root/repo/target/release/examples/quickstart-6dd997c91eb50fc5.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-6dd997c91eb50fc5: examples/quickstart.rs

examples/quickstart.rs:
