/root/repo/target/release/examples/intermediary_relay-ba7bfdaf16681b09.d: examples/intermediary_relay.rs

/root/repo/target/release/examples/intermediary_relay-ba7bfdaf16681b09: examples/intermediary_relay.rs

examples/intermediary_relay.rs:
