/root/repo/target/release/examples/weather_service-ba9ce87423fefb51.d: examples/weather_service.rs

/root/repo/target/release/examples/weather_service-ba9ce87423fefb51: examples/weather_service.rs

examples/weather_service.rs:
