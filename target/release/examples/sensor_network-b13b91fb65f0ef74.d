/root/repo/target/release/examples/sensor_network-b13b91fb65f0ef74.d: examples/sensor_network.rs

/root/repo/target/release/examples/sensor_network-b13b91fb65f0ef74: examples/sensor_network.rs

examples/sensor_network.rs:
