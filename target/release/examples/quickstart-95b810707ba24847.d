/root/repo/target/release/examples/quickstart-95b810707ba24847.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-95b810707ba24847: examples/quickstart.rs

examples/quickstart.rs:
