/root/repo/target/release/examples/service_discovery-4a1f2bb920f5b462.d: examples/service_discovery.rs

/root/repo/target/release/examples/service_discovery-4a1f2bb920f5b462: examples/service_discovery.rs

examples/service_discovery.rs:
