/root/repo/target/release/examples/weather_service-86354eb640fca478.d: examples/weather_service.rs

/root/repo/target/release/examples/weather_service-86354eb640fca478: examples/weather_service.rs

examples/weather_service.rs:
