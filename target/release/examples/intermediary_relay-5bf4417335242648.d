/root/repo/target/release/examples/intermediary_relay-5bf4417335242648.d: examples/intermediary_relay.rs

/root/repo/target/release/examples/intermediary_relay-5bf4417335242648: examples/intermediary_relay.rs

examples/intermediary_relay.rs:
