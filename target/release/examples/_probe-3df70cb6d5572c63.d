/root/repo/target/release/examples/_probe-3df70cb6d5572c63.d: examples/_probe.rs

/root/repo/target/release/examples/_probe-3df70cb6d5572c63: examples/_probe.rs

examples/_probe.rs:
