/root/repo/target/release/examples/service_discovery-46cbda85b6547fe0.d: examples/service_discovery.rs

/root/repo/target/release/examples/service_discovery-46cbda85b6547fe0: examples/service_discovery.rs

examples/service_discovery.rs:
