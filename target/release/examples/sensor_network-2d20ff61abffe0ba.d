/root/repo/target/release/examples/sensor_network-2d20ff61abffe0ba.d: examples/sensor_network.rs

/root/repo/target/release/examples/sensor_network-2d20ff61abffe0ba: examples/sensor_network.rs

examples/sensor_network.rs:
