/root/repo/target/release/examples/data_mining-aac88ee65683d4b4.d: examples/data_mining.rs

/root/repo/target/release/examples/data_mining-aac88ee65683d4b4: examples/data_mining.rs

examples/data_mining.rs:
