/root/repo/target/release/deps/codec_throughput-bae2b2a2e8b6c5c9.d: crates/bench/benches/codec_throughput.rs

/root/repo/target/release/deps/codec_throughput-bae2b2a2e8b6c5c9: crates/bench/benches/codec_throughput.rs

crates/bench/benches/codec_throughput.rs:
