/root/repo/target/release/deps/rand-0d70d7882fa39ea2.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-0d70d7882fa39ea2.rlib: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-0d70d7882fa39ea2.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
