/root/repo/target/release/deps/bxsoap-58eb91701c772af6.d: src/lib.rs

/root/repo/target/release/deps/libbxsoap-58eb91701c772af6.rlib: src/lib.rs

/root/repo/target/release/deps/libbxsoap-58eb91701c772af6.rmeta: src/lib.rs

src/lib.rs:
