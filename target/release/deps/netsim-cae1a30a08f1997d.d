/root/repo/target/release/deps/netsim-cae1a30a08f1997d.d: crates/netsim/src/lib.rs crates/netsim/src/auth.rs crates/netsim/src/clock.rs crates/netsim/src/disk.rs crates/netsim/src/profile.rs crates/netsim/src/queue.rs crates/netsim/src/striped.rs crates/netsim/src/tcp.rs crates/netsim/src/time.rs

/root/repo/target/release/deps/libnetsim-cae1a30a08f1997d.rlib: crates/netsim/src/lib.rs crates/netsim/src/auth.rs crates/netsim/src/clock.rs crates/netsim/src/disk.rs crates/netsim/src/profile.rs crates/netsim/src/queue.rs crates/netsim/src/striped.rs crates/netsim/src/tcp.rs crates/netsim/src/time.rs

/root/repo/target/release/deps/libnetsim-cae1a30a08f1997d.rmeta: crates/netsim/src/lib.rs crates/netsim/src/auth.rs crates/netsim/src/clock.rs crates/netsim/src/disk.rs crates/netsim/src/profile.rs crates/netsim/src/queue.rs crates/netsim/src/striped.rs crates/netsim/src/tcp.rs crates/netsim/src/time.rs

crates/netsim/src/lib.rs:
crates/netsim/src/auth.rs:
crates/netsim/src/clock.rs:
crates/netsim/src/disk.rs:
crates/netsim/src/profile.rs:
crates/netsim/src/queue.rs:
crates/netsim/src/striped.rs:
crates/netsim/src/tcp.rs:
crates/netsim/src/time.rs:
