/root/repo/target/release/deps/table1_sizes-f34b01f99746b8b5.d: crates/bench/src/bin/table1_sizes.rs

/root/repo/target/release/deps/table1_sizes-f34b01f99746b8b5: crates/bench/src/bin/table1_sizes.rs

crates/bench/src/bin/table1_sizes.rs:
