/root/repo/target/release/deps/codec_throughput-d3e03e207b8c4be1.d: crates/bench/benches/codec_throughput.rs

/root/repo/target/release/deps/codec_throughput-d3e03e207b8c4be1: crates/bench/benches/codec_throughput.rs

crates/bench/benches/codec_throughput.rs:
