/root/repo/target/release/deps/fig6_large_wan-b694233a34392622.d: crates/bench/src/bin/fig6_large_wan.rs

/root/repo/target/release/deps/fig6_large_wan-b694233a34392622: crates/bench/src/bin/fig6_large_wan.rs

crates/bench/src/bin/fig6_large_wan.rs:
