/root/repo/target/release/deps/table1_sizes-6d8f599ae400b9e4.d: crates/bench/src/bin/table1_sizes.rs

/root/repo/target/release/deps/table1_sizes-6d8f599ae400b9e4: crates/bench/src/bin/table1_sizes.rs

crates/bench/src/bin/table1_sizes.rs:
