/root/repo/target/release/deps/bench-33c7c9aefa78a699.d: crates/bench/src/lib.rs crates/bench/src/cpu.rs crates/bench/src/schemes.rs crates/bench/src/workload.rs

/root/repo/target/release/deps/libbench-33c7c9aefa78a699.rlib: crates/bench/src/lib.rs crates/bench/src/cpu.rs crates/bench/src/schemes.rs crates/bench/src/workload.rs

/root/repo/target/release/deps/libbench-33c7c9aefa78a699.rmeta: crates/bench/src/lib.rs crates/bench/src/cpu.rs crates/bench/src/schemes.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/cpu.rs:
crates/bench/src/schemes.rs:
crates/bench/src/workload.rs:
