/root/repo/target/release/deps/fig5_large_lan-d59e3498f05ca2ac.d: crates/bench/src/bin/fig5_large_lan.rs

/root/repo/target/release/deps/fig5_large_lan-d59e3498f05ca2ac: crates/bench/src/bin/fig5_large_lan.rs

crates/bench/src/bin/fig5_large_lan.rs:
