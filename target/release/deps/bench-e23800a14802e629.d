/root/repo/target/release/deps/bench-e23800a14802e629.d: crates/bench/src/lib.rs crates/bench/src/cpu.rs crates/bench/src/schemes.rs crates/bench/src/workload.rs

/root/repo/target/release/deps/libbench-e23800a14802e629.rlib: crates/bench/src/lib.rs crates/bench/src/cpu.rs crates/bench/src/schemes.rs crates/bench/src/workload.rs

/root/repo/target/release/deps/libbench-e23800a14802e629.rmeta: crates/bench/src/lib.rs crates/bench/src/cpu.rs crates/bench/src/schemes.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/cpu.rs:
crates/bench/src/schemes.rs:
crates/bench/src/workload.rs:
