/root/repo/target/release/deps/fig4_small_lan-3203814c2a7aae28.d: crates/bench/src/bin/fig4_small_lan.rs

/root/repo/target/release/deps/fig4_small_lan-3203814c2a7aae28: crates/bench/src/bin/fig4_small_lan.rs

crates/bench/src/bin/fig4_small_lan.rs:
