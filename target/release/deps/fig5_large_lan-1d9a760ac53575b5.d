/root/repo/target/release/deps/fig5_large_lan-1d9a760ac53575b5.d: crates/bench/src/bin/fig5_large_lan.rs

/root/repo/target/release/deps/fig5_large_lan-1d9a760ac53575b5: crates/bench/src/bin/fig5_large_lan.rs

crates/bench/src/bin/fig5_large_lan.rs:
