/root/repo/target/release/deps/proptest-eb11881088b4f4a2.d: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-eb11881088b4f4a2.rlib: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-eb11881088b4f4a2.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
