/root/repo/target/release/deps/fig6_large_wan-321731c3db105c51.d: crates/bench/src/bin/fig6_large_wan.rs

/root/repo/target/release/deps/fig6_large_wan-321731c3db105c51: crates/bench/src/bin/fig6_large_wan.rs

crates/bench/src/bin/fig6_large_wan.rs:
