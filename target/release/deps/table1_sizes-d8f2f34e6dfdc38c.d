/root/repo/target/release/deps/table1_sizes-d8f2f34e6dfdc38c.d: crates/bench/src/bin/table1_sizes.rs

/root/repo/target/release/deps/table1_sizes-d8f2f34e6dfdc38c: crates/bench/src/bin/table1_sizes.rs

crates/bench/src/bin/table1_sizes.rs:
