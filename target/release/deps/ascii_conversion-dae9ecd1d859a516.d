/root/repo/target/release/deps/ascii_conversion-dae9ecd1d859a516.d: crates/bench/benches/ascii_conversion.rs

/root/repo/target/release/deps/ascii_conversion-dae9ecd1d859a516: crates/bench/benches/ascii_conversion.rs

crates/bench/benches/ascii_conversion.rs:
