/root/repo/target/release/deps/codec_throughput-4e9e8af9c877c5fd.d: crates/bench/benches/codec_throughput.rs

/root/repo/target/release/deps/codec_throughput-4e9e8af9c877c5fd: crates/bench/benches/codec_throughput.rs

crates/bench/benches/codec_throughput.rs:
