/root/repo/target/release/deps/bxdm-7775fa7d05b8cc37.d: crates/bxdm/src/lib.rs crates/bxdm/src/builder.rs crates/bxdm/src/name.rs crates/bxdm/src/namespace.rs crates/bxdm/src/navigate.rs crates/bxdm/src/node.rs crates/bxdm/src/value.rs crates/bxdm/src/visitor.rs

/root/repo/target/release/deps/libbxdm-7775fa7d05b8cc37.rlib: crates/bxdm/src/lib.rs crates/bxdm/src/builder.rs crates/bxdm/src/name.rs crates/bxdm/src/namespace.rs crates/bxdm/src/navigate.rs crates/bxdm/src/node.rs crates/bxdm/src/value.rs crates/bxdm/src/visitor.rs

/root/repo/target/release/deps/libbxdm-7775fa7d05b8cc37.rmeta: crates/bxdm/src/lib.rs crates/bxdm/src/builder.rs crates/bxdm/src/name.rs crates/bxdm/src/namespace.rs crates/bxdm/src/navigate.rs crates/bxdm/src/node.rs crates/bxdm/src/value.rs crates/bxdm/src/visitor.rs

crates/bxdm/src/lib.rs:
crates/bxdm/src/builder.rs:
crates/bxdm/src/name.rs:
crates/bxdm/src/namespace.rs:
crates/bxdm/src/navigate.rs:
crates/bxdm/src/node.rs:
crates/bxdm/src/value.rs:
crates/bxdm/src/visitor.rs:
