/root/repo/target/release/deps/fig6_large_wan-9bc2c593abf29d2a.d: crates/bench/src/bin/fig6_large_wan.rs

/root/repo/target/release/deps/fig6_large_wan-9bc2c593abf29d2a: crates/bench/src/bin/fig6_large_wan.rs

crates/bench/src/bin/fig6_large_wan.rs:
