/root/repo/target/release/deps/ascii_conversion-c1f5662a62c884c4.d: crates/bench/benches/ascii_conversion.rs

/root/repo/target/release/deps/ascii_conversion-c1f5662a62c884c4: crates/bench/benches/ascii_conversion.rs

crates/bench/benches/ascii_conversion.rs:
