/root/repo/target/release/deps/transport-094712139a53a026.d: crates/transport/src/lib.rs crates/transport/src/deadline.rs crates/transport/src/error.rs crates/transport/src/faulty.rs crates/transport/src/fileserver.rs crates/transport/src/framed.rs crates/transport/src/http/mod.rs crates/transport/src/http/client.rs crates/transport/src/http/request.rs crates/transport/src/http/response.rs crates/transport/src/http/server.rs crates/transport/src/iovec.rs crates/transport/src/pool.rs crates/transport/src/retry.rs crates/transport/src/tcpserver.rs

/root/repo/target/release/deps/libtransport-094712139a53a026.rlib: crates/transport/src/lib.rs crates/transport/src/deadline.rs crates/transport/src/error.rs crates/transport/src/faulty.rs crates/transport/src/fileserver.rs crates/transport/src/framed.rs crates/transport/src/http/mod.rs crates/transport/src/http/client.rs crates/transport/src/http/request.rs crates/transport/src/http/response.rs crates/transport/src/http/server.rs crates/transport/src/iovec.rs crates/transport/src/pool.rs crates/transport/src/retry.rs crates/transport/src/tcpserver.rs

/root/repo/target/release/deps/libtransport-094712139a53a026.rmeta: crates/transport/src/lib.rs crates/transport/src/deadline.rs crates/transport/src/error.rs crates/transport/src/faulty.rs crates/transport/src/fileserver.rs crates/transport/src/framed.rs crates/transport/src/http/mod.rs crates/transport/src/http/client.rs crates/transport/src/http/request.rs crates/transport/src/http/response.rs crates/transport/src/http/server.rs crates/transport/src/iovec.rs crates/transport/src/pool.rs crates/transport/src/retry.rs crates/transport/src/tcpserver.rs

crates/transport/src/lib.rs:
crates/transport/src/deadline.rs:
crates/transport/src/error.rs:
crates/transport/src/faulty.rs:
crates/transport/src/fileserver.rs:
crates/transport/src/framed.rs:
crates/transport/src/http/mod.rs:
crates/transport/src/http/client.rs:
crates/transport/src/http/request.rs:
crates/transport/src/http/response.rs:
crates/transport/src/http/server.rs:
crates/transport/src/iovec.rs:
crates/transport/src/pool.rs:
crates/transport/src/retry.rs:
crates/transport/src/tcpserver.rs:
