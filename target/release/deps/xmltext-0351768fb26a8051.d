/root/repo/target/release/deps/xmltext-0351768fb26a8051.d: crates/xmltext/src/lib.rs crates/xmltext/src/error.rs crates/xmltext/src/escape.rs crates/xmltext/src/lexer.rs crates/xmltext/src/num.rs crates/xmltext/src/reader.rs crates/xmltext/src/writer.rs

/root/repo/target/release/deps/libxmltext-0351768fb26a8051.rlib: crates/xmltext/src/lib.rs crates/xmltext/src/error.rs crates/xmltext/src/escape.rs crates/xmltext/src/lexer.rs crates/xmltext/src/num.rs crates/xmltext/src/reader.rs crates/xmltext/src/writer.rs

/root/repo/target/release/deps/libxmltext-0351768fb26a8051.rmeta: crates/xmltext/src/lib.rs crates/xmltext/src/error.rs crates/xmltext/src/escape.rs crates/xmltext/src/lexer.rs crates/xmltext/src/num.rs crates/xmltext/src/reader.rs crates/xmltext/src/writer.rs

crates/xmltext/src/lib.rs:
crates/xmltext/src/error.rs:
crates/xmltext/src/escape.rs:
crates/xmltext/src/lexer.rs:
crates/xmltext/src/num.rs:
crates/xmltext/src/reader.rs:
crates/xmltext/src/writer.rs:
