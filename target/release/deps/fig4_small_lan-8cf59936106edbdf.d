/root/repo/target/release/deps/fig4_small_lan-8cf59936106edbdf.d: crates/bench/src/bin/fig4_small_lan.rs

/root/repo/target/release/deps/fig4_small_lan-8cf59936106edbdf: crates/bench/src/bin/fig4_small_lan.rs

crates/bench/src/bin/fig4_small_lan.rs:
