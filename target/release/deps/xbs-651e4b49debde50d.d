/root/repo/target/release/deps/xbs-651e4b49debde50d.d: crates/xbs/src/lib.rs crates/xbs/src/byteorder.rs crates/xbs/src/error.rs crates/xbs/src/prim.rs crates/xbs/src/reader.rs crates/xbs/src/typecode.rs crates/xbs/src/vls.rs crates/xbs/src/writer.rs

/root/repo/target/release/deps/libxbs-651e4b49debde50d.rlib: crates/xbs/src/lib.rs crates/xbs/src/byteorder.rs crates/xbs/src/error.rs crates/xbs/src/prim.rs crates/xbs/src/reader.rs crates/xbs/src/typecode.rs crates/xbs/src/vls.rs crates/xbs/src/writer.rs

/root/repo/target/release/deps/libxbs-651e4b49debde50d.rmeta: crates/xbs/src/lib.rs crates/xbs/src/byteorder.rs crates/xbs/src/error.rs crates/xbs/src/prim.rs crates/xbs/src/reader.rs crates/xbs/src/typecode.rs crates/xbs/src/vls.rs crates/xbs/src/writer.rs

crates/xbs/src/lib.rs:
crates/xbs/src/byteorder.rs:
crates/xbs/src/error.rs:
crates/xbs/src/prim.rs:
crates/xbs/src/reader.rs:
crates/xbs/src/typecode.rs:
crates/xbs/src/vls.rs:
crates/xbs/src/writer.rs:
