/root/repo/target/release/deps/bxsoap-82e39875e4397508.d: src/lib.rs

/root/repo/target/release/deps/libbxsoap-82e39875e4397508.rlib: src/lib.rs

/root/repo/target/release/deps/libbxsoap-82e39875e4397508.rmeta: src/lib.rs

src/lib.rs:
