/root/repo/target/release/deps/gridftp-5e12aef42aff5de9.d: crates/gridftp/src/lib.rs crates/gridftp/src/session.rs

/root/repo/target/release/deps/libgridftp-5e12aef42aff5de9.rlib: crates/gridftp/src/lib.rs crates/gridftp/src/session.rs

/root/repo/target/release/deps/libgridftp-5e12aef42aff5de9.rmeta: crates/gridftp/src/lib.rs crates/gridftp/src/session.rs

crates/gridftp/src/lib.rs:
crates/gridftp/src/session.rs:
