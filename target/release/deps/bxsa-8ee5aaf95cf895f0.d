/root/repo/target/release/deps/bxsa-8ee5aaf95cf895f0.d: crates/bxsa/src/lib.rs crates/bxsa/src/decoder.rs crates/bxsa/src/encoder.rs crates/bxsa/src/error.rs crates/bxsa/src/estimate.rs crates/bxsa/src/frame.rs crates/bxsa/src/pull.rs crates/bxsa/src/scan.rs crates/bxsa/src/transcode.rs

/root/repo/target/release/deps/libbxsa-8ee5aaf95cf895f0.rlib: crates/bxsa/src/lib.rs crates/bxsa/src/decoder.rs crates/bxsa/src/encoder.rs crates/bxsa/src/error.rs crates/bxsa/src/estimate.rs crates/bxsa/src/frame.rs crates/bxsa/src/pull.rs crates/bxsa/src/scan.rs crates/bxsa/src/transcode.rs

/root/repo/target/release/deps/libbxsa-8ee5aaf95cf895f0.rmeta: crates/bxsa/src/lib.rs crates/bxsa/src/decoder.rs crates/bxsa/src/encoder.rs crates/bxsa/src/error.rs crates/bxsa/src/estimate.rs crates/bxsa/src/frame.rs crates/bxsa/src/pull.rs crates/bxsa/src/scan.rs crates/bxsa/src/transcode.rs

crates/bxsa/src/lib.rs:
crates/bxsa/src/decoder.rs:
crates/bxsa/src/encoder.rs:
crates/bxsa/src/error.rs:
crates/bxsa/src/estimate.rs:
crates/bxsa/src/frame.rs:
crates/bxsa/src/pull.rs:
crates/bxsa/src/scan.rs:
crates/bxsa/src/transcode.rs:
