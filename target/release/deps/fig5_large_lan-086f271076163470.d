/root/repo/target/release/deps/fig5_large_lan-086f271076163470.d: crates/bench/src/bin/fig5_large_lan.rs

/root/repo/target/release/deps/fig5_large_lan-086f271076163470: crates/bench/src/bin/fig5_large_lan.rs

crates/bench/src/bin/fig5_large_lan.rs:
