/root/repo/target/release/deps/soap-22fb190740b1d516.d: crates/soap/src/lib.rs crates/soap/src/anyengine.rs crates/soap/src/binding.rs crates/soap/src/encoding.rs crates/soap/src/engine.rs crates/soap/src/envelope.rs crates/soap/src/error.rs crates/soap/src/fault.rs crates/soap/src/intermediary.rs crates/soap/src/server.rs crates/soap/src/service.rs

/root/repo/target/release/deps/libsoap-22fb190740b1d516.rlib: crates/soap/src/lib.rs crates/soap/src/anyengine.rs crates/soap/src/binding.rs crates/soap/src/encoding.rs crates/soap/src/engine.rs crates/soap/src/envelope.rs crates/soap/src/error.rs crates/soap/src/fault.rs crates/soap/src/intermediary.rs crates/soap/src/server.rs crates/soap/src/service.rs

/root/repo/target/release/deps/libsoap-22fb190740b1d516.rmeta: crates/soap/src/lib.rs crates/soap/src/anyengine.rs crates/soap/src/binding.rs crates/soap/src/encoding.rs crates/soap/src/engine.rs crates/soap/src/envelope.rs crates/soap/src/error.rs crates/soap/src/fault.rs crates/soap/src/intermediary.rs crates/soap/src/server.rs crates/soap/src/service.rs

crates/soap/src/lib.rs:
crates/soap/src/anyengine.rs:
crates/soap/src/binding.rs:
crates/soap/src/encoding.rs:
crates/soap/src/engine.rs:
crates/soap/src/envelope.rs:
crates/soap/src/error.rs:
crates/soap/src/fault.rs:
crates/soap/src/intermediary.rs:
crates/soap/src/server.rs:
crates/soap/src/service.rs:
