/root/repo/target/release/deps/netcdf3-c022a401ac1fccd2.d: crates/netcdf3/src/lib.rs crates/netcdf3/src/error.rs crates/netcdf3/src/model.rs crates/netcdf3/src/read.rs crates/netcdf3/src/write.rs

/root/repo/target/release/deps/libnetcdf3-c022a401ac1fccd2.rlib: crates/netcdf3/src/lib.rs crates/netcdf3/src/error.rs crates/netcdf3/src/model.rs crates/netcdf3/src/read.rs crates/netcdf3/src/write.rs

/root/repo/target/release/deps/libnetcdf3-c022a401ac1fccd2.rmeta: crates/netcdf3/src/lib.rs crates/netcdf3/src/error.rs crates/netcdf3/src/model.rs crates/netcdf3/src/read.rs crates/netcdf3/src/write.rs

crates/netcdf3/src/lib.rs:
crates/netcdf3/src/error.rs:
crates/netcdf3/src/model.rs:
crates/netcdf3/src/read.rs:
crates/netcdf3/src/write.rs:
