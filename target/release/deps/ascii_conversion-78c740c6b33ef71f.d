/root/repo/target/release/deps/ascii_conversion-78c740c6b33ef71f.d: crates/bench/benches/ascii_conversion.rs

/root/repo/target/release/deps/ascii_conversion-78c740c6b33ef71f: crates/bench/benches/ascii_conversion.rs

crates/bench/benches/ascii_conversion.rs:
