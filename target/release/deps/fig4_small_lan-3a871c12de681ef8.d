/root/repo/target/release/deps/fig4_small_lan-3a871c12de681ef8.d: crates/bench/src/bin/fig4_small_lan.rs

/root/repo/target/release/deps/fig4_small_lan-3a871c12de681ef8: crates/bench/src/bin/fig4_small_lan.rs

crates/bench/src/bin/fig4_small_lan.rs:
