/root/repo/target/release/deps/transport-1f7e75dfbe0fd3eb.d: crates/transport/src/lib.rs crates/transport/src/error.rs crates/transport/src/fileserver.rs crates/transport/src/framed.rs crates/transport/src/http/mod.rs crates/transport/src/http/client.rs crates/transport/src/http/request.rs crates/transport/src/http/response.rs crates/transport/src/http/server.rs crates/transport/src/iovec.rs crates/transport/src/tcpserver.rs

/root/repo/target/release/deps/libtransport-1f7e75dfbe0fd3eb.rlib: crates/transport/src/lib.rs crates/transport/src/error.rs crates/transport/src/fileserver.rs crates/transport/src/framed.rs crates/transport/src/http/mod.rs crates/transport/src/http/client.rs crates/transport/src/http/request.rs crates/transport/src/http/response.rs crates/transport/src/http/server.rs crates/transport/src/iovec.rs crates/transport/src/tcpserver.rs

/root/repo/target/release/deps/libtransport-1f7e75dfbe0fd3eb.rmeta: crates/transport/src/lib.rs crates/transport/src/error.rs crates/transport/src/fileserver.rs crates/transport/src/framed.rs crates/transport/src/http/mod.rs crates/transport/src/http/client.rs crates/transport/src/http/request.rs crates/transport/src/http/response.rs crates/transport/src/http/server.rs crates/transport/src/iovec.rs crates/transport/src/tcpserver.rs

crates/transport/src/lib.rs:
crates/transport/src/error.rs:
crates/transport/src/fileserver.rs:
crates/transport/src/framed.rs:
crates/transport/src/http/mod.rs:
crates/transport/src/http/client.rs:
crates/transport/src/http/request.rs:
crates/transport/src/http/response.rs:
crates/transport/src/http/server.rs:
crates/transport/src/iovec.rs:
crates/transport/src/tcpserver.rs:
