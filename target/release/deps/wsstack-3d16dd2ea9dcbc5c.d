/root/repo/target/release/deps/wsstack-3d16dd2ea9dcbc5c.d: crates/wsstack/src/lib.rs crates/wsstack/src/addressing.rs crates/wsstack/src/databinding.rs crates/wsstack/src/eventing.rs crates/wsstack/src/security.rs crates/wsstack/src/sha256.rs crates/wsstack/src/wsdl.rs crates/wsstack/src/xpath.rs

/root/repo/target/release/deps/libwsstack-3d16dd2ea9dcbc5c.rlib: crates/wsstack/src/lib.rs crates/wsstack/src/addressing.rs crates/wsstack/src/databinding.rs crates/wsstack/src/eventing.rs crates/wsstack/src/security.rs crates/wsstack/src/sha256.rs crates/wsstack/src/wsdl.rs crates/wsstack/src/xpath.rs

/root/repo/target/release/deps/libwsstack-3d16dd2ea9dcbc5c.rmeta: crates/wsstack/src/lib.rs crates/wsstack/src/addressing.rs crates/wsstack/src/databinding.rs crates/wsstack/src/eventing.rs crates/wsstack/src/security.rs crates/wsstack/src/sha256.rs crates/wsstack/src/wsdl.rs crates/wsstack/src/xpath.rs

crates/wsstack/src/lib.rs:
crates/wsstack/src/addressing.rs:
crates/wsstack/src/databinding.rs:
crates/wsstack/src/eventing.rs:
crates/wsstack/src/security.rs:
crates/wsstack/src/sha256.rs:
crates/wsstack/src/wsdl.rs:
crates/wsstack/src/xpath.rs:
