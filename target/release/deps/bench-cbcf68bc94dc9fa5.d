/root/repo/target/release/deps/bench-cbcf68bc94dc9fa5.d: crates/bench/src/lib.rs crates/bench/src/alloc_counter.rs crates/bench/src/cpu.rs crates/bench/src/schemes.rs crates/bench/src/workload.rs

/root/repo/target/release/deps/libbench-cbcf68bc94dc9fa5.rlib: crates/bench/src/lib.rs crates/bench/src/alloc_counter.rs crates/bench/src/cpu.rs crates/bench/src/schemes.rs crates/bench/src/workload.rs

/root/repo/target/release/deps/libbench-cbcf68bc94dc9fa5.rmeta: crates/bench/src/lib.rs crates/bench/src/alloc_counter.rs crates/bench/src/cpu.rs crates/bench/src/schemes.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/alloc_counter.rs:
crates/bench/src/cpu.rs:
crates/bench/src/schemes.rs:
crates/bench/src/workload.rs:
